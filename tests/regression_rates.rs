//! Golden miss-rate regression tests.
//!
//! The simulator and heuristics are fully deterministic, so exact miss
//! counts are stable across runs and platforms. Pinning a handful of
//! values guards every layer at once (IR construction, padding decisions,
//! address generation, cache modeling): any behavioural change — however
//! subtle — shows up as a changed count here and must be justified.

use rivera_padding::cache_sim::CacheConfig;
use rivera_padding::core::{DataLayout, Pad};
use rivera_padding::kernels;
use rivera_padding::trace::{padding_config_for, simulate_program};

fn rates(program: &rivera_padding::ir::Program, cache: &CacheConfig) -> (u64, u64, u64) {
    let original = simulate_program(program, &DataLayout::original(program), cache);
    let padded_layout = Pad::new(padding_config_for(cache)).run(program).layout;
    let padded = simulate_program(program, &padded_layout, cache);
    assert_eq!(
        original.accesses, padded.accesses,
        "padding must not change work"
    );
    (original.accesses, original.misses, padded.misses)
}

#[test]
fn jacobi_128_on_2k() {
    let p = kernels::jacobi::spec(128);
    let cache = CacheConfig::direct_mapped(2048, 32);
    let (accesses, orig, pad) = rates(&p, &cache);
    assert_eq!(accesses, 111_132);
    assert_eq!(orig, 91_287);
    assert_eq!(pad, 25_507);
}

#[test]
fn dot_2048_on_paper_base() {
    let p = kernels::dot::spec(2048);
    let cache = CacheConfig::paper_base();
    let (accesses, orig, pad) = rates(&p, &cache);
    assert_eq!(accesses, 4096);
    assert_eq!(orig, 4096, "severe conflicts: every access misses");
    assert_eq!(
        pad, 1024,
        "cold misses only: one per 32-byte line per stream"
    );
}

#[test]
fn erle_32_on_paper_base() {
    let p = kernels::erle::spec(32);
    let cache = CacheConfig::paper_base();
    let (accesses, orig, pad) = rates(&p, &cache);
    assert_eq!(accesses, 380_928);
    assert!(pad <= orig, "orig {orig} pad {pad}");
}

#[test]
fn expl_96_on_2k_shape() {
    // Less brittle variant for a bigger kernel: pin the rates to coarse
    // bands rather than exact counts.
    let p = kernels::expl::spec(96);
    let cache = CacheConfig::direct_mapped(2048, 32);
    let (accesses, orig, pad) = rates(&p, &cache);
    assert_eq!(accesses, 335_768);
    let orig_rate = orig as f64 / accesses as f64;
    let pad_rate = pad as f64 / accesses as f64;
    assert!(orig_rate > 0.5, "original should thrash: {orig_rate}");
    assert!(pad_rate < 0.3, "padded should stream: {pad_rate}");
}
