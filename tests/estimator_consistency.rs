//! The analytic miss-rate model (pad-core's "simplified cache miss
//! equations") must agree with the simulator on the decisions that
//! matter: which layout is better, and roughly how severe a conflict
//! situation is.

use rivera_padding::cache_sim::CacheConfig;
use rivera_padding::core::{estimate_miss_rate, DataLayout, Pad};
use rivera_padding::kernels;
use rivera_padding::trace::{padding_config_for, simulate_program};

/// Kernels with clear severe-conflict structure at these sizes.
fn cases() -> Vec<(&'static str, rivera_padding::ir::Program)> {
    vec![
        ("jacobi/128", kernels::jacobi::spec(128)),
        ("expl/96", kernels::expl::spec(96)),
        ("shal/95", kernels::shal::spec(95)),
        ("adi/128", kernels::adi::spec(128)),
        ("dot/2k", kernels::dot::spec(2048)),
    ]
}

#[test]
fn estimator_ranks_layouts_like_the_simulator() {
    let cache = CacheConfig::direct_mapped(2048, 32);
    let config = padding_config_for(&cache);
    for (name, p) in cases() {
        let original = DataLayout::original(&p);
        let padded = Pad::new(config.clone()).run(&p).layout;
        let est_gain = estimate_miss_rate(&p, &original, &config).miss_rate()
            - estimate_miss_rate(&p, &padded, &config).miss_rate();
        let sim_gain = simulate_program(&p, &original, &cache).miss_rate()
            - simulate_program(&p, &padded, &cache).miss_rate();
        // Whenever the model predicts a meaningful win, the simulator
        // must confirm the direction (and vice versa within noise).
        if est_gain > 0.05 {
            assert!(
                sim_gain > 0.0,
                "{name}: model predicted +{est_gain:.3}, simulator saw {sim_gain:.3}"
            );
        }
        if sim_gain > 0.10 {
            assert!(
                est_gain > 0.0,
                "{name}: simulator saw +{sim_gain:.3}, model predicted {est_gain:.3}"
            );
        }
    }
}

#[test]
fn estimator_never_exceeds_one_and_is_cheap() {
    let cache = CacheConfig::paper_base();
    let config = padding_config_for(&cache);
    for k in kernels::suite() {
        let n = k.default_n.clamp(8, 64);
        let p = (k.spec)(n);
        let est = estimate_miss_rate(&p, &DataLayout::original(&p), &config);
        assert!((0.0..=1.0).contains(&est.miss_rate()), "{}", k.name);
        assert!(est.accesses >= 0.0);
    }
}

#[test]
fn estimator_is_a_lower_bound_for_streaming_kernels() {
    // The model ignores capacity misses, so on a kernel that is purely
    // streaming (dot product with separated arrays) it matches the
    // simulator almost exactly, and in general it must not exceed the
    // simulated rate by more than the severe-conflict overcount bound.
    let cache = CacheConfig::paper_base();
    let config = padding_config_for(&cache);
    let p = kernels::dot::spec(2048);
    let padded = Pad::new(config.clone()).run(&p).layout;
    let est = estimate_miss_rate(&p, &padded, &config).miss_rate();
    let sim = simulate_program(&p, &padded, &cache).miss_rate();
    assert!((est - sim).abs() < 0.02, "est {est} vs sim {sim}");
}
