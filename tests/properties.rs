//! Cross-crate property tests: random programs through the whole
//! pipeline (IR → padding → trace → simulation).
//!
//! Programs are generated from a seeded xorshift stream, so every run
//! exercises the same 48 pseudo-random programs deterministically — no
//! external property-testing dependency required.

use rivera_padding::cache_sim::{CacheConfig, XorShift64Star};
use rivera_padding::core::{
    find_severe_conflicts, DataLayout, Pad, PadEvent, PadLite, PaddingConfig,
};
use rivera_padding::ir::{ArrayBuilder, Loop, Program, Stmt, Subscript};
use rivera_padding::trace::for_each_access;

const CASES: u64 = 48;

/// A random "scientific program": `k` conforming 2-D arrays of a random
/// (often power-of-two-ish) column size, swept by a stencil nest with
/// random offsets, plus an optional copy nest.
fn arb_program(case: u64) -> Program {
    let mut rng = XorShift64Star::new(0xA5_7A61 + case);
    let num_arrays = rng.range(2, 5) as usize;
    let n = match rng.below(7) {
        0 => 32i64,
        1 => 48,
        2 => 64,
        3 => 96,
        4 => 128,
        _ => rng.range(30, 130) as i64,
    };
    let num_offsets = rng.range(2, 6) as usize;
    let offsets: Vec<(i64, i64)> = (0..num_offsets)
        .map(|_| (rng.range(0, 3) as i64 - 1, rng.range(0, 3) as i64 - 1))
        .collect();
    let copy_nest = rng.bool();

    let mut b = Program::builder("random");
    let ids: Vec<_> = (0..num_arrays)
        .map(|k| b.add_array(ArrayBuilder::new(format!("A{k}"), [n, n])))
        .collect();
    let mut refs = Vec::new();
    for (k, &(dj, di)) in offsets.iter().enumerate() {
        let id = ids[k % ids.len()];
        refs.push(id.at([
            Subscript::var_offset("j", dj),
            Subscript::var_offset("i", di),
        ]));
    }
    refs.push(
        ids[ids.len() - 1]
            .at([Subscript::var("j"), Subscript::var("i")])
            .write(),
    );
    b.push(Stmt::loop_nest(
        [Loop::new("i", 2, n - 1), Loop::new("j", 2, n - 1)],
        vec![Stmt::refs(refs)],
    ));
    if copy_nest {
        b.push(Stmt::loop_nest(
            [Loop::new("i", 1, n), Loop::new("j", 1, n)],
            vec![Stmt::refs(vec![
                ids[0].at([Subscript::var("j"), Subscript::var("i")]),
                ids[ids.len() - 1]
                    .at([Subscript::var("j"), Subscript::var("i")])
                    .write(),
            ])],
        ));
    }
    b.build().expect("generated programs are well-formed")
}

fn small_config() -> PaddingConfig {
    PaddingConfig::new(2048, 32).expect("valid")
}

/// Layouts produced by both algorithms never overlap arrays and only
/// ever grow the footprint (monotone, bounded growth).
#[test]
fn layouts_are_valid_and_bounded() {
    for case in 0..CASES {
        let p = arb_program(case);
        for outcome in [
            Pad::new(small_config()).run(&p),
            PadLite::new(small_config()).run(&p),
        ] {
            assert!(outcome.layout.check_no_overlap(), "case {case}");
            let original = DataLayout::original(&p).total_bytes();
            assert!(outcome.layout.total_bytes() >= original, "case {case}");
            // Growth is bounded: per array, at most one cache size of
            // inter gap plus the intra budget.
            let bound = original + p.arrays().len() as u64 * (2048 + 64 * 8 * 130);
            assert!(outcome.layout.total_bytes() <= bound, "case {case}");
        }
    }
}

/// Unless PAD reported a failure event, no severe conflicts survive the
/// transformation — the paper's central guarantee.
#[test]
fn pad_clears_severe_conflicts_or_reports_failure() {
    for case in 0..CASES {
        let p = arb_program(case);
        let config = small_config();
        let outcome = Pad::new(config.clone()).run(&p);
        let failed = outcome.events.iter().any(|e| {
            matches!(
                e,
                PadEvent::InterFailed { .. } | PadEvent::IntraFailed { .. }
            )
        });
        if !failed {
            let leftover = find_severe_conflicts(&p, &outcome.layout, &config);
            assert!(leftover.is_empty(), "case {case} leftover: {leftover:?}");
        }
    }
}

/// Every address the trace generator emits lies inside the span of the
/// accessed array, under both the original and padded layouts.
#[test]
fn traces_stay_in_bounds() {
    for case in 0..CASES {
        let p = arb_program(case);
        for layout in [
            DataLayout::original(&p),
            Pad::new(small_config()).run(&p).layout,
        ] {
            let total = layout.total_bytes();
            let mut count = 0u64;
            for_each_access(&p, &layout, |a| {
                assert!(
                    a.addr < total,
                    "case {case}: address {} beyond layout end {total}",
                    a.addr
                );
                count += 1;
            });
            assert!(count > 0, "case {case}");
        }
    }
}

/// Trace length is layout-invariant: padding changes *where* accesses
/// go, never how many there are (the transformation does not touch
/// computation).
#[test]
fn padding_preserves_access_counts() {
    for case in 0..CASES {
        let p = arb_program(case);
        let original = DataLayout::original(&p);
        let padded = Pad::new(small_config()).run(&p).layout;
        let count = |layout: &DataLayout| {
            let mut c = 0u64;
            for_each_access(&p, layout, |_| c += 1);
            c
        };
        assert_eq!(count(&original), count(&padded), "case {case}");
    }
}

/// Simulation sanity on random traces: the accounting identity holds and
/// the three-C classification partitions the misses.
#[test]
fn simulation_accounting_holds() {
    use rivera_padding::trace::simulate_classified;
    for case in 0..CASES {
        let p = arb_program(case);
        let cache = CacheConfig::direct_mapped(2048, 32);
        let stats = simulate_classified(&p, &DataLayout::original(&p), &cache);
        assert_eq!(
            stats.cache.hits + stats.cache.misses,
            stats.cache.accesses,
            "case {case}"
        );
        assert_eq!(
            stats.compulsory + stats.capacity + stats.conflict,
            stats.cache.misses,
            "case {case}"
        );
    }
}
