//! Cross-crate property tests: random programs through the whole
//! pipeline (IR → padding → trace → simulation).

use proptest::prelude::*;

use rivera_padding::cache_sim::CacheConfig;
use rivera_padding::core::{
    find_severe_conflicts, DataLayout, Pad, PadEvent, PadLite, PaddingConfig,
};
use rivera_padding::ir::{ArrayBuilder, Loop, Program, Stmt, Subscript};
use rivera_padding::trace::for_each_access;

/// A random "scientific program": `k` conforming 2-D arrays of a random
/// (often power-of-two-ish) column size, swept by a stencil nest with
/// random offsets, plus an optional copy nest.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        2usize..5,                 // number of arrays
        prop_oneof![Just(32i64), Just(48), Just(64), Just(96), Just(128), 30i64..130],
        proptest::collection::vec((-1i64..=1, -1i64..=1), 2..6), // stencil offsets
        any::<bool>(),             // include copy nest
    )
        .prop_map(|(num_arrays, n, offsets, copy_nest)| {
            let mut b = Program::builder("random");
            let ids: Vec<_> = (0..num_arrays)
                .map(|k| b.add_array(ArrayBuilder::new(format!("A{k}"), [n, n])))
                .collect();
            let mut refs = Vec::new();
            for (k, &(dj, di)) in offsets.iter().enumerate() {
                let id = ids[k % ids.len()];
                refs.push(id.at([
                    Subscript::var_offset("j", dj),
                    Subscript::var_offset("i", di),
                ]));
            }
            refs.push(
                ids[ids.len() - 1]
                    .at([Subscript::var("j"), Subscript::var("i")])
                    .write(),
            );
            b.push(Stmt::loop_nest(
                [Loop::new("i", 2, n - 1), Loop::new("j", 2, n - 1)],
                vec![Stmt::refs(refs)],
            ));
            if copy_nest {
                b.push(Stmt::loop_nest(
                    [Loop::new("i", 1, n), Loop::new("j", 1, n)],
                    vec![Stmt::refs(vec![
                        ids[0].at([Subscript::var("j"), Subscript::var("i")]),
                        ids[ids.len() - 1]
                            .at([Subscript::var("j"), Subscript::var("i")])
                            .write(),
                    ])],
                ));
            }
            b.build().expect("generated programs are well-formed")
        })
}

fn small_config() -> PaddingConfig {
    PaddingConfig::new(2048, 32).expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Layouts produced by both algorithms never overlap arrays and only
    /// ever grow the footprint (monotone, bounded growth).
    #[test]
    fn layouts_are_valid_and_bounded(p in arb_program()) {
        for outcome in [
            Pad::new(small_config()).run(&p),
            PadLite::new(small_config()).run(&p),
        ] {
            prop_assert!(outcome.layout.check_no_overlap());
            let original = DataLayout::original(&p).total_bytes();
            prop_assert!(outcome.layout.total_bytes() >= original);
            // Growth is bounded: per array, at most one cache size of
            // inter gap plus the intra budget.
            let bound = original
                + p.arrays().len() as u64 * (2048 + 64 * 8 * 130);
            prop_assert!(outcome.layout.total_bytes() <= bound);
        }
    }

    /// Unless PAD reported a failure event, no severe conflicts survive
    /// the transformation — the paper's central guarantee.
    #[test]
    fn pad_clears_severe_conflicts_or_reports_failure(p in arb_program()) {
        let config = small_config();
        let outcome = Pad::new(config.clone()).run(&p);
        let failed = outcome.events.iter().any(|e| {
            matches!(e, PadEvent::InterFailed { .. } | PadEvent::IntraFailed { .. })
        });
        if !failed {
            let leftover = find_severe_conflicts(&p, &outcome.layout, &config);
            prop_assert!(leftover.is_empty(), "leftover: {leftover:?}");
        }
    }

    /// Every address the trace generator emits lies inside the span of
    /// the accessed array, under both the original and padded layouts.
    #[test]
    fn traces_stay_in_bounds(p in arb_program()) {
        for layout in [
            DataLayout::original(&p),
            Pad::new(small_config()).run(&p).layout,
        ] {
            let total = layout.total_bytes();
            let mut count = 0u64;
            for_each_access(&p, &layout, |a| {
                assert!(a.addr < total, "address {} beyond layout end {total}", a.addr);
                count += 1;
            });
            prop_assert!(count > 0);
        }
    }

    /// Trace length is layout-invariant: padding changes *where* accesses
    /// go, never how many there are (the transformation does not touch
    /// computation).
    #[test]
    fn padding_preserves_access_counts(p in arb_program()) {
        let original = DataLayout::original(&p);
        let padded = Pad::new(small_config()).run(&p).layout;
        let count = |layout: &DataLayout| {
            let mut c = 0u64;
            for_each_access(&p, layout, |_| c += 1);
            c
        };
        prop_assert_eq!(count(&original), count(&padded));
    }

    /// Simulation sanity on random traces: hits + misses = accesses, and
    /// a fully-associative cache of equal size never misses more than the
    /// direct-mapped cache by more than the LRU-vs-optimal slack (we just
    /// check the accounting identity and conflict classification here).
    #[test]
    fn simulation_accounting_holds(p in arb_program()) {
        use rivera_padding::trace::simulate_classified;
        let cache = CacheConfig::direct_mapped(2048, 32);
        let stats = simulate_classified(&p, &DataLayout::original(&p), &cache);
        prop_assert_eq!(stats.cache.hits + stats.cache.misses, stats.cache.accesses);
        prop_assert_eq!(
            stats.compulsory + stats.capacity + stats.conflict,
            stats.cache.misses
        );
    }
}
