//! Golden end-to-end tests of the paper's worked examples (Section 3)
//! and headline claims, spanning every crate: IR construction, padding
//! analysis, trace generation, and cache simulation.

use rivera_padding::cache_sim::CacheConfig;
use rivera_padding::core::{
    find_severe_conflicts, DataLayout, InterHeuristic, IntraHeuristic, LinAlgHeuristic, Pad,
    PadLite, PaddingConfig, PaddingPipeline,
};
use rivera_padding::ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt, Subscript};
use rivera_padding::trace::{padding_config_for, simulate_classified, simulate_program};

/// JACOBI with 1-byte elements so the paper's element-unit arithmetic
/// applies literally.
fn jacobi_elements(n: i64) -> (Program, ArrayId, ArrayId) {
    let mut b = Program::builder("jacobi");
    let a = b.add_array(ArrayBuilder::new("A", [n, n]).elem_size(1));
    let bb = b.add_array(ArrayBuilder::new("B", [n, n]).elem_size(1));
    b.push(Stmt::loop_nest(
        [Loop::new("i", 2, n - 1), Loop::new("j", 2, n - 1)],
        vec![Stmt::refs(vec![
            a.at([Subscript::var_offset("j", -1), Subscript::var("i")]),
            a.at([Subscript::var("j"), Subscript::var_offset("i", -1)]),
            a.at([Subscript::var_offset("j", 1), Subscript::var("i")]),
            a.at([Subscript::var("j"), Subscript::var_offset("i", 1)]),
            bb.at([Subscript::var("j"), Subscript::var("i")]).write(),
        ])],
    ));
    b.push(Stmt::loop_nest(
        [Loop::new("i", 2, n - 1), Loop::new("j", 2, n - 1)],
        vec![Stmt::refs(vec![
            bb.at([Subscript::var("j"), Subscript::var("i")]),
            a.at([Subscript::var("j"), Subscript::var("i")]).write(),
        ])],
    ));
    (b.build().expect("valid"), a, bb)
}

#[test]
fn section3_n512_cs2048() {
    // "INTERPADLITE ... B is therefore advanced by M."
    // "INTERPAD ... B's tentative location is therefore padded by 5."
    let (p, a, bb) = jacobi_elements(512);
    let config = PaddingConfig::new(2048, 4).expect("valid");

    let lite = PaddingPipeline::custom(
        IntraHeuristic::Lite,
        LinAlgHeuristic::None,
        InterHeuristic::Lite,
        config.clone(),
    )
    .run(&p);
    assert_eq!(lite.layout.column_size(a), 512);
    assert_eq!(lite.layout.base_addr(bb), 512 * 512 + 16); // M = 4 lines = 16 elements

    let pad = Pad::new(config.clone()).run(&p);
    assert_eq!(pad.layout.base_addr(bb), 512 * 512 + 5);

    for outcome in [lite, pad] {
        assert!(find_severe_conflicts(&p, &outcome.layout, &config).is_empty());
    }
}

#[test]
fn section3_n512_cs1024() {
    // "A's column size, and thus B's, are increased to 520 ... B is
    //  padded by M." / "Padding A's column size by 2 eliminates all
    //  conflicts ... places B immediately at 514 x 512."
    let (p, a, bb) = jacobi_elements(512);
    let config = PaddingConfig::new(1024, 4).expect("valid");

    let lite = PaddingPipeline::custom(
        IntraHeuristic::Lite,
        LinAlgHeuristic::None,
        InterHeuristic::Lite,
        config.clone(),
    )
    .run(&p);
    assert_eq!(lite.layout.column_size(a), 520);
    assert_eq!(lite.layout.column_size(bb), 520);
    assert_eq!(lite.layout.base_addr(bb), 520 * 512 + 16);

    let pad = Pad::new(config.clone()).run(&p);
    assert_eq!(pad.layout.column_size(a), 514);
    assert_eq!(pad.layout.column_size(bb), 512);
    assert_eq!(pad.layout.base_addr(bb), 514 * 512);
    assert!(find_severe_conflicts(&p, &pad.layout, &config).is_empty());
}

#[test]
fn section3_n934_cs1024_padlite_fails_pad_succeeds() {
    // "PADLITE therefore fails to eliminate the existing severe conflict
    //  misses. Analysis enables PAD to find a layout eliminating these
    //  conflicts." (B padded by 6.)
    let (p, _, bb) = jacobi_elements(934);
    let config = PaddingConfig::new(1024, 4).expect("valid");

    let lite = PaddingPipeline::custom(
        IntraHeuristic::Lite,
        LinAlgHeuristic::None,
        InterHeuristic::Lite,
        config.clone(),
    )
    .run(&p);
    assert_eq!(lite.layout.base_addr(bb), 934 * 934);
    assert!(!find_severe_conflicts(&p, &lite.layout, &config).is_empty());

    let pad = Pad::new(config.clone()).run(&p);
    assert_eq!(pad.layout.base_addr(bb), 934 * 934 + 6);
    assert!(find_severe_conflicts(&p, &pad.layout, &config).is_empty());

    // And the simulator agrees: PAD's layout misses strictly less.
    let cache = CacheConfig::direct_mapped(1024, 4);
    let before = simulate_program(&p, &lite.layout, &cache).miss_rate();
    let after = simulate_program(&p, &pad.layout, &cache).miss_rate();
    assert!(after < before, "before={before} after={after}");
}

#[test]
fn figure1_dot_product_severe_conflicts() {
    // Figure 1: A and B separated by a multiple of the cache size on a
    // direct-mapped cache -> every reference is a conflict miss.
    let n = 2048i64;
    let mut b = Program::builder("dot");
    let a = b.add_array(ArrayBuilder::new("A", [n]));
    let bb = b.add_array(ArrayBuilder::new("B", [n]));
    b.push(Stmt::loop_(
        Loop::new("i", 1, n),
        vec![Stmt::refs(vec![
            a.at([Subscript::var("i")]),
            bb.at([Subscript::var("i")]),
        ])],
    ));
    let p = b.build().expect("valid");
    let cache = CacheConfig::paper_base();

    let before = simulate_classified(&p, &DataLayout::original(&p), &cache);
    assert!(before.cache.miss_rate() > 0.99);

    let padded = Pad::new(padding_config_for(&cache)).run(&p).layout;
    let after = simulate_classified(&p, &padded, &cache);
    assert_eq!(after.conflict, 0);
    // Only cold misses remain: one per 32-byte line per stream.
    assert!(after.cache.miss_rate() < 0.26);
}

#[test]
fn figure2_intra_padding_restores_column_reuse() {
    // Figure 2: a column size that is a multiple of the cache size makes
    // columns of A conflict; intra-variable padding fixes the layout.
    let n = 2048i64; // 2048 doubles = 16 KiB = exactly the cache
    let mut b = Program::builder("stencil");
    let a = b.add_array(ArrayBuilder::new("A", [n, 8]));
    let bb = b.add_array(ArrayBuilder::new("B", [n, 8]));
    b.push(Stmt::loop_nest(
        [Loop::new("i", 2, 7), Loop::new("j", 2, n - 1)],
        vec![Stmt::refs(vec![
            a.at([Subscript::var_offset("j", -1), Subscript::var("i")]),
            a.at([Subscript::var("j"), Subscript::var_offset("i", -1)]),
            a.at([Subscript::var_offset("j", 1), Subscript::var("i")]),
            a.at([Subscript::var("j"), Subscript::var_offset("i", 1)]),
            bb.at([Subscript::var("j"), Subscript::var("i")]).write(),
        ])],
    ));
    let p = b.build().expect("valid");
    let cache = CacheConfig::paper_base();

    let outcome = Pad::new(padding_config_for(&cache)).run(&p);
    assert!(
        outcome.layout.intra_pad_elements(a) > 0,
        "{:?}",
        outcome.events
    );

    let before = simulate_program(&p, &DataLayout::original(&p), &cache).miss_rate();
    let after = simulate_program(&p, &outcome.layout, &cache).miss_rate();
    assert!(after < before / 2.0, "before={before} after={after}");
}

#[test]
fn padlite_and_pad_both_rescue_the_suite_at_small_scale() {
    // A scaled-down version of Figure 8 that runs fast in debug builds:
    // small kernels on a small cache. Padding must never lose badly, and
    // must win overall.
    let cache = CacheConfig::direct_mapped(2048, 32);
    let programs = [
        rivera_padding::kernels::jacobi::spec(128),
        rivera_padding::kernels::expl::spec(96),
        rivera_padding::kernels::shal::spec(95),
        rivera_padding::kernels::dgefa::spec_steps(96, 8),
        rivera_padding::kernels::chol::spec_steps(96, 48),
        rivera_padding::kernels::adi::spec(128),
    ];
    let mut orig_total = 0.0;
    let mut lite_total = 0.0;
    let mut pad_total = 0.0;
    for p in &programs {
        let config = padding_config_for(&cache);
        let orig = simulate_program(p, &DataLayout::original(p), &cache).miss_rate_percent();
        let lite = simulate_program(p, &PadLite::new(config.clone()).run(p).layout, &cache)
            .miss_rate_percent();
        let pad = simulate_program(p, &Pad::new(config).run(p).layout, &cache).miss_rate_percent();
        orig_total += orig;
        lite_total += lite;
        pad_total += pad;
        // The paper observes occasional small regressions (EXPL); allow
        // a few points of slack per program but no catastrophes.
        assert!(
            pad <= orig + 5.0,
            "{}: orig={orig:.1} pad={pad:.1}",
            p.name()
        );
        assert!(
            lite <= orig + 5.0,
            "{}: orig={orig:.1} lite={lite:.1}",
            p.name()
        );
    }
    assert!(pad_total < orig_total, "PAD should win overall");
    assert!(lite_total < orig_total, "PADLITE should win overall");
    assert!(
        pad_total <= lite_total + 3.0,
        "PAD should be at least as good as PADLITE"
    );
}

#[test]
fn multilevel_configuration_clears_both_levels() {
    use rivera_padding::core::CacheParams;
    let (p, _, bb) = jacobi_elements(512);
    let config = rivera_padding::core::PaddingConfig::multi_level(vec![
        CacheParams::new(1024, 4).expect("valid"),
        CacheParams::new(8192, 16).expect("valid"),
    ])
    .expect("two levels");
    let outcome = Pad::new(config.clone()).run(&p);
    assert!(find_severe_conflicts(&p, &outcome.layout, &config).is_empty());
    // Both levels individually clear too.
    for level in config.levels() {
        let single =
            rivera_padding::core::PaddingConfig::multi_level(vec![*level]).expect("one level");
        assert!(
            find_severe_conflicts(&p, &outcome.layout, &single).is_empty(),
            "level {level:?} still conflicts"
        );
    }
    let _ = bb;
}
