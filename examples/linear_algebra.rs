//! Linear-algebra padding: `FirstConflict`, `LINPAD1` vs `LINPAD2`, and
//! their effect on Cholesky factorization.
//!
//! ```text
//! cargo run --release --example linear_algebra
//! ```
//!
//! Section 2.3 of the paper: in codes like Cholesky and LU, columns `j`
//! apart are accessed together for many different `j`, so the *whole
//! distribution* of column spacings matters. `FirstConflict` (a
//! generalized Euclidean algorithm) finds the first column distance that
//! aliases, and `LINPAD2` grows the column until that distance is
//! comfortably large.

use rivera_padding::cache_sim::CacheConfig;
use rivera_padding::core::{
    first_conflict, j_star, DataLayout, InterHeuristic, IntraHeuristic, LinAlgHeuristic,
    PaddingPipeline,
};
use rivera_padding::kernels::chol;
use rivera_padding::trace::{padding_config_for, simulate_program};

fn main() {
    let cache = CacheConfig::paper_base();
    let (cs, ls) = (cache.size(), cache.line_size());

    println!("FirstConflict on a {cs}-byte cache with {ls}-byte lines:");
    for col_elems in [256i64, 273, 384, 512, 516] {
        let col_bytes = (col_elems * 8) as u64;
        let j = first_conflict(cs, col_bytes, ls);
        let js = j_star(129, 256, cs, ls);
        println!(
            "  column of {col_elems:>4} doubles: first conflicting distance j = {j:>4}  \
             ({} j* = {js})",
            if j < js {
                "REJECTED by LINPAD2,"
            } else {
                "accepted,"
            }
        );
    }

    println!("\nCholesky miss rates at a few problem sizes (16K direct-mapped):");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "n", "orig %", "linpad1 %", "linpad2 %"
    );
    for n in [256i64, 320, 384, 448, 512] {
        let program = chol::spec(n);
        let config = padding_config_for(&cache);
        let orig =
            simulate_program(&program, &DataLayout::original(&program), &cache).miss_rate_percent();
        let mut rates = Vec::new();
        for heuristic in [LinAlgHeuristic::LinPad1, LinAlgHeuristic::LinPad2] {
            let layout = PaddingPipeline::custom(
                IntraHeuristic::None,
                heuristic,
                InterHeuristic::Lite,
                config.clone(),
            )
            .run(&program)
            .layout;
            rates.push(simulate_program(&program, &layout, &cache).miss_rate_percent());
        }
        println!("{n:>6} {orig:>10.1} {:>10.1} {:>10.1}", rates[0], rates[1]);
    }
    println!("\n(The paper's Figure 17: LINPAD1 catches the power-of-two sizes,");
    println!(" LINPAD2 also removes the subtler near-aliasing column sizes.)");
}
