//! Cache explorer: one kernel, many cache organizations.
//!
//! ```text
//! cargo run --release --example cache_explorer [kernel-name] [n]
//! ```
//!
//! Simulates a suite kernel (default `SHAL512` at a reduced n = 256)
//! across cache sizes and associativities with three-C miss
//! classification, for the original and the PAD layout — the experiment
//! space of the paper's Figures 9–11 on one program.

use rivera_padding::cache_sim::CacheConfig;
use rivera_padding::core::{DataLayout, Pad};
use rivera_padding::kernels::suite;
use rivera_padding::trace::{padding_config_for, simulate_classified};

fn main() {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "SHAL512".to_string());
    let kernel = suite()
        .into_iter()
        .find(|k| k.name.eq_ignore_ascii_case(&wanted))
        .unwrap_or_else(|| {
            eprintln!("unknown kernel {wanted}; available:");
            for k in suite() {
                eprintln!("  {}", k.name);
            }
            std::process::exit(1);
        });
    let n = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| kernel.default_n.min(256));
    let program = (kernel.spec)(n);
    println!("{} at n = {n} — {}\n", kernel.name, kernel.description);
    println!(
        "{:>8} {:>6} | {:>8} {:>10} | {:>8} {:>10}",
        "size", "ways", "orig %", "conflict %", "pad %", "conflict %"
    );

    for size_kb in [2u64, 4, 8, 16] {
        for ways in [1u32, 2, 4, 16] {
            let cache = CacheConfig::set_associative(size_kb * 1024, 32, ways);
            let padded = Pad::new(padding_config_for(&cache)).run(&program).layout;
            let orig = simulate_classified(&program, &DataLayout::original(&program), &cache);
            let pad = simulate_classified(&program, &padded, &cache);
            println!(
                "{:>7}K {:>6} | {:>8.1} {:>10.1} | {:>8.1} {:>10.1}",
                size_kb,
                ways,
                orig.cache.miss_rate_percent(),
                orig.conflict_rate_percent(),
                pad.cache.miss_rate_percent(),
                pad.conflict_rate_percent(),
            );
        }
    }
}
