//! The extension modules: analytic miss estimation and conflict-free
//! tile selection.
//!
//! ```text
//! cargo run --release --example estimate_and_tile
//! ```
//!
//! 1. `estimate_miss_rate` is the "simplified cache miss equations" model
//!    the paper positions itself against: it predicts miss rates at
//!    compile time (spatial + severe-conflict misses, no capacity), and
//!    ranks layouts the same way the simulator does — in microseconds.
//! 2. `select_tile` is Coleman & McKinley's Euclidean tile-size
//!    selection, the sibling application of the paper's `FirstConflict`
//!    machinery: it picks the largest tile of an array's columns that
//!    maps to disjoint cache locations.

use rivera_padding::cache_sim::CacheConfig;
use rivera_padding::core::{estimate_miss_rate, select_tile, DataLayout, Pad};
use rivera_padding::kernels::jacobi;
use rivera_padding::trace::{padding_config_for, simulate_program};

fn main() {
    let cache = CacheConfig::direct_mapped(2048, 32);
    let config = padding_config_for(&cache);

    println!("-- analytic model vs simulation (JACOBI, 2K direct-mapped) --");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "n", "est orig", "sim orig", "est pad", "sim pad"
    );
    for n in [96i64, 128, 160, 192, 256] {
        let p = jacobi::spec(n);
        let original = DataLayout::original(&p);
        let padded = Pad::new(config.clone()).run(&p).layout;
        println!(
            "{n:>6} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            estimate_miss_rate(&p, &original, &config).miss_rate_percent(),
            simulate_program(&p, &original, &cache).miss_rate_percent(),
            estimate_miss_rate(&p, &padded, &config).miss_rate_percent(),
            simulate_program(&p, &padded, &cache).miss_rate_percent(),
        );
    }

    println!("\n-- conflict-free tiles for a 16K cache (8-byte elements) --");
    println!(
        "{:>10} {:>8} {:>8} {:>10}",
        "column", "rows", "cols", "tile KB"
    );
    for col in [250i64, 256, 273, 300, 384, 512, 520] {
        let t = select_tile(16 * 1024, col, 8, col, col);
        println!(
            "{col:>10} {:>8} {:>8} {:>10.1}",
            t.rows,
            t.cols,
            (t.elements() * 8) as f64 / 1024.0
        );
    }
    println!("\n(powers of two force tall, narrow tiles — the same pathology");
    println!(" LINPAD2 removes by changing the column size itself)");
}
