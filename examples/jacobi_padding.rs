//! The paper's Section 3 walkthrough, executed: JACOBI under three
//! parameter sets, comparing what PADLITE and PAD decide.
//!
//! ```text
//! cargo run --release --example jacobi_padding
//! ```
//!
//! Uses 1-byte elements so that the numbers printed match the paper's
//! element-unit discussion exactly (N = 512 / Cs = 2048, N = 512 /
//! Cs = 1024, N = 934 / Cs = 1024, all with Ls = 4).

use rivera_padding::core::{
    find_severe_conflicts, InterHeuristic, IntraHeuristic, LinAlgHeuristic, PaddingConfig,
    PaddingPipeline,
};
use rivera_padding::ir::{ArrayBuilder, Loop, Program, Stmt, Subscript};

fn jacobi_elements(n: i64) -> Program {
    let mut b = Program::builder("jacobi");
    let a = b.add_array(ArrayBuilder::new("A", [n, n]).elem_size(1));
    let bb = b.add_array(ArrayBuilder::new("B", [n, n]).elem_size(1));
    b.push(Stmt::loop_nest(
        [Loop::new("i", 2, n - 1), Loop::new("j", 2, n - 1)],
        vec![Stmt::refs(vec![
            a.at([Subscript::var_offset("j", -1), Subscript::var("i")]),
            a.at([Subscript::var("j"), Subscript::var_offset("i", -1)]),
            a.at([Subscript::var_offset("j", 1), Subscript::var("i")]),
            a.at([Subscript::var("j"), Subscript::var_offset("i", 1)]),
            bb.at([Subscript::var("j"), Subscript::var("i")]).write(),
        ])],
    ));
    b.push(Stmt::loop_nest(
        [Loop::new("i", 2, n - 1), Loop::new("j", 2, n - 1)],
        vec![Stmt::refs(vec![
            bb.at([Subscript::var("j"), Subscript::var("i")]),
            a.at([Subscript::var("j"), Subscript::var("i")]).write(),
        ])],
    ));
    b.build().expect("JACOBI is well-formed")
}

fn main() {
    for (n, cs) in [(512, 2048u64), (512, 1024), (934, 1024)] {
        println!("=== N = {n}, Cs = {cs} elements, Ls = 4 ===");
        let program = jacobi_elements(n);
        let config = PaddingConfig::new(cs, 4).expect("valid parameters");

        // The paper's walkthrough disables the linear-algebra heuristics
        // "for simplicity"; mirror that for PADLITE.
        let padlite = PaddingPipeline::custom(
            IntraHeuristic::Lite,
            LinAlgHeuristic::None,
            InterHeuristic::Lite,
            config.clone(),
        );
        let pad = PaddingPipeline::pad(config.clone());

        for (label, pipeline) in [("PADLITE", padlite), ("PAD", pad)] {
            let outcome = pipeline.run(&program);
            let ids: Vec<_> = program.arrays_with_ids().map(|(id, _)| id).collect();
            print!(
                "  {label:>8}: A column {:>4}, B column {:>4}, B base {:>8}",
                outcome.layout.column_size(ids[0]),
                outcome.layout.column_size(ids[1]),
                outcome.layout.base_addr(ids[1]),
            );
            let leftover = find_severe_conflicts(&program, &outcome.layout, &config);
            if leftover.is_empty() {
                println!("  -> all severe conflicts eliminated");
            } else {
                println!("  -> {} severe conflicts REMAIN", leftover.len());
            }
        }
        println!();
    }
}
