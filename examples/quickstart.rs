//! Quickstart: analyze a program, pad it, and measure the difference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's JACOBI kernel at a pathological power-of-two size,
//! shows the severe conflicts the analysis finds, applies PAD, and
//! simulates both layouts through the paper's base cache (16 KiB
//! direct-mapped, 32 B lines).

use rivera_padding::cache_sim::CacheConfig;
use rivera_padding::core::{find_severe_conflicts, DataLayout, Pad};
use rivera_padding::kernels::jacobi;
use rivera_padding::trace::{padding_config_for, simulate_classified};

fn main() {
    let n = 512;
    let program = jacobi::spec(n);
    let cache = CacheConfig::paper_base();
    let config = padding_config_for(&cache);

    println!("{program}");

    // 1. Diagnose: which reference pairs conflict on every iteration?
    let original = DataLayout::original(&program);
    let conflicts = find_severe_conflicts(&program, &original, &config);
    println!(
        "severe conflicts under the original layout: {}",
        conflicts.len()
    );
    for c in conflicts.iter().take(5) {
        println!(
            "  {} vs {}  (distance {} B, {} B on the cache)",
            c.refs.0, c.refs.1, c.distance_bytes, c.circular_distance
        );
    }

    // 2. Transform: run the PAD algorithm.
    let outcome = Pad::new(config.clone()).run(&program);
    println!("\npadding decisions:");
    for event in &outcome.events {
        println!("  {event}");
    }
    println!("{}", outcome.stats);
    assert!(find_severe_conflicts(&program, &outcome.layout, &config).is_empty());

    // 3. Measure: simulate both layouts.
    println!("\n{}", cache);
    for (label, layout) in [("original", &original), ("padded", &outcome.layout)] {
        let stats = simulate_classified(&program, layout, &cache);
        let offsets: Vec<String> = program
            .arrays_with_ids()
            .map(|(id, spec)| format!("{} @ +{}", spec.name(), layout.base_addr(id) % cache.size()))
            .collect();
        println!(
            "  {label:>8}: miss rate {:5.1}%  ({} conflict misses of {} misses)  [{}]",
            stats.cache.miss_rate_percent(),
            stats.conflict,
            stats.cache.misses,
            offsets.join(", "),
        );
    }
    println!("\n(the bracketed offsets are each base address mod the cache size:");
    println!(" originally A and B collide at +0; PAD nudges B off the alignment)");
}
