//! Bring your own loop nest: declare a program through the IR builder,
//! let PAD lay it out, and execute it natively under both layouts.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```
//!
//! This is the adoption path for code outside the bundled suite: describe
//! the arrays and the reference pattern of your hot loops, get back a
//! layout (base offsets + leading-dimension sizes) to allocate with, and
//! — if you build on [`rivera_padding::kernels::Workspace`] — run the
//! computation against it directly.

use rivera_padding::cache_sim::CacheConfig;
use rivera_padding::core::{DataLayout, Pad};
use rivera_padding::ir::{ArrayBuilder, Loop, Program, Stmt, Subscript};
use rivera_padding::kernels::Workspace;
use rivera_padding::trace::{padding_config_for, simulate_program};

/// A wave-equation leapfrog: three conforming grids ping-ponged by a
/// five-point stencil. Classic severe-conflict territory at 2^k sizes.
fn wave(n: i64) -> Program {
    let mut b = Program::builder("wave");
    let prev = b.add_array(ArrayBuilder::new("PREV", [n, n]));
    let cur = b.add_array(ArrayBuilder::new("CUR", [n, n]));
    let next = b.add_array(ArrayBuilder::new("NEXT", [n, n]));
    b.push(Stmt::loop_nest(
        [Loop::new("i", 2, n - 1), Loop::new("j", 2, n - 1)],
        vec![Stmt::refs(vec![
            cur.at([Subscript::var_offset("j", -1), Subscript::var("i")]),
            cur.at([Subscript::var_offset("j", 1), Subscript::var("i")]),
            cur.at([Subscript::var("j"), Subscript::var_offset("i", -1)]),
            cur.at([Subscript::var("j"), Subscript::var_offset("i", 1)]),
            cur.at([Subscript::var("j"), Subscript::var("i")]),
            prev.at([Subscript::var("j"), Subscript::var("i")]),
            next.at([Subscript::var("j"), Subscript::var("i")]).write(),
        ])],
    ));
    b.build().expect("wave is well-formed")
}

fn step(ws: &mut Workspace, n: i64) {
    let prev = ws.array("PREV");
    let cur = ws.array("CUR");
    let next = ws.array("NEXT");
    let (p0, c0, x0) = (ws.base_word(prev), ws.base_word(cur), ws.base_word(next));
    let (pc, cc, xc) = (ws.strides(prev)[1], ws.strides(cur)[1], ws.strides(next)[1]);
    let n = n as usize;
    let buf = ws.words_mut();
    for i in 2..n {
        for j in 2..n {
            let c = c0 + (j - 1) + (i - 1) * cc;
            let lap = buf[c - 1] + buf[c + 1] + buf[c - cc] + buf[c + cc] - 4.0 * buf[c];
            buf[x0 + (j - 1) + (i - 1) * xc] =
                2.0 * buf[c] - buf[p0 + (j - 1) + (i - 1) * pc] + 0.2 * lap;
        }
    }
}

fn main() {
    let n = 512;
    let program = wave(n);
    let cache = CacheConfig::paper_base();

    let outcome = Pad::new(padding_config_for(&cache)).run(&program);
    println!("layout chosen by PAD:\n{}", outcome.layout);

    for (label, layout) in [
        ("original", DataLayout::original(&program)),
        ("padded", outcome.layout),
    ] {
        // Predicted miss rate for one stencil sweep...
        let predicted = simulate_program(&program, &layout, &cache).miss_rate_percent();
        // ...and a real native execution under that layout.
        let mut ws = Workspace::new(&program, layout);
        let cur = ws.array("CUR");
        ws.set(cur, &[n / 2, n / 2], 1.0);
        let start = std::time::Instant::now();
        for _ in 0..20 {
            step(&mut ws, n);
        }
        let elapsed = start.elapsed();
        println!(
            "{label:>9}: simulated miss rate {predicted:5.1}%, 20 native steps in {elapsed:?}"
        );
    }
}
