//! Reproduction of Rivera & Tseng, *Data Transformations for Eliminating
//! Conflict Misses* (PLDI 1998).
//!
//! This facade crate re-exports the workspace's component crates under one
//! roof and hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`).
//!
//! | Module        | Crate           | Role |
//! |---------------|-----------------|------|
//! | [`ir`]        | `pad-ir`        | loop-nest program representation |
//! | [`cache_sim`] | `pad-cache-sim` | set-associative cache simulator |
//! | [`core`]      | `pad-core`      | the padding heuristics (PADLITE / PAD / LINPAD1/2) |
//! | [`trace`]     | `pad-trace`     | address-trace generation and trace-driven simulation |
//! | [`kernels`]   | `pad-kernels`   | the benchmark kernel suite |
//! | [`report`]    | `pad-report`    | plain-text tables / CSV for the harness |
//!
//! # Quickstart
//!
//! ```
//! use rivera_padding::core::{DataLayout, Pad};
//! use rivera_padding::kernels;
//! use rivera_padding::trace::{padding_config_for, simulate_program};
//! use rivera_padding::cache_sim::CacheConfig;
//!
//! // The JACOBI kernel at a pathological (power-of-two) problem size.
//! let program = kernels::jacobi::spec(512);
//! let cache = CacheConfig::paper_base();
//!
//! // Original layout vs the PAD-optimized layout.
//! let original = DataLayout::original(&program);
//! let padded = Pad::new(padding_config_for(&cache)).run(&program).layout;
//!
//! let before = simulate_program(&program, &original, &cache);
//! let after = simulate_program(&program, &padded, &cache);
//! assert!(after.miss_rate() < before.miss_rate());
//! ```

pub use pad_cache_sim as cache_sim;
pub use pad_core as core;
pub use pad_ir as ir;
pub use pad_kernels as kernels;
pub use pad_report as report;
pub use pad_trace as trace;
