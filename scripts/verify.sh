#!/usr/bin/env sh
# Pre-merge gate: tier-1 verify plus the fast engine-equivalence tests.
#
# Everything here runs offline — the workspace has no external
# dependencies, so a vendored registry or network access is never needed.
# Run from the repository root:
#
#   ./scripts/verify.sh
#
# Set VERIFY_SKIP_BUILD=1 to reuse existing build artifacts (e.g. when
# iterating on tests only, or in CI right after a build step). Set
# PAD_QUICK=1 for the trimmed workloads the throughput and telemetry
# gates use in CI.
#
# Every gate runs even after an earlier one fails. The run ends with a
# machine-readable summary, one line per gate:
#
#   GATE <name> <pass|fail|skip> <seconds>
#
# and exits nonzero — listing the failing gates — if any gate failed.
set -u

cd "$(dirname "$0")/.."

SUMMARY=""
FAILED=0

# run_gate <name> <command...> — runs the command, times it, and files
# the outcome under <name> in the end-of-run summary. Multi-step gates
# go through a helper function whose body is one `&&` chain: `set -e`
# is inert inside an `if` condition, so an unchained middle step could
# otherwise fail without failing the gate.
run_gate() {
    gate_name="$1"
    shift
    echo "== gate: $gate_name =="
    gate_start=$(date +%s)
    if "$@"; then
        gate_status=pass
    else
        gate_status=fail
        FAILED=1
    fi
    SUMMARY="${SUMMARY}GATE $gate_name $gate_status $(($(date +%s) - gate_start))
"
}

skip_gate() {
    echo "== gate: $1 (skipped: $2) =="
    SUMMARY="${SUMMARY}GATE $1 skip 0
"
}

if [ "${VERIFY_SKIP_BUILD:-0}" != "1" ]; then
    run_gate build cargo build --workspace --release
else
    skip_gate build "VERIFY_SKIP_BUILD=1"
fi

run_gate test cargo test --workspace -q

run_gate clippy cargo clippy --workspace --all-targets -- -D warnings

# Isolation, retries, resume, determinism under injected faults.
run_gate fault-injection cargo test -q -p pad-bench --test fault_injection

# Flat cache vs seed model, lane kernels, batched vs per-config.
gate_engine_equivalence() {
    cargo test -q -p pad-cache-sim --test flat_equivalence &&
        cargo test -q -p pad-cache-sim --test lane_differential &&
        cargo test -q -p pad-trace batch
}
run_gate engine-equivalence gate_engine_equivalence

# Reuse engine: differential vs fully-assoc sim, 3C bit-identity, MRC
# goldens.
gate_reuse() {
    cargo test -q -p pad-cache-sim --test reuse_differential &&
        cargo test -q -p pad-bench --test mrc_golden
}
run_gate reuse gate_reuse

# Trace ingestion: typed truncation/garbage errors, lane-boundary
# replay, kernel-trace bit-identity, SHARDS-sampled MRC error bound.
run_gate trace-ingest cargo test -q -p pad-trace-ingest --test ingest_edge

# padtool record/ingest roundtrip, in-process and as real processes.
run_gate cli-roundtrip cargo test -q -p pad-cli --test cli

# Tables + merged histograms identical at any pool width.
run_gate determinism cargo test -q -p pad-bench --test determinism

# Engine agreement + throughput gates (quick smoke workload).
run_gate throughput cargo run --release -q -p pad-bench --bin bench_simulator -- --quick

# Telemetry: off-mode overhead gate + events-mode determinism.
gate_telemetry() {
    PAD_QUICK=1 cargo test -q -p pad-bench --test telemetry &&
        PAD_QUICK=1 cargo run --release -q -p pad-bench --bin bench_telemetry
}
run_gate telemetry gate_telemetry

# Live metrics: metrics-on engine overhead < 2%, simulation results and
# tables byte-identical in both metrics states, Prometheus exposition
# byte-stable (written to results/metrics.prom for the CI artifact).
gate_metrics_overhead() {
    PAD_QUICK=1 cargo run --release -q -p pad-bench --bin bench_telemetry -- --metrics &&
        test -s results/metrics.prom
}
run_gate metrics-overhead gate_metrics_overhead

# Advisor: fault-injection matrix (panics, deadlines, wire corruption,
# degradation) and admission control.
gate_advisor_faults() {
    timeout 300 cargo test -q -p pad-advisor --test fault_injection &&
        timeout 300 cargo test -q -p pad-advisor --test admission
}
run_gate advisor-faults gate_advisor_faults

# Advisor: kill-and-restart replay (in-process torn journal + real
# SIGKILL against the padtool binary).
gate_advisor_restart() {
    timeout 300 cargo test -q -p pad-advisor --test kill_restart &&
        timeout 300 cargo test -q -p pad-cli --test serve_process
}
run_gate advisor-restart gate_advisor_restart

# Search optimizer: fast/exact rank-concordance differential plus the
# property suite (never-worse, seeded determinism, move-order
# independence) and fault equivalence.
gate_search_differential() {
    cargo test -q -p pad-search --test search_differential &&
        cargo test -q -p pad-search --test search_properties &&
        cargo test -q -p pad-search --test search_faults
}
run_gate search-differential gate_search_differential

# Search frontier goldens: JACOBI/EXPL cost/quality CSVs byte-pinned
# under the environment-independent golden config (PAD_QUICK immune).
run_gate fig-search-golden cargo test -q -p pad-search --test search_golden

# Telemetry events mode must leave the fig08 CSV byte-identical.
telemetry_tmp="$(mktemp -d)"
trap 'rm -rf "$telemetry_tmp"' EXIT
gate_telemetry_csv() {
    PAD_QUICK=1 RIVERA_TELEMETRY=off \
        cargo run --release -q -p pad-bench --bin fig08 &&
        cp results/fig08.csv "$telemetry_tmp/fig08.off.csv" &&
        PAD_QUICK=1 RIVERA_TELEMETRY=events \
            RIVERA_TRACE_OUT="$telemetry_tmp/trace.json" \
            cargo run --release -q -p pad-bench --bin fig08 &&
        cmp results/fig08.csv "$telemetry_tmp/fig08.off.csv" &&
        test -s "$telemetry_tmp/trace.json" &&
        test -s "$telemetry_tmp/trace.ndjson"
}
run_gate telemetry-csv gate_telemetry_csv

echo ""
echo "== verify summary =="
printf '%s' "$SUMMARY"
if [ "$FAILED" -ne 0 ]; then
    echo "verify: FAILED"
    printf '%s' "$SUMMARY" | awk '$3 == "fail" { print "  failing gate: " $2 }'
    exit 1
fi
echo "verify: OK"
