#!/usr/bin/env sh
# Pre-merge gate: tier-1 verify plus the fast engine-equivalence tests.
#
# Everything here runs offline — the workspace has no external
# dependencies, so a vendored registry or network access is never needed.
# Run from the repository root:
#
#   ./scripts/verify.sh
#
# Set VERIFY_SKIP_BUILD=1 to reuse existing build artifacts (e.g. when
# iterating on tests only).
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
if [ "${VERIFY_SKIP_BUILD:-0}" != "1" ]; then
    cargo build --workspace --release
fi

echo "== tier-1: cargo test -q =="
cargo test --workspace -q

echo "== lint: cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fault injection (isolation, retries, resume, determinism) =="
cargo test -q -p pad-bench --test fault_injection

echo "== engine equivalence (flat cache vs seed model, batched vs per-config) =="
cargo test -q -p pad-cache-sim --test flat_equivalence
cargo test -q -p pad-cache-sim --test lane_differential
cargo test -q -p pad-trace batch

echo "== reuse engine (differential vs fully-assoc sim, 3C bit-identity, MRC goldens) =="
cargo test -q -p pad-cache-sim --test reuse_differential
cargo test -q -p pad-bench --test mrc_golden

echo "== parallel determinism (tables + merged histograms identical at any pool width) =="
cargo test -q -p pad-bench --test determinism

echo "== engine agreement + throughput gates (quick smoke workload) =="
cargo run --release -q -p pad-bench --bin bench_simulator -- --quick

echo "== telemetry: off-mode overhead gate + events-mode determinism (in-process) =="
PAD_QUICK=1 cargo test -q -p pad-bench --test telemetry
PAD_QUICK=1 cargo run --release -q -p pad-bench --bin bench_telemetry

echo "== advisor: fault-injection matrix (panics, deadlines, wire corruption, degradation) =="
timeout 300 cargo test -q -p pad-advisor --test fault_injection
timeout 300 cargo test -q -p pad-advisor --test admission

echo "== advisor: kill-and-restart replay (in-process torn journal + real SIGKILL) =="
timeout 300 cargo test -q -p pad-advisor --test kill_restart
timeout 300 cargo test -q -p pad-cli --test serve_process

echo "== telemetry: events mode leaves the fig08 CSV byte-identical =="
telemetry_tmp="$(mktemp -d)"
trap 'rm -rf "$telemetry_tmp"' EXIT
PAD_QUICK=1 RIVERA_TELEMETRY=off \
    cargo run --release -q -p pad-bench --bin fig08
cp results/fig08.csv "$telemetry_tmp/fig08.off.csv"
PAD_QUICK=1 RIVERA_TELEMETRY=events \
    RIVERA_TRACE_OUT="$telemetry_tmp/trace.json" \
    cargo run --release -q -p pad-bench --bin fig08
cmp results/fig08.csv "$telemetry_tmp/fig08.off.csv"
test -s "$telemetry_tmp/trace.json"
test -s "$telemetry_tmp/trace.ndjson"

echo "verify: OK"
