//! Golden pins for the search experiment: the exact frontier CSVs for
//! JACOBI and EXPL under [`golden_config`] — byte-for-byte, the same
//! artifacts `fig_search` writes to
//! `results/fig_search_frontier_{jacobi,expl}.csv`.
//!
//! The pinned bytes change only if the objective (analytic model or
//! pressure term), the move space, a strategy, the promotion policy, or
//! the cache simulator changes behaviour — any of which should be a
//! deliberate, reviewed event. The golden parameterization is fixed in
//! code (`golden_config`), so `RIVERA_SEARCH_*` and `PAD_QUICK` cannot
//! perturb these bytes.
//!
//! [`golden_config`]: pad_search::experiment::golden_config

use pad_report::csv_string;
use pad_search::experiment::{golden_cache, golden_config, kernel_frontier_table, GOLDEN_N};

fn frontier(spec: fn(i64) -> pad_ir::Program) -> String {
    let program = spec(GOLDEN_N);
    csv_string(&kernel_frontier_table(
        &program,
        &golden_cache(),
        &golden_config(),
    ))
}

#[test]
fn jacobi_search_frontier_is_pinned() {
    assert_eq!(
        frontier(pad_kernels::jacobi::spec),
        "strategy,fast evals,exact misses,reduction %\n\
         orig,0,16399,0.0\n\
         padlite,0,8836,46.1\n\
         pad,0,4976,69.7\n\
         beam,1,16399,0.0\n\
         beam,2,8836,46.1\n\
         beam,3,4976,69.7\n\
         beam,27,4332,73.6\n\
         beam,59,4204,74.4\n\
         beam,91,4062,75.2\n\
         beam,154,4032,75.4\n\
         anneal,1,16399,0.0\n\
         anneal,2,8836,46.1\n\
         anneal,3,4976,69.7\n\
         anneal,5,4423,73.0\n\
         anneal,13,4000,75.6\n"
    );
}

#[test]
fn expl_search_frontier_is_pinned() {
    assert_eq!(
        frontier(pad_kernels::expl::spec),
        "strategy,fast evals,exact misses,reduction %\n\
         orig,0,131548,0.0\n\
         padlite,0,54322,58.7\n\
         pad,0,24807,81.1\n\
         beam,1,131548,0.0\n\
         beam,2,54322,58.7\n\
         beam,3,24807,81.1\n\
         beam,135,24803,81.1\n\
         anneal,1,131548,0.0\n\
         anneal,2,54322,58.7\n\
         anneal,3,24807,81.1\n\
         anneal,4,24169,81.6\n\
         anneal,10,24139,81.7\n\
         anneal,11,24106,81.7\n\
         anneal,15,23981,81.8\n\
         anneal,42,18391,86.0\n\
         anneal,193,17945,86.4\n"
    );
}

#[test]
fn golden_frontiers_beat_both_heuristics() {
    // The checked-in frontiers are also the acceptance evidence: on both
    // golden kernels the search ends strictly below PADLITE and PAD.
    for spec in [
        pad_kernels::jacobi::spec as fn(i64) -> pad_ir::Program,
        pad_kernels::expl::spec,
    ] {
        let csv = frontier(spec);
        let exact = |prefix: &str| -> Vec<u64> {
            csv.lines()
                .filter(|l| l.starts_with(prefix))
                .map(|l| l.split(',').nth(2).expect("misses column").parse().unwrap())
                .collect()
        };
        let padlite = exact("padlite")[0];
        let pad = exact("pad,")[0];
        let searched = exact("beam")
            .into_iter()
            .chain(exact("anneal"))
            .min()
            .expect("search rows exist");
        assert!(
            searched < padlite.min(pad),
            "golden frontier must end strictly below both heuristics"
        );
    }
}
