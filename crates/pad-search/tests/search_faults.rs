//! Fault-injection suite: a panicking exact confirmation is a counted
//! discard, never a crash, a hang, or a different search.
//!
//! The design invariant under test: strategies steer on the fast rung
//! only, and exact confirmations are sequenced deterministically whether
//! they run, panic, or are skipped. A faulted run must therefore equal a
//! clean run minus exactly the faulted candidates — and be
//! byte-identical to a run that *skips* those same sequence numbers.

use std::collections::BTreeSet;

use pad_bench::faults::FaultPlan;
use pad_cache_sim::CacheConfig;
use pad_ir::Program;
use pad_search::{search_with, SearchConfig, SearchHooks, SearchResult, StrategyKind};

fn program() -> Program {
    pad_kernels::jacobi::spec(40)
}

fn config(strategy: StrategyKind) -> SearchConfig {
    SearchConfig {
        strategy,
        budget: 200,
        seed: 0xFA_017,
        beam_width: 4,
        threads: 1,
        confirm_exact: true,
    }
}

fn run(strategy: StrategyKind, hooks: SearchHooks) -> SearchResult {
    search_with(
        &program(),
        &CacheConfig::direct_mapped(2048, 32),
        &config(strategy),
        hooks,
    )
}

/// Everything a run reports, as comparable bytes.
fn fingerprint(r: &SearchResult) -> String {
    format!(
        "{} {:?} {:?} {:?} {:?} {} {} {}",
        r.strategy,
        r.best.vector,
        r.best_exact,
        r.promotions,
        r.frontier,
        r.fast_evals,
        r.exact_evals,
        r.discarded
    )
}

#[test]
fn faulted_confirmation_equals_clean_run_minus_the_candidate() {
    for strategy in [StrategyKind::Beam, StrategyKind::Anneal] {
        let clean = run(strategy, SearchHooks::default());
        assert_eq!(clean.discarded, 0, "clean run must not discard");
        let best = clean.best_exact.expect("clean run confirms exactly");

        // Fault the confirmation of the winning candidate (exact
        // sequence numbers are promotion indices in a single-batch run).
        let target = clean
            .promotions
            .iter()
            .position(|p| p.exact == Some(best))
            .expect("the winner is one of the promotions");
        let faulted = run(
            strategy,
            SearchHooks {
                faults: FaultPlan::none().panic_at(target),
                ..SearchHooks::default()
            },
        );

        // Same search: the fault can only discard, never steer.
        assert_eq!(faulted.fast_evals, clean.fast_evals);
        assert_eq!(faulted.exact_evals, clean.exact_evals);
        assert_eq!(faulted.promotions.len(), clean.promotions.len());
        assert_eq!(faulted.discarded, 1, "exactly the faulted candidate");
        for (i, (f, c)) in faulted.promotions.iter().zip(&clean.promotions).enumerate() {
            assert_eq!(f.fast, c.fast, "promotion {i}: fast scores must match");
            assert_eq!(f.signature, c.signature, "promotion {i}: same candidate");
            if i == target {
                assert_eq!(f.exact, None, "the faulted confirmation is discarded");
            } else {
                assert_eq!(f.exact, c.exact, "promotion {i}: confirmation unchanged");
            }
        }

        // The final answer is the clean answer minus the discarded
        // candidate: the exact minimum over the survivors.
        let survivor_best = clean
            .promotions
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != target)
            .filter_map(|(_, p)| p.exact)
            .min()
            .expect("other promotions survive");
        assert_eq!(faulted.best_exact, Some(survivor_best));
        assert!(survivor_best >= best);
    }
}

#[test]
fn faulting_and_skipping_the_same_sequence_numbers_are_byte_identical() {
    for strategy in [StrategyKind::Beam, StrategyKind::Anneal] {
        let targets = [0usize, 2];
        let faulted = run(
            strategy,
            SearchHooks {
                faults: targets
                    .iter()
                    .fold(FaultPlan::none(), |plan, &i| plan.panic_at(i)),
                ..SearchHooks::default()
            },
        );
        let skipped = run(
            strategy,
            SearchHooks {
                skip: targets.iter().map(|&i| i as u64).collect::<BTreeSet<u64>>(),
                ..SearchHooks::default()
            },
        );
        assert_eq!(
            fingerprint(&faulted),
            fingerprint(&skipped),
            "{strategy:?}: faulting and skipping must be observationally equal"
        );
        assert_eq!(faulted.discarded, targets.len() as u64);
        assert!(
            faulted.best_exact.is_some(),
            "{strategy:?}: survivors still confirm a best"
        );
    }
}

#[test]
fn discards_are_counted_on_the_metrics_registry() {
    pad_telemetry::set_metrics_enabled(true);
    let before = pad_telemetry::registry()
        .snapshot()
        .counter("pad_search_discarded_total{strategy=\"beam\"}")
        .unwrap_or(0);
    let faulted = run(
        StrategyKind::Beam,
        SearchHooks {
            faults: FaultPlan::none().panic_at(1),
            ..SearchHooks::default()
        },
    );
    assert_eq!(faulted.discarded, 1);
    let after = pad_telemetry::registry()
        .snapshot()
        .counter("pad_search_discarded_total{strategy=\"beam\"}")
        .expect("the discard counter exists once a search ran");
    // `>`: the registry is process-global and other tests also search.
    assert!(
        after > before,
        "discard counter did not advance ({before} -> {after})"
    );
    pad_telemetry::set_metrics_enabled(false);
}
