//! Differential test: the fast rung is pinned to ground truth.
//!
//! The search trusts `estimate_miss_rate` plus the graded
//! [`conflict_pressure`] term to steer, and only promotes frontier
//! candidates to exact simulation. That division of labor is sound only
//! while the fast score actually ranks layouts the way the simulator
//! does, so this suite measures rank concordance between the two rungs
//! over every promoted candidate of real searches and fails if the
//! analytic model drifts out of agreement:
//!
//! * across the **severe-conflict scale** (original vs heuristic seeds)
//!   the rank order must agree exactly — this is the regime the paper's
//!   model is built for;
//! * across **all promoted candidates** (where differences are often
//!   sub-severe and the pressure term is the only signal) the pairwise
//!   concordance must stay above a floor on every kernel, and well
//!   above it in aggregate.
//!
//! [`conflict_pressure`]: pad_search::conflict_pressure

use pad_cache_sim::CacheConfig;
use pad_ir::Program;
use pad_search::{search, Promotion, SearchConfig, StrategyKind};

/// Kernels exercised, at a size where layouts genuinely differ.
fn kernels() -> Vec<(&'static str, Program)> {
    let n = 40;
    vec![
        ("JACOBI", pad_kernels::jacobi::spec(n)),
        ("EXPL", pad_kernels::expl::spec(n)),
        ("SHAL", pad_kernels::shal::spec(n)),
        ("ADI", pad_kernels::adi::spec(n)),
    ]
}

fn config(strategy: StrategyKind) -> SearchConfig {
    SearchConfig {
        strategy,
        budget: 300,
        seed: 0xD1FF,
        beam_width: 4,
        threads: 1,
        confirm_exact: true,
    }
}

/// Pairwise rank concordance between fast scores and exact misses:
/// `(agreeing pairs, comparable pairs)` over pairs whose scores differ
/// on both rungs (ties carry no ordering information on either side).
fn concordance(promotions: &[Promotion]) -> (u64, u64) {
    let confirmed: Vec<(f64, u64)> = promotions
        .iter()
        .filter_map(|p| p.exact.map(|e| (p.fast, e)))
        .collect();
    let mut agree = 0;
    let mut total = 0;
    for (i, &(fa, ea)) in confirmed.iter().enumerate() {
        for &(fb, eb) in confirmed.iter().skip(i + 1) {
            if fa == fb || ea == eb {
                continue;
            }
            total += 1;
            if (fa < fb) == (ea < eb) {
                agree += 1;
            }
        }
    }
    (agree, total)
}

#[test]
fn fast_and_exact_rungs_agree_in_rank_order() {
    let cache = CacheConfig::direct_mapped(2048, 32);
    let mut agree = 0;
    let mut total = 0;
    for (name, program) in kernels() {
        for strategy in [StrategyKind::Beam, StrategyKind::Anneal] {
            let result = search(&program, &cache, &config(strategy));
            let (a, t) = concordance(&result.promotions);
            assert!(
                t >= 3,
                "{name}/{}: too few comparable promoted pairs ({t}) to pin anything",
                result.strategy
            );
            let frac = a as f64 / t as f64;
            assert!(
                frac >= 0.4,
                "{name}/{}: fast/exact concordance {frac:.2} ({a}/{t}) under the floor",
                result.strategy
            );
            eprintln!(
                "{name}/{}: concordance {a}/{t} = {frac:.2}",
                result.strategy
            );
            agree += a;
            total += t;
        }
    }
    let overall = agree as f64 / total as f64;
    eprintln!("overall concordance {agree}/{total} = {overall:.2}");
    assert!(
        overall >= 0.6,
        "aggregate fast/exact concordance {overall:.2} ({agree}/{total}) degraded"
    );
}

#[test]
fn seed_ordering_matches_ground_truth_on_the_severe_scale() {
    // The first three promotions of every run are the original, PADLITE,
    // and PAD seeds (deduped). On that scale — severe conflicts present
    // vs cleared — the analytic model must rank exactly like the
    // simulator, not merely correlate.
    let cache = CacheConfig::direct_mapped(2048, 32);
    for (name, program) in kernels() {
        let result = search(&program, &cache, &config(StrategyKind::Beam));
        let seeds: Vec<&Promotion> = result.promotions.iter().take(3).collect();
        assert!(seeds.len() >= 2, "{name}: heuristic seeds collapsed");
        let (a, t) = concordance(
            &seeds
                .iter()
                .map(|p| (*p).clone())
                .collect::<Vec<Promotion>>(),
        );
        assert_eq!(
            a, t,
            "{name}: seed fast ranking disagrees with exact simulation"
        );
    }
}
