//! Property suite: seeded random kernels and cache geometries pin the
//! search's structural guarantees.
//!
//! Three families, each over the same 100 generated cases:
//!
//! * **never worse** — the exact-confirmed best of either strategy is
//!   at most the exact misses of the original layout, PADLITE, and PAD
//!   (structural: all three are force-promoted seeds);
//! * **determinism** — annealing with one seed is byte-identical across
//!   repeated runs and across confirmation thread widths (the chain is
//!   a pure function of the seed; threads only fan the exact batch);
//! * **order independence** — beam results are bit-equal under a
//!   scrambled move list (canonical move order, all-or-nothing rounds).

use pad_bench::harness::exact_misses;
use pad_cache_sim::{CacheConfig, XorShift64Star};
use pad_core::{DataLayout, PaddingPipeline};
use pad_ir::{ArrayBuilder, Loop, Program, Stmt, Subscript};
use pad_search::{search, search_with, SearchConfig, SearchHooks, SearchResult, StrategyKind};
use pad_trace::padding_config_for;

/// Number of generated (program, cache) cases.
const CASES: u64 = 100;

/// One generated case: a small loop nest over 1–3 arrays of rank 1–2
/// plus a direct-mapped cache the arrays comfortably overflow.
fn random_case(case: u64) -> (Program, CacheConfig) {
    let mut rng = XorShift64Star::new(0x9E37_79B9 ^ (case + 1));
    let n_arrays = rng.range(1, 3) as usize;
    let mut b = Program::builder(format!("RAND{case}"));
    let mut ids = Vec::new();
    let mut min_dim = i64::MAX;
    for a in 0..n_arrays {
        let rank = rng.range(1, 2);
        let mut dims = Vec::new();
        for _ in 0..rank {
            let d = rng.range(15, 40) as i64;
            min_dim = min_dim.min(d);
            dims.push(d);
        }
        let id = b.add_array(ArrayBuilder::new(format!("A{a}"), dims.clone()));
        ids.push((id, dims));
    }

    // One 2-D nest; every array is referenced 1–3 times with stencil
    // offsets, and the last reference of the last array is the write.
    let hi = min_dim - 1;
    let mut refs = Vec::new();
    for (id, dims) in &ids {
        let n_refs = rng.range(1, 3);
        for _ in 0..n_refs {
            let o0 = rng.range(0, 2) as i64 - 1;
            let r = if dims.len() == 1 {
                id.at([Subscript::var_offset("j", o0)])
            } else {
                let o1 = rng.range(0, 2) as i64 - 1;
                id.at([
                    Subscript::var_offset("j", o0),
                    Subscript::var_offset("i", o1),
                ])
            };
            refs.push(r);
        }
    }
    let last = refs.len() - 1;
    refs[last] = refs[last].clone().write();
    b.push(Stmt::loop_nest(
        [Loop::new("i", 2, hi), Loop::new("j", 2, hi)],
        vec![Stmt::refs(refs)],
    ));
    let program = b.build().expect("generated program is well-formed");

    let size = 512u64 << rng.range(0, 3); // 512..4096
    let line = 16u64 << rng.range(0, 1); // 16 or 32
    (program, CacheConfig::direct_mapped(size, line))
}

fn config(strategy: StrategyKind, case: u64) -> SearchConfig {
    SearchConfig {
        strategy,
        budget: 100,
        seed: 0xC0FF_EE00 ^ case,
        beam_width: 4,
        threads: 1,
        confirm_exact: true,
    }
}

/// Byte-comparable fingerprint of everything a search run reports.
fn fingerprint(r: &SearchResult) -> String {
    format!(
        "{} {:?} {:?} {:?} {:?} {} {} {}",
        r.strategy,
        r.best.vector,
        r.best_exact,
        r.promotions,
        r.frontier,
        r.fast_evals,
        r.exact_evals,
        r.discarded
    )
}

#[test]
fn search_is_never_worse_than_either_heuristic() {
    for case in 0..CASES {
        let (program, cache) = random_case(case);
        let pad_config = padding_config_for(&cache);
        let orig = exact_misses(&program, &DataLayout::original(&program), &cache);
        let padlite = exact_misses(
            &program,
            &PaddingPipeline::padlite(pad_config.clone())
                .run(&program)
                .layout,
            &cache,
        );
        let pad = exact_misses(
            &program,
            &PaddingPipeline::pad(pad_config).run(&program).layout,
            &cache,
        );
        for strategy in [StrategyKind::Beam, StrategyKind::Anneal] {
            let result = search(&program, &cache, &config(strategy, case));
            let best = result
                .best_exact
                .expect("no faults injected, so the best is exact-confirmed");
            assert_eq!(
                best,
                exact_misses(&program, result.best_layout(), &cache),
                "case {case}: reported best must match direct simulation"
            );
            for (name, bound) in [("original", orig), ("padlite", padlite), ("pad", pad)] {
                assert!(
                    best <= bound,
                    "case {case} ({}): {best} misses beats {name}'s {bound}",
                    result.strategy
                );
            }
        }
    }
}

#[test]
fn annealing_is_byte_identical_across_runs_and_thread_widths() {
    for case in (0..CASES).step_by(5) {
        let (program, cache) = random_case(case);
        let cfg = config(StrategyKind::Anneal, case);
        let first = fingerprint(&search(&program, &cache, &cfg));
        let again = fingerprint(&search(&program, &cache, &cfg));
        assert_eq!(first, again, "case {case}: same seed, different run");
        let wide = SearchConfig { threads: 4, ..cfg };
        let fanned = fingerprint(&search(&program, &cache, &wide));
        assert_eq!(
            first, fanned,
            "case {case}: thread width changed the result"
        );
    }
}

#[test]
fn beam_results_are_independent_of_move_enumeration_order() {
    for case in (0..CASES).step_by(5) {
        let (program, cache) = random_case(case);
        let cfg = config(StrategyKind::Beam, case);
        let canonical = fingerprint(&search(&program, &cache, &cfg));
        for permutation in 1..=2u64 {
            let hooks = SearchHooks {
                permute_moves: Some(0xDEAD_BEEF ^ (case << 8) ^ permutation),
                ..SearchHooks::default()
            };
            let scrambled = fingerprint(&search_with(&program, &cache, &cfg, hooks));
            assert_eq!(
                canonical, scrambled,
                "case {case}: move order {permutation} changed the beam result"
            );
        }
    }
}
