//! The `fig_search` experiment: miss-reduction vs analysis-cost
//! frontiers for PADLITE / PAD / beam / annealing.
//!
//! Two artifacts land in `results/`:
//!
//! * `fig_search_suite.csv` — exact misses across the full kernel suite
//!   (at two cache geometries) for the original layout, both paper
//!   heuristics, and both search strategies, with a marker on every
//!   kernel where search strictly beats *both* heuristics;
//! * `fig_search_frontier_{jacobi,expl}.csv` — per-kernel cost/quality
//!   frontiers under the fixed [`golden_config`], Pareto-filtered
//!   through `pad_report::pareto_indices`. These two are byte-stable and
//!   pinned by the `search_golden` integration test.
//!
//! The suite sweep honors `RIVERA_SEARCH_*` and the `PAD_QUICK=1`
//! reduced candidate budget (via [`SearchConfig::from_env`]); the golden
//! frontiers deliberately do not — their whole point is that every run,
//! quick or full, produces identical bytes.

use pad_bench::harness::{
    cells_or_marker, emit, exact_misses, pct, suite_programs, RunContext, RunStatus,
};
use pad_cache_sim::CacheConfig;
use pad_core::{DataLayout, PaddingPipeline};
use pad_ir::Program;
use pad_report::{pareto_indices, Table};
use pad_trace::padding_config_for;

use crate::{search, SearchConfig, StrategyKind};

/// Problem size of the golden frontier kernels.
pub const GOLDEN_N: i64 = 64;

/// Cache geometry of the golden frontier CSVs (the paper's base cache).
pub fn golden_cache() -> CacheConfig {
    CacheConfig::paper_base()
}

/// The fixed parameterization behind the checked-in frontier CSVs:
/// environment-independent, single-threaded, small deterministic budget.
pub fn golden_config() -> SearchConfig {
    SearchConfig {
        strategy: StrategyKind::Beam,
        budget: 200,
        seed: 0x5249_5645,
        beam_width: 4,
        threads: 1,
        confirm_exact: true,
    }
}

fn reduction_percent(orig: u64, misses: u64) -> f64 {
    if orig == 0 {
        0.0
    } else {
        100.0 * (orig as f64 - misses as f64) / orig as f64
    }
}

/// One kernel's cost/quality frontier: exact misses (and reduction vs
/// the original layout) against analysis cost in fast evaluations, for
/// both heuristics (one-shot, zero search cost) and both strategies'
/// Pareto-filtered promotion frontiers.
pub fn kernel_frontier_table(program: &Program, cache: &CacheConfig, cfg: &SearchConfig) -> Table {
    let pad_config = padding_config_for(cache);
    let orig = exact_misses(program, &DataLayout::original(program), cache);
    let padlite = exact_misses(
        program,
        &PaddingPipeline::padlite(pad_config.clone())
            .run(program)
            .layout,
        cache,
    );
    let pad = exact_misses(
        program,
        &PaddingPipeline::pad(pad_config).run(program).layout,
        cache,
    );
    let mut t = Table::new(["strategy", "fast evals", "exact misses", "reduction %"]);
    for (name, misses) in [("orig", orig), ("padlite", padlite), ("pad", pad)] {
        t.row([
            name.to_string(),
            "0".to_string(),
            misses.to_string(),
            pct(reduction_percent(orig, misses)),
        ]);
    }
    for strategy in [StrategyKind::Beam, StrategyKind::Anneal] {
        let result = search(program, cache, &SearchConfig { strategy, ..*cfg });
        let confirmed: Vec<(u64, u64)> = result
            .promotions
            .iter()
            .filter_map(|p| p.exact.map(|e| (p.cost, e)))
            .collect();
        let points: Vec<(f64, f64)> = confirmed
            .iter()
            .map(|&(cost, exact)| (cost as f64, exact as f64))
            .collect();
        for i in pareto_indices(&points) {
            let (cost, exact) = confirmed[i];
            t.row([
                strategy.name().to_string(),
                cost.to_string(),
                exact.to_string(),
                pct(reduction_percent(orig, exact)),
            ]);
        }
    }
    t
}

/// The geometries the suite summary sweeps: the paper's base cache plus
/// a small stress cache where cross-variable conflicts are rampant and
/// joint search has the most room over one-variable-at-a-time greedy.
fn suite_caches() -> [(&'static str, CacheConfig); 2] {
    [
        ("16K", CacheConfig::paper_base()),
        ("2K", CacheConfig::direct_mapped(2 * 1024, 32)),
    ]
}

/// The suite summary table and the number of kernel/cache cells where
/// search found strictly fewer exact misses than *both* heuristics.
pub fn fig_search_suite_ctx(ctx: &RunContext, cfg: &SearchConfig) -> (Table, u64) {
    let programs = suite_programs();
    let caches = suite_caches();
    let cells: Vec<(usize, usize)> = (0..programs.len())
        .flat_map(|k| (0..caches.len()).map(move |c| (k, c)))
        .collect();
    let labels: Vec<String> = cells
        .iter()
        .map(|&(k, c)| format!("fig_search: {} @{}", programs[k].0.name, caches[c].0))
        .collect();
    let outcomes = ctx.run(&labels, |i| {
        let (k, c) = cells[i];
        let p = &programs[k].1;
        let cache = caches[c].1;
        let pad_config = padding_config_for(&cache);
        let orig = exact_misses(p, &DataLayout::original(p), &cache);
        let padlite = exact_misses(
            p,
            &PaddingPipeline::padlite(pad_config.clone()).run(p).layout,
            &cache,
        );
        let pad = exact_misses(p, &PaddingPipeline::pad(pad_config).run(p).layout, &cache);
        // Cells already fan out on the pool; searches inside run serial
        // (the pool runs width-1 requests inline, so no nesting).
        let serial = SearchConfig { threads: 1, ..*cfg };
        let mut row = vec![orig as f64, padlite as f64, pad as f64];
        for strategy in [StrategyKind::Beam, StrategyKind::Anneal] {
            let r = search(p, &cache, &SearchConfig { strategy, ..serial });
            row.push(r.best_exact.map_or(f64::NAN, |m| m as f64));
            row.push(r.fast_evals as f64);
        }
        row
    });

    let mut t = Table::new([
        "kernel",
        "cache",
        "orig",
        "padlite",
        "pad",
        "beam",
        "beam evals",
        "anneal",
        "anneal evals",
        "beats both",
    ]);
    let mut wins = 0u64;
    for (i, outcome) in outcomes.iter().enumerate() {
        let (k, c) = cells[i];
        let mut row = vec![programs[k].0.name.to_string(), caches[c].0.to_string()];
        row.extend(cells_or_marker(outcome, 8, |v| {
            let [orig, padlite, pad, beam, beam_evals, anneal, anneal_evals] = v[..] else {
                return vec![pad_report::ERR_MARKER.to_string(); 8];
            };
            let best = beam.min(anneal);
            let beats = best < padlite.min(pad);
            vec![
                format!("{orig:.0}"),
                format!("{padlite:.0}"),
                format!("{pad:.0}"),
                format!("{beam:.0}"),
                format!("{beam_evals:.0}"),
                format!("{anneal:.0}"),
                format!("{anneal_evals:.0}"),
                if beats { "yes" } else { "" }.to_string(),
            ]
        }));
        if row.last().is_some_and(|s| s == "yes") {
            wins += 1;
        }
        t.row(row);
    }
    (t, wins)
}

/// The full `fig_search` experiment: suite summary plus the two golden
/// frontier CSVs.
pub fn fig_search() -> RunStatus {
    let ctx = RunContext::for_experiment("fig_search");
    let cfg = SearchConfig::from_env();
    let (table, wins) = fig_search_suite_ctx(&ctx, &cfg);
    emit(
        "Search vs heuristics: exact misses across the suite",
        &table,
        "fig_search_suite",
    );
    println!("(search strictly beats both heuristics on {wins} kernel/cache cells)");
    for (name, spec) in [
        ("JACOBI", pad_kernels::jacobi::spec as fn(i64) -> Program),
        ("EXPL", pad_kernels::expl::spec),
    ] {
        let program = spec(GOLDEN_N);
        let t = kernel_frontier_table(&program, &golden_cache(), &golden_config());
        emit(
            &format!("Search cost/quality frontier ({name}, n={GOLDEN_N})"),
            &t,
            &format!("fig_search_frontier_{}", name.to_lowercase()),
        );
    }
    ctx.finish()
}
