//! Seeded simulated annealing over the joint pad space.
//!
//! A single sequential Metropolis chain: start from the best seed, draw
//! one random move per step from the canonical move list, accept
//! downhill moves always and uphill moves with probability
//! `exp(-Δ/T)` under a linearly cooling temperature. All randomness
//! comes from one [`SplitMix64`] stream ([`crate::SearchConfig::seed`]),
//! and [`SearchSpace::random_step`] consumes a fixed number of draws per
//! step, so the whole chain — and therefore the promoted frontier — is a
//! pure function of the seed and budget: byte-reproducible across runs
//! and completely independent of `RIVERA_THREADS` (exact confirmation
//! happens afterwards, fanned in submission order).
//!
//! [`SplitMix64`]: pad_cache_sim::SplitMix64
//! [`SearchSpace::random_step`]: crate::space::SearchSpace::random_step

use pad_cache_sim::SplitMix64;

use crate::objective::Objective;
use crate::space::{cmp_candidates, Candidate, SearchSpace};
use crate::SearchStrategy;

/// Consecutive draw-only steps (no legal neighbor produced) before the
/// chain gives up — a liveness bound for degenerate spaces; real spaces
/// always have a legal direction from any point.
const MAX_FRUITLESS: u32 = 4096;

/// The seeded annealing strategy.
#[derive(Debug, Clone, Copy)]
pub struct Annealing {
    /// RNG seed; equal seeds give byte-identical searches.
    pub seed: u64,
}

impl SearchStrategy for Annealing {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn run(
        &self,
        space: &SearchSpace,
        objective: &mut Objective<'_>,
        seeds: &[Candidate],
    ) -> Vec<Candidate> {
        if space.moves().is_empty() {
            return Vec::new();
        }
        let Some(start) = seeds.iter().min_by(|a, b| cmp_candidates(a, b)) else {
            return Vec::new();
        };
        let mut current = start.clone();
        let mut best_fast = current.fast;
        let mut chain = Vec::new();
        let mut rng = SplitMix64::new(self.seed);

        // Initial temperature at 5% of the starting score: large enough
        // to cross small conflict barriers, small enough that the chain
        // still prefers descent from the heuristic seeds.
        let t0 = (current.fast * 0.05).max(1.0);
        let total = objective.remaining_budget().max(1);
        let mut step = 0u64;
        let mut fruitless = 0u32;

        while objective.budget_left() && fruitless < MAX_FRUITLESS {
            let progress = step as f64 / total as f64;
            let temp = t0 * (1.0 - progress).max(0.01);
            let Some(vector) = space.random_step(&current.vector, &mut rng) else {
                fruitless += 1;
                continue;
            };
            fruitless = 0;
            step += 1;
            let Some(cand) = objective.evaluate(vector) else {
                break;
            };
            let delta = cand.fast - current.fast;
            if cand.fast.total_cmp(&best_fast).is_lt() {
                best_fast = cand.fast;
                chain.push(cand.clone());
            }
            if delta <= 0.0 || rng.unit_f64() < (-delta / temp).exp() {
                current = cand;
            }
        }
        chain
    }
}
