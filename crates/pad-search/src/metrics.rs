//! Live metrics for the search, on the process-global `MetricsRegistry`.
//!
//! Handles are registered once per process and cached in `OnceLock`s (the
//! same pattern the advisor engine uses), so the per-event cost with
//! metrics off is one relaxed atomic load. Exported series:
//!
//! * `pad_search_candidates_total{strategy=...}` — fast-rung evaluations;
//! * `pad_search_promoted_total{strategy=...}` — frontier candidates
//!   promoted to exact confirmation;
//! * `pad_search_discarded_total{strategy=...}` — promoted candidates
//!   whose exact confirmation panicked or was skipped;
//! * `pad_search_eval_us{rung=fast|exact}` — evaluation latency.

use std::sync::{Arc, OnceLock};

use pad_telemetry::{metrics_enabled, registry, Counter, LatencyHistogram};

/// Metric label values for the two strategies, indexed by slot.
const STRATEGIES: [&str; 2] = ["beam", "anneal"];

/// Label slot of the fast rung in [`eval_histograms`].
pub(crate) const RUNG_FAST: usize = 0;
/// Label slot of the exact rung in [`eval_histograms`].
pub(crate) const RUNG_EXACT: usize = 1;
const RUNGS: [&str; 2] = ["fast", "exact"];

fn strategy_slot(strategy: &str) -> usize {
    usize::from(strategy != STRATEGIES[0])
}

fn counters(name: &'static str, help: &'static str) -> [Arc<Counter>; 2] {
    STRATEGIES.map(|s| registry().counter_with(name, help, &[("strategy", s)]))
}

fn eval_histograms() -> &'static [Arc<LatencyHistogram>; 2] {
    static H: OnceLock<[Arc<LatencyHistogram>; 2]> = OnceLock::new();
    H.get_or_init(|| {
        RUNGS.map(|r| {
            registry().histogram_with(
                "pad_search_eval_us",
                "candidate evaluation latency by objective rung (microseconds)",
                &[("rung", r)],
            )
        })
    })
}

/// Records one evaluation's latency on the given rung slot.
pub(crate) fn record_eval_us(rung: usize, us: u64) {
    if !metrics_enabled() {
        return;
    }
    eval_histograms()[rung].record(us);
}

/// Records a finished search run's candidate/promotion/discard totals.
pub(crate) fn record_run(strategy: &str, candidates: u64, promoted: u64, discarded: u64) {
    if !metrics_enabled() {
        return;
    }
    struct Handles {
        candidates: [Arc<Counter>; 2],
        promoted: [Arc<Counter>; 2],
        discarded: [Arc<Counter>; 2],
    }
    static H: OnceLock<Handles> = OnceLock::new();
    let h = H.get_or_init(|| Handles {
        candidates: counters(
            "pad_search_candidates_total",
            "candidate layouts scored on the fast rung",
        ),
        promoted: counters(
            "pad_search_promoted_total",
            "frontier candidates promoted to exact confirmation",
        ),
        discarded: counters(
            "pad_search_discarded_total",
            "promoted candidates discarded (panicked or skipped confirmation)",
        ),
    });
    let slot = strategy_slot(strategy);
    h.candidates[slot].add(candidates);
    h.promoted[slot].add(promoted);
    h.discarded[slot].add(discarded);
}
