//! Search-based global pad optimizer.
//!
//! Rivera & Tseng's `PADLITE`/`PAD` heuristics pad one variable at a
//! time. Following Chen & Kandemir's constraint-network observation that
//! joint optimization finds layouts greedy passes miss, this crate
//! searches the *joint* space of inter gaps and intra pads over all
//! variables at once:
//!
//! * [`space`] — the bounded [`PadVector`] representation, with ranges
//!   derived from `pad_core`'s conflict analysis ([`pad_core::search_bounds`])
//!   and FNV fingerprints collapsing candidates that are equivalent
//!   modulo cache-set placement;
//! * [`objective`] — the two-rung evaluator: the analytic fast rung for
//!   every candidate, exact `simulate_batch` confirmation for promoted
//!   frontier candidates only, fanned through `pad_bench::pool`
//!   isolation cells (a panicking candidate is discarded, not fatal);
//! * [`beam`] — deterministic beam search with constraint-propagation
//!   pruning; [`anneal`] — seeded, byte-reproducible simulated
//!   annealing; both behind the [`SearchStrategy`] trait;
//! * [`experiment`] — the `fig_search` experiment charting
//!   miss-reduction vs analysis-cost frontiers against PADLITE/PAD.
//!
//! **Never worse than the paper, by construction:** every search starts
//! from three seeds — the original layout, PADLITE's, and PAD's — and
//! the final answer is the exact-confirmed minimum over all promoted
//! candidates, so the result can only tie or beat both heuristics (the
//! property suite asserts this over hundreds of random kernels).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod beam;
pub mod experiment;
mod metrics;
pub mod objective;
pub mod space;

use std::collections::BTreeSet;

use pad_bench::faults::FaultPlan;
use pad_bench::pool;
use pad_cache_sim::CacheConfig;
use pad_core::{DataLayout, PaddingPipeline};
use pad_ir::Program;
use pad_trace::padding_config_for;

pub use anneal::Annealing;
pub use beam::BeamSearch;
pub use objective::{conflict_pressure, Objective};
pub use space::{cmp_candidates, set_signature, Candidate, Move, PadVector, SearchSpace};

/// Environment knob naming the strategy (`beam` or `anneal`).
pub const STRATEGY_ENV: &str = "RIVERA_SEARCH_STRATEGY";
/// Environment knob for the fast-evaluation candidate budget.
pub const BUDGET_ENV: &str = "RIVERA_SEARCH_BUDGET";
/// Environment knob for the annealer's RNG seed.
pub const SEED_ENV: &str = "RIVERA_SEARCH_SEED";
/// Environment knob for the beam width.
pub const BEAM_ENV: &str = "RIVERA_SEARCH_BEAM";

/// Which search strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Deterministic beam search ([`BeamSearch`]).
    Beam,
    /// Seeded simulated annealing ([`Annealing`]).
    Anneal,
}

impl StrategyKind {
    /// The metric/CSV label of the strategy.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Beam => "beam",
            StrategyKind::Anneal => "anneal",
        }
    }
}

/// A complete search parameterization. Library code never reads the
/// environment — entry points (CLI, bins, advisor) call
/// [`SearchConfig::from_env`] once and pass the result down.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Strategy to run.
    pub strategy: StrategyKind,
    /// Fast-evaluation candidate budget.
    pub budget: u64,
    /// Annealer seed (ignored by the beam).
    pub seed: u64,
    /// Beam width (ignored by the annealer).
    pub beam_width: usize,
    /// Thread width for the exact-confirmation fan-out.
    pub threads: usize,
    /// Promote the frontier to exact confirmation (`false` = fast-rung
    /// only, for the advisor's degraded fast mode).
    pub confirm_exact: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            strategy: StrategyKind::Beam,
            budget: 800,
            seed: 0x5EED,
            beam_width: 6,
            threads: 1,
            confirm_exact: true,
        }
    }
}

impl SearchConfig {
    /// Reads `RIVERA_SEARCH_{STRATEGY,BUDGET,SEED,BEAM}`, honoring
    /// `PAD_QUICK=1` with a reduced default budget, and sizing the exact
    /// fan-out from the shared pool width (`RIVERA_THREADS`).
    pub fn from_env() -> Self {
        let mut cfg = SearchConfig {
            threads: pool::thread_count(),
            ..SearchConfig::default()
        };
        if pad_bench::harness::quick_mode() {
            cfg.budget = 150;
        }
        if let Ok(v) = std::env::var(STRATEGY_ENV) {
            match v.to_ascii_lowercase().as_str() {
                "anneal" | "annealing" | "sa" => cfg.strategy = StrategyKind::Anneal,
                _ => cfg.strategy = StrategyKind::Beam,
            }
        }
        if let Some(v) = env_u64(BUDGET_ENV) {
            cfg.budget = v.max(1);
        }
        if let Some(v) = env_u64(SEED_ENV) {
            cfg.seed = v;
        }
        if let Some(v) = env_u64(BEAM_ENV) {
            cfg.beam_width = (v as usize).max(1);
        }
        cfg
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// A pluggable search strategy. Strategies explore with *fast* scores
/// only and return their promotion chain: the candidates that improved
/// the best fast score, in discovery order (strictly decreasing `fast`).
/// The driver promotes seeds plus chain to exact confirmation afterwards,
/// so strategy decisions can never depend on exact results — the
/// invariant behind both thread-width independence and fault equivalence.
pub trait SearchStrategy {
    /// Label used in metrics and CSVs.
    fn name(&self) -> &'static str;
    /// Explores from `seeds` and returns the promotion chain.
    fn run(
        &self,
        space: &SearchSpace,
        objective: &mut Objective<'_>,
        seeds: &[Candidate],
    ) -> Vec<Candidate>;
}

/// One promoted frontier candidate, as recorded in [`SearchResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct Promotion {
    /// Fast-rung (analytic) miss score.
    pub fast: f64,
    /// Exact miss count; `None` when the confirmation panicked or was
    /// skipped (the candidate is discarded).
    pub exact: Option<u64>,
    /// Fast evaluations consumed when the candidate was discovered.
    pub cost: u64,
    /// Cache-set-equivalence fingerprint.
    pub signature: u64,
}

/// The outcome of one search run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Strategy label (`"beam"` or `"anneal"`).
    pub strategy: &'static str,
    /// The winning candidate (exact-confirmed minimum when
    /// `confirm_exact`, fast-rung minimum otherwise).
    pub best: Candidate,
    /// The winner's exact miss count (`None` in fast-only mode).
    pub best_exact: Option<u64>,
    /// Every promoted candidate in promotion order (seeds first).
    pub promotions: Vec<Promotion>,
    /// Improvement points of the exact-confirmed frontier:
    /// `(analysis cost in fast evaluations, exact misses)`.
    pub frontier: Vec<(u64, u64)>,
    /// Fast evaluations consumed.
    pub fast_evals: u64,
    /// Exact evaluations sequenced.
    pub exact_evals: u64,
    /// Promoted candidates discarded by faults or skips.
    pub discarded: u64,
}

impl SearchResult {
    /// The winning layout.
    pub fn best_layout(&self) -> &DataLayout {
        &self.best.layout
    }
}

/// Deterministic test/diagnostic hooks threaded into a search run.
#[derive(Debug)]
pub struct SearchHooks {
    /// Fault plan injected into exact confirmations (indices are exact
    /// sequence numbers).
    pub faults: FaultPlan,
    /// Exact sequence numbers to skip (see [`Objective::with_skip`]).
    pub skip: BTreeSet<u64>,
    /// Scramble the move list with this seed before searching; results
    /// must be unchanged (order-independence hook).
    pub permute_moves: Option<u64>,
}

impl Default for SearchHooks {
    fn default() -> Self {
        SearchHooks {
            faults: FaultPlan::none(),
            skip: BTreeSet::new(),
            permute_moves: None,
        }
    }
}

/// Runs the configured search over `program`'s layout space for `cache`.
pub fn search(program: &Program, cache: &CacheConfig, cfg: &SearchConfig) -> SearchResult {
    search_with(program, cache, cfg, SearchHooks::default())
}

/// [`search`] with explicit [`SearchHooks`].
pub fn search_with(
    program: &Program,
    cache: &CacheConfig,
    cfg: &SearchConfig,
    hooks: SearchHooks,
) -> SearchResult {
    let pad_config = padding_config_for(cache);
    let mut space = SearchSpace::new(program, &pad_config);
    if let Some(seed) = hooks.permute_moves {
        space.permute_moves_for_test(seed);
    }
    let mut objective =
        Objective::new(program, *cache, pad_config.clone(), cfg.threads, cfg.budget)
            .with_faults(hooks.faults)
            .with_skip(hooks.skip);

    // Seeds: the original layout plus both heuristic answers, deduped
    // modulo set equivalence. Seeds bypass the budget — they must always
    // be promoted for the never-worse guarantee to hold.
    let seed_vectors = [
        PadVector::zero(program),
        PadVector::from_layout(
            program,
            &PaddingPipeline::padlite(pad_config.clone())
                .run(program)
                .layout,
        ),
        PadVector::from_layout(
            program,
            &PaddingPipeline::pad(pad_config).run(program).layout,
        ),
    ];
    let mut seeds: Vec<Candidate> = Vec::with_capacity(seed_vectors.len());
    for vector in seed_vectors {
        let cand = objective.force_evaluate(vector);
        if !seeds.iter().any(|s| s.signature == cand.signature) {
            seeds.push(cand);
        }
    }

    let strategy: Box<dyn SearchStrategy> = match cfg.strategy {
        StrategyKind::Beam => Box::new(BeamSearch {
            width: cfg.beam_width,
        }),
        StrategyKind::Anneal => Box::new(Annealing { seed: cfg.seed }),
    };
    let chain = strategy.run(&space, &mut objective, &seeds);

    let mut promoted = seeds;
    promoted.extend(chain);
    let exacts: Vec<Option<u64>> = if cfg.confirm_exact {
        let refs: Vec<&Candidate> = promoted.iter().collect();
        objective.confirm_batch(&refs)
    } else {
        vec![None; promoted.len()]
    };

    let promotions: Vec<Promotion> = promoted
        .iter()
        .zip(&exacts)
        .map(|(c, &exact)| Promotion {
            fast: c.fast,
            exact,
            cost: c.found_at,
            signature: c.signature,
        })
        .collect();

    // The winner: exact-confirmed minimum (ties broken by the total
    // candidate order); in fast-only mode, the fast minimum.
    let best_index = if cfg.confirm_exact {
        let mut best: Option<usize> = None;
        for (i, exact) in exacts.iter().enumerate() {
            let Some(exact) = exact else { continue };
            let better = match best {
                None => true,
                Some(j) => {
                    let prev = exacts[j].expect("best always confirmed");
                    exact
                        .cmp(&prev)
                        .then_with(|| cmp_candidates(&promoted[i], &promoted[j]))
                        .is_lt()
                }
            };
            if better {
                best = Some(i);
            }
        }
        // Every promotion discarded (pathological fault plan): fall back
        // to the fast order so the search still answers.
        best.unwrap_or_else(|| best_fast_index(&promoted))
    } else {
        best_fast_index(&promoted)
    };

    let mut frontier = Vec::new();
    let mut best_so_far = u64::MAX;
    for p in &promotions {
        if let Some(exact) = p.exact {
            if exact < best_so_far {
                best_so_far = exact;
                frontier.push((p.cost, exact));
            }
        }
    }

    let result = SearchResult {
        strategy: strategy.name(),
        best: promoted[best_index].clone(),
        best_exact: exacts[best_index],
        promotions,
        frontier,
        fast_evals: objective.fast_evals(),
        exact_evals: objective.exact_evals(),
        discarded: objective.discarded(),
    };
    metrics::record_run(
        result.strategy,
        result.fast_evals,
        result.promotions.len() as u64,
        result.discarded,
    );
    result
}

fn best_fast_index(promoted: &[Candidate]) -> usize {
    let mut best = 0;
    for i in 1..promoted.len() {
        if cmp_candidates(&promoted[i], &promoted[best]).is_lt() {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_bench::harness::exact_misses;

    #[test]
    fn search_never_worse_than_either_heuristic() {
        let program = pad_kernels::jacobi::spec(24);
        let cache = CacheConfig::direct_mapped(2048, 32);
        let cfg = SearchConfig {
            budget: 120,
            threads: 1,
            ..SearchConfig::default()
        };
        let result = search(&program, &cache, &cfg);
        let pc = padding_config_for(&cache);
        let padlite = PaddingPipeline::padlite(pc.clone()).run(&program).layout;
        let pad = PaddingPipeline::pad(pc).run(&program).layout;
        let best = result.best_exact.expect("exact-confirmed");
        assert!(best <= exact_misses(&program, &padlite, &cache));
        assert!(best <= exact_misses(&program, &pad, &cache));
        assert_eq!(best, exact_misses(&program, result.best_layout(), &cache));
        assert!(result.fast_evals >= 3);
        assert!(!result.promotions.is_empty());
        assert!(!result.frontier.is_empty());
    }

    #[test]
    fn degenerate_program_without_arrays_terminates() {
        // ORA's proxy has no arrays at all; the space is empty and both
        // strategies must return the trivial answer without spinning.
        let program = pad_kernels::ora_proxy::spec(8);
        let cache = CacheConfig::direct_mapped(1024, 32);
        for strategy in [StrategyKind::Beam, StrategyKind::Anneal] {
            let cfg = SearchConfig {
                strategy,
                budget: 50,
                threads: 1,
                ..SearchConfig::default()
            };
            let result = search(&program, &cache, &cfg);
            let exact = result.best_exact.expect("exact-confirmed");
            assert_eq!(exact, exact_misses(&program, result.best_layout(), &cache));
            assert_eq!(result.discarded, 0);
        }
    }

    #[test]
    fn env_config_round_trips() {
        let cfg = SearchConfig::default();
        assert_eq!(cfg.strategy.name(), "beam");
        assert!(cfg.confirm_exact);
        assert_eq!(StrategyKind::Anneal.name(), "anneal");
    }
}
