//! Deterministic beam search with constraint-propagation pruning.
//!
//! Each round expands every beam member by every legal move, scores the
//! expansions on the fast rung, and keeps the best `width` novel
//! candidates. Three pruning rules keep the frontier small:
//!
//! * **set-equivalence collapse** — expansions are merged into a
//!   `BTreeMap` keyed by [`set_signature`] fingerprint, so candidates
//!   whose layouts are equivalent modulo cache-set placement survive as
//!   one representative (the least by [`cmp_candidates`]);
//! * **dominance** — merging the old beam with the novel set and
//!   truncating to `width` drops any candidate dominated on the
//!   (score, footprint) order; and
//! * **revisit suppression** — fingerprints ever selected are never
//!   re-expanded, which is what propagates "this set placement is
//!   settled" through later rounds.
//!
//! The returned promotion list is the strictly-improving chain plus the
//! surviving beam (deduped by fingerprint): the final beam holds the
//! `width` best mutually-distinct placements, and when the fast rung can
//! no longer separate them the exact rung is the judge that can.
//!
//! Determinism and order-independence: the move list is canonical, every
//! round is all-or-nothing against the budget (a round never starts
//! unless the worst-case cost fits, so no partial rounds), per-round
//! discovery costs are assigned at the round boundary, and all selection
//! uses the total candidate order. Permuting the move list therefore
//! cannot change any result — the property suite shuffles it and asserts
//! bit-equality.
//!
//! [`set_signature`]: crate::space::set_signature
//! [`cmp_candidates`]: crate::space::cmp_candidates

use std::collections::{btree_map::Entry, BTreeMap, BTreeSet};

use crate::objective::Objective;
use crate::space::{cmp_candidates, Candidate, SearchSpace};
use crate::SearchStrategy;

/// Rounds without a new best fast score before the search stops.
const STALL_ROUNDS: u32 = 3;

/// The deterministic beam strategy.
#[derive(Debug, Clone, Copy)]
pub struct BeamSearch {
    /// Beam width (candidates kept per round); clamped to at least 1.
    pub width: usize,
}

impl SearchStrategy for BeamSearch {
    fn name(&self) -> &'static str {
        "beam"
    }

    fn run(
        &self,
        space: &SearchSpace,
        objective: &mut Objective<'_>,
        seeds: &[Candidate],
    ) -> Vec<Candidate> {
        let width = self.width.max(1);
        let mut beam: Vec<Candidate> = seeds.to_vec();
        beam.sort_by(cmp_candidates);
        beam.truncate(width);
        let mut seen: BTreeSet<u64> = seeds.iter().map(|c| c.signature).collect();
        let Some(first) = beam.first() else {
            return Vec::new();
        };
        let mut best_fast = first.fast;
        let mut chain = Vec::new();
        let mut stall = 0u32;

        while stall < STALL_ROUNDS {
            // All-or-nothing rounds: starting a round the budget cannot
            // cover would make results depend on enumeration order.
            let round_cost = beam.len() as u64 * space.moves().len() as u64;
            if round_cost == 0 || objective.remaining_budget() < round_cost {
                break;
            }

            let mut round: BTreeMap<u64, Candidate> = BTreeMap::new();
            for member in &beam {
                for &m in space.moves() {
                    let Some(vector) = space.apply(&member.vector, m) else {
                        continue;
                    };
                    let Some(cand) = objective.evaluate(vector) else {
                        break;
                    };
                    if seen.contains(&cand.signature) {
                        continue;
                    }
                    match round.entry(cand.signature) {
                        Entry::Vacant(slot) => {
                            slot.insert(cand);
                        }
                        Entry::Occupied(mut slot) => {
                            if cmp_candidates(&cand, slot.get()).is_lt() {
                                slot.insert(cand);
                            }
                        }
                    }
                }
            }

            // Discovery cost is the round boundary, not the (order-
            // dependent) position within the round.
            let round_end = objective.fast_evals();
            let mut novel: Vec<Candidate> = round.into_values().collect();
            for c in &mut novel {
                c.found_at = round_end;
            }
            novel.sort_by(cmp_candidates);
            if novel.is_empty() {
                break;
            }

            if novel[0].fast.total_cmp(&best_fast).is_lt() {
                best_fast = novel[0].fast;
                chain.push(novel[0].clone());
                stall = 0;
            } else {
                stall += 1;
            }
            for c in &novel {
                seen.insert(c.signature);
            }
            novel.truncate(width);
            beam.extend(novel);
            beam.sort_by(cmp_candidates);
            beam.truncate(width);
        }

        // Promote the surviving beam alongside the improving chain: its
        // members are the `width` best severe-free placements found,
        // diverse by set-signature construction, and only the exact rung
        // can separate them once the fast landscape goes flat.
        let mut promoted: BTreeSet<u64> = seeds.iter().map(|c| c.signature).collect();
        promoted.extend(chain.iter().map(|c| c.signature));
        for member in beam {
            if promoted.insert(member.signature) {
                chain.push(member);
            }
        }
        chain
    }
}
