//! The joint pad-vector search space.
//!
//! A [`PadVector`] is one point in the joint transformation space: an
//! intra pad (extra elements per dimension) for every array plus an inter
//! gap (extra bytes before the array's base) for every array. The paper's
//! heuristics walk this space one coordinate at a time; the search
//! strategies in this crate move through it jointly.
//!
//! Two invariants make the search deterministic and order-independent:
//!
//! * the move list of a [`SearchSpace`] is canonicalized (sorted,
//!   deduplicated) at construction, so two spaces built from the same
//!   program agree exactly regardless of how the underlying conflict
//!   reports were ordered; and
//! * candidates are collapsed *modulo cache-set placement*: two vectors
//!   whose materialized layouts have identical shapes and identical
//!   `base mod cache_size` for every array are cache-indistinguishable,
//!   and [`set_signature`] gives them the same FNV fingerprint so the
//!   beam keeps only one representative.

use pad_cache_sim::SplitMix64;
use pad_core::{search_bounds, DataLayout, PaddingConfig, SearchBounds};
use pad_ir::{ArrayId, Program};

/// Rounds `addr` up to a multiple of `align` (which must be nonzero) —
/// the same rule the inter-placement phase of `pad_core` applies.
fn align_up(addr: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    addr.div_ceil(align) * align
}

/// One joint layout decision: per-array intra pads (elements, by
/// dimension) plus per-array inter gaps (bytes inserted before the
/// array's aligned base address). Both vectors are indexed by
/// `ArrayId::index()` in declaration order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PadVector {
    /// Extra elements added to each dimension of each array.
    pub intra: Vec<Vec<i64>>,
    /// Extra bytes inserted before each array's base address.
    pub gap_bytes: Vec<u64>,
}

impl PadVector {
    /// The identity transformation (the original sequential layout).
    pub fn zero(program: &Program) -> Self {
        PadVector {
            intra: program.arrays().iter().map(|a| vec![0; a.rank()]).collect(),
            gap_bytes: vec![0; program.arrays().len()],
        }
    }

    /// Reads the pad vector back out of a layout produced by sequential
    /// placement with gaps (the shape every `pad_core` pipeline emits):
    /// intra pads are the per-dimension size deltas against the original
    /// shape, gaps the slack between each base and the aligned end of the
    /// previous array. Lossless for pipeline layouts — materializing the
    /// result reproduces the layout bit for bit.
    pub fn from_layout(program: &Program, layout: &DataLayout) -> Self {
        let mut intra = Vec::with_capacity(program.arrays().len());
        let mut gap_bytes = Vec::with_capacity(program.arrays().len());
        let mut expected = 0u64;
        for (id, spec) in program.arrays_with_ids() {
            let dims = layout.dims(id);
            let orig = layout.original_dims(id);
            intra.push(
                dims.iter()
                    .zip(orig.iter())
                    .map(|(d, o)| d.size - o.size)
                    .collect(),
            );
            expected = align_up(expected, u64::from(spec.elem_size()));
            let base = layout.base_addr(id);
            gap_bytes.push(base.saturating_sub(expected));
            expected = base + layout.array_bytes(id);
        }
        PadVector { intra, gap_bytes }
    }

    /// Applies the vector to the program's original layout: grow each
    /// padded dimension, then place arrays sequentially in declaration
    /// order with the requested gap inserted before each aligned base.
    pub fn materialize(&self, program: &Program) -> DataLayout {
        let mut layout = DataLayout::original(program);
        for (id, _spec) in program.arrays_with_ids() {
            for (d, &pad) in self.intra[id.index()].iter().enumerate() {
                if pad != 0 {
                    layout.pad_dim(id, d, pad);
                }
            }
        }
        let mut addr = 0u64;
        for (id, spec) in program.arrays_with_ids() {
            addr = align_up(addr, u64::from(spec.elem_size()));
            addr += self.gap_bytes[id.index()];
            layout.set_base_addr(id, addr);
            addr += layout.array_bytes(id);
        }
        layout
    }
}

/// FNV-1a fingerprint of a layout *modulo cache-set placement*: per
/// array, the base address reduced mod `cache_size`, the (padded)
/// dimension sizes, and the element size. Layouts with equal signatures
/// index every access into the same cache set, so they are equivalent to
/// any set-indexed cache of that size and the search keeps only one.
pub fn set_signature(layout: &DataLayout, cache_size: u64) -> u64 {
    fn eat(h: &mut u64, x: u64) {
        for b in x.to_le_bytes() {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..layout.len() {
        let id = ArrayId::from_index(i);
        eat(&mut h, layout.base_addr(id) % cache_size.max(1));
        for d in layout.dims(id) {
            eat(&mut h, d.size as u64);
        }
        eat(&mut h, u64::from(layout.elem_size(id)));
        eat(&mut h, u64::MAX); // array separator
    }
    h
}

/// One elementary search move. `Intra` grows a dimension by one cache
/// line's worth of elements — set placement is line-granular, and
/// sub-line pads would break row/line alignment, a real cost the fast
/// rung cannot see; `Gap` widens an array's leading gap by a fixed byte
/// increment (one line, a coarse multi-line stride, or a
/// conflict-derived jump).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Move {
    /// Grow `dim` of `array` by one line's worth of elements.
    Intra {
        /// Array index in declaration order.
        array: usize,
        /// Dimension index (column-major, 0 = fastest varying).
        dim: usize,
    },
    /// Widen the gap before `array` by `bytes`.
    Gap {
        /// Array index in declaration order.
        array: usize,
        /// Byte increment.
        bytes: u64,
    },
}

/// A bounded, canonicalized move space for one program/cache pair.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    bounds: SearchBounds,
    moves: Vec<Move>,
    /// Per-array intra step in elements (one line's worth, at least 1).
    intra_step: Vec<i64>,
}

impl SearchSpace {
    /// Derives the space from `pad_core`'s conflict analysis: bounds via
    /// [`search_bounds`], moves from the nonzero ranges plus the
    /// conflict-derived gap jumps. The move list is sorted and
    /// deduplicated so construction order never leaks into results.
    pub fn new(program: &Program, config: &PaddingConfig) -> Self {
        let bounds = search_bounds(program, config);
        let line = config.primary().line;
        let intra_step: Vec<i64> = program
            .arrays()
            .iter()
            .map(|a| (line as i64 / i64::from(a.elem_size())).max(1))
            .collect();
        let mut moves = Vec::new();
        for (a, per_dim) in bounds.max_intra.iter().enumerate() {
            for (d, &max) in per_dim.iter().enumerate() {
                if max >= intra_step[a] {
                    moves.push(Move::Intra { array: a, dim: d });
                }
            }
        }
        for (a, &max) in bounds.max_gap_bytes.iter().enumerate() {
            if max == 0 {
                continue;
            }
            // Fine and coarse line-granular steps, plus every targeted
            // clearing increment the conflict scan suggested.
            for step in [line, 4 * line] {
                if step <= max {
                    moves.push(Move::Gap {
                        array: a,
                        bytes: step,
                    });
                }
            }
            for &g in &bounds.suggested_gaps[a] {
                if g > 0 && g <= max {
                    moves.push(Move::Gap { array: a, bytes: g });
                }
            }
        }
        moves.sort_unstable();
        moves.dedup();
        SearchSpace {
            bounds,
            moves,
            intra_step,
        }
    }

    /// The canonical move list.
    pub fn moves(&self) -> &[Move] {
        &self.moves
    }

    /// The conflict-derived per-variable bounds.
    pub fn bounds(&self) -> &SearchBounds {
        &self.bounds
    }

    /// Applies `m` upward to `v`, or `None` when the coordinate would
    /// leave its bound.
    pub fn apply(&self, v: &PadVector, m: Move) -> Option<PadVector> {
        match m {
            Move::Intra { array, dim } => {
                let step = self.intra_step[array];
                if v.intra[array][dim] + step > self.bounds.max_intra[array][dim] {
                    return None;
                }
                let mut next = v.clone();
                next.intra[array][dim] += step;
                Some(next)
            }
            Move::Gap { array, bytes } => {
                let cur = v.gap_bytes[array];
                if cur + bytes > self.bounds.max_gap_bytes[array] {
                    return None;
                }
                let mut next = v.clone();
                next.gap_bytes[array] = cur + bytes;
                Some(next)
            }
        }
    }

    /// Applies `m` downward to `v` (the annealer's reverse step), or
    /// `None` when the coordinate is already at zero.
    pub fn step_down(&self, v: &PadVector, m: Move) -> Option<PadVector> {
        match m {
            Move::Intra { array, dim } => {
                let step = self.intra_step[array];
                if v.intra[array][dim] < step {
                    return None;
                }
                let mut next = v.clone();
                next.intra[array][dim] -= step;
                Some(next)
            }
            Move::Gap { array, bytes } => {
                if v.gap_bytes[array] < bytes {
                    return None;
                }
                let mut next = v.clone();
                next.gap_bytes[array] -= bytes;
                Some(next)
            }
        }
    }

    /// One random step: a uniformly drawn move applied in a uniformly
    /// drawn direction. Always consumes exactly two RNG draws, so the
    /// stream position is a pure function of the step count regardless of
    /// which steps succeed.
    pub fn random_step(&self, v: &PadVector, rng: &mut SplitMix64) -> Option<PadVector> {
        if self.moves.is_empty() {
            return None;
        }
        let m = self.moves[rng.below(self.moves.len() as u64) as usize];
        let up = rng.next_u64() & 1 == 0;
        if up {
            self.apply(v, m)
        } else {
            self.step_down(v, m)
        }
    }

    /// Test hook: scrambles the internal move order with a seeded
    /// Fisher–Yates shuffle. Search results must be bit-identical under
    /// any such permutation — the property the beam's order-independence
    /// suite asserts.
    pub fn permute_moves_for_test(&mut self, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        for i in (1..self.moves.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.moves.swap(i, j);
        }
    }
}

/// A fast-rung-evaluated point: the vector, its materialized layout, the
/// analytic miss score, and the bookkeeping the strategies order by.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The pad vector.
    pub vector: PadVector,
    /// The materialized layout (shapes + bases).
    pub layout: DataLayout,
    /// Analytic miss count from `estimate_miss_rate` (the fast rung).
    pub fast: f64,
    /// Cache-set-equivalence fingerprint ([`set_signature`]).
    pub signature: u64,
    /// Total footprint in bytes (memory-overhead tie-break).
    pub total_bytes: u64,
    /// Fast evaluations consumed when this candidate was discovered —
    /// the x-axis of the cost/benefit frontier.
    pub found_at: u64,
}

/// The total preference order used everywhere a candidate is selected:
/// lower fast score first, then smaller footprint, then signature, then
/// the vector itself lexicographically. Total, so sorting and min-taking
/// are independent of enumeration order.
pub fn cmp_candidates(a: &Candidate, b: &Candidate) -> std::cmp::Ordering {
    a.fast
        .total_cmp(&b.fast)
        .then(a.total_bytes.cmp(&b.total_bytes))
        .then(a.signature.cmp(&b.signature))
        .then(a.vector.cmp(&b.vector))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::PaddingPipeline;
    use pad_trace::padding_config_for;

    fn cache() -> pad_cache_sim::CacheConfig {
        pad_cache_sim::CacheConfig::direct_mapped(2048, 32)
    }

    fn jacobi() -> Program {
        pad_kernels::jacobi::spec(24)
    }

    #[test]
    fn zero_vector_reproduces_original_layout() {
        let p = jacobi();
        let original = DataLayout::original(&p);
        let layout = PadVector::zero(&p).materialize(&p);
        for (id, _) in p.arrays_with_ids() {
            assert_eq!(layout.base_addr(id), original.base_addr(id));
            assert_eq!(layout.dims(id), original.dims(id));
        }
    }

    #[test]
    fn pipeline_layouts_roundtrip_exactly() {
        let p = jacobi();
        let cfg = padding_config_for(&cache());
        for outcome in [
            PaddingPipeline::padlite(cfg.clone()).run(&p),
            PaddingPipeline::pad(cfg.clone()).run(&p),
        ] {
            let v = PadVector::from_layout(&p, &outcome.layout);
            let rebuilt = v.materialize(&p);
            for (id, _) in p.arrays_with_ids() {
                assert_eq!(rebuilt.base_addr(id), outcome.layout.base_addr(id));
                assert_eq!(rebuilt.dims(id), outcome.layout.dims(id));
            }
            assert_eq!(v, PadVector::from_layout(&p, &rebuilt));
        }
    }

    #[test]
    fn signature_collapses_set_equivalent_layouts() {
        let p = jacobi();
        let base = PadVector::zero(&p).materialize(&p);
        let mut shifted = PadVector::zero(&p);
        // Shift the first array's base by exactly one cache size: every
        // set index is unchanged.
        shifted.gap_bytes[0] = 2048;
        let shifted = shifted.materialize(&p);
        assert_eq!(set_signature(&base, 2048), set_signature(&shifted, 2048));
        // A one-line shift lands in different sets.
        let mut moved = PadVector::zero(&p);
        moved.gap_bytes[0] = 32;
        let moved = moved.materialize(&p);
        assert_ne!(set_signature(&base, 2048), set_signature(&moved, 2048));
    }

    #[test]
    fn moves_are_canonical_and_bounded() {
        let p = jacobi();
        let space = SearchSpace::new(&p, &padding_config_for(&cache()));
        let mut sorted = space.moves().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(space.moves(), &sorted[..], "move list is canonical");
        let zero = PadVector::zero(&p);
        for &m in space.moves() {
            let up = space.apply(&zero, m).expect("first step fits bounds");
            assert_eq!(space.step_down(&up, m), Some(zero.clone()));
            assert_eq!(space.step_down(&zero, m), None);
        }
    }

    #[test]
    fn random_step_consumes_fixed_draws() {
        let p = jacobi();
        let space = SearchSpace::new(&p, &padding_config_for(&cache()));
        let zero = PadVector::zero(&p);
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..64 {
            let _ = space.random_step(&zero, &mut a);
            b.next_u64();
            b.next_u64();
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
