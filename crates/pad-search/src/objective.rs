//! The two-rung objective ladder.
//!
//! Every candidate is scored on the **fast rung** — the paper's analytic
//! miss model (`estimate_miss_rate`: spatial misses plus severe-conflict
//! penalties) plus a graded [near-conflict pressure](conflict_pressure)
//! tie-breaker, thousands of evaluations per second — and only frontier
//! candidates are **promoted** to the exact rung, a full `simulate_batch`
//! trace walk. Search *decisions* consume only fast scores; exact counts
//! confirm and rank the promoted frontier afterwards. That split is what
//! makes fault injection benign: a panicking exact evaluation can discard
//! one candidate but can never steer the search.
//!
//! Exact confirmations fan out through `pad_bench::pool` isolation cells
//! with retries disabled, so one poisoned candidate ends as a counted
//! discard, not a crashed search or a hung pool. Each exact evaluation
//! consumes one monotone sequence number whether it runs, panics, or is
//! skipped — a faulted run and a clean run minus the same candidates
//! therefore follow identical sequences (the fault-equivalence property
//! the test suite pins).

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use pad_bench::faults::FaultPlan;
use pad_bench::harness::exact_misses;
use pad_bench::pool::{self, CellCtx, RunPolicy};
use pad_cache_sim::CacheConfig;
use pad_core::{
    circular_distance, constant_difference, estimate_miss_rate, linearize, DataLayout,
    PaddingConfig,
};
use pad_ir::Program;
use pad_telemetry::metrics_enabled;

use crate::metrics::{record_eval_us, RUNG_EXACT, RUNG_FAST};
use crate::space::{set_signature, Candidate, PadVector};

/// Graded sub-severe conflict pressure for `layout` on a direct-mapped
/// level of `cs` bytes.
///
/// `estimate_miss_rate` is deliberately coarse: constant-distance
/// reference pairs cost full price when severe (circular distance under
/// a line) and zero otherwise, so once the PAD heuristic clears the
/// severe pairs the analytic landscape is flat and no search could
/// improve on it. This term grades the *same* quantity the model
/// thresholds, per pair of references sharing a loop:
///
/// * **constant-distance pairs** (the ones `find_severe_conflicts`
///   scans) are charged a penalty that decays linearly with circular
///   set-space distance, from 1 (same set) to 0 (maximally apart, half
///   the cache away) — lockstep walkers thrash in proportion to how
///   close they sit in set space;
/// * **same-line pairs** are pure spatial reuse and cost nothing (the
///   `is_severe_conflict` guard);
/// * **non-constant pairs** — walkers whose pitches differ, typically
///   because only one array's column was padded — cost a flat 0.5, the
///   mean of the graded term over random placement. De-synchronized
///   walkers sweep across each other's sets and interfere broadly;
///   treating a vanished constant difference as *free* would reward
///   exactly the intra pads that break synchronization, inverting the
///   objective (keeping lockstep arrays at matched pitch and wide
///   separation must always score best).
///
/// On top of the pairwise terms, each array is charged **alignment
/// waste**: a column pitch (or base address) that is not a line
/// multiple makes every row walk straddle one extra line — one real
/// miss per row that the model's `stride/line` spatial term cannot see.
/// This is what makes an element-granular heuristic pad rank *worse*
/// than a line-granular placement with the same set-space geometry,
/// exactly as the simulator does.
///
/// The pairwise magnitude — at most one unit per pair — and the
/// alignment waste — at most one unit per row — sit far below one
/// severe conflict's cost (a full nest of misses), so severe-vs-free
/// ordering is never reordered; the term only differentiates
/// severe-free layouts, and the exact rung confirms whether each
/// tie-break is a real improvement.
pub fn conflict_pressure(program: &Program, layout: &DataLayout, cs: u64, line: u64) -> f64 {
    let cs = cs.max(2);
    let half = (cs / 2) as f64;
    let mut pressure = 0.0;
    for group in program.ref_groups() {
        for (i, &ra) in group.refs.iter().enumerate() {
            for &rb in &group.refs[i + 1..] {
                let la = linearize(ra, layout.dims(ra.array()), layout.elem_size(ra.array()));
                let lb = linearize(rb, layout.dims(rb.array()), layout.elem_size(rb.array()));
                let Some(rel) = constant_difference(&la, &lb) else {
                    pressure += 0.5;
                    continue;
                };
                let diff =
                    rel + layout.base_addr(ra.array()) as i64 - layout.base_addr(rb.array()) as i64;
                // Same-line pairs are spatial reuse, not conflict — the
                // same guard `is_severe_conflict` applies.
                if diff.unsigned_abs() < line {
                    continue;
                }
                let dist = circular_distance(diff, cs) as f64;
                pressure += (half - dist) / half;
            }
        }
    }
    let line = line.max(1) as i64;
    for (id, _) in program.arrays_with_ids() {
        let dims = layout.dims(id);
        let strides = layout.strides_bytes(id);
        let mut charged = false;
        for d in 1..strides.len() {
            if strides[d].rem_euclid(line) != 0 {
                let walks: i64 = dims[d..].iter().map(|m| m.size).product();
                pressure += walks as f64;
                charged = true;
                break;
            }
        }
        if !charged && (layout.base_addr(id) as i64).rem_euclid(line) != 0 {
            let walks: i64 = dims.iter().skip(1).map(|m| m.size).product();
            pressure += walks as f64;
        }
    }
    pressure
}

/// The budgeted evaluator shared by every strategy.
pub struct Objective<'p> {
    program: &'p Program,
    cache: CacheConfig,
    pad_config: PaddingConfig,
    threads: usize,
    policy: RunPolicy,
    faults: FaultPlan,
    skip: BTreeSet<u64>,
    budget: u64,
    fast_evals: u64,
    exact_evals: u64,
    discarded: u64,
}

impl<'p> Objective<'p> {
    /// A fresh evaluator with `budget` fast evaluations available and
    /// exact confirmations fanned over `threads` isolation cells.
    pub fn new(
        program: &'p Program,
        cache: CacheConfig,
        pad_config: PaddingConfig,
        threads: usize,
        budget: u64,
    ) -> Self {
        Objective {
            program,
            cache,
            pad_config,
            threads: threads.max(1),
            // Deterministic isolation: no deadline (results must not
            // depend on wall-clock), no retries (a faulted candidate is
            // a discard, not a second chance), no backoff.
            policy: RunPolicy {
                deadline: None,
                max_attempts: 1,
                backoff: Duration::ZERO,
            },
            faults: FaultPlan::none(),
            skip: BTreeSet::new(),
            budget,
            fast_evals: 0,
            exact_evals: 0,
            discarded: 0,
        }
    }

    /// Injects a deterministic fault plan into the exact rung; cell
    /// indices are exact-evaluation sequence numbers.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Skips the exact evaluations with these sequence numbers (they
    /// still consume their numbers). The fault-equivalence tests use this
    /// to express "a clean run minus those candidates".
    pub fn with_skip(mut self, skip: BTreeSet<u64>) -> Self {
        self.skip = skip;
        self
    }

    /// Fast evaluations still available.
    pub fn remaining_budget(&self) -> u64 {
        self.budget.saturating_sub(self.fast_evals)
    }

    /// True while the fast-evaluation budget lasts.
    pub fn budget_left(&self) -> bool {
        self.fast_evals < self.budget
    }

    /// Fast evaluations consumed so far.
    pub fn fast_evals(&self) -> u64 {
        self.fast_evals
    }

    /// Exact evaluations sequenced so far (run, panicked, or skipped).
    pub fn exact_evals(&self) -> u64 {
        self.exact_evals
    }

    /// Promoted candidates whose confirmation panicked or was skipped.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Scores `vector` on the fast rung, consuming one unit of budget;
    /// `None` once the budget is exhausted.
    pub fn evaluate(&mut self, vector: PadVector) -> Option<Candidate> {
        if !self.budget_left() {
            return None;
        }
        Some(self.force_evaluate(vector))
    }

    /// Scores `vector` on the fast rung regardless of budget (used for
    /// the PADLITE/PAD/original seeds, which must always be present for
    /// the never-worse-than-the-heuristics guarantee).
    pub fn force_evaluate(&mut self, vector: PadVector) -> Candidate {
        let t0 = metrics_enabled().then(Instant::now);
        let layout = vector.materialize(self.program);
        let est = estimate_miss_rate(self.program, &layout, &self.pad_config);
        let level = self.pad_config.primary();
        let pressure = conflict_pressure(self.program, &layout, level.size, level.line);
        self.fast_evals += 1;
        if let Some(t0) = t0 {
            record_eval_us(RUNG_FAST, t0.elapsed().as_micros() as u64);
        }
        Candidate {
            fast: est.misses + pressure,
            signature: set_signature(&layout, self.cache.size()),
            total_bytes: layout.total_bytes(),
            found_at: self.fast_evals,
            vector,
            layout,
        }
    }

    /// Promotes `candidates` to the exact rung in one fanned batch.
    /// Returns the exact plain-cache miss count per candidate in input
    /// order, `None` for candidates whose cell panicked (fault injection)
    /// or whose sequence number was in the skip set — both are counted as
    /// discards. Results are in submission order at any thread width.
    pub fn confirm_batch(&mut self, candidates: &[&Candidate]) -> Vec<Option<u64>> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let start = self.exact_evals;
        let program = self.program;
        let cache = self.cache;
        let faults = &self.faults;
        let skip = &self.skip;
        let outcomes =
            pool::run_cells_outcome_on(self.threads, candidates.len(), &self.policy, |cell| {
                let seq = start + cell.index as u64;
                if skip.contains(&seq) {
                    return None;
                }
                faults.inject(CellCtx {
                    index: seq as usize,
                    attempt: cell.attempt,
                });
                let t0 = metrics_enabled().then(Instant::now);
                let misses = exact_misses(program, &candidates[cell.index].layout, &cache);
                if let Some(t0) = t0 {
                    record_eval_us(RUNG_EXACT, t0.elapsed().as_micros() as u64);
                }
                Some(misses)
            });
        self.exact_evals += candidates.len() as u64;
        outcomes
            .into_iter()
            .map(|o| match o.into_value() {
                Some(Some(misses)) => Some(misses),
                _ => {
                    self.discarded += 1;
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_trace::padding_config_for;

    fn objective(program: &Program, budget: u64) -> Objective<'_> {
        let cache = CacheConfig::direct_mapped(2048, 32);
        let cfg = padding_config_for(&cache);
        Objective::new(program, cache, cfg, 1, budget)
    }

    #[test]
    fn budget_is_enforced_but_seeds_bypass_it() {
        let p = pad_kernels::jacobi::spec(16);
        let mut obj = objective(&p, 2);
        let v = PadVector::zero(&p);
        assert!(obj.evaluate(v.clone()).is_some());
        assert!(obj.evaluate(v.clone()).is_some());
        assert!(obj.evaluate(v.clone()).is_none());
        let c = obj.force_evaluate(v);
        assert_eq!(obj.fast_evals(), 3);
        assert_eq!(c.found_at, 3);
    }

    #[test]
    fn confirm_matches_direct_simulation_and_faults_discard() {
        let p = pad_kernels::jacobi::spec(16);
        let cache = CacheConfig::direct_mapped(2048, 32);
        let mut obj = objective(&p, 10);
        let c = obj.force_evaluate(PadVector::zero(&p));
        let direct = exact_misses(&p, &c.layout, &cache);
        assert_eq!(obj.confirm_batch(&[&c]), vec![Some(direct)]);

        // Sequence numbers advance across batches; a fault at the next
        // sequence number discards exactly that evaluation.
        let mut faulted = objective(&p, 10).with_faults(FaultPlan::none().panic_at(1));
        let c2 = faulted.force_evaluate(PadVector::zero(&p));
        assert_eq!(faulted.confirm_batch(&[&c2, &c2]), vec![Some(direct), None]);
        assert_eq!(faulted.discarded(), 1);

        // Skipping the same sequence number gives the same observable
        // result as the fault.
        let mut skipped =
            objective(&p, 10).with_skip([1u64].into_iter().collect::<BTreeSet<u64>>());
        let c3 = skipped.force_evaluate(PadVector::zero(&p));
        assert_eq!(skipped.confirm_batch(&[&c3, &c3]), vec![Some(direct), None]);
        assert_eq!(skipped.discarded(), 1);
    }
}
