//! Throughput of the search objective ladder and end-to-end strategy
//! cost, per kernel: fast-rung evaluations per second, exact-rung
//! latency, and beam/annealing wall time under the default budget.
//! Writes `results/bench_search.csv`. Timing-dependent — informational,
//! never golden.

use std::time::{Duration, Instant};

use pad_bench::harness::{emit, exact_misses, quick_mode, time_it};
use pad_cache_sim::CacheConfig;
use pad_core::{estimate_miss_rate, DataLayout};
use pad_report::Table;
use pad_search::{search, PadVector, SearchConfig, StrategyKind};
use pad_trace::padding_config_for;

fn main() {
    let cache = CacheConfig::paper_base();
    let pad_config = padding_config_for(&cache);
    let n: i64 = if quick_mode() { 64 } else { 256 };
    let cfg = SearchConfig::from_env();
    let kernels = [
        (
            "JACOBI",
            pad_kernels::jacobi::spec as fn(i64) -> pad_ir::Program,
        ),
        ("EXPL", pad_kernels::expl::spec),
        ("SHAL", pad_kernels::shal::spec),
        ("DGEFA", pad_kernels::dgefa::spec),
    ];
    let mut t = Table::new([
        "kernel",
        "fast evals/s",
        "exact ms",
        "beam ms",
        "anneal ms",
        "beam evals",
        "anneal evals",
    ]);
    for (name, spec) in kernels {
        eprintln!("  bench_search: {name} n={n}");
        let program = spec(n);
        let layout = DataLayout::original(&program);
        let vector = PadVector::zero(&program);
        let fast = time_it(
            Duration::from_millis(50),
            Duration::from_millis(300),
            || {
                let l = vector.materialize(&program);
                std::hint::black_box(estimate_miss_rate(&program, &l, &pad_config).misses);
            },
        );
        let exact = time_it(
            Duration::from_millis(50),
            Duration::from_millis(300),
            || {
                std::hint::black_box(exact_misses(&program, &layout, &cache));
            },
        );
        let mut wall = [0.0f64; 2];
        let mut evals = [0u64; 2];
        for (slot, strategy) in [StrategyKind::Beam, StrategyKind::Anneal]
            .into_iter()
            .enumerate()
        {
            let t0 = Instant::now();
            let r = search(&program, &cache, &SearchConfig { strategy, ..cfg });
            wall[slot] = t0.elapsed().as_secs_f64() * 1e3;
            evals[slot] = r.fast_evals;
        }
        t.row([
            name.to_string(),
            format!("{:.0}", 1.0 / fast.best_secs),
            format!("{:.2}", exact.best_secs * 1e3),
            format!("{:.1}", wall[0]),
            format!("{:.1}", wall[1]),
            evals[0].to_string(),
            evals[1].to_string(),
        ]);
    }
    emit("Search objective and strategy cost", &t, "bench_search");
}
