//! Miss-reduction vs analysis-cost frontiers for PADLITE / PAD / beam /
//! annealing across the kernel suite. See `pad-search`'s crate docs.

use std::process::ExitCode;

fn main() -> ExitCode {
    pad_search::experiment::fig_search().exit_code()
}
