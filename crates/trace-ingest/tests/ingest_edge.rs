//! Edge-case and differential coverage for trace ingestion: truncated
//! and garbage inputs get typed errors with positions, zero-length
//! traces are valid, record counts straddling the SIMD lane boundary
//! replay exactly, and traces recorded from the built-in kernels
//! reproduce the kernels' simulated miss counts bit-identically.

use pad_cache_sim::{Access, Cache, CacheConfig, ReuseAnalyzer, SampledReuseAnalyzer};
use pad_core::DataLayout;
use pad_trace::CompiledTrace;
use pad_trace_ingest::binary::{self, BinaryTraceWriter};
use pad_trace_ingest::replay::{replay_slice, ReplayRequest, Replayer};
use pad_trace_ingest::{ndjson, read_trace, read_trace_file, IngestError, TraceFormat};

/// A deterministic synthetic trace with reuse, strides, and writes.
fn synth_trace(n: usize) -> Vec<Access> {
    (0..n as u64)
        .map(|i| {
            let addr = (i * 40) % 8192 + (i % 7) * 4096;
            if i % 5 == 0 {
                Access::write(addr)
            } else {
                Access::read(addr)
            }
        })
        .collect()
}

fn kernel_trace(name: &str, n: i64) -> (pad_ir::Program, Vec<Access>) {
    let program = pad_kernels::suite()
        .into_iter()
        .find(|k| k.name == name)
        .map(|k| (k.spec)(n))
        .unwrap_or_else(|| panic!("{name} is a bundled kernel"));
    let layout = DataLayout::original(&program);
    let compiled = CompiledTrace::compile(&program, &layout);
    let mut trace = Vec::new();
    compiled.for_each(|a| trace.push(a));
    (program, trace)
}

#[test]
fn truncated_final_record_is_a_typed_error_with_position() {
    let trace = synth_trace(10);
    let mut bytes = Vec::new();
    binary::write_binary(&mut bytes, &trace).unwrap();

    // Cut mid-way through the final record: every prefix length that
    // is not a whole number of records must fail with the position.
    for cut in 1..binary::RECORD_SIZE {
        let cropped = &bytes[..bytes.len() - cut];
        let err = read_trace(&mut &cropped[..], TraceFormat::Binary, |_| {})
            .expect_err("mid-record cut detected");
        match err {
            IngestError::TruncatedRecord {
                records,
                trailing_bytes,
            } => {
                assert_eq!(records, 9);
                assert_eq!(trailing_bytes, binary::RECORD_SIZE - cut);
            }
            other => panic!("wrong error: {other}"),
        }
        assert!(other_is_displayable(&err));
    }

    // A cut inside the header is its own error.
    let err =
        read_trace(&mut &bytes[..5], TraceFormat::Binary, |_| {}).expect_err("header cut detected");
    assert!(matches!(err, IngestError::TruncatedHeader { bytes: 5 }));
}

fn other_is_displayable(err: &IngestError) -> bool {
    !err.to_string().is_empty()
}

#[test]
fn garbage_ndjson_lines_are_rejected_with_their_line_number() {
    let good = r#"{"addr": 64}
{"addr": 128, "write": true}
"#;
    let cases: &[(&str, &str)] = &[
        ("{not json at all", "line 3"),
        ("[64, 128]", "line 3"),
        (r#"{"write": true}"#, "line 3"),
        (r#"{"addr": -64}"#, "line 3"),
        (r#"{"addr": "sixty-four"}"#, "line 3"),
    ];
    for (garbage, expect) in cases {
        let input = format!("{good}{garbage}\n");
        let mut seen = 0u64;
        let err = read_trace(&mut input.as_bytes(), TraceFormat::Ndjson, |c| {
            seen += c.len() as u64;
        })
        .expect_err("garbage rejected");
        let IngestError::Line { line, .. } = &err else {
            panic!("wrong error for {garbage:?}: {err}")
        };
        assert_eq!(*line, 3, "position reported for {garbage:?}");
        assert!(err.to_string().contains(expect), "{err}");
    }

    // A line longer than the cap is rejected rather than buffered.
    let oversized = format!(
        "{good}{{\"addr\": 64, \"pad\": \"{}\"}}\n",
        "x".repeat(8192)
    );
    let err = read_trace(&mut oversized.as_bytes(), TraceFormat::Ndjson, |_| {})
        .expect_err("oversized line rejected");
    assert!(matches!(err, IngestError::Line { line: 3, .. }), "{err}");
}

#[test]
fn zero_length_traces_are_valid_and_empty_files_are_not() {
    // A header-only binary trace is a valid empty trace.
    let mut bytes = Vec::new();
    binary::write_binary(&mut bytes, &[]).unwrap();
    let mut chunks = 0;
    let records = read_trace(&mut &bytes[..], TraceFormat::Binary, |_| chunks += 1).unwrap();
    assert_eq!((records, chunks), (0, 0));

    // A zero-byte file is not: it has no header to validate.
    let err = read_trace(&mut &[][..], TraceFormat::Binary, |_| {})
        .expect_err("headerless file rejected");
    assert!(matches!(err, IngestError::TruncatedHeader { bytes: 0 }));

    // NDJSON: empty input and blank lines are both zero-length traces.
    for input in ["", "\n\n\n"] {
        let records = read_trace(&mut input.as_bytes(), TraceFormat::Ndjson, |_| {}).unwrap();
        assert_eq!(records, 0, "for input {input:?}");
    }

    // An empty trace replays to empty results everywhere.
    let request = ReplayRequest::new()
        .with_plain(CacheConfig::paper_base())
        .with_heat(CacheConfig::paper_base())
        .with_reuse(32, 0);
    let results = replay_slice(&[], &request);
    assert_eq!(results.accesses, 0);
    assert_eq!(results.plain[0].accesses, 0);
    assert_eq!(results.heat[0].total_evictions(), 0);
}

#[test]
fn record_counts_straddling_the_lane_boundary_replay_exactly() {
    // The heat tracker and slice kernels process LANE = 128 accesses at
    // a time and the binary reader chunks at 4096 records; counts one
    // off either boundary must replay identically to a one-access-at-a-
    // time walk of the same stream.
    let cache = CacheConfig::paper_base();
    for n in [1usize, 127, 128, 129, 255, 256, 4095, 4096, 4097] {
        let trace = synth_trace(n);
        let mut bytes = Vec::new();
        binary::write_binary(&mut bytes, &trace).unwrap();

        let request = ReplayRequest::new().with_plain(cache).with_heat(cache);
        let mut replayer = Replayer::new(&request);
        let records =
            read_trace(&mut &bytes[..], TraceFormat::Binary, |c| replayer.feed(c)).unwrap();
        assert_eq!(records, n as u64);
        let results = replayer.finish();

        let mut reference = Cache::new(cache);
        for &a in &trace {
            reference.access(a);
        }
        assert_eq!(&results.plain[0], reference.stats(), "n = {n}");
        let heat = &results.heat[0];
        assert_eq!(
            heat.rows().iter().map(|r| r.accesses).sum::<u64>(),
            n as u64,
            "n = {n}: every access lands in exactly one set"
        );
        assert_eq!(
            heat.rows().iter().map(|r| r.misses).sum::<u64>(),
            reference.stats().misses,
            "n = {n}"
        );
    }
}

#[test]
fn kernel_traces_replay_bit_identically_through_both_encodings() {
    for (name, n) in [("DOT256K", 384), ("JACOBI512", 48), ("EXPL512", 24)] {
        let (program, trace) = kernel_trace(name, n);
        let cache = CacheConfig::paper_base();
        let layout = DataLayout::original(&program);
        let direct = pad_trace::simulate_program(&program, &layout, &cache);

        for format in [TraceFormat::Binary, TraceFormat::Ndjson] {
            let mut bytes = Vec::new();
            match format {
                TraceFormat::Binary => binary::write_binary(&mut bytes, &trace).unwrap(),
                TraceFormat::Ndjson => ndjson::write_ndjson(&mut bytes, &trace).unwrap(),
            }
            let request = ReplayRequest::new().with_plain(cache);
            let mut replayer = Replayer::new(&request);
            let records = read_trace(&mut &bytes[..], format, |c| replayer.feed(c)).unwrap();
            let results = replayer.finish();
            assert_eq!(records, trace.len() as u64, "{name}/{format}");
            assert_eq!(
                results.plain[0], direct,
                "{name}/{format}: replay must equal direct simulation bit-for-bit"
            );
        }
    }
}

#[test]
fn sampled_reuse_tracks_exact_reuse_on_kernel_traces() {
    // The SHARDS differential on a real kernel stream: at rate 1/16 the
    // sampled miss-ratio curve stays within a documented absolute error
    // of the exact curve at every power-of-two capacity, and k=0 is
    // bit-identical to the exact analyzer.
    const SAMPLE_LOG2: u32 = 4;
    const MAX_ABS_ERROR: f64 = 0.08;

    // A stencil, not the dot product: single-pass kernels have no
    // long-range reuse, so their curves end before the sampling floor.
    let (_, trace) = kernel_trace("JACOBI512", 128);
    let line_size = 32;

    let mut exact = ReuseAnalyzer::new(line_size);
    exact.run_slice(&trace);
    let exact_hist = exact.into_histogram();

    let mut unsampled = SampledReuseAnalyzer::new(line_size, 0);
    unsampled.run_slice(&trace);
    assert_eq!(
        unsampled.histogram(),
        &exact_hist,
        "k=0 degenerates to the exact analyzer bit-for-bit"
    );

    let mut sampled = SampledReuseAnalyzer::new(line_size, SAMPLE_LOG2);
    sampled.run_slice(&trace);
    let sampled_hist = sampled.into_histogram();
    // Rescaled distances are multiples of 2^k, so the sampled curve's
    // resolution is 2^k lines. At the resolution limit itself a single
    // quantization step still dominates; the documented bound holds
    // from 4×2^k lines up (see EXPERIMENTS.md).
    let floor = 4u64 << SAMPLE_LOG2;
    let mut checked = 0;
    for lines in exact_hist.pow2_capacities() {
        if lines < floor {
            continue;
        }
        checked += 1;
        let e = exact_hist.miss_ratio_at(lines);
        let s = sampled_hist.miss_ratio_at(lines);
        assert!(
            (e - s).abs() <= MAX_ABS_ERROR,
            "capacity {lines} lines: exact {e:.4} vs sampled {s:.4} exceeds {MAX_ABS_ERROR}"
        );
    }
    assert!(
        checked >= 4,
        "the curve extends well past the sampling floor"
    );
}

#[test]
fn trace_files_roundtrip_from_disk_with_format_guessing() {
    let dir = std::env::temp_dir().join(format!("pad-trace-ingest-edge-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = synth_trace(300);

    let bin_path = dir.join("t.trc");
    let mut file = std::fs::File::create(&bin_path).unwrap();
    let mut writer = BinaryTraceWriter::new(&mut file).unwrap();
    for &a in &trace {
        writer.write(a).unwrap();
    }
    writer.finish().unwrap();
    drop(file);

    let nd_path = dir.join("t.ndjson");
    let mut bytes = Vec::new();
    ndjson::write_ndjson(&mut bytes, &trace).unwrap();
    std::fs::write(&nd_path, bytes).unwrap();

    for path in [&bin_path, &nd_path] {
        let mut back = Vec::new();
        let records = read_trace_file(path, None, |c| back.extend_from_slice(c)).unwrap();
        assert_eq!(records, trace.len() as u64, "{}", path.display());
        assert_eq!(back, trace, "{}", path.display());
    }
    std::fs::remove_dir_all(&dir).ok();
}
