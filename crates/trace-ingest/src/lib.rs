//! `pad-trace-ingest`: streaming ingestion of external address traces.
//!
//! Everything upstream of this crate simulates the paper's built-in
//! kernels — programs the workspace itself generates. This crate is the
//! door for *real* workloads: it reads address traces produced by
//! anything (a binary instrumentation tool, another simulator, a
//! hardware trace unit) in two formats —
//!
//! * [`binary`]: the fixed-width little-endian `PTRC` format, for bulk
//!   traces (9 bytes/record, truncation-detecting, chunked reads in
//!   bounded memory);
//! * [`ndjson`]: one JSON object per line, for interop and by-eye
//!   debugging, parsed with the same hand-rolled [`json`] layer the
//!   advisor protocol uses;
//!
//! — and replays them through the cache simulator ([`replay`]): plain
//! and XOR-indexed configurations, victim-cache scenarios, per-set heat
//! classification, and exact or SHARDS-sampled reuse-distance analysis.
//! Replay of a trace recorded from a built-in kernel reproduces that
//! kernel's miss counts bit-identically (pinned by differential tests),
//! so external traces get exactly the analyses the paper's kernels get.
//!
//! The readers never materialize a whole trace: both stream fixed-size
//! chunks into a caller-supplied sink, so memory stays bounded at a few
//! tens of kilobytes regardless of trace length, and the SHARDS sampler
//! ([`pad_cache_sim::SampledReuseAnalyzer`]) keeps reuse analysis
//! affordable on traces with working sets too large for the exact
//! engine.

// deny, not forbid: the json string scanner re-slices already-validated
// UTF-8 with one locally-allowed `from_utf8_unchecked`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod json;
pub mod metrics;
pub mod ndjson;
pub mod replay;

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

use pad_cache_sim::Access;

/// On-disk trace encodings this crate reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Fixed-width binary records behind a `PTRC` header.
    Binary,
    /// One JSON object per line.
    Ndjson,
}

impl TraceFormat {
    /// Parses a user-facing format name (`"bin"`/`"binary"`,
    /// `"ndjson"`/`"json"`/`"jsonl"`).
    pub fn from_name(name: &str) -> Option<TraceFormat> {
        match name {
            "bin" | "binary" | "ptrc" => Some(TraceFormat::Binary),
            "ndjson" | "json" | "jsonl" => Some(TraceFormat::Ndjson),
            _ => None,
        }
    }

    /// The canonical name (`"binary"` / `"ndjson"`).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceFormat::Binary => "binary",
            TraceFormat::Ndjson => "ndjson",
        }
    }

    /// Guesses the format from a file extension: `.trc`/`.bin` →
    /// binary, `.ndjson`/`.jsonl`/`.json` → NDJSON.
    pub fn from_extension(path: &Path) -> Option<TraceFormat> {
        match path.extension()?.to_str()? {
            "trc" | "bin" | "ptrc" => Some(TraceFormat::Binary),
            "ndjson" | "jsonl" | "json" => Some(TraceFormat::Ndjson),
            _ => None,
        }
    }
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything that can go wrong while ingesting a trace.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A binary file ended before the 8-byte header completed.
    TruncatedHeader {
        /// Header bytes actually present.
        bytes: usize,
    },
    /// A binary file does not start with the `PTRC` magic.
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// A binary file declares a format version this crate cannot read.
    BadVersion {
        /// The declared version.
        found: u16,
    },
    /// A binary file declares an unexpected record width.
    BadRecordSize {
        /// The declared record size in bytes.
        found: usize,
    },
    /// A binary file ended in the middle of a record.
    TruncatedRecord {
        /// Complete records decoded before the cut.
        records: u64,
        /// Stray bytes after the last complete record.
        trailing_bytes: usize,
    },
    /// An NDJSON line failed to parse or had the wrong shape.
    Line {
        /// 1-based line number.
        line: u64,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "trace I/O error: {e}"),
            IngestError::TruncatedHeader { bytes } => {
                write!(
                    f,
                    "truncated trace header: {bytes} of {} bytes",
                    binary::HEADER_SIZE
                )
            }
            IngestError::BadMagic { found } => {
                write!(f, "not a PTRC trace (magic bytes {found:?})")
            }
            IngestError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported PTRC version {found} (supported: {})",
                    binary::VERSION
                )
            }
            IngestError::BadRecordSize { found } => write!(
                f,
                "unsupported PTRC record size {found} (supported: {})",
                binary::RECORD_SIZE
            ),
            IngestError::TruncatedRecord {
                records,
                trailing_bytes,
            } => write!(
                f,
                "trace truncated mid-record: {trailing_bytes} stray byte(s) after record \
                 {records} — the file was likely cut off while being written"
            ),
            IngestError::Line { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Streams a trace in `format` from `input`, feeding decoded chunks to
/// `sink`; returns the record count.
pub fn read_trace<R, F>(input: &mut R, format: TraceFormat, sink: F) -> Result<u64, IngestError>
where
    R: Read,
    F: FnMut(&[Access]),
{
    if !pad_telemetry::metrics_enabled() {
        return read_trace_inner(input, format, sink);
    }
    let mut counting = CountingReader {
        inner: input,
        bytes: 0,
    };
    let result = read_trace_inner(&mut counting, format, sink);
    let m = metrics::ingest_metrics();
    m.bytes.add(counting.bytes);
    if let Err(e) = &result {
        // I/O failures are the host's fault, not the trace's.
        if !matches!(e, IngestError::Io(_)) {
            m.malformed.inc();
        }
    }
    result
}

fn read_trace_inner<R, F>(input: &mut R, format: TraceFormat, sink: F) -> Result<u64, IngestError>
where
    R: Read,
    F: FnMut(&[Access]),
{
    match format {
        TraceFormat::Binary => binary::read_binary(input, sink),
        // The chunked binary reader needs no BufReader (it reads in
        // 36 KiB slabs); the line-oriented reader does.
        TraceFormat::Ndjson => ndjson::read_ndjson(&mut BufReader::new(input), sink),
    }
}

/// Tallies bytes as they stream through (slab-granular, so the
/// accounting adds one addition per 36 KiB read, not per record).
struct CountingReader<'a, R> {
    inner: &'a mut R,
    bytes: u64,
}

impl<R: Read> Read for CountingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

/// Opens `path` and streams it as a trace in `format` (or the format
/// guessed from the extension, defaulting to binary).
pub fn read_trace_file<F>(
    path: &Path,
    format: Option<TraceFormat>,
    sink: F,
) -> Result<u64, IngestError>
where
    F: FnMut(&[Access]),
{
    let format = format
        .or_else(|| TraceFormat::from_extension(path))
        .unwrap_or(TraceFormat::Binary);
    let mut file = File::open(path).map_err(IngestError::Io)?;
    read_trace(&mut file, format, sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_names_and_extensions_resolve() {
        assert_eq!(TraceFormat::from_name("bin"), Some(TraceFormat::Binary));
        assert_eq!(TraceFormat::from_name("ndjson"), Some(TraceFormat::Ndjson));
        assert_eq!(TraceFormat::from_name("csv"), None);
        assert_eq!(
            TraceFormat::from_extension(Path::new("a/b/kernel.trc")),
            Some(TraceFormat::Binary)
        );
        assert_eq!(
            TraceFormat::from_extension(Path::new("kernel.ndjson")),
            Some(TraceFormat::Ndjson)
        );
        assert_eq!(TraceFormat::from_extension(Path::new("noext")), None);
        assert_eq!(TraceFormat::Binary.to_string(), "binary");
    }

    #[test]
    fn read_trace_dispatches_by_format() {
        let trace = vec![Access::read(64), Access::write(128)];
        let mut bin = Vec::new();
        binary::write_binary(&mut bin, &trace).unwrap();
        let mut back = Vec::new();
        read_trace(&mut bin.as_slice(), TraceFormat::Binary, |c| {
            back.extend_from_slice(c)
        })
        .unwrap();
        assert_eq!(back, trace);

        let mut nd = Vec::new();
        ndjson::write_ndjson(&mut nd, &trace).unwrap();
        let mut back = Vec::new();
        read_trace(&mut nd.as_slice(), TraceFormat::Ndjson, |c| {
            back.extend_from_slice(c)
        })
        .unwrap();
        assert_eq!(back, trace);
    }
}
