//! NDJSON address traces: one `{"addr": N, "write": B}` object per line.
//!
//! The text format exists for interop and debuggability — anything that
//! can print JSON (a Pin tool, a DynamoRIO client, an awk one-liner over
//! another simulator's log) can produce it, and a trace is greppable by
//! eye. Parsing reuses the same hand-rolled [`crate::json`] layer the
//! advisor protocol speaks, so both NDJSON surfaces of the workspace
//! share one grammar, one depth limit, and one adversarial test suite.
//!
//! Per line: `addr` is required and must be a non-negative integer
//! (floats are rejected — a fractional address is a producer bug, not a
//! rounding choice this crate should make); `write` is optional and
//! defaults to `false`; unknown keys are ignored so producers can carry
//! extra fields. Blank lines are skipped. Any other shape fails with
//! [`IngestError::Line`] carrying the 1-based line number, because a
//! garbage line in the middle of a trace means every count derived from
//! it is suspect.

use std::io::{BufRead, Write};

use pad_cache_sim::Access;

use crate::binary::CHUNK_RECORDS;
use crate::json::{self, Json};
use crate::IngestError;

/// Longest accepted trace line. Real records are ~40 bytes; anything
/// kilobytes long is a corrupt or adversarial input, and bounding it
/// keeps the line buffer's memory bounded too.
pub const MAX_LINE_BYTES: usize = 4096;

/// Serializes one access as its NDJSON line (no trailing newline).
pub fn line_for(access: Access) -> String {
    let obj = Json::Obj(vec![
        ("addr".to_string(), Json::Int(access.addr as i64)),
        ("write".to_string(), Json::Bool(access.is_write)),
    ]);
    let mut out = String::new();
    obj.write(&mut out);
    out
}

/// Writes `trace` as NDJSON, one object per line.
///
/// Addresses above `i64::MAX` are unrepresentable in the advisor's JSON
/// integer model and rejected rather than silently wrapped.
pub fn write_ndjson<W: Write>(out: &mut W, trace: &[Access]) -> Result<(), IngestError> {
    let mut buf = String::new();
    for (i, &access) in trace.iter().enumerate() {
        if i64::try_from(access.addr).is_err() {
            return Err(IngestError::Line {
                line: i as u64 + 1,
                message: format!("address {} exceeds the JSON integer range", access.addr),
            });
        }
        buf.clear();
        let obj = Json::Obj(vec![
            ("addr".to_string(), Json::Int(access.addr as i64)),
            ("write".to_string(), Json::Bool(access.is_write)),
        ]);
        obj.write(&mut buf);
        buf.push('\n');
        out.write_all(buf.as_bytes()).map_err(IngestError::Io)?;
    }
    out.flush().map_err(IngestError::Io)
}

/// Parses one non-blank trace line.
fn parse_line(line: &str, line_no: u64) -> Result<Access, IngestError> {
    let fail = |message: String| IngestError::Line {
        line: line_no,
        message,
    };
    let value = json::parse(line).map_err(|e| fail(e.to_string()))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(fail("expected a JSON object".to_string()));
    }
    let addr = match value.get("addr") {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| fail("\"addr\" must be a non-negative integer".to_string()))?,
        None => return Err(fail("missing required key \"addr\"".to_string())),
    };
    let is_write = match value.get("write") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| fail("\"write\" must be a boolean".to_string()))?,
    };
    Ok(Access { addr, is_write })
}

/// Streams an NDJSON trace from `input`, invoking `sink` with decoded
/// chunks of at most [`CHUNK_RECORDS`] accesses. Returns the record
/// count. Memory use is one line buffer plus one chunk buffer.
pub fn read_ndjson<R, F>(input: &mut R, mut sink: F) -> Result<u64, IngestError>
where
    R: BufRead,
    F: FnMut(&[Access]),
{
    // The limit (reset per line) bounds how much one malformed
    // newline-free line can pull into memory before we reject it.
    let mut input = <&mut R as std::io::Read>::take(input, MAX_LINE_BYTES as u64 + 1);
    let mut line = String::new();
    let mut chunk: Vec<Access> = Vec::with_capacity(CHUNK_RECORDS);
    let mut line_no = 0u64;
    let mut total = 0u64;
    loop {
        line.clear();
        input.set_limit(MAX_LINE_BYTES as u64 + 1);
        let got = input.read_line(&mut line).map_err(IngestError::Io)?;
        if got == 0 {
            break;
        }
        line_no += 1;
        if line.len() > MAX_LINE_BYTES {
            return Err(IngestError::Line {
                line: line_no,
                message: format!("line exceeds {MAX_LINE_BYTES} bytes"),
            });
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        chunk.push(parse_line(trimmed, line_no)?);
        if chunk.len() == CHUNK_RECORDS {
            total += chunk.len() as u64;
            sink(&chunk);
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        total += chunk.len() as u64;
        sink(&chunk);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(text: &str) -> Result<Vec<Access>, IngestError> {
        let mut out = Vec::new();
        read_ndjson(&mut text.as_bytes(), |c| out.extend_from_slice(c))?;
        Ok(out)
    }

    #[test]
    fn roundtrips_and_defaults_write_to_false() {
        let trace = vec![
            Access::read(0),
            Access::write(64),
            Access::read(u64::from(u32::MAX)),
        ];
        let mut bytes = Vec::new();
        write_ndjson(&mut bytes, &trace).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert_eq!(read_all(&text).unwrap(), trace);

        // write key omitted → load.
        let back = read_all("{\"addr\": 96}\n").unwrap();
        assert_eq!(back, vec![Access::read(96)]);
    }

    #[test]
    fn blank_lines_and_unknown_keys_are_tolerated() {
        let back =
            read_all("\n{\"addr\": 32, \"tid\": 7}\n\n{\"addr\": 64, \"write\": true}\n").unwrap();
        assert_eq!(back, vec![Access::read(32), Access::write(64)]);
    }

    #[test]
    fn garbage_line_fails_with_its_line_number() {
        let err = read_all("{\"addr\": 1}\n{\"addr\": 2}\nnot json at all\n").unwrap_err();
        match err {
            IngestError::Line { line, .. } => assert_eq!(line, 3),
            other => panic!("expected Line error, got {other}"),
        }
    }

    #[test]
    fn wrong_shapes_are_rejected() {
        for bad in [
            "[1, 2, 3]",                       // not an object
            "{\"write\": true}",               // missing addr
            "{\"addr\": -5}",                  // negative
            "{\"addr\": 1.5}",                 // fractional
            "{\"addr\": \"64\"}",              // string
            "{\"addr\": 1, \"write\": \"y\"}", // non-bool write
        ] {
            let err = read_all(&format!("{bad}\n")).unwrap_err();
            assert!(
                matches!(err, IngestError::Line { line: 1, .. }),
                "input {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn zero_length_trace_is_valid() {
        assert_eq!(read_all("").unwrap(), vec![]);
        assert_eq!(read_all("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn oversized_line_is_rejected_not_buffered() {
        let huge = format!("{{\"addr\": 1, \"pad\": \"{}\"}}\n", "x".repeat(8192));
        let err = read_all(&huge).unwrap_err();
        match err {
            IngestError::Line { line: 1, message } => assert!(message.contains("exceeds")),
            other => panic!("expected oversized-line error, got {other}"),
        }
    }

    #[test]
    fn final_line_without_newline_still_counts() {
        let back = read_all("{\"addr\": 32}").unwrap();
        assert_eq!(back, vec![Access::read(32)]);
    }
}
