//! Live metric handles for the trace-ingestion frontend.
//!
//! Registered once into [`pad_telemetry::registry`] and cached, so the
//! streaming read path touches only its own atomics. Every update site
//! is gated on [`pad_telemetry::metrics_enabled`].
//!
//! | metric                              | kind      | meaning                                 |
//! |-------------------------------------|-----------|-----------------------------------------|
//! | `pad_ingest_records_total`          | counter   | trace records fed to replay sinks       |
//! | `pad_ingest_bytes_total`            | counter   | raw bytes consumed by trace readers     |
//! | `pad_ingest_malformed_total`        | counter   | reads refused as not-a-well-formed trace|
//! | `pad_ingest_replays_total`          | counter   | completed replays                       |
//! | `pad_ingest_replay_us`              | histogram | wall time of each completed replay      |
//! | `pad_ingest_replay_records_per_sec` | gauge     | throughput of the latest replay         |

use std::sync::{Arc, OnceLock};

use pad_telemetry::{Counter, Gauge, LatencyHistogram};

/// Cached handles to every ingest metric (see the module table).
pub struct IngestMetrics {
    /// Trace records fed to replay sinks.
    pub records: Arc<Counter>,
    /// Raw bytes consumed by the trace readers.
    pub bytes: Arc<Counter>,
    /// Reads refused because the stream was not a well-formed trace
    /// (bad magic, truncated record, garbage NDJSON — I/O errors are
    /// not the trace's fault and are excluded).
    pub malformed: Arc<Counter>,
    /// Completed replays.
    pub replays: Arc<Counter>,
    /// Wall time of each completed replay, in microseconds.
    pub replay_us: Arc<LatencyHistogram>,
    /// Records per second of the most recently finished replay.
    pub replay_records_per_sec: Arc<Gauge>,
}

/// The process-global ingest metric handles (registered on first call).
pub fn ingest_metrics() -> &'static IngestMetrics {
    static METRICS: OnceLock<IngestMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = pad_telemetry::registry();
        IngestMetrics {
            records: r.counter(
                "pad_ingest_records_total",
                "Trace records fed to replay sinks.",
            ),
            bytes: r.counter(
                "pad_ingest_bytes_total",
                "Raw bytes consumed by the trace readers.",
            ),
            malformed: r.counter(
                "pad_ingest_malformed_total",
                "Reads refused as not a well-formed trace (I/O errors excluded).",
            ),
            replays: r.counter("pad_ingest_replays_total", "Completed replays."),
            replay_us: r.histogram(
                "pad_ingest_replay_us",
                "Wall time of each completed replay, in microseconds.",
            ),
            replay_records_per_sec: r.gauge(
                "pad_ingest_replay_records_per_sec",
                "Records per second of the most recently finished replay.",
            ),
        }
    })
}
