//! The `PTRC` binary address-trace format: fixed-width little-endian
//! records behind an 8-byte header, designed so a reader can stream a
//! multi-gigabyte trace in bounded memory and *prove* the file ends on a
//! record boundary.
//!
//! Layout:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"PTRC"
//! 4       2     format version, u16 LE (currently 1)
//! 6       2     record size in bytes, u16 LE (currently 9)
//! 8       9·n   records: addr u64 LE, flags u8 (bit 0 = write)
//! ```
//!
//! The record size lives in the header so a future wider record (e.g.
//! with a thread id) bumps the version without ambushing old readers:
//! they reject the file instead of misparsing it. Reads go through a
//! caller-sized chunk buffer — no mmap, no whole-file materialization —
//! and a final partial record is a hard [`IngestError::TruncatedRecord`]
//! rather than a silent drop, because a truncated trace usually means a
//! crashed producer and the miss counts downstream would be quietly
//! wrong.

use std::io::{self, Read, Write};

use pad_cache_sim::Access;

use crate::IngestError;

/// The four magic bytes opening every trace file.
pub const MAGIC: [u8; 4] = *b"PTRC";
/// The format version this crate reads and writes.
pub const VERSION: u16 = 1;
/// Bytes per record in version 1: 8 address bytes + 1 flag byte.
pub const RECORD_SIZE: usize = 9;
/// Header bytes preceding the first record.
pub const HEADER_SIZE: usize = 8;

/// Flag bit marking a record as a store.
const FLAG_WRITE: u8 = 1;

/// Default records decoded per callback from [`read_binary`]: 4096
/// records ≈ 36 KiB of file bytes and 64 KiB of decoded [`Access`]es —
/// bounded regardless of trace length, and a multiple of the simulator's
/// 128-access lane blocks.
pub const CHUNK_RECORDS: usize = 4096;

/// Encodes the header into its 8-byte wire form.
fn header_bytes() -> [u8; HEADER_SIZE] {
    let mut h = [0u8; HEADER_SIZE];
    h[..4].copy_from_slice(&MAGIC);
    h[4..6].copy_from_slice(&VERSION.to_le_bytes());
    h[6..8].copy_from_slice(&(RECORD_SIZE as u16).to_le_bytes());
    h
}

/// Writes `trace` as a complete `PTRC` stream (header + records).
pub fn write_binary<W: Write>(out: &mut W, trace: &[Access]) -> io::Result<()> {
    let mut w = BinaryTraceWriter::new(out)?;
    for &access in trace {
        w.write(access)?;
    }
    w.finish()
}

/// An incremental `PTRC` writer for producers that stream records as
/// they are generated. The header is written at construction; records
/// are buffered and flushed in chunks.
pub struct BinaryTraceWriter<'w, W: Write> {
    out: &'w mut W,
    buf: Vec<u8>,
    written: u64,
}

impl<'w, W: Write> BinaryTraceWriter<'w, W> {
    /// Opens a writer and emits the header.
    pub fn new(out: &'w mut W) -> io::Result<Self> {
        out.write_all(&header_bytes())?;
        Ok(BinaryTraceWriter {
            out,
            buf: Vec::with_capacity(CHUNK_RECORDS * RECORD_SIZE),
            written: 0,
        })
    }

    /// Appends one record.
    pub fn write(&mut self, access: Access) -> io::Result<()> {
        self.buf.extend_from_slice(&access.addr.to_le_bytes());
        self.buf.push(if access.is_write { FLAG_WRITE } else { 0 });
        self.written += 1;
        if self.buf.len() >= CHUNK_RECORDS * RECORD_SIZE {
            self.out.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.written
    }

    /// Flushes buffered records. Must be called before dropping the
    /// writer — records still in the buffer are otherwise lost.
    pub fn finish(mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.out.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.out.flush()
    }
}

/// Decodes one record from its 9-byte wire form.
#[inline]
fn decode(rec: &[u8]) -> Access {
    let addr = u64::from_le_bytes(rec[..8].try_into().unwrap());
    Access {
        addr,
        is_write: rec[8] & FLAG_WRITE != 0,
    }
}

/// Streams a `PTRC` trace from `input`, invoking `sink` with decoded
/// chunks of at most [`CHUNK_RECORDS`] accesses. Returns the total
/// record count.
///
/// Memory use is one fixed chunk buffer regardless of trace size. A
/// zero-record file (header only) is valid and yields no callbacks.
/// Errors: [`IngestError::BadMagic`] / [`IngestError::BadVersion`] /
/// [`IngestError::BadRecordSize`] for a foreign or future file,
/// [`IngestError::TruncatedHeader`] / [`IngestError::TruncatedRecord`]
/// for a file not ending on a record boundary.
pub fn read_binary<R, F>(input: &mut R, mut sink: F) -> Result<u64, IngestError>
where
    R: Read,
    F: FnMut(&[Access]),
{
    let mut header = [0u8; HEADER_SIZE];
    let got = read_up_to(input, &mut header).map_err(IngestError::Io)?;
    if got < HEADER_SIZE {
        return Err(IngestError::TruncatedHeader { bytes: got });
    }
    if header[..4] != MAGIC {
        return Err(IngestError::BadMagic {
            found: [header[0], header[1], header[2], header[3]],
        });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(IngestError::BadVersion { found: version });
    }
    let record_size = u16::from_le_bytes([header[6], header[7]]) as usize;
    if record_size != RECORD_SIZE {
        return Err(IngestError::BadRecordSize { found: record_size });
    }

    let mut raw = vec![0u8; CHUNK_RECORDS * RECORD_SIZE];
    let mut decoded = Vec::with_capacity(CHUNK_RECORDS);
    let mut pending = 0usize; // bytes of a partial record carried over
    let mut total = 0u64;
    loop {
        let got = read_up_to(input, &mut raw[pending..]).map_err(IngestError::Io)?;
        let avail = pending + got;
        if avail == 0 {
            return Ok(total);
        }
        let whole = avail / RECORD_SIZE * RECORD_SIZE;
        if whole == 0 {
            // `read_up_to` only comes back short at end of input, so
            // fewer than RECORD_SIZE available bytes means the producer
            // was cut off mid-record.
            return Err(IngestError::TruncatedRecord {
                records: total,
                trailing_bytes: avail,
            });
        }
        decoded.clear();
        decoded.extend(raw[..whole].chunks_exact(RECORD_SIZE).map(decode));
        total += decoded.len() as u64;
        sink(&decoded);
        raw.copy_within(whole..avail, 0);
        pending = avail - whole;
        if got == 0 && pending > 0 {
            return Err(IngestError::TruncatedRecord {
                records: total,
                trailing_bytes: pending,
            });
        }
    }
}

/// Fills as much of `buf` as the reader can provide, retrying short
/// reads; returns the byte count (less than `buf.len()` only at EOF).
fn read_up_to<R: Read>(input: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Access> {
        (0..n)
            .map(|i| Access {
                addr: (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                is_write: i % 5 == 0,
            })
            .collect()
    }

    fn roundtrip(trace: &[Access]) -> (u64, Vec<Access>) {
        let mut bytes = Vec::new();
        write_binary(&mut bytes, trace).unwrap();
        let mut back = Vec::new();
        let n = read_binary(&mut bytes.as_slice(), |chunk| back.extend_from_slice(chunk)).unwrap();
        (n, back)
    }

    #[test]
    fn roundtrips_across_chunk_boundaries() {
        for n in [
            0,
            1,
            127,
            128,
            129,
            CHUNK_RECORDS - 1,
            CHUNK_RECORDS,
            CHUNK_RECORDS + 3,
        ] {
            let trace = sample(n);
            let (count, back) = roundtrip(&trace);
            assert_eq!(count, n as u64, "n={n}");
            assert_eq!(back, trace, "n={n}");
        }
    }

    #[test]
    fn header_is_eight_bytes_and_stable() {
        let mut bytes = Vec::new();
        write_binary(&mut bytes, &[]).unwrap();
        assert_eq!(bytes, [b'P', b'T', b'R', b'C', 1, 0, 9, 0]);
    }

    #[test]
    fn truncated_final_record_is_reported_with_position() {
        let mut bytes = Vec::new();
        write_binary(&mut bytes, &sample(10)).unwrap();
        bytes.truncate(bytes.len() - 4); // cut the last record short
        let mut seen = 0u64;
        let err = read_binary(&mut bytes.as_slice(), |c| seen += c.len() as u64).unwrap_err();
        match err {
            IngestError::TruncatedRecord {
                records,
                trailing_bytes,
            } => {
                assert_eq!(records, 9);
                assert_eq!(trailing_bytes, RECORD_SIZE - 4);
            }
            other => panic!("expected TruncatedRecord, got {other}"),
        }
        // The complete prefix was still delivered.
        assert_eq!(seen, 9);
    }

    #[test]
    fn truncated_header_and_foreign_files_are_rejected() {
        let err = read_binary(&mut &b"PTR"[..], |_| {}).unwrap_err();
        assert!(matches!(err, IngestError::TruncatedHeader { bytes: 3 }));

        let err = read_binary(&mut &b"NOPE\x01\x00\x09\x00"[..], |_| {}).unwrap_err();
        assert!(matches!(err, IngestError::BadMagic { .. }));

        let err = read_binary(&mut &b"PTRC\x02\x00\x09\x00"[..], |_| {}).unwrap_err();
        assert!(matches!(err, IngestError::BadVersion { found: 2 }));

        let err = read_binary(&mut &b"PTRC\x01\x00\x0a\x00"[..], |_| {}).unwrap_err();
        assert!(matches!(err, IngestError::BadRecordSize { found: 10 }));
    }

    #[test]
    fn one_byte_reader_still_roundtrips() {
        // A reader that doles out one byte per call exercises the short-
        // read retry and the partial-record carryover.
        struct Dribble<'a>(&'a [u8]);
        impl Read for Dribble<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() || buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let trace = sample(300);
        let mut bytes = Vec::new();
        write_binary(&mut bytes, &trace).unwrap();
        let mut back = Vec::new();
        let n = read_binary(&mut Dribble(&bytes), |c| back.extend_from_slice(c)).unwrap();
        assert_eq!(n, 300);
        assert_eq!(back, trace);
    }

    #[test]
    fn incremental_writer_matches_one_shot() {
        let trace = sample(1000);
        let mut one_shot = Vec::new();
        write_binary(&mut one_shot, &trace).unwrap();
        let mut incremental = Vec::new();
        let mut w = BinaryTraceWriter::new(&mut incremental).unwrap();
        for &a in &trace {
            w.write(a).unwrap();
        }
        assert_eq!(w.records(), 1000);
        w.finish().unwrap();
        assert_eq!(one_shot, incremental);
    }
}
