//! Replaying an ingested trace through the cache simulator.
//!
//! A [`Replayer`] is a bundle of live analysis sinks — plain caches,
//! victim-cache scenarios, per-set heat trackers, and one exact or
//! SHARDS-sampled reuse analyzer — fed chunk by chunk from the streaming
//! readers. Every sink consumes each chunk in order, so one pass over
//! the file answers every configured question; memory is the sinks'
//! state plus one chunk buffer, never the trace.
//!
//! The plain-cache path uses the same [`Cache::run_slice`] lane kernels
//! the kernel-based batch engine uses, which is what makes the
//! record-then-replay differential tests meaningful: a trace recorded
//! from a built-in kernel replays to bit-identical miss counts.

use pad_cache_sim::{
    Access, Cache, CacheConfig, CacheStats, ReuseHistogram, SampledReuseAnalyzer, SetHeatReport,
    SetHeatTracker, VictimCache, VictimStats,
};
use pad_telemetry::{Event, Value};

/// What a replay should measure. Build with the `with_*` methods; an
/// empty request still counts records (useful as a format check).
#[derive(Debug, Clone, Default)]
pub struct ReplayRequest {
    plain: Vec<CacheConfig>,
    victim: Vec<(CacheConfig, usize)>,
    heat: Vec<CacheConfig>,
    reuse: Option<(u64, u32)>,
}

impl ReplayRequest {
    /// An empty request.
    pub fn new() -> Self {
        ReplayRequest::default()
    }

    /// Adds a plain cache simulation (any geometry, XOR-indexed
    /// included).
    pub fn with_plain(mut self, config: CacheConfig) -> Self {
        self.plain.push(config);
        self
    }

    /// Adds a victim-cache scenario: `config` backed by a
    /// `victim_lines`-entry fully-associative victim buffer.
    pub fn with_victim(mut self, config: CacheConfig, victim_lines: usize) -> Self {
        self.victim.push((config, victim_lines));
        self
    }

    /// Adds a per-set heat classification of `config`.
    pub fn with_heat(mut self, config: CacheConfig) -> Self {
        self.heat.push(config);
        self
    }

    /// Adds reuse-distance analysis at `line_size`, sampled at rate
    /// `2^-sample_log2` (0 = exact).
    pub fn with_reuse(mut self, line_size: u64, sample_log2: u32) -> Self {
        self.reuse = Some((line_size, sample_log2));
        self
    }

    /// True if no sink was configured.
    pub fn is_empty(&self) -> bool {
        self.plain.is_empty()
            && self.victim.is_empty()
            && self.heat.is_empty()
            && self.reuse.is_none()
    }

    /// Number of configured sinks.
    pub fn sinks(&self) -> usize {
        self.plain.len() + self.victim.len() + self.heat.len() + usize::from(self.reuse.is_some())
    }
}

/// Reuse-distance results of a replay.
#[derive(Debug, Clone)]
pub struct ReuseOutcome {
    /// The (rescaled, if sampled) distance histogram.
    pub histogram: ReuseHistogram,
    /// The sampling exponent the analysis ran with (0 = exact).
    pub sample_log2: u32,
    /// Accesses that entered the sampled sub-stream.
    pub sampled_accesses: u64,
}

/// Everything a finished replay measured.
#[derive(Debug, Clone)]
pub struct ReplayResults {
    /// Records replayed.
    pub accesses: u64,
    /// Statistics per [`ReplayRequest::with_plain`] entry, in order.
    pub plain: Vec<CacheStats>,
    /// Statistics per [`ReplayRequest::with_victim`] entry, in order.
    pub victim: Vec<VictimStats>,
    /// Reports per [`ReplayRequest::with_heat`] entry, in order.
    pub heat: Vec<SetHeatReport>,
    /// Reuse-distance outcome, if requested.
    pub reuse: Option<ReuseOutcome>,
}

/// The live sinks of an in-progress replay.
pub struct Replayer {
    plain: Vec<Cache>,
    victim: Vec<VictimCache>,
    heat: Vec<SetHeatTracker>,
    reuse: Option<SampledReuseAnalyzer>,
    accesses: u64,
    start_us: u64,
}

impl Replayer {
    /// Instantiates the sinks of `request`.
    pub fn new(request: &ReplayRequest) -> Self {
        Replayer {
            plain: request.plain.iter().map(|c| Cache::new(*c)).collect(),
            victim: request
                .victim
                .iter()
                .map(|(c, lines)| VictimCache::new(*c, *lines))
                .collect(),
            heat: request
                .heat
                .iter()
                .map(|c| SetHeatTracker::new(*c))
                .collect(),
            reuse: request
                .reuse
                .map(|(line, k)| SampledReuseAnalyzer::new(line, k)),
            accesses: 0,
            start_us: pad_telemetry::now_us(),
        }
    }

    /// Feeds one decoded chunk to every sink. Chunk boundaries are
    /// invisible to the results — any split of the same trace produces
    /// identical outcomes.
    pub fn feed(&mut self, chunk: &[Access]) {
        self.accesses += chunk.len() as u64;
        if pad_telemetry::metrics_enabled() {
            crate::metrics::ingest_metrics()
                .records
                .add(chunk.len() as u64);
        }
        for cache in &mut self.plain {
            cache.run_slice(chunk);
        }
        for victim in &mut self.victim {
            victim.run_slice(chunk);
        }
        for heat in &mut self.heat {
            heat.run_slice(chunk);
        }
        if let Some(reuse) = &mut self.reuse {
            reuse.run_slice(chunk);
        }
    }

    /// Records replayed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Closes the replay, emitting telemetry and collecting results.
    pub fn finish(self) -> ReplayResults {
        let heat: Vec<SetHeatReport> = self.heat.iter().map(|h| h.report()).collect();
        for (i, report) in heat.iter().enumerate() {
            pad_telemetry::emit(|| {
                let c = report.class_counts();
                Event::counter(
                    "cache",
                    format!("ingest/heat{i}"),
                    vec![
                        ("very_hot_sets", Value::U64(c[0])),
                        ("hot_sets", Value::U64(c[1])),
                        ("cold_sets", Value::U64(c[2])),
                        ("very_cold_sets", Value::U64(c[3])),
                        ("evictions", Value::U64(report.total_evictions())),
                    ],
                )
            });
        }
        if let Some(reuse) = &self.reuse {
            pad_telemetry::emit(|| {
                Event::counter(
                    "reuse",
                    "ingest/reuse",
                    vec![
                        ("sample_log2", Value::U64(u64::from(reuse.sample_log2()))),
                        ("sampled", Value::U64(reuse.sampled_accesses())),
                        ("total", Value::U64(reuse.total_accesses())),
                        (
                            "distinct_sampled_lines",
                            Value::U64(reuse.distinct_sampled_lines() as u64),
                        ),
                    ],
                )
            });
        }
        let sinks = (self.plain.len()
            + self.victim.len()
            + self.heat.len()
            + usize::from(self.reuse.is_some())) as u64;
        let accesses = self.accesses;
        let start_us = self.start_us;
        pad_telemetry::emit(|| {
            Event::span(
                start_us,
                "sim",
                "ingest/replay",
                vec![
                    ("accesses", Value::U64(accesses)),
                    ("sinks", Value::U64(sinks)),
                ],
            )
        });
        if pad_telemetry::metrics_enabled() {
            let m = crate::metrics::ingest_metrics();
            let elapsed = pad_telemetry::now_us().saturating_sub(start_us);
            m.replays.inc();
            m.replay_us.record(elapsed);
            if elapsed > 0 {
                let rate = (accesses as f64 * 1e6 / elapsed as f64) as i64;
                m.replay_records_per_sec.set(rate);
            }
        }
        ReplayResults {
            accesses: self.accesses,
            plain: self.plain.iter().map(|c| *c.stats()).collect(),
            victim: self.victim.iter().map(|v| *v.stats()).collect(),
            heat,
            reuse: self.reuse.map(|r| ReuseOutcome {
                sample_log2: r.sample_log2(),
                sampled_accesses: r.sampled_accesses(),
                histogram: r.into_histogram(),
            }),
        }
    }
}

/// One-call replay of an in-memory trace (tests, small traces).
pub fn replay_slice(trace: &[Access], request: &ReplayRequest) -> ReplayResults {
    let mut replayer = Replayer::new(request);
    replayer.feed(trace);
    replayer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_cache_sim::XorShift64Star;

    fn trace(n: usize) -> Vec<Access> {
        let mut rng = XorShift64Star::new(3);
        (0..n)
            .map(|_| {
                let addr = rng.below(1 << 13);
                if rng.below(4) == 0 {
                    Access::write(addr)
                } else {
                    Access::read(addr)
                }
            })
            .collect()
    }

    #[test]
    fn chunk_boundaries_do_not_change_results() {
        let t = trace(10_000);
        let request = ReplayRequest::new()
            .with_plain(CacheConfig::try_new(1024, 32, 1).unwrap())
            .with_victim(CacheConfig::try_new(1024, 32, 1).unwrap(), 8)
            .with_heat(CacheConfig::try_new(1024, 32, 2).unwrap())
            .with_reuse(32, 0);
        assert_eq!(request.sinks(), 4);

        let whole = replay_slice(&t, &request);
        let mut split = Replayer::new(&request);
        for chunk in t.chunks(997) {
            split.feed(chunk);
        }
        let split = split.finish();

        assert_eq!(whole.accesses, split.accesses);
        assert_eq!(whole.plain, split.plain);
        assert_eq!(whole.victim, split.victim);
        assert_eq!(whole.heat, split.heat);
        assert_eq!(
            whole.reuse.as_ref().unwrap().histogram,
            split.reuse.as_ref().unwrap().histogram
        );
    }

    #[test]
    fn plain_replay_matches_direct_cache_run() {
        let t = trace(5000);
        let cfg = CacheConfig::try_new(2048, 32, 4).unwrap();
        let mut direct = Cache::new(cfg);
        direct.run_slice(&t);
        let results = replay_slice(&t, &ReplayRequest::new().with_plain(cfg));
        assert_eq!(&results.plain[0], direct.stats());
    }

    #[test]
    fn empty_request_counts_records() {
        let results = replay_slice(&trace(123), &ReplayRequest::new());
        assert!(ReplayRequest::new().is_empty());
        assert_eq!(results.accesses, 123);
        assert!(results.plain.is_empty() && results.heat.is_empty());
    }
}
