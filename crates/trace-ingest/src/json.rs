//! Minimal JSON for the advisor wire protocol.
//!
//! The workspace is deliberately dependency-free, so the NDJSON protocol
//! carries its own JSON layer: a recursive-descent parser with hard
//! depth and length limits (adversarial frames must exhaust a limit,
//! never the stack or the heap), and a deterministic writer (insertion
//! order, shortest-roundtrip floats) so identical answers serialize to
//! identical bytes — the property the crash-safe answer cache's
//! bit-exact replay rests on.
//!
//! Parsing is total: every input either yields a [`Json`] value or a
//! [`JsonError`]; no input panics.

// The crate denies `unsafe_code`; this module's single unsafe block
// (re-slicing a `&str`'s already-validated bytes in the string scanner)
// is the one local exception.
#![allow(unsafe_code)]

use std::fmt;

/// Maximum nesting depth accepted by [`parse`]. Deep enough for any real
/// request, shallow enough that recursion can never approach the stack
/// guard page.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value. Objects preserve insertion order (duplicate keys
/// keep the last occurrence on lookup, like serde_json's map behavior).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part that fits an `i64`.
    Int(i64),
    /// Any other finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64` (integers only — floats are not truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes deterministically into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// A non-finite float has no JSON representation; it serializes as
/// `null` rather than producing an invalid document.
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&format!("{x}"));
    } else {
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error (an NDJSON frame is exactly one value).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_lit(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.fail("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.fail("unexpected end of input")),
            Some(b'n') => self.expect_lit("null", Json::Null),
            Some(b't') => self.expect_lit("true", Json::Bool(true)),
            Some(b'f') => self.expect_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Ok(Json::Arr(items));
                    }
                    if !self.eat(b',') {
                        return Err(self.fail("expected `,` or `]` in array"));
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b'"') {
                        return Err(self.fail("expected a string key in object"));
                    }
                    let key = self.string()?;
                    self.skip_ws();
                    if !self.eat(b':') {
                        return Err(self.fail("expected `:` after object key"));
                    }
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Ok(Json::Obj(pairs));
                    }
                    if !self.eat(b',') {
                        return Err(self.fail("expected `,` or `}` in object"));
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.fail("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        debug_assert_eq!(self.bytes.get(self.pos), Some(&b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate; anything
                            // else is a typed error, never a panic.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if !(self.bytes.get(self.pos + 1) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u'))
                                {
                                    return Err(self.fail("lone high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.fail("invalid low surrogate"));
                                }
                                let combined = 0x10000
                                    + ((u32::from(unit) - 0xD800) << 10)
                                    + (u32::from(low) - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(u32::from(unit))
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.fail("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.fail("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.fail("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar; input is a &str, so the
                    // encoding is already valid.
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let Some(c) = s.chars().next() else {
                        return Err(self.fail("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits after `\u` (cursor on the `u`); leaves the
    /// cursor on the final digit (the escape loop advances past it).
    fn hex4(&mut self) -> Result<u16, JsonError> {
        let start = self.pos + 1;
        let Some(digits) = self.bytes.get(start..start + 4) else {
            return Err(self.fail("truncated unicode escape"));
        };
        let Ok(s) = std::str::from_utf8(digits) else {
            return Err(self.fail("invalid unicode escape"));
        };
        let unit = u16::from_str_radix(s, 16).map_err(|_| self.fail("invalid unicode escape"))?;
        self.pos = start + 3;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if !self.eat(b'-') {
                let _ = self.eat(b'+');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => Err(self.fail("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "9223372036854775807",
            "1.5",
            "[1,2,[3,\"x\"]]",
            "{\"a\":1,\"b\":{\"c\":[true,null]}}",
            "\"hi \\\"there\\\" \\n\"",
        ] {
            let v = parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let mut out = String::new();
            v.write(&mut out);
            assert_eq!(parse(&out), Ok(v), "{text} -> {out}");
        }
    }

    #[test]
    fn objects_look_up_and_numbers_type() {
        let v = parse(r#"{"size": 16384, "rate": 2.5, "name": "EXPL", "x": 1, "x": 2}"#)
            .expect("parses");
        assert_eq!(v.get("size").and_then(Json::as_u64), Some(16384));
        assert_eq!(v.get("rate"), Some(&Json::Num(2.5)));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("EXPL"));
        assert_eq!(v.get("x").and_then(Json::as_i64), Some(2), "last key wins");
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn adversarial_inputs_fail_cleanly() {
        for bad in [
            "",
            "   ",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "01x",
            "\"unterminated",
            "\"\\u12\"",
            "\"\\ud800\"",
            "1e999",
            "{\"a\":1}garbage",
            "\"\\q\"",
            "[1 2]",
            "-",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Depth bomb: limited, not stack-overflowing.
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
        // At the limit it still works.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let v = parse(r#""caf\u00e9 \ud83d\ude00 tab\t""#).expect("parses");
        assert_eq!(v.as_str(), Some("café 😀 tab\t"));
        let mut out = String::new();
        v.write(&mut out);
        assert_eq!(parse(&out), Ok(v));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let mut out = String::new();
        Json::Num(f64::NAN).write(&mut out);
        assert_eq!(out, "null");
    }
}
