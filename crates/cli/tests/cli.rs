//! End-to-end tests of `padtool` driven through the library entry point.

use pad_cli::run;

fn args(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

#[test]
fn suite_lists_kernels() {
    run(&args(&["suite"])).expect("suite works");
}

#[test]
fn help_is_not_an_error() {
    run(&args(&["help"])).expect("help works");
}

#[test]
fn unknown_command_is_reported() {
    let err = run(&args(&["frobnicate"])).expect_err("unknown command");
    assert!(err.contains("unknown command"));
}

#[test]
fn missing_target_is_reported() {
    let err = run(&args(&["simulate"])).expect_err("needs target");
    assert!(err.contains("needs a target"));
}

#[test]
fn bundled_kernels_resolve_case_insensitively() {
    run(&args(&["parse", "jacobi512", "--n", "16"])).expect("bundled kernel parses");
}

#[test]
fn analyze_layout_simulate_estimate_tile_on_a_kernel() {
    for cmd in ["analyze", "layout", "simulate", "estimate", "tile"] {
        run(&args(&[cmd, "JACOBI512", "--n", "64", "--cache", "2k"]))
            .unwrap_or_else(|e| panic!("{cmd} failed: {e}"));
    }
}

#[test]
fn padlite_algorithm_is_selectable() {
    run(&args(&[
        "layout",
        "EXPL512",
        "--n",
        "32",
        "--algorithm",
        "padlite",
    ]))
    .expect("padlite runs");
    let err = run(&args(&[
        "layout",
        "EXPL512",
        "--n",
        "32",
        "--algorithm",
        "magic",
    ]))
    .expect_err("bad algorithm");
    assert!(err.contains("unknown algorithm"));
}

#[test]
fn text_files_load_and_unreadable_targets_fail() {
    let dir = std::env::temp_dir().join("padtool_cli_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("tiny.pad");
    std::fs::write(
        &path,
        "program tiny\narray A(64, 64)\ndo i = 1, 64\n  do j = 1, 64\n    A(j, i) = A(j, i)\n  end\nend\n",
    )
    .expect("write");
    run(&args(&[
        "simulate",
        path.to_str().expect("utf8"),
        "--cache",
        "1k",
    ]))
    .expect("file target works");

    let err = run(&args(&["parse", "/nonexistent/nope.pad"])).expect_err("bad path");
    assert!(err.contains("neither a bundled kernel"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_cache_geometry_is_reported() {
    let err = run(&args(&[
        "simulate",
        "JACOBI512",
        "--n",
        "32",
        "--cache",
        "1000",
    ]))
    .expect_err("bad");
    assert!(err.contains("power of two"));
}

#[test]
fn ora_has_nothing_to_do_but_everything_still_works() {
    for cmd in ["analyze", "layout", "simulate", "estimate", "tile"] {
        run(&args(&[cmd, "ORA"])).unwrap_or_else(|e| panic!("{cmd} on ORA failed: {e}"));
    }
}

#[test]
fn record_and_ingest_roundtrip_binary_and_ndjson() {
    let dir = std::env::temp_dir().join(format!("padtool_ingest_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let bin = dir.join("dot.trc");
    let nd = dir.join("dot.ndjson");
    run(&args(&[
        "record",
        "DOT256K",
        "--n",
        "256",
        "--out",
        bin.to_str().unwrap(),
    ]))
    .expect("record binary");
    run(&args(&[
        "record",
        "DOT256K",
        "--n",
        "256",
        "--out",
        nd.to_str().unwrap(),
    ]))
    .expect("record ndjson (format guessed from extension)");

    // Both encodings decode to the same access stream.
    let mut from_bin = Vec::new();
    pad_trace_ingest::read_trace_file(&bin, None, |c| from_bin.extend_from_slice(c))
        .expect("binary reads back");
    let mut from_nd = Vec::new();
    pad_trace_ingest::read_trace_file(&nd, None, |c| from_nd.extend_from_slice(c))
        .expect("ndjson reads back");
    assert_eq!(from_bin, from_nd, "encodings carry the identical stream");

    // Replaying the recorded trace reproduces the kernel's simulated
    // miss counts bit-identically — the tentpole acceptance criterion.
    let program = pad_kernels::suite()
        .into_iter()
        .find(|k| k.name == "DOT256K")
        .map(|k| (k.spec)(256))
        .expect("bundled kernel");
    let layout = pad_core::DataLayout::original(&program);
    let cache = pad_cache_sim::CacheConfig::paper_base();
    let direct = pad_trace::simulate_program(&program, &layout, &cache);
    let replayed = pad_trace_ingest::replay::replay_slice(
        &from_bin,
        &pad_trace_ingest::replay::ReplayRequest::new().with_plain(cache),
    );
    assert_eq!(
        replayed.plain[0], direct,
        "trace replay matches direct simulation"
    );

    // The full diagnostic flag set runs end to end and the per-set
    // heat CSV lands on disk with one row per cache set.
    let csv = dir.join("heat.csv");
    run(&args(&[
        "ingest",
        bin.to_str().unwrap(),
        "--xor",
        "--victim",
        "8",
        "--heat",
        "--mrc",
        "--sample",
        "2",
        "--csv",
        csv.to_str().unwrap(),
    ]))
    .expect("ingest with all diagnostics");
    let csv_text = std::fs::read_to_string(&csv).expect("CSV written");
    assert!(
        csv_text.starts_with("set,"),
        "CSV header first: {csv_text:?}"
    );
    assert_eq!(csv_text.lines().count(), cache.num_sets() as usize + 1);

    let err = run(&args(&["ingest", "/no/such.trc"])).expect_err("missing trace");
    assert!(err.contains("/no/such.trc"));
    let err = run(&args(&["record", "DOT256K"])).expect_err("record without --out");
    assert!(err.contains("--out"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn record_and_ingest_work_as_real_processes() {
    use std::process::Command;

    let dir = std::env::temp_dir().join(format!("padtool_ingest_proc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let trace = dir.join("dot.trc");

    let record = Command::new(env!("CARGO_BIN_EXE_padtool"))
        .args([
            "record",
            "DOT256K",
            "--n",
            "256",
            "--out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn padtool record");
    assert!(record.status.success(), "record failed: {record:?}");

    let ingest = |extra: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_padtool"))
            .arg("ingest")
            .arg(trace.to_str().unwrap())
            .args(extra)
            .output()
            .expect("spawn padtool ingest");
        assert!(out.status.success(), "ingest failed: {out:?}");
        String::from_utf8(out.stdout).expect("UTF-8 output")
    };

    // The process-level replay reports the exact miss count the
    // in-process simulator computes for the same kernel and cache.
    let program = pad_kernels::suite()
        .into_iter()
        .find(|k| k.name == "DOT256K")
        .map(|k| (k.spec)(256))
        .expect("bundled kernel");
    let layout = pad_core::DataLayout::original(&program);
    let expected =
        pad_trace::simulate_program(&program, &layout, &pad_cache_sim::CacheConfig::paper_base());
    let plain = ingest(&[]);
    assert!(
        plain.contains(&format!("replayed {} access(es)", expected.accesses)),
        "access count reported: {plain}"
    );
    assert!(
        plain.contains(&expected.misses.to_string()),
        "exact miss count {} reported: {plain}",
        expected.misses
    );

    // Repeat runs are bit-identical, flags and all.
    let full_flags = ["--xor", "--victim", "4", "--heat", "--mrc"];
    assert_eq!(
        ingest(&full_flags),
        ingest(&full_flags),
        "deterministic output"
    );
    std::fs::remove_dir_all(&dir).ok();
}
