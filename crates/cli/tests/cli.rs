//! End-to-end tests of `padtool` driven through the library entry point.

use pad_cli::run;

fn args(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

#[test]
fn suite_lists_kernels() {
    run(&args(&["suite"])).expect("suite works");
}

#[test]
fn help_is_not_an_error() {
    run(&args(&["help"])).expect("help works");
}

#[test]
fn unknown_command_is_reported() {
    let err = run(&args(&["frobnicate"])).expect_err("unknown command");
    assert!(err.contains("unknown command"));
}

#[test]
fn missing_target_is_reported() {
    let err = run(&args(&["simulate"])).expect_err("needs target");
    assert!(err.contains("needs a target"));
}

#[test]
fn bundled_kernels_resolve_case_insensitively() {
    run(&args(&["parse", "jacobi512", "--n", "16"])).expect("bundled kernel parses");
}

#[test]
fn analyze_layout_simulate_estimate_tile_on_a_kernel() {
    for cmd in ["analyze", "layout", "simulate", "estimate", "tile"] {
        run(&args(&[cmd, "JACOBI512", "--n", "64", "--cache", "2k"]))
            .unwrap_or_else(|e| panic!("{cmd} failed: {e}"));
    }
}

#[test]
fn padlite_algorithm_is_selectable() {
    run(&args(&["layout", "EXPL512", "--n", "32", "--algorithm", "padlite"]))
        .expect("padlite runs");
    let err = run(&args(&["layout", "EXPL512", "--n", "32", "--algorithm", "magic"]))
        .expect_err("bad algorithm");
    assert!(err.contains("unknown algorithm"));
}

#[test]
fn text_files_load_and_unreadable_targets_fail() {
    let dir = std::env::temp_dir().join("padtool_cli_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("tiny.pad");
    std::fs::write(
        &path,
        "program tiny\narray A(64, 64)\ndo i = 1, 64\n  do j = 1, 64\n    A(j, i) = A(j, i)\n  end\nend\n",
    )
    .expect("write");
    run(&args(&["simulate", path.to_str().expect("utf8"), "--cache", "1k"]))
        .expect("file target works");

    let err = run(&args(&["parse", "/nonexistent/nope.pad"])).expect_err("bad path");
    assert!(err.contains("neither a bundled kernel"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_cache_geometry_is_reported() {
    let err =
        run(&args(&["simulate", "JACOBI512", "--n", "32", "--cache", "1000"])).expect_err("bad");
    assert!(err.contains("power of two"));
}

#[test]
fn ora_has_nothing_to_do_but_everything_still_works() {
    for cmd in ["analyze", "layout", "simulate", "estimate", "tile"] {
        run(&args(&[cmd, "ORA"])).unwrap_or_else(|e| panic!("{cmd} on ORA failed: {e}"));
    }
}
