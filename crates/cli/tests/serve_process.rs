//! Process-level kill-and-restart smoke test for `padtool serve`: a
//! real server process answers queries, dies to SIGKILL with no chance
//! to clean up, and a fresh process over the same store file answers
//! the same queries bit-exactly from journal replay — zero
//! re-simulation, verified through the server's own `stats` counters.
//!
//! Every pipe read goes through a watchdog thread with a hard timeout,
//! so a wedged server fails the test instead of hanging the suite.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

/// Hard cap on any single wait in this test.
const STEP_TIMEOUT: Duration = Duration::from_secs(60);

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("padtool-serve-{name}-{}", std::process::id()));
    path
}

/// A running `padtool serve` process with line-oriented I/O helpers.
struct ServerProcess {
    child: Child,
    stdin: Option<ChildStdin>,
    lines: mpsc::Receiver<String>,
}

impl ServerProcess {
    fn spawn(store: &std::path::Path) -> ServerProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_padtool"))
            .arg("serve")
            .env("RIVERA_ADVISOR_STORE", store)
            .env("RIVERA_ADVISOR_THREADS", "1")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn padtool serve");
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        // A reader thread turns blocking pipe reads into channel recvs
        // the test can time out on. The thread exits when the pipe
        // closes (process death) and the sender drop closes the channel.
        let (tx, lines) = mpsc::channel::<String>();
        std::thread::spawn(move || forward_lines(stdout, &tx));
        ServerProcess {
            child,
            stdin: Some(stdin),
            lines,
        }
    }

    fn send(&mut self, frame: &str) {
        let stdin = self.stdin.as_mut().expect("stdin still open");
        stdin.write_all(frame.as_bytes()).expect("server reading");
        stdin.write_all(b"\n").expect("server reading");
        stdin.flush().expect("server reading");
    }

    fn recv(&self) -> String {
        match self.lines.recv_timeout(STEP_TIMEOUT) {
            Ok(line) => line,
            Err(e) => panic!("no response from server within {STEP_TIMEOUT:?}: {e}"),
        }
    }

    /// SIGKILL: the process gets no chance to flush or clean up beyond
    /// what it already wrote — exactly the crash the journal is for.
    fn kill(mut self) {
        self.child.kill().expect("kill");
        let _ = self.child.wait();
    }

    /// Polite exit: close stdin (EOF) and wait for the process.
    fn finish(mut self) {
        drop(self.stdin.take());
        let status = self.child.wait().expect("wait");
        assert!(status.success(), "server exited with {status}");
    }
}

fn forward_lines(stdout: ChildStdout, tx: &mpsc::Sender<String>) {
    let reader = BufReader::new(stdout);
    for line in reader.lines() {
        match line {
            Ok(text) => {
                if tx.send(text).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Pulls `"field":value` (a number or a quoted/bracketed span) out of a
/// response line without a JSON parser — the assertions here only need
/// exact-substring checks and small integers.
fn field<'a>(line: &'a str, name: &str) -> &'a str {
    let key = format!("\"{name}\":");
    let start = line
        .find(&key)
        .unwrap_or_else(|| panic!("no {name} in {line}"))
        + key.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .scan(0i32, |depth, (i, c)| {
            *depth += match c {
                '{' | '[' => 1,
                '}' | ']' => -1,
                _ => 0,
            };
            Some((i, c, *depth))
        })
        .find(|&(_, c, depth)| depth < 0 || (depth == 0 && c == ','))
        .map_or(rest.len(), |(i, _, _)| i);
    &rest[..end]
}

fn counter(stats_line: &str, name: &str) -> i64 {
    field(stats_line, name)
        .parse()
        .unwrap_or_else(|e| panic!("bad counter {name}: {e}"))
}

#[test]
fn a_killed_server_process_replays_its_answers_bit_exactly_on_restart() {
    let store = scratch("replay");
    let _ = std::fs::remove_file(&store);

    let queries: Vec<String> = (0..3i64)
        .map(|i| {
            format!(
                r#"{{"id": {i}, "op": "advise", "kernel": "DOT256K", "n": {}}}"#,
                320 + 16 * i
            )
        })
        .collect();

    // Life 1: cold queries simulate and persist; then SIGKILL.
    let mut first = ServerProcess::spawn(&store);
    let mut cold_results = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        first.send(q);
        let line = first.recv();
        assert_eq!(field(&line, "status"), "\"ok\"", "cold query {i}: {line}");
        assert_eq!(
            field(&line, "cached"),
            "false",
            "cold query {i} is not cached"
        );
        cold_results.push(field(&line, "result").to_string());
    }
    first.send(r#"{"id": 90, "op": "stats"}"#);
    let stats = first.recv();
    assert_eq!(counter(&stats, "simulations"), 3);
    assert_eq!(counter(&stats, "cache_hits"), 0);
    first.kill();

    // Life 2: a fresh process over the same store answers the same
    // queries bit-exactly from replay, without one simulator run.
    let mut second = ServerProcess::spawn(&store);
    for (i, q) in queries.iter().enumerate() {
        second.send(q);
        let line = second.recv();
        assert_eq!(field(&line, "status"), "\"ok\"", "warm query {i}: {line}");
        assert_eq!(
            field(&line, "cached"),
            "true",
            "warm query {i} replays: {line}"
        );
        assert_eq!(
            field(&line, "result"),
            cold_results[i],
            "query {i} replays bit-exactly across the kill"
        );
    }
    second.send(r#"{"id": 91, "op": "stats"}"#);
    let stats = second.recv();
    assert_eq!(
        counter(&stats, "replayed"),
        3,
        "every journal record survived the kill"
    );
    assert_eq!(
        counter(&stats, "simulations"),
        0,
        "warm answers never re-simulate"
    );
    assert_eq!(counter(&stats, "cache_hits"), 3);

    // A graceful shutdown acknowledges before exit.
    second.send(r#"{"id": 92, "op": "shutdown"}"#);
    let bye = second.recv();
    assert_eq!(field(&bye, "bye"), "true", "shutdown acknowledges: {bye}");
    second.finish();

    let _ = std::fs::remove_file(&store);
}

#[test]
fn the_server_process_survives_garbage_and_answers_typed_errors() {
    let store = scratch("garbage");
    let _ = std::fs::remove_file(&store);

    let mut server = ServerProcess::spawn(&store);
    server.send("this is not json");
    let line = server.recv();
    assert_eq!(field(&line, "status"), "\"error\"");
    assert_eq!(field(&line, "error"), "\"malformed\"");

    server.send(r#"{"id": 1, "op": "advise", "kernel": "NO-SUCH-KERNEL"}"#);
    let line = server.recv();
    assert_eq!(field(&line, "status"), "\"error\"");
    assert_eq!(field(&line, "error"), "\"invalid\"");

    // Still alive and serving after both.
    server.send(r#"{"id": 2, "op": "ping"}"#);
    let line = server.recv();
    assert_eq!(
        field(&line, "pong"),
        "true",
        "server survives garbage: {line}"
    );
    server.finish();

    let _ = std::fs::remove_file(&store);
}
