//! `padtool top` — a refreshing terminal dashboard over a live advisor.
//!
//! Spawns `padtool serve` as a child process (or any command given via
//! `--cmd`), polls it with `{"op":"metrics"}` NDJSON frames over its
//! stdin/stdout, and renders the numbers an operator watches first:
//! request rate, advise p50/p95/p99, queue depth and inflight jobs,
//! shed/degraded percentages, and the SLO burn ratio with the error
//! breakdown behind it.
//!
//! Rates and percentages come from **counter deltas** between
//! consecutive polls, so the dashboard shows current behavior, not
//! lifetime averages; the first frame (no previous sample) shows
//! lifetime totals with rates dashed out. `--once` prints a single
//! snapshot without clearing the screen — handy for scripts and tests.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

use pad_advisor::json::{self, Json};

/// Flags accepted by `padtool top`.
struct TopOptions {
    /// Print one snapshot and exit instead of refreshing.
    once: bool,
    /// Seconds between polls.
    interval: u64,
    /// Stop after this many polls (0 = until interrupted).
    count: u64,
    /// Override for the advisor command (whitespace-split).
    cmd: Option<String>,
}

impl TopOptions {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = TopOptions {
            once: false,
            interval: 2,
            count: 0,
            cmd: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--once" => opts.once = true,
                "--interval" => {
                    opts.interval = value("--interval")?
                        .parse()
                        .map_err(|_| "--interval needs whole seconds".to_string())?;
                    if opts.interval == 0 {
                        return Err("--interval must be at least 1 second".to_string());
                    }
                }
                "--count" => {
                    opts.count = value("--count")?
                        .parse()
                        .map_err(|_| "--count needs a number".to_string())?;
                }
                "--cmd" => opts.cmd = Some(value("--cmd")?),
                other => return Err(format!("unknown top option `{other}`")),
            }
        }
        Ok(opts)
    }
}

/// One parsed `metrics` response, reduced to what the dashboard shows.
#[derive(Debug, Clone, Default)]
struct Sample {
    /// Client-side timestamp of the poll, microseconds.
    at_us: u64,
    enabled: bool,
    slo_ms: i64,
    /// Frames received across every operation.
    requests: i64,
    /// Advise latency percentiles/extreme, microseconds.
    p50: i64,
    p95: i64,
    p99: i64,
    max: i64,
    queue_depth: i64,
    inflight: i64,
    shed: i64,
    degraded: i64,
    cache_hits: i64,
    slo_good: i64,
    slo_bad: i64,
    /// Nonzero typed-error counters, as (kind, count).
    errors: Vec<(String, i64)>,
}

fn scalar(section: Option<&Json>, key: &str) -> i64 {
    section
        .and_then(|s| s.get(key))
        .and_then(Json::as_i64)
        .unwrap_or(0)
}

/// Sums every entry of `section` whose flat name starts with `prefix`
/// (e.g. all `requests_total{op=...}` series).
fn sum_prefix(section: Option<&Json>, prefix: &str) -> i64 {
    let Some(Json::Obj(pairs)) = section else {
        return 0;
    };
    pairs
        .iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .filter_map(|(_, v)| v.as_i64())
        .sum()
}

impl Sample {
    /// Reduces the `metrics` field of a server response. Unknown or
    /// missing series read as zero, so old servers degrade gracefully.
    fn from_metrics(metrics: &Json, at_us: u64) -> Sample {
        let counters = metrics.get("counters");
        let gauges = metrics.get("gauges");
        let advise_latency = metrics
            .get("histograms")
            .and_then(|h| h.get("pad_advisor_request_latency_us{op=\"advise\"}"));
        let mut errors: Vec<(String, i64)> = Vec::new();
        if let Some(Json::Obj(pairs)) = counters {
            for (k, v) in pairs {
                let Some(kind) = k
                    .strip_prefix("pad_advisor_errors_total{kind=\"")
                    .and_then(|rest| rest.strip_suffix("\"}"))
                else {
                    continue;
                };
                match v.as_i64() {
                    Some(n) if n > 0 => errors.push((kind.to_string(), n)),
                    _ => {}
                }
            }
        }
        Sample {
            at_us,
            enabled: metrics
                .get("enabled")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            slo_ms: scalar(Some(metrics), "slo_ms"),
            requests: sum_prefix(counters, "pad_advisor_requests_total"),
            p50: scalar(advise_latency, "p50"),
            p95: scalar(advise_latency, "p95"),
            p99: scalar(advise_latency, "p99"),
            max: scalar(advise_latency, "max"),
            queue_depth: scalar(gauges, "pad_advisor_queue_depth"),
            inflight: scalar(gauges, "pad_advisor_inflight"),
            shed: scalar(counters, "pad_advisor_shed_total"),
            degraded: scalar(counters, "pad_advisor_degraded_total"),
            cache_hits: scalar(counters, "pad_advisor_cache_hits_total"),
            slo_good: scalar(counters, "pad_advisor_slo_good_total"),
            slo_bad: scalar(counters, "pad_advisor_slo_bad_total"),
            errors,
        }
    }
}

/// Microseconds, humanized: `850µs`, `12.3ms`, `4.0s`.
fn fmt_us(us: i64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.1}s", us as f64 / 1_000_000.0)
    }
}

/// `num` as a percentage of `den`, dashed out when `den` is zero.
fn pct(num: i64, den: i64) -> String {
    if den <= 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", num as f64 * 100.0 / den as f64)
    }
}

/// Renders one dashboard frame. `prev` (the previous poll) turns
/// counter totals into rates and interval-local percentages; without it
/// the frame reports lifetime numbers.
fn render(cur: &Sample, prev: Option<&Sample>) -> String {
    let mut out = String::new();
    let rate = prev.and_then(|p| {
        let dt_us = cur.at_us.saturating_sub(p.at_us);
        (dt_us > 0).then(|| (cur.requests - p.requests) as f64 * 1e6 / dt_us as f64)
    });
    let window = |total: i64, get: fn(&Sample) -> i64| match prev {
        Some(p) => total - get(p),
        None => total,
    };
    let shed = window(cur.shed, |s| s.shed);
    let degraded = window(cur.degraded, |s| s.degraded);
    let requests = window(cur.requests, |s| s.requests);
    let good = window(cur.slo_good, |s| s.slo_good);
    let bad = window(cur.slo_bad, |s| s.slo_bad);

    out.push_str("padtool top — layout-advisor service\n\n");
    if !cur.enabled {
        out.push_str("  !! metrics are DISABLED on the server (RIVERA_METRICS=off)\n\n");
    }
    out.push_str(&format!(
        "  requests   {:>8}   {}\n",
        cur.requests,
        match rate {
            Some(r) => format!("{r:.1}/s"),
            None => "-/s".to_string(),
        }
    ));
    out.push_str(&format!(
        "  advise latency   p50 {}   p95 {}   p99 {}   max {}\n",
        fmt_us(cur.p50),
        fmt_us(cur.p95),
        fmt_us(cur.p99),
        fmt_us(cur.max)
    ));
    out.push_str(&format!(
        "  queue depth {:>4}   inflight {:>4}   cache hits {}\n",
        cur.queue_depth, cur.inflight, cur.cache_hits
    ));
    out.push_str(&format!(
        "  shed {} ({shed})   degraded {} ({degraded})\n",
        pct(shed, requests),
        pct(degraded, requests)
    ));
    if cur.slo_ms > 0 {
        out.push_str(&format!(
            "  SLO {}ms   burn {}   (good {good} / bad {bad})\n",
            cur.slo_ms,
            pct(bad, good + bad)
        ));
    } else {
        out.push_str("  SLO disabled (RIVERA_SLO_MS=0)\n");
    }
    if !cur.errors.is_empty() {
        let list: Vec<String> = cur
            .errors
            .iter()
            .map(|(kind, n)| format!("{kind} {n}"))
            .collect();
        out.push_str(&format!("  errors: {}\n", list.join(", ")));
    }
    out
}

/// A spawned advisor child plus the NDJSON plumbing to talk to it.
struct AdvisorClient {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
    next_id: u64,
}

impl AdvisorClient {
    fn spawn(cmd: Option<&str>) -> Result<Self, String> {
        let argv: Vec<String> = match cmd {
            Some(line) => {
                let parts: Vec<String> = line.split_whitespace().map(str::to_string).collect();
                if parts.is_empty() {
                    return Err("--cmd must name a command".to_string());
                }
                parts
            }
            None => {
                let exe = std::env::current_exe()
                    .map_err(|e| format!("cannot locate the padtool binary: {e}"))?;
                vec![exe.display().to_string(), "serve".to_string()]
            }
        };
        let mut child = Command::new(&argv[0])
            .args(&argv[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn `{}`: {e}", argv.join(" ")))?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout was piped"));
        Ok(AdvisorClient {
            child,
            stdin,
            stdout,
            next_id: 1,
        })
    }

    /// One `metrics` round trip; the response's `metrics` object.
    fn poll(&mut self) -> Result<Json, String> {
        let id = self.next_id;
        self.next_id += 1;
        writeln!(self.stdin, "{{\"id\":{id},\"op\":\"metrics\"}}")
            .and_then(|()| self.stdin.flush())
            .map_err(|e| format!("advisor went away: {e}"))?;
        let mut line = String::new();
        let n = self
            .stdout
            .read_line(&mut line)
            .map_err(|e| format!("cannot read from the advisor: {e}"))?;
        if n == 0 {
            return Err("the advisor closed its output (did it crash?)".to_string());
        }
        let resp = json::parse(line.trim_end())
            .map_err(|e| format!("unparseable advisor response: {e}"))?;
        if resp.get("status").and_then(Json::as_str) != Some("ok") {
            return Err(format!("advisor refused the metrics op: {}", line.trim()));
        }
        resp.get("metrics")
            .cloned()
            .ok_or_else(|| "response carried no `metrics` field".to_string())
    }

    /// Closes the child's stdin (the server exits at EOF) and reaps it.
    fn shutdown(mut self) {
        drop(self.stdin);
        let _ = self.child.wait();
    }
}

/// Entry point for `padtool top <args>`.
pub fn cmd_top(args: &[String]) -> Result<(), String> {
    let opts = TopOptions::parse(args)?;
    let mut client = AdvisorClient::spawn(opts.cmd.as_deref())?;

    let mut prev: Option<Sample> = None;
    let mut polls = 0u64;
    let result = loop {
        let metrics = match client.poll() {
            Ok(m) => m,
            Err(e) => break Err(e),
        };
        let cur = Sample::from_metrics(&metrics, pad_telemetry::now_us());
        if opts.once {
            print!("{}", render(&cur, None));
            break Ok(());
        }
        // Clear the screen and repaint — classic `top` behavior.
        print!("\x1b[2J\x1b[H{}", render(&cur, prev.as_ref()));
        let _ = std::io::stdout().flush();
        prev = Some(cur);
        polls += 1;
        if opts.count > 0 && polls >= opts.count {
            break Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(opts.interval));
    };
    client.shutdown();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_from(text: &str, at_us: u64) -> Sample {
        Sample::from_metrics(&json::parse(text).expect("test JSON parses"), at_us)
    }

    const BUSY: &str = r#"{
        "enabled": true, "uptime_us": 5000000, "slo_ms": 250,
        "counters": {
            "pad_advisor_cache_hits_total": 3,
            "pad_advisor_degraded_total": 2,
            "pad_advisor_errors_total{kind=\"overloaded\"}": 4,
            "pad_advisor_errors_total{kind=\"parse\"}": 0,
            "pad_advisor_errors_total{kind=\"timeout\"}": 1,
            "pad_advisor_requests_total{op=\"advise\"}": 90,
            "pad_advisor_requests_total{op=\"ping\"}": 10,
            "pad_advisor_shed_total": 4,
            "pad_advisor_slo_bad_total": 7,
            "pad_advisor_slo_good_total": 83
        },
        "gauges": {
            "pad_advisor_inflight": 1,
            "pad_advisor_queue_depth": 5
        },
        "histograms": {
            "pad_advisor_request_latency_us{op=\"advise\"}": {
                "count": 90, "sum": 50000, "max": 9000,
                "p50": 300, "p95": 2500, "p99": 8000
            }
        }
    }"#;

    #[test]
    fn sample_reduces_the_metrics_payload() {
        let s = sample_from(BUSY, 1_000_000);
        assert!(s.enabled);
        assert_eq!(s.slo_ms, 250);
        assert_eq!(s.requests, 100, "requests sum across ops");
        assert_eq!((s.p50, s.p95, s.p99, s.max), (300, 2500, 8000, 9000));
        assert_eq!((s.queue_depth, s.inflight), (5, 1));
        assert_eq!((s.shed, s.degraded, s.cache_hits), (4, 2, 3));
        assert_eq!((s.slo_good, s.slo_bad), (83, 7));
        // Zero-count kinds are dropped; survivors keep key order.
        assert_eq!(
            s.errors,
            vec![("overloaded".to_string(), 4), ("timeout".to_string(), 1)]
        );
    }

    #[test]
    fn render_reports_lifetime_numbers_without_a_previous_sample() {
        let frame = render(&sample_from(BUSY, 1_000_000), None);
        assert!(frame.contains("requests        100   -/s"), "{frame}");
        assert!(
            frame.contains("p50 300µs   p95 2.5ms   p99 8.0ms   max 9.0ms"),
            "{frame}"
        );
        assert!(frame.contains("shed 4.0% (4)"), "{frame}");
        assert!(frame.contains("degraded 2.0% (2)"), "{frame}");
        assert!(
            frame.contains("SLO 250ms   burn 7.8%   (good 83 / bad 7)"),
            "{frame}"
        );
        assert!(frame.contains("errors: overloaded 4, timeout 1"), "{frame}");
    }

    #[test]
    fn render_uses_deltas_when_a_previous_sample_exists() {
        let prev = sample_from(BUSY, 1_000_000);
        let mut cur = prev.clone();
        cur.at_us = 3_000_000; // 2s later
        cur.requests += 50;
        cur.shed += 25;
        cur.slo_good += 20;
        cur.slo_bad += 20;
        let frame = render(&cur, Some(&prev));
        assert!(frame.contains("25.0/s"), "50 requests over 2s: {frame}");
        assert!(frame.contains("shed 50.0% (25)"), "{frame}");
        assert!(frame.contains("burn 50.0%"), "window burn: {frame}");
    }

    #[test]
    fn render_flags_disabled_metrics_and_disabled_slo() {
        let s = sample_from(r#"{"enabled": false, "slo_ms": 0}"#, 7);
        let frame = render(&s, None);
        assert!(frame.contains("metrics are DISABLED"), "{frame}");
        assert!(frame.contains("SLO disabled"), "{frame}");
    }

    #[test]
    fn humanized_durations_pick_sane_units() {
        assert_eq!(fmt_us(0), "0µs");
        assert_eq!(fmt_us(999), "999µs");
        assert_eq!(fmt_us(1_500), "1.5ms");
        assert_eq!(fmt_us(2_000_000), "2.0s");
    }

    #[test]
    fn top_options_parse_and_reject() {
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        let o = TopOptions::parse(&args(&["--once", "--interval", "5", "--count", "3"])).unwrap();
        assert!(o.once);
        assert_eq!((o.interval, o.count), (5, 3));
        assert!(TopOptions::parse(&args(&["--interval", "0"])).is_err());
        assert!(TopOptions::parse(&args(&["--bogus"])).is_err());
        assert!(TopOptions::parse(&args(&["--cmd"])).is_err());
    }
}
