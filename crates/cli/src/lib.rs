//! `padtool` — command-line driver for the conflict-miss padding
//! analysis.
//!
//! ```text
//! padtool suite                          list bundled benchmark kernels
//! padtool parse <file|kernel>            parse and pretty-print a program
//! padtool analyze <file|kernel> [opts]   report severe conflicts
//! padtool layout <file|kernel> [opts]    run PADLITE/PAD, print the layout
//! padtool simulate <file|kernel> [opts]  miss rates, original vs padded
//! padtool estimate <file|kernel> [opts]  analytic miss-rate model vs simulation
//! padtool tile <file|kernel> [opts]      conflict-free tile sizes per array
//! padtool search <file|kernel> [opts]    global layout search vs both heuristics
//! padtool record <file|kernel> [opts]    write the reference stream as a trace file
//! padtool ingest <trace> [opts]          replay an external trace through the simulator
//! padtool serve                          NDJSON advisor server on stdin/stdout
//! padtool top [opts]                     live dashboard over a spawned advisor
//!
//! options:
//!   --cache BYTES   cache size (default 16384)
//!   --line BYTES    line size (default 32)
//!   --ways N        associativity for simulation (default 1)
//!   --algorithm A   pad | padlite (default pad)
//!   --n N           problem size for bundled kernels (default: kernel's)
//!
//! search options (defaults from RIVERA_SEARCH_* where set):
//!   --strategy S    beam | anneal
//!   --budget N      fast-evaluation candidate budget
//!   --seed N        annealer RNG seed
//!   --beam N        beam width
//!
//! top options:
//!   --once          print one snapshot and exit (no screen clearing)
//!   --interval S    seconds between polls (default 2)
//!   --count N       stop after N refreshes (default: until interrupted)
//!   --cmd "..."     advisor command to spawn (default: this binary + serve)
//!
//! trace options (record/ingest):
//!   --out FILE      where `record` writes the trace (required)
//!   --format F      binary | ndjson (default: guessed from the extension)
//!   --xor           also replay through an XOR-indexed cache
//!   --victim N      add a victim buffer of N lines as a scenario
//!   --heat          classify per-set heat (very-hot .. very-cold)
//!   --csv FILE      write the per-set heat table as CSV
//!   --mrc           report a miss-ratio curve from reuse distances
//!   --sample K      SHARDS-sample the curve at rate 2^-K (0 = exact)
//! ```
//!
//! A positional argument naming a bundled kernel (see `padtool suite`)
//! uses its built-in specification; anything else is read as a program
//! file in the `pad-ir` textual format.
//!
//! `serve` runs the fault-hardened layout-advisor loop: one JSON
//! request per input line, one JSON response per output line, tuned by
//! the `RIVERA_ADVISOR_*` environment variables (see the README table).

use pad_cache_sim::CacheConfig;
use pad_core::{find_severe_conflicts, DataLayout, PaddingConfig, PaddingOutcome, PaddingPipeline};
use pad_ir::Program;
use pad_kernels::suite;
use pad_report::Table;
use pad_trace::simulate_classified;

mod options;
mod top;

pub use options::Options;

/// Executes one `padtool` invocation (arguments exclude the program
/// name). Output goes to stdout; the returned error is what `main`
/// prints to stderr.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, unparseable
/// targets or options, and invalid cache geometry.
pub fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "suite" => cmd_suite(),
        "serve" => cmd_serve(),
        "top" => top::cmd_top(&args[1..]),
        "parse" | "analyze" | "layout" | "simulate" | "estimate" | "tile" | "search" | "record" => {
            let target = args
                .get(1)
                .ok_or_else(|| format!("{command} needs a target\n{}", usage()))?;
            let opts = Options::parse(&args[2..])?;
            let program = load_program(target, &opts)?;
            match command.as_str() {
                "parse" => cmd_parse(&program),
                "analyze" => cmd_analyze(&program, &opts),
                "layout" => cmd_layout(&program, &opts),
                "simulate" => cmd_simulate(&program, &opts),
                "estimate" => cmd_estimate(&program, &opts),
                "tile" => cmd_tile(&program, &opts),
                "search" => cmd_search(&program, &opts),
                "record" => cmd_record(&program, &opts),
                _ => unreachable!(),
            }
        }
        "ingest" => {
            let target = args
                .get(1)
                .ok_or_else(|| format!("{command} needs a trace file\n{}", usage()))?;
            let opts = Options::parse(&args[2..])?;
            cmd_ingest(target, &opts)
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: padtool <suite|parse|analyze|layout|simulate|search|record|ingest|serve|top> [target] [options]\n\
     run `padtool help` for details"
        .to_string()
}

/// Runs the NDJSON layout-advisor server over stdin/stdout until EOF
/// or a `shutdown` request. Tuning comes from `RIVERA_ADVISOR_*`
/// environment variables; when `RIVERA_ADVISOR_STORE` names a file the
/// answer store survives restarts (including `kill -9`) and replays
/// bit-exactly.
fn cmd_serve() -> Result<(), String> {
    use pad_advisor::{Server, ServerConfig, Store, STORE_ENV};

    // A service wants its metrics on unless the operator says otherwise;
    // batch commands keep the library default (off).
    pad_telemetry::init_metrics_from_env(true);
    let config = ServerConfig::from_env();
    let store = match std::env::var(STORE_ENV) {
        Ok(path) if !path.is_empty() => {
            Store::open(&path).map_err(|e| format!("cannot open advisor store `{path}`: {e}"))?
        }
        _ => Store::in_memory(),
    };
    let server = Server::with_store(config, store);
    let stdin = std::io::stdin();
    server
        .serve(stdin.lock(), std::io::stdout())
        .map_err(|e| format!("advisor I/O failed: {e}"))
}

fn load_program(target: &str, opts: &Options) -> Result<Program, String> {
    if let Some(kernel) = suite()
        .into_iter()
        .find(|k| k.name.eq_ignore_ascii_case(target))
    {
        let n = opts.n.unwrap_or(kernel.default_n);
        return Ok((kernel.spec)(n));
    }
    let text = std::fs::read_to_string(target)
        .map_err(|e| format!("{target} is neither a bundled kernel nor a readable file: {e}"))?;
    pad_ir::parse(&text).map_err(|e| format!("{target}: {e}"))
}

fn cmd_suite() -> Result<(), String> {
    let mut t = Table::new(["name", "category", "default n", "native", "description"]);
    for k in suite() {
        t.row([
            k.name.to_string(),
            k.category.to_string(),
            k.default_n.to_string(),
            if k.native.is_some() { "yes" } else { "-" }.to_string(),
            k.description.to_string(),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn cmd_parse(program: &Program) -> Result<(), String> {
    println!("{program}");
    println!(
        "{} arrays, {} references in {} loop groups",
        program.arrays().len(),
        program.all_refs().len(),
        program.ref_groups().len()
    );
    Ok(())
}

fn cmd_analyze(program: &Program, opts: &Options) -> Result<(), String> {
    let config = opts.padding_config()?;
    let layout = DataLayout::original(program);
    let conflicts = find_severe_conflicts(program, &layout, &config);
    println!(
        "cache {} B / {} B lines: {} severe conflict pair(s) under the original layout",
        config.primary().size,
        config.primary().line,
        conflicts.len()
    );
    let mut t = Table::new(["ref A", "ref B", "distance B", "on-cache B"]);
    for c in &conflicts {
        t.row([
            c.refs.0.clone(),
            c.refs.1.clone(),
            c.distance_bytes.to_string(),
            c.circular_distance.to_string(),
        ]);
    }
    if !conflicts.is_empty() {
        println!("{t}");
    }
    Ok(())
}

fn run_pipeline(program: &Program, opts: &Options) -> Result<PaddingOutcome, String> {
    let config = opts.padding_config()?;
    let pipeline = match opts.algorithm.as_str() {
        "pad" => PaddingPipeline::pad(config),
        "padlite" => PaddingPipeline::padlite(config),
        other => return Err(format!("unknown algorithm `{other}` (use pad or padlite)")),
    };
    Ok(pipeline.run(program))
}

fn cmd_layout(program: &Program, opts: &Options) -> Result<(), String> {
    let outcome = run_pipeline(program, opts)?;
    println!("{}", outcome.layout);
    println!(
        "cache footprint ({} B): {}",
        opts.cache,
        outcome
            .layout
            .cache_footprint(opts.padding_config()?.primary().size, 64)
    );
    if outcome.events.is_empty() {
        println!("(no padding was necessary)");
    } else {
        println!("decisions:");
        for e in &outcome.events {
            println!("  {e}");
        }
    }
    println!("{}", outcome.stats);
    Ok(())
}

fn cmd_simulate(program: &Program, opts: &Options) -> Result<(), String> {
    let cache = opts.cache_config()?;
    let outcome = run_pipeline(program, opts)?;
    println!("{cache}");
    let mut t = Table::new(["layout", "miss %", "conflict %", "misses", "accesses"]);
    for (label, layout) in [
        ("original", DataLayout::original(program)),
        (opts.algorithm.as_str(), outcome.layout),
    ] {
        let stats = simulate_classified(program, &layout, &cache);
        t.row([
            label.to_string(),
            format!("{:.2}", stats.cache.miss_rate_percent()),
            format!("{:.2}", stats.conflict_rate_percent()),
            stats.cache.misses.to_string(),
            stats.cache.accesses.to_string(),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn cmd_estimate(program: &Program, opts: &Options) -> Result<(), String> {
    use pad_core::estimate_miss_rate;
    let cache = opts.cache_config()?;
    let config = opts.padding_config()?;
    let outcome = run_pipeline(program, opts)?;
    println!("analytic model vs simulation ({cache}):");
    let mut t = Table::new(["layout", "estimated %", "simulated %"]);
    for (label, layout) in [
        ("original", DataLayout::original(program)),
        (opts.algorithm.as_str(), outcome.layout),
    ] {
        let est = estimate_miss_rate(program, &layout, &config);
        let sim = pad_trace::simulate_program(program, &layout, &cache);
        t.row([
            label.to_string(),
            format!("{:.2}", est.miss_rate_percent()),
            format!("{:.2}", sim.miss_rate_percent()),
        ]);
    }
    println!("{t}");
    println!("(the model counts spatial + severe-conflict misses; capacity misses are\n the simulated-minus-estimated gap)");
    Ok(())
}

fn cmd_tile(program: &Program, opts: &Options) -> Result<(), String> {
    use pad_core::select_tile;
    let config = opts.padding_config()?;
    let cs = config.primary().size;
    println!("conflict-free tiles on a {cs}-byte cache (Coleman-McKinley selection):");
    let mut t = Table::new(["array", "column", "tile rows", "tile cols", "tile KB"]);
    for spec in program.arrays() {
        if spec.rank() < 2 {
            continue;
        }
        let tile = select_tile(
            cs,
            spec.column_size(),
            spec.elem_size(),
            spec.column_size(),
            spec.row_size(),
        );
        t.row([
            spec.name().to_string(),
            spec.column_size().to_string(),
            tile.rows.to_string(),
            tile.cols.to_string(),
            format!(
                "{:.1}",
                (tile.elements() * i64::from(spec.elem_size())) as f64 / 1024.0
            ),
        ]);
    }
    if t.is_empty() {
        println!("(no rank-2+ arrays to tile)");
    } else {
        println!("{t}");
    }
    Ok(())
}

fn cmd_search(program: &Program, opts: &Options) -> Result<(), String> {
    use pad_search::{search, SearchConfig};
    use pad_trace::padding_config_for;

    let exact_misses = |program: &Program, layout: &DataLayout, cache: &CacheConfig| {
        pad_trace::simulate_program(program, layout, cache).misses
    };

    let cache = opts.cache_config()?;
    let mut cfg = SearchConfig::from_env();
    cfg.threads = 1;
    if let Some(s) = opts.strategy {
        cfg.strategy = s;
    }
    if let Some(b) = opts.budget {
        cfg.budget = b;
    }
    if let Some(s) = opts.seed {
        cfg.seed = s;
    }
    if let Some(w) = opts.beam {
        cfg.beam_width = w;
    }

    let result = search(program, &cache, &cfg);
    let pad_config = padding_config_for(&cache);
    let original = DataLayout::original(program);
    let padlite = PaddingPipeline::padlite(pad_config.clone())
        .run(program)
        .layout;
    let pad = PaddingPipeline::pad(pad_config).run(program).layout;

    println!("{cache}");
    let mut t = Table::new(["layout", "misses", "reduction %"]);
    let orig_misses = exact_misses(program, &original, &cache);
    let reduction = |misses: u64| {
        if orig_misses == 0 {
            "0.0".to_string()
        } else {
            format!(
                "{:.1}",
                100.0 * (orig_misses as f64 - misses as f64) / orig_misses as f64
            )
        }
    };
    for (label, layout) in [
        ("original", &original),
        ("padlite", &padlite),
        ("pad", &pad),
        (result.strategy, result.best_layout()),
    ] {
        let misses = exact_misses(program, layout, &cache);
        t.row([label.to_string(), misses.to_string(), reduction(misses)]);
    }
    println!("{t}");
    println!(
        "search: strategy {}, budget {}, seed {}; {} candidate(s) scored, {} promoted, {} discarded",
        result.strategy,
        cfg.budget,
        cfg.seed,
        result.fast_evals,
        result.promotions.len(),
        result.discarded
    );
    println!("{}", result.best_layout());
    Ok(())
}

fn cmd_record(program: &Program, opts: &Options) -> Result<(), String> {
    use pad_trace_ingest::TraceFormat;
    use std::io::Write as _;

    let out_path = opts
        .out
        .as_deref()
        .ok_or_else(|| "record needs --out <file> for the trace".to_string())?;
    let format = opts
        .format
        .or_else(|| TraceFormat::from_extension(std::path::Path::new(out_path)))
        .unwrap_or(TraceFormat::Binary);
    let layout = DataLayout::original(program);
    let compiled = pad_trace::CompiledTrace::compile(program, &layout);

    let file =
        std::fs::File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    let mut out = std::io::BufWriter::new(file);
    // `for_each` has no error channel, so the first I/O failure is
    // captured and the rest of the walk becomes a no-op.
    let mut io_err: Option<std::io::Error> = None;
    match format {
        TraceFormat::Binary => {
            let mut writer = pad_trace_ingest::binary::BinaryTraceWriter::new(&mut out)
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            compiled.for_each(|access| {
                if io_err.is_none() {
                    if let Err(e) = writer.write(access) {
                        io_err = Some(e);
                    }
                }
            });
            if io_err.is_none() {
                if let Err(e) = writer.finish() {
                    io_err = Some(e);
                }
            }
        }
        TraceFormat::Ndjson => {
            compiled.for_each(|access| {
                if io_err.is_none() {
                    if let Err(e) = writeln!(out, "{}", pad_trace_ingest::ndjson::line_for(access))
                    {
                        io_err = Some(e);
                    }
                }
            });
        }
    }
    if let Some(e) = io_err {
        return Err(format!("cannot write {out_path}: {e}"));
    }
    out.flush()
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "recorded {} access(es) from {} to {out_path} ({format})",
        compiled.count(),
        program.name()
    );
    Ok(())
}

fn cmd_ingest(target: &str, opts: &Options) -> Result<(), String> {
    use pad_cache_sim::IndexFunction;
    use pad_trace_ingest::replay::{ReplayRequest, Replayer};

    let cache = opts.cache_config()?;
    let mut request = ReplayRequest::new().with_plain(cache);
    if opts.xor {
        request = request.with_plain(cache.with_index_function(IndexFunction::Xor));
    }
    if let Some(lines) = opts.victim {
        request = request.with_victim(cache, lines as usize);
    }
    if opts.heat || opts.csv.is_some() {
        request = request.with_heat(cache);
    }
    if opts.mrc {
        request = request.with_reuse(cache.line_size(), opts.sample);
    }

    let mut replayer = Replayer::new(&request);
    let records =
        pad_trace_ingest::read_trace_file(std::path::Path::new(target), opts.format, |chunk| {
            replayer.feed(chunk)
        })
        .map_err(|e| format!("{target}: {e}"))?;
    let results = replayer.finish();

    println!("{cache}");
    println!("replayed {records} access(es) from {target}");
    let mut t = Table::new(["configuration", "miss %", "misses", "accesses"]);
    let labels = ["modulo-indexed", "xor-indexed"];
    for (label, stats) in labels.iter().zip(&results.plain) {
        t.row([
            label.to_string(),
            format!("{:.2}", stats.miss_rate_percent()),
            stats.misses.to_string(),
            stats.accesses.to_string(),
        ]);
    }
    if let (Some(lines), Some(stats)) = (opts.victim, results.victim.first()) {
        t.row([
            format!("+ {lines}-line victim buffer"),
            format!("{:.2}", stats.miss_rate_percent()),
            stats.misses.to_string(),
            stats.accesses.to_string(),
        ]);
    }
    println!("{t}");

    if let Some(heat) = results.heat.first() {
        let census = heat.class_counts();
        println!(
            "set heat ({} sets): {} very-hot, {} hot, {} cold, {} very-cold; {} eviction(s)",
            heat.num_sets(),
            census[0],
            census[1],
            census[2],
            census[3],
            heat.total_evictions()
        );
        if opts.heat {
            let mut t = Table::new(["set", "accesses", "misses", "evictions", "class"]);
            for row in heat.hottest().into_iter().take(8) {
                t.row([
                    row.set.to_string(),
                    row.accesses.to_string(),
                    row.misses.to_string(),
                    row.evictions.to_string(),
                    row.class.as_str().to_string(),
                ]);
            }
            println!("hottest sets:\n{t}");
        }
        if let Some(csv_path) = &opts.csv {
            let mut t = Table::new(["set", "accesses", "misses", "evictions", "class"]);
            for row in heat.rows() {
                t.row([
                    row.set.to_string(),
                    row.accesses.to_string(),
                    row.misses.to_string(),
                    row.evictions.to_string(),
                    row.class.as_str().to_string(),
                ]);
            }
            pad_report::write_csv(&t, csv_path)
                .map_err(|e| format!("cannot write {csv_path}: {e}"))?;
            println!("wrote per-set heat table to {csv_path}");
        }
    }

    if let Some(reuse) = &results.reuse {
        let hist = &reuse.histogram;
        println!(
            "miss-ratio curve ({}; {} of {records} access(es) sampled, {} distinct line(s)):",
            if reuse.sample_log2 == 0 {
                "exact".to_string()
            } else {
                format!("SHARDS rate 1/{}", 1u64 << reuse.sample_log2)
            },
            reuse.sampled_accesses,
            hist.cold()
        );
        let mut t = Table::new(["capacity", "miss %"]);
        for lines in hist.pow2_capacities() {
            let bytes = lines * cache.line_size();
            let label = if bytes >= 1024 {
                format!("{} KB", bytes / 1024)
            } else {
                format!("{bytes} B")
            };
            t.row([label, format!("{:.2}", hist.miss_ratio_at(lines) * 100.0)]);
        }
        println!("{t}");
    }
    Ok(())
}

/// Builds a [`CacheConfig`] from the options (shared with `options.rs`
/// tests).
pub(crate) fn cache_from(size: u64, line: u64, ways: u32) -> Result<CacheConfig, String> {
    CacheConfig::try_new(size, line, ways).map_err(|e| e.to_string())
}

/// Builds a [`PaddingConfig`] from cache geometry.
pub(crate) fn padding_from(size: u64, line: u64) -> Result<PaddingConfig, String> {
    PaddingConfig::new(size, line).map_err(|e| e.to_string())
}
