//! Thin binary wrapper; all logic lives in the `pad-cli` library so the
//! test suite can drive it directly.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pad_cli::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("padtool: {message}");
            ExitCode::FAILURE
        }
    }
}
