//! Flag parsing for `padtool` (hand-rolled; the workspace avoids
//! non-essential dependencies).

use pad_cache_sim::CacheConfig;
use pad_core::PaddingConfig;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Cache size in bytes (`--cache`).
    pub cache: u64,
    /// Line size in bytes (`--line`).
    pub line: u64,
    /// Associativity for simulation (`--ways`).
    pub ways: u32,
    /// `pad` or `padlite` (`--algorithm`).
    pub algorithm: String,
    /// Problem-size override for bundled kernels (`--n`).
    pub n: Option<i64>,
}

impl Default for Options {
    fn default() -> Self {
        Options { cache: 16 * 1024, line: 32, ways: 1, algorithm: "pad".into(), n: None }
    }
}

impl Options {
    /// Parses `--flag value` pairs.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = |it: &mut std::slice::Iter<'_, String>| {
                it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--cache" => {
                    opts.cache = parse_num(&value(&mut it)?, flag)?;
                }
                "--line" => {
                    opts.line = parse_num(&value(&mut it)?, flag)?;
                }
                "--ways" => {
                    opts.ways = parse_num(&value(&mut it)?, flag)? as u32;
                }
                "--algorithm" => {
                    opts.algorithm = value(&mut it)?.to_lowercase();
                }
                "--n" => {
                    opts.n = Some(parse_num(&value(&mut it)?, flag)? as i64);
                }
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(opts)
    }

    /// The simulated cache these options describe.
    pub fn cache_config(&self) -> Result<CacheConfig, String> {
        crate::cache_from(self.cache, self.line, self.ways)
    }

    /// The analysis parameters these options describe.
    pub fn padding_config(&self) -> Result<PaddingConfig, String> {
        crate::padding_from(self.cache, self.line)
    }
}

/// Accepts `16384`, `16k`, `16K`, `1m`.
fn parse_num(s: &str, flag: &str) -> Result<u64, String> {
    let (digits, multiplier) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1024),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|n| n * multiplier)
        .map_err(|_| format!("bad value `{s}` for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = Options::parse(&[]).expect("empty is fine");
        assert_eq!(o.cache, 16 * 1024);
        assert_eq!(o.line, 32);
        assert_eq!(o.ways, 1);
        assert_eq!(o.algorithm, "pad");
        assert_eq!(o.n, None);
    }

    #[test]
    fn parses_flags_and_suffixes() {
        let o = Options::parse(&strs(&[
            "--cache", "8k", "--line", "64", "--ways", "4", "--algorithm", "PADLITE", "--n",
            "300",
        ]))
        .expect("valid");
        assert_eq!(o.cache, 8192);
        assert_eq!(o.line, 64);
        assert_eq!(o.ways, 4);
        assert_eq!(o.algorithm, "padlite");
        assert_eq!(o.n, Some(300));
    }

    #[test]
    fn rejects_unknown_and_missing() {
        assert!(Options::parse(&strs(&["--bogus"])).is_err());
        assert!(Options::parse(&strs(&["--cache"])).is_err());
        assert!(Options::parse(&strs(&["--cache", "abc"])).is_err());
    }

    #[test]
    fn configs_validate_geometry() {
        let o = Options::parse(&strs(&["--cache", "1000"])).expect("parses");
        assert!(o.cache_config().is_err(), "1000 is not a power of two");
        let o = Options::parse(&strs(&["--cache", "1k", "--line", "32"])).expect("parses");
        assert!(o.cache_config().is_ok());
        assert!(o.padding_config().is_ok());
    }
}
