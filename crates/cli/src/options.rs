//! Flag parsing for `padtool` (hand-rolled; the workspace avoids
//! non-essential dependencies).

use pad_cache_sim::CacheConfig;
use pad_core::PaddingConfig;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Cache size in bytes (`--cache`).
    pub cache: u64,
    /// Line size in bytes (`--line`).
    pub line: u64,
    /// Associativity for simulation (`--ways`).
    pub ways: u32,
    /// `pad` or `padlite` (`--algorithm`).
    pub algorithm: String,
    /// Problem-size override for bundled kernels (`--n`).
    pub n: Option<i64>,
}

impl Default for Options {
    fn default() -> Self {
        Options { cache: 16 * 1024, line: 32, ways: 1, algorithm: "pad".into(), n: None }
    }
}

impl Options {
    /// Parses `--flag value` pairs.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = |it: &mut std::slice::Iter<'_, String>| {
                it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--cache" => {
                    opts.cache = parse_num(&value(&mut it)?, flag)?;
                }
                "--line" => {
                    opts.line = parse_num(&value(&mut it)?, flag)?;
                }
                "--ways" => {
                    let n = parse_num(&value(&mut it)?, flag)?;
                    opts.ways = u32::try_from(n)
                        .map_err(|_| format!("value {n} for {flag} is out of range"))?;
                }
                "--algorithm" => {
                    opts.algorithm = value(&mut it)?.to_lowercase();
                }
                "--n" => {
                    let n = parse_num(&value(&mut it)?, flag)?;
                    let n = i64::try_from(n)
                        .map_err(|_| format!("value {n} for {flag} is out of range"))?;
                    opts.n = Some(n);
                }
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(opts)
    }

    /// The simulated cache these options describe.
    pub fn cache_config(&self) -> Result<CacheConfig, String> {
        crate::cache_from(self.cache, self.line, self.ways)
    }

    /// The analysis parameters these options describe.
    pub fn padding_config(&self) -> Result<PaddingConfig, String> {
        crate::padding_from(self.cache, self.line)
    }
}

/// Accepts `16384`, `16k`, `16K`, `1m`.
fn parse_num(s: &str, flag: &str) -> Result<u64, String> {
    let (digits, multiplier) = if let Some(d) = s.strip_suffix(['k', 'K']) {
        (d, 1024)
    } else if let Some(d) = s.strip_suffix(['m', 'M']) {
        (d, 1024 * 1024)
    } else {
        (s, 1)
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(multiplier))
        .ok_or_else(|| format!("bad value `{s}` for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = Options::parse(&[]).expect("empty is fine");
        assert_eq!(o.cache, 16 * 1024);
        assert_eq!(o.line, 32);
        assert_eq!(o.ways, 1);
        assert_eq!(o.algorithm, "pad");
        assert_eq!(o.n, None);
    }

    #[test]
    fn parses_flags_and_suffixes() {
        let o = Options::parse(&strs(&[
            "--cache", "8k", "--line", "64", "--ways", "4", "--algorithm", "PADLITE", "--n",
            "300",
        ]))
        .expect("valid");
        assert_eq!(o.cache, 8192);
        assert_eq!(o.line, 64);
        assert_eq!(o.ways, 4);
        assert_eq!(o.algorithm, "padlite");
        assert_eq!(o.n, Some(300));
    }

    #[test]
    fn rejects_unknown_and_missing() {
        assert!(Options::parse(&strs(&["--bogus"])).is_err());
        assert!(Options::parse(&strs(&["--cache"])).is_err());
        assert!(Options::parse(&strs(&["--cache", "abc"])).is_err());
    }

    #[test]
    fn rejects_overflow_and_truncation_instead_of_wrapping() {
        // u64 * 1024 overflow in the suffix multiplier.
        assert!(Options::parse(&strs(&["--cache", "18446744073709551615k"])).is_err());
        // Values that used to truncate silently through `as` casts.
        assert!(Options::parse(&strs(&["--ways", "5000000000"])).is_err());
        assert!(Options::parse(&strs(&["--n", "18446744073709551615"])).is_err());
        // Multi-byte trailing characters are a parse error, not a panic.
        assert!(Options::parse(&strs(&["--cache", "16é"])).is_err());
    }

    #[test]
    fn configs_validate_geometry() {
        let o = Options::parse(&strs(&["--cache", "1000"])).expect("parses");
        assert!(o.cache_config().is_err(), "1000 is not a power of two");
        let o = Options::parse(&strs(&["--cache", "1k", "--line", "32"])).expect("parses");
        assert!(o.cache_config().is_ok());
        assert!(o.padding_config().is_ok());
    }
}
