//! Flag parsing for `padtool` (hand-rolled; the workspace avoids
//! non-essential dependencies).

use pad_cache_sim::CacheConfig;
use pad_core::PaddingConfig;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Cache size in bytes (`--cache`).
    pub cache: u64,
    /// Line size in bytes (`--line`).
    pub line: u64,
    /// Associativity for simulation (`--ways`).
    pub ways: u32,
    /// `pad` or `padlite` (`--algorithm`).
    pub algorithm: String,
    /// Problem-size override for bundled kernels (`--n`).
    pub n: Option<i64>,
    /// Trace format override for `record`/`ingest` (`--format`).
    pub format: Option<pad_trace_ingest::TraceFormat>,
    /// Output path for `record` (`--out`).
    pub out: Option<String>,
    /// SHARDS sampling exponent for reuse analysis (`--sample`; rate
    /// 2^-k, 0 = exact).
    pub sample: u32,
    /// Also replay through an XOR-indexed cache (`--xor`).
    pub xor: bool,
    /// Victim-buffer lines to add as a scenario (`--victim`).
    pub victim: Option<u64>,
    /// Report a miss-ratio curve from reuse distances (`--mrc`).
    pub mrc: bool,
    /// Classify per-set heat (`--heat`).
    pub heat: bool,
    /// Write the per-set heat table as CSV to this path (`--csv`).
    pub csv: Option<String>,
    /// Search strategy override for `search` (`--strategy`).
    pub strategy: Option<pad_search::StrategyKind>,
    /// Search candidate-budget override (`--budget`).
    pub budget: Option<u64>,
    /// Search seed override (`--seed`).
    pub seed: Option<u64>,
    /// Beam-width override (`--beam`).
    pub beam: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            cache: 16 * 1024,
            line: 32,
            ways: 1,
            algorithm: "pad".into(),
            n: None,
            format: None,
            out: None,
            sample: 0,
            xor: false,
            victim: None,
            mrc: false,
            heat: false,
            csv: None,
            strategy: None,
            budget: None,
            seed: None,
            beam: None,
        }
    }
}

impl Options {
    /// Parses `--flag value` pairs.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = |it: &mut std::slice::Iter<'_, String>| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--cache" => {
                    opts.cache = parse_num(&value(&mut it)?, flag)?;
                }
                "--line" => {
                    opts.line = parse_num(&value(&mut it)?, flag)?;
                }
                "--ways" => {
                    let n = parse_num(&value(&mut it)?, flag)?;
                    opts.ways = u32::try_from(n)
                        .map_err(|_| format!("value {n} for {flag} is out of range"))?;
                }
                "--algorithm" => {
                    opts.algorithm = value(&mut it)?.to_lowercase();
                }
                "--n" => {
                    let n = parse_num(&value(&mut it)?, flag)?;
                    let n = i64::try_from(n)
                        .map_err(|_| format!("value {n} for {flag} is out of range"))?;
                    opts.n = Some(n);
                }
                "--format" => {
                    let name = value(&mut it)?;
                    opts.format = Some(
                        pad_trace_ingest::TraceFormat::from_name(&name).ok_or_else(|| {
                            format!("unknown trace format `{name}` (use binary or ndjson)")
                        })?,
                    );
                }
                "--out" => {
                    opts.out = Some(value(&mut it)?);
                }
                "--sample" => {
                    let k = parse_num(&value(&mut it)?, flag)?;
                    let max = u64::from(pad_cache_sim::MAX_SAMPLE_LOG2);
                    if k > max {
                        return Err(format!("value {k} for {flag} exceeds the maximum of {max}"));
                    }
                    opts.sample = k as u32;
                }
                "--victim" => {
                    let n = parse_num(&value(&mut it)?, flag)?;
                    if n == 0 {
                        return Err(format!("{flag} needs at least one buffer line"));
                    }
                    opts.victim = Some(n);
                }
                "--csv" => {
                    opts.csv = Some(value(&mut it)?);
                }
                "--strategy" => {
                    let name = value(&mut it)?.to_lowercase();
                    opts.strategy = Some(match name.as_str() {
                        "beam" => pad_search::StrategyKind::Beam,
                        "anneal" => pad_search::StrategyKind::Anneal,
                        other => {
                            return Err(format!("unknown strategy `{other}` (use beam or anneal)"))
                        }
                    });
                }
                "--budget" => {
                    let b = parse_num(&value(&mut it)?, flag)?;
                    if b == 0 {
                        return Err(format!("{flag} needs at least one candidate"));
                    }
                    opts.budget = Some(b);
                }
                "--seed" => {
                    opts.seed = Some(parse_num(&value(&mut it)?, flag)?);
                }
                "--beam" => {
                    let w = parse_num(&value(&mut it)?, flag)?;
                    if w == 0 {
                        return Err(format!("{flag} needs a width of at least one"));
                    }
                    opts.beam = Some(w as usize);
                }
                "--xor" => opts.xor = true,
                "--mrc" => opts.mrc = true,
                "--heat" => opts.heat = true,
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(opts)
    }

    /// The simulated cache these options describe.
    pub fn cache_config(&self) -> Result<CacheConfig, String> {
        crate::cache_from(self.cache, self.line, self.ways)
    }

    /// The analysis parameters these options describe.
    pub fn padding_config(&self) -> Result<PaddingConfig, String> {
        crate::padding_from(self.cache, self.line)
    }
}

/// Accepts `16384`, `16k`, `16K`, `1m`.
fn parse_num(s: &str, flag: &str) -> Result<u64, String> {
    let (digits, multiplier) = if let Some(d) = s.strip_suffix(['k', 'K']) {
        (d, 1024)
    } else if let Some(d) = s.strip_suffix(['m', 'M']) {
        (d, 1024 * 1024)
    } else {
        (s, 1)
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(multiplier))
        .ok_or_else(|| format!("bad value `{s}` for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = Options::parse(&[]).expect("empty is fine");
        assert_eq!(o.cache, 16 * 1024);
        assert_eq!(o.line, 32);
        assert_eq!(o.ways, 1);
        assert_eq!(o.algorithm, "pad");
        assert_eq!(o.n, None);
    }

    #[test]
    fn parses_flags_and_suffixes() {
        let o = Options::parse(&strs(&[
            "--cache",
            "8k",
            "--line",
            "64",
            "--ways",
            "4",
            "--algorithm",
            "PADLITE",
            "--n",
            "300",
        ]))
        .expect("valid");
        assert_eq!(o.cache, 8192);
        assert_eq!(o.line, 64);
        assert_eq!(o.ways, 4);
        assert_eq!(o.algorithm, "padlite");
        assert_eq!(o.n, Some(300));
    }

    #[test]
    fn rejects_unknown_and_missing() {
        assert!(Options::parse(&strs(&["--bogus"])).is_err());
        assert!(Options::parse(&strs(&["--cache"])).is_err());
        assert!(Options::parse(&strs(&["--cache", "abc"])).is_err());
    }

    #[test]
    fn parses_trace_flags() {
        let o = Options::parse(&strs(&[
            "--format", "ndjson", "--out", "t.ndjson", "--sample", "6", "--xor", "--mrc", "--heat",
            "--victim", "8", "--csv", "heat.csv",
        ]))
        .expect("valid");
        assert_eq!(o.format, Some(pad_trace_ingest::TraceFormat::Ndjson));
        assert_eq!(o.out.as_deref(), Some("t.ndjson"));
        assert_eq!(o.sample, 6);
        assert!(o.xor && o.mrc && o.heat);
        assert_eq!(o.victim, Some(8));
        assert_eq!(o.csv.as_deref(), Some("heat.csv"));

        assert!(Options::parse(&strs(&["--format", "csv"])).is_err());
        assert!(
            Options::parse(&strs(&["--sample", "64"])).is_err(),
            "k beyond the sampler max"
        );
        assert!(Options::parse(&strs(&["--victim", "0"])).is_err());
    }

    #[test]
    fn parses_search_flags() {
        let o = Options::parse(&strs(&[
            "--strategy",
            "Anneal",
            "--budget",
            "1k",
            "--seed",
            "42",
            "--beam",
            "8",
        ]))
        .expect("valid");
        assert_eq!(o.strategy, Some(pad_search::StrategyKind::Anneal));
        assert_eq!(o.budget, Some(1024));
        assert_eq!(o.seed, Some(42));
        assert_eq!(o.beam, Some(8));

        assert!(Options::parse(&strs(&["--strategy", "magic"])).is_err());
        assert!(Options::parse(&strs(&["--budget", "0"])).is_err());
        assert!(Options::parse(&strs(&["--beam", "0"])).is_err());
    }

    #[test]
    fn rejects_overflow_and_truncation_instead_of_wrapping() {
        // u64 * 1024 overflow in the suffix multiplier.
        assert!(Options::parse(&strs(&["--cache", "18446744073709551615k"])).is_err());
        // Values that used to truncate silently through `as` casts.
        assert!(Options::parse(&strs(&["--ways", "5000000000"])).is_err());
        assert!(Options::parse(&strs(&["--n", "18446744073709551615"])).is_err());
        // Multi-byte trailing characters are a parse error, not a panic.
        assert!(Options::parse(&strs(&["--cache", "16é"])).is_err());
    }

    #[test]
    fn configs_validate_geometry() {
        let o = Options::parse(&strs(&["--cache", "1000"])).expect("parses");
        assert!(o.cache_config().is_err(), "1000 is not a power of two");
        let o = Options::parse(&strs(&["--cache", "1k", "--line", "32"])).expect("parses");
        assert!(o.cache_config().is_ok());
        assert!(o.padding_config().is_ok());
    }
}
