//! The textual kernel corpus (`specs/*.pad`) must be *trace-equivalent*
//! to the builder-constructed specifications: same arrays, same reference
//! structure, and — the strongest check — the exact same address stream
//! under the same layout. This pins the parser and the builder API to one
//! another.

use pad_core::DataLayout;
use pad_ir::{parse, Program};

fn traces_match(text: &str, built: &Program) {
    let parsed = parse(text).expect("corpus file parses");
    assert_eq!(parsed.name(), built.name());
    assert_eq!(parsed.arrays().len(), built.arrays().len());
    for (a, b) in parsed.arrays().iter().zip(built.arrays()) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.dims(), b.dims());
        assert_eq!(a.elem_size(), b.elem_size());
    }
    assert_eq!(parsed.all_refs().len(), built.all_refs().len());

    // Identical declarations mean identical original layouts, so the
    // address streams must agree byte for byte.
    let layout_parsed = DataLayout::original(&parsed);
    let layout_built = DataLayout::original(built);
    let mut ta = Vec::new();
    pad_trace::for_each_access(&parsed, &layout_parsed, |a| ta.push((a.addr, a.is_write)));
    let mut tb = Vec::new();
    pad_trace::for_each_access(built, &layout_built, |a| tb.push((a.addr, a.is_write)));
    assert_eq!(ta.len(), tb.len(), "trace lengths differ");
    assert_eq!(ta, tb, "address streams differ");
}

#[test]
fn jacobi_text_matches_builder() {
    traces_match(
        include_str!("../specs/jacobi.pad"),
        &pad_kernels::jacobi::spec(512),
    );
}

#[test]
fn dgefa_text_matches_builder() {
    traces_match(
        include_str!("../specs/dgefa.pad"),
        &pad_kernels::dgefa::spec(256),
    );
}

#[test]
fn dot_text_matches_builder() {
    traces_match(
        include_str!("../specs/dot.pad"),
        &pad_kernels::dot::spec(32 * 1024),
    );
}

#[test]
fn mult_text_matches_builder() {
    traces_match(
        include_str!("../specs/mult.pad"),
        &pad_kernels::mult::spec(300),
    );
}

#[test]
fn chol_text_matches_builder_including_triangular_bounds() {
    traces_match(
        include_str!("../specs/chol.pad"),
        &pad_kernels::chol::spec(256),
    );
}

#[test]
fn erle_text_matches_builder_including_rank3_arrays() {
    traces_match(
        include_str!("../specs/erle.pad"),
        &pad_kernels::erle::spec(64),
    );
}

#[test]
fn padding_decisions_agree_between_text_and_builder() {
    use pad_core::{Pad, PaddingConfig};
    let parsed = parse(include_str!("../specs/jacobi.pad")).expect("parses");
    let built = pad_kernels::jacobi::spec(512);
    let config = PaddingConfig::paper_base();
    let a = Pad::new(config.clone()).run(&parsed);
    let b = Pad::new(config).run(&built);
    assert_eq!(a.layout.total_bytes(), b.layout.total_bytes());
    assert_eq!(a.stats.inter_bytes_skipped, b.stats.inter_bytes_skipped);
    assert_eq!(a.stats.arrays_intra_padded, b.stats.arrays_intra_padded);
}
