//! MGRID proxy — NAS/SPEC multigrid solver (484/680 lines, 10–12
//! arrays).
//!
//! Multigrid works on power-of-two cubes — the worst case for a
//! power-of-two cache. The proxy keeps the finest-level smoother and
//! residual (seven-point stencils over `(n+1)³` arrays, as MGRID
//! allocates `2^k + 1` points per side... but the *interior* power-of-two
//! sub-cube still dominates) plus one coarse-grid restriction with
//! stride-2 accesses. Dropped: the V-cycle recursion over levels, which
//! repeats the same patterns at smaller sizes.

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at3;

/// Finest-level cube size (MGRID class S uses 32³/64³).
pub const DEFAULT_N: i64 = 64;

/// The modeled arrays.
pub const ARRAY_NAMES: [&str; 3] = ["U", "V", "R"];

/// Builds the smoother, residual, and restriction nests.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("MGRID");
    b.source_lines(680);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [n, n, n])))
        .collect();
    let [u, v, r] = ids[..] else { unreachable!() };

    // Smoother: u += c * r (seven-point on r).
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 2, n - 1),
            Loop::new("j", 2, n - 1),
            Loop::new("i", 2, n - 1),
        ],
        vec![Stmt::refs(vec![
            at3(r, "i", 0, "j", 0, "k", 0),
            at3(r, "i", -1, "j", 0, "k", 0),
            at3(r, "i", 1, "j", 0, "k", 0),
            at3(r, "i", 0, "j", -1, "k", 0),
            at3(r, "i", 0, "j", 1, "k", 0),
            at3(r, "i", 0, "j", 0, "k", -1),
            at3(r, "i", 0, "j", 0, "k", 1),
            at3(u, "i", 0, "j", 0, "k", 0),
            at3(u, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    // Residual: r = v - A u.
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 2, n - 1),
            Loop::new("j", 2, n - 1),
            Loop::new("i", 2, n - 1),
        ],
        vec![Stmt::refs(vec![
            at3(v, "i", 0, "j", 0, "k", 0),
            at3(u, "i", 0, "j", 0, "k", 0),
            at3(u, "i", -1, "j", 0, "k", 0),
            at3(u, "i", 1, "j", 0, "k", 0),
            at3(u, "i", 0, "j", -1, "k", 0),
            at3(u, "i", 0, "j", 1, "k", 0),
            at3(u, "i", 0, "j", 0, "k", -1),
            at3(u, "i", 0, "j", 0, "k", 1),
            at3(r, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    // Restriction to the coarse grid held in the top of V: stride-2 reads.
    b.push(Stmt::loop_nest(
        [
            Loop::with_step("k", 2, n - 1, 2),
            Loop::with_step("j", 2, n - 1, 2),
            Loop::with_step("i", 2, n - 1, 2),
        ],
        vec![Stmt::refs(vec![
            at3(r, "i", 0, "j", 0, "k", 0),
            at3(r, "i", -1, "j", 0, "k", 0),
            at3(r, "i", 1, "j", 0, "k", 0),
            at3(v, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    b.build().expect("MGRID spec is well-formed")
}

/// Runs one native smooth/residual/restrict cycle matching [`spec`].
pub fn run_native(ws: &mut crate::Workspace, n: i64) {
    let u = ws.array("U");
    let v = ws.array("V");
    let r = ws.array("R");
    let (u0, v0, r0) = (ws.base_word(u), ws.base_word(v), ws.base_word(r));
    let su = ws.strides(u);
    let sv = ws.strides(v);
    let sr = ws.strides(r);
    let n = n as usize;
    let (buf, _) = ws.parts_mut();
    let c = 0.1;
    for k in 1..n - 1 {
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let rc = r0 + i * sr[0] + j * sr[1] + k * sr[2];
                buf[u0 + i * su[0] + j * su[1] + k * su[2]] += c
                    * (buf[rc]
                        + buf[rc - sr[0]]
                        + buf[rc + sr[0]]
                        + buf[rc - sr[1]]
                        + buf[rc + sr[1]]
                        + buf[rc - sr[2]]
                        + buf[rc + sr[2]]);
            }
        }
    }
    for k in 1..n - 1 {
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let uc = u0 + i * su[0] + j * su[1] + k * su[2];
                let lap = buf[uc - su[0]]
                    + buf[uc + su[0]]
                    + buf[uc - su[1]]
                    + buf[uc + su[1]]
                    + buf[uc - su[2]]
                    + buf[uc + su[2]]
                    - 6.0 * buf[uc];
                buf[r0 + i * sr[0] + j * sr[1] + k * sr[2]] =
                    buf[v0 + i * sv[0] + j * sv[1] + k * sv[2]] - lap;
            }
        }
    }
    let mut k = 1;
    while k < n - 1 {
        let mut j = 1;
        while j < n - 1 {
            let mut i = 1;
            while i < n - 1 {
                let rc = r0 + i * sr[0] + j * sr[1] + k * sr[2];
                buf[v0 + i * sv[0] + j * sv[1] + k * sv[2]] =
                    0.5 * buf[rc] + 0.25 * (buf[rc - sr[0]] + buf[rc + sr[0]]);
                i += 2;
            }
            j += 2;
        }
        k += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(16);
        assert_eq!(p.arrays().len(), 3);
        assert_eq!(p.ref_groups().len(), 3);
    }

    #[test]
    fn native_matches_under_padding() {
        use pad_core::DataLayout;
        let p = spec(12);
        let seed = |ws: &mut crate::Workspace| {
            for (i, name) in ARRAY_NAMES.iter().enumerate() {
                let id = ws.array(name);
                ws.fill_pattern(id, i as u64 + 1);
            }
        };
        let mut plain = crate::Workspace::new(&p, DataLayout::original(&p));
        seed(&mut plain);
        run_native(&mut plain, 12);

        let outcome = Pad::new(PaddingConfig::new(1024, 32).expect("valid")).run(&p);
        let mut padded = crate::Workspace::new(&p, outcome.layout);
        seed(&mut padded);
        run_native(&mut padded, 12);

        for name in ARRAY_NAMES {
            let id = plain.array(name);
            assert_eq!(plain.checksum(id), padded.checksum(id), "{name}");
        }
    }

    #[test]
    fn power_of_two_cube_triggers_intra_padding() {
        // 64² * 8 B planes = 32 KiB alias a 16 KiB cache: the k-direction
        // stencil neighbours conflict within U and R.
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(
            outcome.stats.arrays_intra_padded > 0,
            "{:?}",
            outcome.events
        );
    }
}
