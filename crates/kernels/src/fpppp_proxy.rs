//! FPPPP proxy — SPEC95 two-electron integral derivatives (2784 lines;
//! only 16% of its references are uniformly generated in the paper).
//!
//! FPPPP is enormous straight-line quantum-chemistry code operating on
//! small scratch arrays with mostly constant or data-dependent indices.
//! The proxy models exactly that: unrolled constant-subscript accesses
//! plus a few gather-style scaled references, so the uniform fraction is
//! very low and padding has nothing to latch onto — the paper's Figure 9
//! lists FPPPP among the programs padding does not fix.

use pad_ir::{ArrayBuilder, IndexVar, Loop, Program, Stmt, Subscript};

/// Outer shell-quadruple count.
pub const DEFAULT_N: i64 = 4096;

/// Builds the integral-kernel proxy.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("FPPPP");
    b.source_lines(2784);
    let fock = b.add_array(ArrayBuilder::new("FOCK", [3 * n]));
    let dens = b.add_array(ArrayBuilder::new("DENS", [3 * n]));
    let scr = b.add_array(ArrayBuilder::new("SCR", [256]));
    let gather = Subscript::from_terms([(IndexVar::new("q"), 3)], -2);

    // Straight-line scratch arithmetic with constant subscripts,
    // repeated per shell quadruple.
    let mut scratch_refs = Vec::new();
    for slot in [1i64, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
        scratch_refs.push(scr.at([Subscript::constant(slot)]));
        scratch_refs.push(scr.at([Subscript::constant(slot + 100)]).write());
    }
    b.push(Stmt::loop_(
        Loop::new("q", 1, n),
        vec![Stmt::refs(scratch_refs)],
    ));
    // Fock/density gathers.
    b.push(Stmt::loop_(
        Loop::new("q", 1, n),
        vec![Stmt::refs(vec![
            dens.at([gather.clone()]),
            fock.at([gather.clone()]),
            fock.at([gather]).write(),
            scr.at([Subscript::constant(7)]).write(),
        ])],
    ));
    b.build().expect("FPPPP spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{uniform_ref_fraction, Pad, PaddingConfig};

    #[test]
    fn uniform_fraction_is_very_low() {
        let p = spec(256);
        let f = uniform_ref_fraction(&p);
        // Constant subscripts count as uniform in isolation, but the
        // pairs never share loop variables; the scaled gathers are the
        // non-uniform share. Paper reports 16%; the proxy's mix lands low.
        assert!(f < 0.99, "fraction {f}");
    }

    #[test]
    fn padding_finds_little() {
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert_eq!(outcome.stats.arrays_intra_padded, 0);
    }
}
