//! SU2COR proxy — SPEC95 quantum-chromodynamics correlation functions
//! (2332 lines, 14 arrays in the paper).
//!
//! SU2COR sweeps gauge fields on a 4-D lattice; flattened to rank-3 here
//! (the fourth dimension folds into the third, preserving strides). The
//! dominant loops stream several conforming field arrays together with
//! plane-strided neighbour accesses — inter-variable padding territory.
//! Dropped: the Monte Carlo update logic and the random gauge kicks.

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at3;

/// Lattice edge (fields are `2n × n × n` complex pairs folded to f64).
pub const DEFAULT_N: i64 = 32;

/// The modeled arrays.
pub const ARRAY_NAMES: [&str; 5] = ["U1", "U2", "PSI", "CHI", "PROP"];

/// Builds the lattice-sweep proxy.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("SU2COR");
    b.source_lines(2332);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [2 * n, n, n])))
        .collect();
    let [u1, u2, psi, chi, prop] = ids[..] else {
        unreachable!()
    };

    // Gauge-field application: psi' = U * psi with neighbours.
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 2, n - 1),
            Loop::new("j", 2, n - 1),
            Loop::new("i", 1, 2 * n),
        ],
        vec![Stmt::refs(vec![
            at3(u1, "i", 0, "j", 0, "k", 0),
            at3(u2, "i", 0, "j", 0, "k", 0),
            at3(psi, "i", 0, "j", -1, "k", 0),
            at3(psi, "i", 0, "j", 1, "k", 0),
            at3(psi, "i", 0, "j", 0, "k", -1),
            at3(psi, "i", 0, "j", 0, "k", 1),
            at3(chi, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    // Correlation accumulation.
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, n),
            Loop::new("j", 1, n),
            Loop::new("i", 1, 2 * n),
        ],
        vec![Stmt::refs(vec![
            at3(chi, "i", 0, "j", 0, "k", 0),
            at3(psi, "i", 0, "j", 0, "k", 0),
            at3(prop, "i", 0, "j", 0, "k", 0),
            at3(prop, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    b.build().expect("SU2COR spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(8);
        assert_eq!(p.arrays().len(), 5);
        assert_eq!(p.ref_groups().len(), 2);
    }

    #[test]
    fn power_of_two_lattice_attracts_padding() {
        let p = spec(DEFAULT_N); // 64x32x32 doubles: planes are 16 KiB
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(
            outcome.stats.arrays_intra_padded + outcome.stats.arrays_inter_padded > 0,
            "{:?}",
            outcome.events
        );
    }
}
