//! MULT — matrix multiplication, Livermore loop 21 (29 lines, 3 global
//! arrays).
//!
//! `C += A * B` in the classic Fortran `j/k/i` order: the innermost loop
//! streams a column of `C` against a column of `A` while `B(k,j)` stays in
//! a register. Conflicts arise between the `C` and `A` columns when the
//! equally-sized matrices alias on the cache.

use pad_ir::{Loop, Program, Stmt};

use crate::util::at2;
use crate::workspace::Workspace;

/// Paper problem size (`MULT300`).
pub const DEFAULT_N: i64 = 300;

/// Outer `j` iterations included in the simulated trace (each iteration
/// repeats the same access structure; see [`spec_steps`]).
pub const DEFAULT_STEPS: i64 = 30;

/// Builds the matmul nest at order `n`, truncated to [`DEFAULT_STEPS`]
/// outer iterations for cache simulation. Use [`spec_steps`]`(n, n)` for
/// the complete multiplication.
pub fn spec(n: i64) -> Program {
    spec_steps(n, DEFAULT_STEPS)
}

/// Builds the matmul with only the first `steps` iterations of the outer
/// `j` loop, for bounded-cost cache simulation. The access pattern of
/// each `j` iteration is identical in structure, so truncation preserves
/// the miss-rate shape.
pub fn spec_steps(n: i64, steps: i64) -> Program {
    let mut b = Program::builder("MULT300");
    b.source_lines(29);
    let a = b.add_array(pad_ir::ArrayBuilder::new("A", [n, n]));
    let bb = b.add_array(pad_ir::ArrayBuilder::new("B", [n, n]));
    let c = b.add_array(pad_ir::ArrayBuilder::new("C", [n, n]));
    b.push(Stmt::loop_(
        Loop::new("j", 1, steps.min(n)),
        vec![Stmt::loop_(
            Loop::new("k", 1, n),
            vec![
                // B(k,j) is loop-invariant in i: referenced once per k.
                Stmt::refs(vec![at2(bb, "k", 0, "j", 0)]),
                Stmt::loop_(
                    Loop::new("i", 1, n),
                    vec![Stmt::refs(vec![
                        at2(c, "i", 0, "j", 0),
                        at2(a, "i", 0, "k", 0),
                        at2(c, "i", 0, "j", 0).write(),
                    ])],
                ),
            ],
        )],
    ));
    b.build().expect("MULT spec is well-formed")
}

/// Builds a *tiled* matmul: the `k` and `i` loops are blocked by
/// `tile_k × tile_i`, the computation-reordering alternative to padding
/// (Coleman & McKinley's tile-size selection is the paper's cited sibling
/// of `FirstConflict`; see `pad_core::select_tile`). Bounds stay affine
/// because the tile sizes must divide `n`.
///
/// # Panics
///
/// Panics unless `tile_i` and `tile_k` are positive and divide `n`.
pub fn spec_tiled(n: i64, tile_i: i64, tile_k: i64) -> Program {
    spec_tiled_steps(n, tile_i, tile_k, n)
}

/// Tiled matmul with the `j` loop truncated to `steps` iterations, the
/// same truncation [`spec_steps`] applies to the untiled form — so the
/// two cover identical iteration subspaces and their miss rates are
/// directly comparable.
///
/// # Panics
///
/// Panics unless `tile_i` and `tile_k` are positive and divide `n`.
pub fn spec_tiled_steps(n: i64, tile_i: i64, tile_k: i64, steps: i64) -> Program {
    assert!(tile_i > 0 && n % tile_i == 0, "tile_i must divide n");
    assert!(tile_k > 0 && n % tile_k == 0, "tile_k must divide n");
    let steps = steps.min(n);
    let mut b = Program::builder("MULT300T");
    b.source_lines(29);
    let a = b.add_array(pad_ir::ArrayBuilder::new("A", [n, n]));
    let bb = b.add_array(pad_ir::ArrayBuilder::new("B", [n, n]));
    let c = b.add_array(pad_ir::ArrayBuilder::new("C", [n, n]));
    use pad_ir::Subscript;
    b.push(Stmt::loop_(
        Loop::with_step("kk", 1, n, tile_k),
        vec![Stmt::loop_(
            Loop::with_step("ii", 1, n, tile_i),
            vec![Stmt::loop_(
                Loop::new("j", 1, steps),
                vec![Stmt::loop_(
                    Loop::new(
                        "k",
                        Subscript::var("kk"),
                        Subscript::var_offset("kk", tile_k - 1),
                    ),
                    vec![
                        Stmt::refs(vec![at2(bb, "k", 0, "j", 0)]),
                        Stmt::loop_(
                            Loop::new(
                                "i",
                                Subscript::var("ii"),
                                Subscript::var_offset("ii", tile_i - 1),
                            ),
                            vec![Stmt::refs(vec![
                                at2(c, "i", 0, "j", 0),
                                at2(a, "i", 0, "k", 0),
                                at2(c, "i", 0, "j", 0).write(),
                            ])],
                        ),
                    ],
                )],
            )],
        )],
    ));
    b.build().expect("tiled MULT spec is well-formed")
}

/// Runs the full `C += A * B` natively.
pub fn run_native(ws: &mut Workspace, n: i64) {
    let a = ws.array("A");
    let b = ws.array("B");
    let c = ws.array("C");
    let a0 = ws.base_word(a);
    let b0 = ws.base_word(b);
    let c0 = ws.base_word(c);
    let acol = ws.strides(a)[1];
    let bcol = ws.strides(b)[1];
    let ccol = ws.strides(c)[1];
    let n = n as usize;
    let buf = ws.words_mut();
    for j in 0..n {
        for k in 0..n {
            let bkj = buf[b0 + k + j * bcol];
            let arow = a0 + k * acol;
            let crow = c0 + j * ccol;
            for i in 0..n {
                buf[crow + i] += bkj * buf[arow + i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::DataLayout;

    #[test]
    fn spec_shape() {
        let p = spec(8);
        assert_eq!(p.arrays().len(), 3);
        // Two groups: B(k,j) under k, and the i-loop body.
        assert_eq!(p.ref_groups().len(), 2);
    }

    #[test]
    fn steps_truncate_the_outer_loop() {
        use pad_core::DataLayout;
        use pad_trace::count_accesses;
        let full = spec(16);
        let cut = spec_steps(16, 4);
        let lf = DataLayout::original(&full);
        let lc = DataLayout::original(&cut);
        assert_eq!(count_accesses(&cut, &lc) * 4, count_accesses(&full, &lf));
    }

    #[test]
    fn tiled_spec_touches_the_same_volume() {
        use pad_trace::count_accesses;
        // Tiling reorders iterations; the access count is unchanged
        // except for B(k,j), which is re-read once per i-tile.
        let n = 16i64;
        let (ti, tk) = (8, 4);
        let flat = spec_steps(n, n);
        let tiled = spec_tiled(n, ti, tk);
        let lf = DataLayout::original(&flat);
        let lt = DataLayout::original(&tiled);
        let inner = 3 * n * n * n; // C,A,C per innermost iteration
        assert_eq!(count_accesses(&flat, &lf), (inner + n * n) as u64);
        assert_eq!(
            count_accesses(&tiled, &lt),
            (inner + n * n * (n / ti)) as u64
        );
    }

    #[test]
    #[should_panic(expected = "tile_k must divide n")]
    fn tiled_spec_rejects_non_divisors() {
        let _ = spec_tiled(16, 8, 3);
    }

    #[test]
    fn native_multiplies_identity() {
        let n = 6i64;
        let p = spec(n);
        let mut ws = Workspace::new(&p, DataLayout::original(&p));
        let a = ws.array("A");
        let b = ws.array("B");
        let c = ws.array("C");
        for i in 1..=n {
            ws.set(b, &[i, i], 1.0); // B = I
            for j in 1..=n {
                ws.set(a, &[i, j], (i * 10 + j) as f64);
            }
        }
        run_native(&mut ws, n);
        for i in 1..=n {
            for j in 1..=n {
                assert_eq!(ws.get(c, &[i, j]), (i * 10 + j) as f64, "C({i},{j})");
            }
        }
    }
}
