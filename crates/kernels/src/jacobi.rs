//! JACOBI — 2-D Jacobi iteration with convergence test (Figure 7 of the
//! paper; 52 lines of Fortran, 2 global arrays).
//!
//! The paper's running example: a five-point stencil reads `A`'s
//! neighbours and writes `B`, then a copy nest writes `B` back into `A`.
//! At power-of-two problem sizes the two equally-sized arrays collide
//! modulo the cache size and every `B(j,i)` access conflicts with the
//! `A(j±1,i)` accesses.

use pad_ir::{Loop, Program, Stmt};

use crate::util::at2;
use crate::workspace::Workspace;

/// Paper problem size (`JACOBI512`).
pub const DEFAULT_N: i64 = 512;

/// Number of relaxation sweeps the native kernel performs.
pub const NATIVE_SWEEPS: usize = 4;

/// Builds the two JACOBI loop nests at problem size `n`.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("JACOBI512");
    b.source_lines(52);
    let a = b.add_array(pad_ir::ArrayBuilder::new("A", [n, n]));
    let bb = b.add_array(pad_ir::ArrayBuilder::new("B", [n, n]));
    b.push(Stmt::loop_nest(
        [Loop::new("i", 2, n - 1), Loop::new("j", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(a, "j", -1, "i", 0),
            at2(a, "j", 0, "i", -1),
            at2(a, "j", 1, "i", 0),
            at2(a, "j", 0, "i", 1),
            at2(bb, "j", 0, "i", 0).write(),
        ])],
    ));
    b.push(Stmt::loop_nest(
        [Loop::new("i", 2, n - 1), Loop::new("j", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(bb, "j", 0, "i", 0),
            at2(a, "j", 0, "i", 0).write(),
        ])],
    ));
    b.build().expect("JACOBI spec is well-formed")
}

/// Runs [`NATIVE_SWEEPS`] Jacobi iterations natively on a workspace built
/// from [`spec`].
pub fn run_native(ws: &mut Workspace, n: i64) {
    let a = ws.array("A");
    let b = ws.array("B");
    let a0 = ws.base_word(a);
    let b0 = ws.base_word(b);
    let acol = ws.strides(a)[1];
    let bcol = ws.strides(b)[1];
    let n = n as usize;
    let buf = ws.words_mut();
    for _ in 0..NATIVE_SWEEPS {
        for i in 2..n {
            for j in 2..n {
                let c = a0 + (j - 1) + (i - 1) * acol;
                buf[b0 + (j - 1) + (i - 1) * bcol] =
                    0.25 * (buf[c - 1] + buf[c + 1] + buf[c - acol] + buf[c + acol]);
            }
        }
        for i in 2..n {
            for j in 2..n {
                buf[a0 + (j - 1) + (i - 1) * acol] = buf[b0 + (j - 1) + (i - 1) * bcol];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{DataLayout, Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(64);
        assert_eq!(p.arrays().len(), 2);
        assert_eq!(p.ref_groups().len(), 2);
        assert_eq!(p.all_refs().len(), 7);
    }

    #[test]
    fn native_matches_under_padding() {
        let p = spec(32);
        let a = p.arrays_with_ids().next().expect("has A").0;

        let mut plain = Workspace::new(&p, DataLayout::original(&p));
        plain.fill_pattern(a, 3);
        run_native(&mut plain, 32);

        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        let mut padded = Workspace::new(&p, outcome.layout);
        padded.fill_pattern(a, 3);
        run_native(&mut padded, 32);

        assert_eq!(plain.checksum(a), padded.checksum(a));
    }

    #[test]
    fn stencil_actually_smooths() {
        let p = spec(16);
        let mut ws = Workspace::new(&p, DataLayout::original(&p));
        let a = ws.array("A");
        ws.set(a, &[8, 8], 100.0);
        run_native(&mut ws, 16);
        // The spike has diffused: the center shrank but (having re-gathered
        // mass from its neighbours on even sweeps) remains positive.
        assert!(ws.get(a, &[8, 8]) < 100.0);
        assert!(ws.get(a, &[8, 8]) > 0.0);
    }
}
