//! LINPACKD — the LINPACK driver (795 lines, 6 global arrays).
//!
//! The driver allocates the matrix and workspace vectors and passes them
//! to `dgefa`/`dgesl` as procedure parameters. Passing an array to a
//! procedure makes changing its *shape* unsafe (the callee declares its
//! own dimensions), so almost nothing is intra-paddable — the property
//! behind LINPACKD's near-blank row in the paper's Table 2. Base
//! addresses may still move.

use pad_ir::{ArrayBuilder, Loop, Program, Stmt, Subscript};

use crate::util::{at1, at2};

/// Matrix order used by the driver.
pub const DEFAULT_N: i64 = 256;

/// Elimination steps included in the simulated trace.
pub const DEFAULT_STEPS: i64 = 16;

/// Builds the driver: a `dgefa`-shaped elimination on a
/// parameter-passed matrix plus the solve's vector sweeps.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("LINPACKD");
    b.source_lines(795);
    let a = b.add_array(ArrayBuilder::new("A", [n, n]).passed_as_parameter(true));
    let bv = b.add_array(ArrayBuilder::new("B", [n]).passed_as_parameter(true));
    let x = b.add_array(ArrayBuilder::new("X", [n]).passed_as_parameter(true));
    let ipvt = b.add_array(ArrayBuilder::new("IPVT", [n]).passed_as_parameter(true));
    let work = b.add_array(ArrayBuilder::new("WORK", [n]).passed_as_parameter(true));
    let resid = b.add_array(ArrayBuilder::new("RESID", [n]));

    // dgefa body (truncated elimination).
    b.push(Stmt::loop_(
        Loop::new("k", 1, DEFAULT_STEPS.min(n - 1)),
        vec![
            Stmt::loop_(
                Loop::new("i", Subscript::var_offset("k", 1), n),
                vec![Stmt::refs(vec![
                    at2(a, "i", 0, "k", 0),
                    at2(a, "i", 0, "k", 0).write(),
                ])],
            ),
            Stmt::refs(vec![at1(ipvt, "k", 0).write()]),
            Stmt::loop_(
                Loop::new("j", Subscript::var_offset("k", 1), n),
                vec![Stmt::loop_(
                    Loop::new("i", Subscript::var_offset("k", 1), n),
                    vec![Stmt::refs(vec![
                        at2(a, "i", 0, "j", 0),
                        at2(a, "i", 0, "k", 0),
                        at2(a, "i", 0, "j", 0).write(),
                    ])],
                )],
            ),
        ],
    ));
    // dgesl-style sweeps plus residual check.
    b.push(Stmt::loop_(
        Loop::new("i", 1, n),
        vec![Stmt::refs(vec![
            at1(bv, "i", 0),
            at1(work, "i", 0),
            at1(x, "i", 0).write(),
        ])],
    ));
    b.push(Stmt::loop_(
        Loop::new("i", 1, n),
        vec![Stmt::refs(vec![
            at1(x, "i", 0),
            at1(bv, "i", 0),
            at1(resid, "i", 0).write(),
        ])],
    ));
    b.build().expect("LINPACKD spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn parameters_block_intra_padding() {
        let p = spec(256);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        // 256-column matrix would normally attract LINPAD2, but A is a
        // parameter; only RESID is safe, and it is 1-D.
        assert_eq!(outcome.stats.arrays_intra_padded, 0);
        assert_eq!(outcome.stats.arrays_safe, 0);
    }

    #[test]
    fn base_addresses_may_still_move() {
        let p = spec(2048); // vectors alias the 16K cache at this size
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(outcome.layout.check_no_overlap());
    }
}
