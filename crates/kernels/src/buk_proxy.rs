//! BUK proxy — NAS integer bucket sort (305 lines, 5 arrays).
//!
//! Bucket sort is dominated by indirection: `count(key(i))` histograms
//! and scatter stores. Like IRR, the analysis can prove nothing about
//! indirect references; the proxy marks them with non-unit coefficient
//! subscripts, which are equally non-uniform. The paper's Table 2 shows
//! BUK with a single padded array (the one unit-stride key stream) —
//! this proxy preserves exactly that split.

use pad_ir::{ArrayBuilder, IndexVar, Loop, Program, Stmt, Subscript};

use crate::util::at1;

/// Number of keys.
pub const DEFAULT_N: i64 = 65_536;

/// Builds the bucket-sort proxy over `n` keys.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("BUK");
    b.source_lines(305);
    let key = b.add_array(ArrayBuilder::new("KEY", [n]));
    let rank = b.add_array(ArrayBuilder::new("RANK", [n]));
    let count = b.add_array(ArrayBuilder::new("COUNT", [2 * n]));
    let keyout = b.add_array(ArrayBuilder::new("KEYOUT", [2 * n]));
    let scaled = |c: i64| Subscript::from_terms([(IndexVar::new("i"), c)], 0);

    // Histogram: read keys sequentially, bump an unpredictable counter.
    b.push(Stmt::loop_(
        Loop::new("i", 1, n),
        vec![Stmt::refs(vec![
            at1(key, "i", 0),
            count.at([scaled(2)]),
            count.at([scaled(2)]).write(),
        ])],
    ));
    // Scatter: sequential read, indirect write.
    b.push(Stmt::loop_(
        Loop::new("i", 1, n),
        vec![Stmt::refs(vec![
            at1(key, "i", 0),
            at1(rank, "i", 0),
            keyout.at([scaled(2)]).write(),
        ])],
    ));
    b.build().expect("BUK spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{uniform_ref_fraction, Pad, PaddingConfig};

    #[test]
    fn indirection_lowers_uniform_fraction() {
        let p = spec(1024);
        let f = uniform_ref_fraction(&p);
        assert!(f < 0.70, "fraction {f}");
    }

    #[test]
    fn analysis_cannot_pad_the_indirect_arrays() {
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert_eq!(outcome.stats.arrays_intra_padded, 0);
        assert!(outcome.layout.check_no_overlap());
    }
}
