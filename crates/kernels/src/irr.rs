//! IRR — relaxation over an irregular mesh (196 lines, 4 global arrays).
//!
//! The paper's negative control: the real code gathers neighbours through
//! an index array, so its references are *not* uniformly generated and
//! the analysis can prove nothing — Table 2 shows zero arrays padded and
//! the figures show no improvement. Affine IR cannot express true
//! indirection, so this proxy models the same property with non-unit
//! coefficient subscripts (`X(3i-2)`), which are equally opaque to the
//! conflict analysis: the uniform-reference fraction is low and neither
//! PADLITE nor PAD transforms anything.

use pad_ir::{ArrayBuilder, IndexVar, Loop, Program, Stmt, Subscript};

use crate::util::at1;

/// Node count of the mesh.
pub const DEFAULT_N: i64 = 50_000;

/// Builds the irregular relaxation proxy over `n` nodes.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("IRR500K");
    b.source_lines(196);
    let x = b.add_array(ArrayBuilder::new("X", [3 * n]));
    let y = b.add_array(ArrayBuilder::new("Y", [n]));
    let w = b.add_array(ArrayBuilder::new("W", [3 * n]));
    let deg = b.add_array(ArrayBuilder::new("DEG", [n]));
    let scaled = |c: i64, off: i64| Subscript::from_terms([(IndexVar::new("i"), c)], off);
    b.push(Stmt::loop_(
        Loop::new("i", 1, n),
        vec![Stmt::refs(vec![
            x.at([scaled(3, -2)]),
            w.at([scaled(3, -2)]),
            x.at([scaled(3, -1)]),
            w.at([scaled(3, -1)]),
            x.at([scaled(3, 0)]),
            w.at([scaled(3, 0)]),
            at1(deg, "i", 0),
            at1(y, "i", 0).write(),
        ])],
    ));
    b.build().expect("IRR spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{uniform_ref_fraction, Pad, PadLite, PaddingConfig};

    #[test]
    fn most_references_are_not_uniform() {
        let p = spec(1000);
        assert!(uniform_ref_fraction(&p) < 0.30);
    }

    #[test]
    fn padding_leaves_irr_untouched() {
        let p = spec(1000);
        for outcome in [
            Pad::new(PaddingConfig::paper_base()).run(&p),
            PadLite::new(PaddingConfig::paper_base()).run(&p),
        ] {
            assert_eq!(outcome.stats.arrays_intra_padded, 0);
            // INTERPADLITE may still separate equal-size variables (it
            // needs no reference analysis), but the analytical INTERPAD
            // can prove nothing about the scaled references.
        }
        let pad = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert_eq!(pad.stats.inter_bytes_skipped, 0);
    }
}
