//! TURB3D proxy — SPEC95 isotropic turbulence (2100 lines, 9 arrays in
//! the paper's table).
//!
//! TURB3D spends its time in 3-D FFTs over power-of-two cubes: butterfly
//! passes with power-of-two strides, the pattern most hostile to a
//! power-of-two cache. True butterflies index `x(i)` and `x(i + 2^s)`
//! with a varying stage `s`; the proxy unrolls three representative
//! stages as separate nests (small, column, and plane strides) over the
//! velocity fields. Dropped: twiddle factors, bit-reversal, and the
//! spectral physics.

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at3;

/// Cube size (SPEC runs 64³).
pub const DEFAULT_N: i64 = 64;

/// The modeled arrays.
pub const ARRAY_NAMES: [&str; 6] = ["UR", "UI", "VR", "VI", "WR", "WI"];

/// Builds three butterfly-stage nests per field pair.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("TURB3D");
    b.source_lines(2100);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [n, n, n])))
        .collect();
    let [ur, ui, vr, vi, wr, wi] = ids[..] else {
        unreachable!()
    };

    let half = n / 2;
    // Stage with unit-dimension distance n/2 (the first butterfly).
    for (re, im) in [(ur, ui), (vr, vi), (wr, wi)] {
        b.push(Stmt::loop_nest(
            [
                Loop::new("k", 1, n),
                Loop::new("j", 1, n),
                Loop::new("i", 1, half),
            ],
            vec![Stmt::refs(vec![
                at3(re, "i", 0, "j", 0, "k", 0),
                at3(re, "i", half, "j", 0, "k", 0),
                at3(im, "i", 0, "j", 0, "k", 0),
                at3(im, "i", half, "j", 0, "k", 0),
                at3(re, "i", 0, "j", 0, "k", 0).write(),
                at3(re, "i", half, "j", 0, "k", 0).write(),
            ])],
        ));
    }
    // Column-direction butterfly (distance n/2 columns).
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, n),
            Loop::new("j", 1, half),
            Loop::new("i", 1, n),
        ],
        vec![Stmt::refs(vec![
            at3(ur, "i", 0, "j", 0, "k", 0),
            at3(ur, "i", 0, "j", half, "k", 0),
            at3(ur, "i", 0, "j", 0, "k", 0).write(),
            at3(ur, "i", 0, "j", half, "k", 0).write(),
        ])],
    ));
    // Plane-direction butterfly (distance n/2 planes).
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, half),
            Loop::new("j", 1, n),
            Loop::new("i", 1, n),
        ],
        vec![Stmt::refs(vec![
            at3(ur, "i", 0, "j", 0, "k", 0),
            at3(ur, "i", 0, "j", 0, "k", half),
            at3(ur, "i", 0, "j", 0, "k", 0).write(),
            at3(ur, "i", 0, "j", 0, "k", half).write(),
        ])],
    ));
    b.build().expect("TURB3D spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(16);
        assert_eq!(p.arrays().len(), 6);
        assert_eq!(p.ref_groups().len(), 5);
    }

    #[test]
    fn butterfly_strides_trigger_padding() {
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        // The plane-distance butterfly (32 planes * 32 KiB = 1 MiB apart,
        // a multiple of 16 KiB) must be broken up by intra padding.
        assert!(
            outcome.stats.arrays_intra_padded > 0 || outcome.stats.arrays_inter_padded > 0,
            "{:?}",
            outcome.events
        );
    }
}
