//! CGM proxy — NAS sparse conjugate gradient (855 lines, 11 arrays).
//!
//! CG's hot loop is a sparse matrix-vector product: `q(i) += a(k) *
//! p(col(k))` — the gather through `col` defeats the analysis, exactly
//! like IRR. The dense vector updates (AXPYs) remain uniform. Table 2
//! shows CGM with zero arrays padded intra-variably; the proxy keeps
//! that outcome while still exercising inter-variable placement on the
//! dense vectors.

use pad_ir::{ArrayBuilder, IndexVar, Loop, Program, Stmt, Subscript};

use crate::util::at1;

/// Matrix order (vectors of this length; nonzeros at 8 per row).
pub const DEFAULT_N: i64 = 14_000;

/// Builds the CG iteration body.
pub fn spec(n: i64) -> Program {
    let nnz = 8 * n;
    let mut b = Program::builder("CGM");
    b.source_lines(855);
    let a = b.add_array(ArrayBuilder::new("A", [nnz]));
    let colidx = b.add_array(ArrayBuilder::new("COLIDX", [nnz]));
    let p = b.add_array(ArrayBuilder::new("P", [3 * n]));
    let q = b.add_array(ArrayBuilder::new("Q", [n]));
    let r = b.add_array(ArrayBuilder::new("R", [n]));
    let x = b.add_array(ArrayBuilder::new("X", [n]));
    let z = b.add_array(ArrayBuilder::new("Z", [n]));
    let gather = Subscript::from_terms([(IndexVar::new("k"), 3)], 0);

    // Sparse A*p: sequential a/colidx, gathered p, accumulated q.
    b.push(Stmt::loop_(
        Loop::new("i", 1, n),
        vec![Stmt::loop_(
            Loop::new("k", 1, 8),
            vec![Stmt::refs(vec![
                at1(a, "k", 0),
                at1(colidx, "k", 0),
                p.at([gather.clone()]),
                at1(q, "i", 0).write(),
            ])],
        )],
    ));
    // Dense AXPYs: z += alpha*p ; r -= alpha*q ; x update.
    b.push(Stmt::loop_(
        Loop::new("i", 1, n),
        vec![Stmt::refs(vec![
            at1(p, "i", 0),
            at1(z, "i", 0),
            at1(z, "i", 0).write(),
            at1(q, "i", 0),
            at1(r, "i", 0),
            at1(r, "i", 0).write(),
            at1(x, "i", 0).write(),
        ])],
    ));
    b.build().expect("CGM spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(1000);
        assert_eq!(p.arrays().len(), 7);
        // The sparse product's refs group under the inner k loop; the
        // dense AXPYs under their own i loop.
        assert_eq!(p.ref_groups().len(), 2);
    }

    #[test]
    fn no_intra_padding_like_the_paper() {
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert_eq!(outcome.stats.arrays_intra_padded, 0, "all arrays are 1-D");
        assert!(outcome.layout.check_no_overlap());
    }
}
