//! DOT — vector dot product, Livermore loop 3 (32 lines, 2 global
//! arrays).
//!
//! The motivating example of the paper's Figure 1: two unit-stride
//! streams. When the vectors' sizes are multiples of the cache size the
//! base addresses collide and *every* access conflict-misses on a
//! direct-mapped cache; one line of inter-variable padding restores full
//! spatial reuse.
//!
//! The paper calls this benchmark `DOT256`; at 8-byte elements a 256 KiB
//! vector (32 Ki elements) is the size class that aliases a 16 KiB cache,
//! so that is the default here.

use pad_ir::{Loop, Program, Stmt};

use crate::util::at1;
use crate::workspace::Workspace;

/// Default vector length: 32 Ki doubles = 256 KiB per vector.
pub const DEFAULT_N: i64 = 32 * 1024;

/// Passes over the vectors performed by the native kernel.
pub const NATIVE_PASSES: usize = 16;

/// Builds the dot-product loop at vector length `n`.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("DOT256K");
    b.source_lines(32);
    let a = b.add_array(pad_ir::ArrayBuilder::new("A", [n]));
    let bb = b.add_array(pad_ir::ArrayBuilder::new("B", [n]));
    b.push(Stmt::loop_(
        Loop::new("i", 1, n),
        vec![Stmt::refs(vec![at1(a, "i", 0), at1(bb, "i", 0)])],
    ));
    b.build().expect("DOT spec is well-formed")
}

/// Computes the dot product [`NATIVE_PASSES`] times and returns the final
/// value (returned so the compiler cannot dead-code the loop).
pub fn run_native(ws: &mut Workspace, n: i64) -> f64 {
    let a = ws.array("A");
    let b = ws.array("B");
    let a0 = ws.base_word(a);
    let b0 = ws.base_word(b);
    let n = n as usize;
    let buf = ws.words_mut();
    let mut s = 0.0;
    for _ in 0..NATIVE_PASSES {
        let mut acc = 0.0;
        for i in 0..n {
            acc += buf[a0 + i] * buf[b0 + i];
        }
        s = acc;
        // A tiny write-back keeps the optimizer from hoisting the passes.
        buf[a0] += 0.0;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::DataLayout;

    #[test]
    fn spec_shape() {
        let p = spec(1024);
        assert_eq!(p.arrays().len(), 2);
        assert_eq!(p.all_refs().len(), 2);
    }

    #[test]
    fn native_computes_the_dot_product() {
        let p = spec(100);
        let mut ws = Workspace::new(&p, DataLayout::original(&p));
        let a = ws.array("A");
        let b = ws.array("B");
        for i in 1..=100i64 {
            ws.set(a, &[i], 2.0);
            ws.set(b, &[i], 3.0);
        }
        assert_eq!(run_native(&mut ws, 100), 600.0);
    }
}
