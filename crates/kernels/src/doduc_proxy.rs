//! DODUC proxy — SPEC92 thermohydraulics Monte Carlo (5334 lines, 91
//! arrays in the paper — the most of any benchmark).
//!
//! DODUC models a nuclear reactor with dozens of *small* state arrays
//! updated by mostly scalar code. The proxy mirrors that profile: many
//! small 1-D arrays touched a few at a time with unit stride. Small
//! arrays rarely alias, so padding activity is minimal — matching the
//! near-empty DODUC row of Table 2.

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at1;

/// State-vector length.
pub const DEFAULT_N: i64 = 200;

/// Number of state arrays.
pub const NUM_ARRAYS: usize = 24;

/// Builds the many-small-arrays proxy.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("DODUC");
    b.source_lines(5334);
    let ids: Vec<ArrayId> = (0..NUM_ARRAYS)
        .map(|k| b.add_array(ArrayBuilder::new(format!("S{k:02}"), [n])))
        .collect();
    // Each phase reads a handful of state vectors and updates one.
    for phase in 0..6usize {
        let dst = ids[phase * 4];
        let srcs = [ids[phase * 4 + 1], ids[phase * 4 + 2], ids[phase * 4 + 3]];
        b.push(Stmt::loop_(
            Loop::new("i", 1, n),
            vec![Stmt::refs(vec![
                at1(srcs[0], "i", 0),
                at1(srcs[1], "i", 0),
                at1(srcs[2], "i", 0),
                at1(dst, "i", 0).write(),
            ])],
        ));
    }
    b.build().expect("DODUC spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn many_small_arrays() {
        let p = spec(DEFAULT_N);
        assert_eq!(p.arrays().len(), NUM_ARRAYS);
        assert_eq!(p.ref_groups().len(), 6);
    }

    #[test]
    fn small_arrays_need_no_padding() {
        // 200 doubles = 1.6 KiB per array: ten fit in the cache at once,
        // and equal sizes only collide when the whole group exceeds Cs.
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert_eq!(outcome.stats.arrays_intra_padded, 0);
        assert!(outcome.stats.size_increase_percent < 2.0);
    }
}
