//! ADI — alternating-direction implicit integration fragment
//! (Livermore loop 8 flavour; 63 lines, 6 global arrays in the paper).
//!
//! Two sweeps solve implicit recurrences along alternating grid
//! directions: the `x` sweep carries a dependence along the column
//! (`X(j-1,i)`), the `y` sweep along the row (`X(j,i-1)`). Six conforming
//! arrays mean plentiful inter-variable conflicts at aliasing sizes.

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at2;
use crate::workspace::Workspace;

/// Default problem size.
pub const DEFAULT_N: i64 = 512;

/// The fragment's arrays.
pub const ARRAY_NAMES: [&str; 6] = ["X", "A", "B", "C", "D", "Y"];

/// Builds the two ADI sweeps at problem size `n`.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("ADI512");
    b.source_lines(63);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [n, n])))
        .collect();
    let [x, a, bb, c, d, y] = ids[..] else {
        unreachable!()
    };

    // x-direction sweep: recurrence along j (the column).
    b.push(Stmt::loop_nest(
        [Loop::new("i", 1, n), Loop::new("j", 2, n)],
        vec![Stmt::refs(vec![
            at2(x, "j", -1, "i", 0),
            at2(a, "j", 0, "i", 0),
            at2(bb, "j", 0, "i", 0),
            at2(x, "j", 0, "i", 0).write(),
        ])],
    ));
    // y-direction sweep: recurrence along i (the row), result into Y.
    b.push(Stmt::loop_nest(
        [Loop::new("i", 2, n), Loop::new("j", 1, n)],
        vec![Stmt::refs(vec![
            at2(x, "j", 0, "i", -1),
            at2(c, "j", 0, "i", 0),
            at2(d, "j", 0, "i", 0),
            at2(x, "j", 0, "i", 0),
            at2(y, "j", 0, "i", 0).write(),
        ])],
    ));
    b.build().expect("ADI spec is well-formed")
}

/// Runs the two sweeps natively.
pub fn run_native(ws: &mut Workspace, n: i64) {
    let ids: Vec<_> = ARRAY_NAMES.iter().map(|name| ws.array(name)).collect();
    let bases: Vec<usize> = ids.iter().map(|&id| ws.base_word(id)).collect();
    let cols: Vec<usize> = ids.iter().map(|&id| ws.strides(id)[1]).collect();
    let [x, a, bb, c, d, y] = bases[..] else {
        unreachable!()
    };
    let [cx, ca, cb, cc, cd, cy] = cols[..] else {
        unreachable!()
    };
    let n = n as usize;
    let (buf, _) = ws.parts_mut();
    for i in 0..n {
        for j in 1..n {
            buf[x + j + i * cx] =
                buf[x + (j - 1) + i * cx] * buf[a + j + i * ca] * 0.25 + buf[bb + j + i * cb];
        }
    }
    for i in 1..n {
        for j in 0..n {
            buf[y + j + i * cy] = buf[x + j + (i - 1) * cx] * buf[c + j + i * cc] * 0.25
                + buf[d + j + i * cd]
                + buf[x + j + i * cx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::DataLayout;

    #[test]
    fn spec_shape() {
        let p = spec(64);
        assert_eq!(p.arrays().len(), 6);
        assert_eq!(p.ref_groups().len(), 2);
    }

    #[test]
    fn recurrence_propagates_along_columns() {
        let p = spec(8);
        let mut ws = Workspace::new(&p, DataLayout::original(&p));
        let x = ws.array("X");
        let a = ws.array("A");
        // A = 4 so the 0.25 factor cancels; B = 0: X(j,i) = X(j-1,i).
        for i in 1..=8i64 {
            ws.set(x, &[1, i], i as f64);
            for j in 1..=8i64 {
                ws.set(a, &[j, i], 4.0);
            }
        }
        run_native(&mut ws, 8);
        for i in 1..=8i64 {
            assert_eq!(
                ws.get(x, &[8, i]),
                i as f64,
                "column {i} should carry its seed"
            );
        }
    }
}
