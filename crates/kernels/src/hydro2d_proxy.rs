//! HYDRO2D proxy — SPEC95 Navier-Stokes astrophysical jets (4292 lines,
//! 9 global arrays in the paper's table).
//!
//! HYDRO2D advances gas-dynamics fields on a 2-D grid with
//! direction-split finite differences. The proxy keeps nine conforming
//! `n × n` field arrays and two split update nests (one per direction);
//! dropped are the boundary treatments and the many small control
//! routines.

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at2;

/// Grid size. SPEC's grid is 402 × 160; a square power-of-two grid keeps
/// the aliasing behaviour that matters on a 16 KiB cache.
pub const DEFAULT_N: i64 = 256;

/// The modeled arrays.
pub const ARRAY_NAMES: [&str; 9] = ["RO", "EN", "MU", "MV", "ZP", "FU", "FV", "GU", "GV"];

/// Builds the two direction-split update nests.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("HYDRO2D");
    b.source_lines(4292);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [n, n])))
        .collect();
    let [ro, en, mu, mv, zp, fu, fv, gu, gv] = ids[..] else {
        unreachable!()
    };

    // x-direction fluxes and update.
    b.push(Stmt::loop_nest(
        [Loop::new("j", 2, n - 1), Loop::new("i", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(ro, "i", -1, "j", 0),
            at2(ro, "i", 1, "j", 0),
            at2(mu, "i", 0, "j", 0),
            at2(zp, "i", -1, "j", 0),
            at2(zp, "i", 1, "j", 0),
            at2(fu, "i", 0, "j", 0).write(),
            at2(mv, "i", 0, "j", 0),
            at2(fv, "i", 0, "j", 0).write(),
        ])],
    ));
    // y-direction fluxes and energy update.
    b.push(Stmt::loop_nest(
        [Loop::new("j", 2, n - 1), Loop::new("i", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(ro, "i", 0, "j", -1),
            at2(ro, "i", 0, "j", 1),
            at2(mv, "i", 0, "j", 0),
            at2(zp, "i", 0, "j", -1),
            at2(zp, "i", 0, "j", 1),
            at2(gu, "i", 0, "j", 0).write(),
            at2(gv, "i", 0, "j", 0).write(),
        ])],
    ));
    // Conserved-variable advance.
    b.push(Stmt::loop_nest(
        [Loop::new("j", 2, n - 1), Loop::new("i", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(fu, "i", 0, "j", 0),
            at2(gu, "i", 0, "j", 0),
            at2(mu, "i", 0, "j", 0),
            at2(mu, "i", 0, "j", 0).write(),
            at2(fv, "i", 0, "j", 0),
            at2(gv, "i", 0, "j", 0),
            at2(mv, "i", 0, "j", 0),
            at2(mv, "i", 0, "j", 0).write(),
            at2(ro, "i", 0, "j", 0),
            at2(ro, "i", 0, "j", 0).write(),
            at2(en, "i", 0, "j", 0),
            at2(en, "i", 0, "j", 0).write(),
        ])],
    ));
    b.build().expect("HYDRO2D spec is well-formed")
}

/// Runs one native direction-split step matching [`spec`].
pub fn run_native(ws: &mut crate::Workspace, n: i64) {
    let ids: Vec<_> = ARRAY_NAMES.iter().map(|name| ws.array(name)).collect();
    let bases: Vec<usize> = ids.iter().map(|&id| ws.base_word(id)).collect();
    let cols: Vec<usize> = ids.iter().map(|&id| ws.strides(id)[1]).collect();
    let [ro, en, mu, mv, zp, fu, fv, gu, gv] = bases[..] else {
        unreachable!()
    };
    let [cro, cen, cmu, cmv, czp, cfu, cfv, cgu, cgv] = cols[..] else {
        unreachable!()
    };
    let n = n as usize;
    let (buf, _) = ws.parts_mut();
    let dt = 0.004;
    for j in 1..n - 1 {
        for i in 1..n - 1 {
            buf[fu + i + j * cfu] = 0.5
                * (buf[ro + (i - 1) + j * cro] + buf[ro + (i + 1) + j * cro])
                * buf[mu + i + j * cmu]
                + (buf[zp + (i + 1) + j * czp] - buf[zp + (i - 1) + j * czp]);
            buf[fv + i + j * cfv] = buf[mv + i + j * cmv] * 0.5;
        }
    }
    for j in 1..n - 1 {
        for i in 1..n - 1 {
            buf[gu + i + j * cgu] = 0.5
                * (buf[ro + i + (j - 1) * cro] + buf[ro + i + (j + 1) * cro])
                * buf[mv + i + j * cmv]
                + (buf[zp + i + (j + 1) * czp] - buf[zp + i + (j - 1) * czp]);
            buf[gv + i + j * cgv] = buf[mv + i + j * cmv] * 0.25;
        }
    }
    for j in 1..n - 1 {
        for i in 1..n - 1 {
            buf[mu + i + j * cmu] -= dt * (buf[fu + i + j * cfu] + buf[gu + i + j * cgu]);
            buf[mv + i + j * cmv] -= dt * (buf[fv + i + j * cfv] + buf[gv + i + j * cgv]);
            buf[ro + i + j * cro] -= dt * buf[mu + i + j * cmu];
            buf[en + i + j * cen] -= dt * buf[mv + i + j * cmv];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(64);
        assert_eq!(p.arrays().len(), 9);
        assert_eq!(p.ref_groups().len(), 3);
    }

    #[test]
    fn native_matches_under_padding() {
        use pad_core::DataLayout;
        let p = spec(20);
        let seed = |ws: &mut crate::Workspace| {
            for (i, name) in ARRAY_NAMES.iter().enumerate() {
                let id = ws.array(name);
                ws.fill_pattern(id, i as u64 + 1);
            }
        };
        let mut plain = crate::Workspace::new(&p, DataLayout::original(&p));
        seed(&mut plain);
        run_native(&mut plain, 20);

        let outcome = Pad::new(PaddingConfig::new(1024, 32).expect("valid")).run(&p);
        let mut padded = crate::Workspace::new(&p, outcome.layout);
        seed(&mut padded);
        run_native(&mut padded, 20);

        for name in ARRAY_NAMES {
            let id = plain.array(name);
            assert_eq!(plain.checksum(id), padded.checksum(id), "{name}");
        }
    }

    #[test]
    fn aliasing_arrays_get_separated() {
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(outcome.stats.arrays_inter_padded > 0);
    }
}
