//! APPLU proxy — NAS parabolic/elliptic PDE solver (3417 lines, 34
//! arrays in the paper).
//!
//! APPLU performs SSOR sweeps with lower/upper triangular solves over a
//! 3-D grid, giving it wavefront-ordered accesses with both unit and
//! plane strides. The proxy keeps the SSOR structure on folded rank-3
//! arrays; dropped: the Jacobian assembly and the wavefront skewing
//! (modeled as ordinary sweeps, which preserves the stride mix).

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at3;

/// Cube size.
pub const DEFAULT_N: i64 = 32;

/// The modeled arrays.
pub const ARRAY_NAMES: [&str; 4] = ["U", "RSD", "FLUX", "D"];

/// Builds the lower and upper SSOR sweeps.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("APPLU");
    b.source_lines(3417);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [5 * n, n, n])))
        .collect();
    let [u, rsd, flux, d] = ids[..] else {
        unreachable!()
    };

    // Residual with neighbours in all three directions.
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 2, n - 1),
            Loop::new("j", 2, n - 1),
            Loop::new("i", 6, 5 * n - 5),
        ],
        vec![Stmt::refs(vec![
            at3(u, "i", -5, "j", 0, "k", 0),
            at3(u, "i", 5, "j", 0, "k", 0),
            at3(u, "i", 0, "j", -1, "k", 0),
            at3(u, "i", 0, "j", 1, "k", 0),
            at3(u, "i", 0, "j", 0, "k", -1),
            at3(u, "i", 0, "j", 0, "k", 1),
            at3(flux, "i", 0, "j", 0, "k", 0),
            at3(rsd, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    // Lower-triangular sweep.
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 2, n),
            Loop::new("j", 2, n),
            Loop::new("i", 6, 5 * n),
        ],
        vec![Stmt::refs(vec![
            at3(rsd, "i", -5, "j", 0, "k", 0),
            at3(rsd, "i", 0, "j", -1, "k", 0),
            at3(rsd, "i", 0, "j", 0, "k", -1),
            at3(d, "i", 0, "j", 0, "k", 0),
            at3(rsd, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    // Upper-triangular sweep (reverse direction).
    b.push(Stmt::loop_nest(
        [
            Loop::with_step("k", n - 1, 1, -1),
            Loop::with_step("j", n - 1, 1, -1),
            Loop::with_step("i", 5 * n - 5, 1, -1),
        ],
        vec![Stmt::refs(vec![
            at3(rsd, "i", 5, "j", 0, "k", 0),
            at3(rsd, "i", 0, "j", 1, "k", 0),
            at3(rsd, "i", 0, "j", 0, "k", 1),
            at3(u, "i", 0, "j", 0, "k", 0),
            at3(u, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    b.build().expect("APPLU spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(8);
        assert_eq!(p.arrays().len(), 4);
        assert_eq!(p.ref_groups().len(), 3);
    }

    #[test]
    fn reverse_sweeps_trace_correctly() {
        use pad_core::DataLayout;
        use pad_trace::count_accesses;
        let p = spec(6);
        let layout = DataLayout::original(&p);
        assert!(count_accesses(&p, &layout) > 0);
    }

    #[test]
    fn pad_runs_cleanly() {
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(outcome.layout.check_no_overlap());
    }
}
