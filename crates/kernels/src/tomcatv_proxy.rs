//! TOMCATV proxy — SPEC95 vectorized mesh generation (190 lines, 7
//! arrays).
//!
//! TOMCATV iterates: compute residuals `RX, RY` from the mesh coordinates
//! `X, Y` with nine-point stencils, solve tridiagonal systems in
//! workspace arrays `AA, DD, D`, and update the mesh. All seven `N × N`
//! arrays conform; at the benchmark's 513 grid the *column* size is
//! harmless, but equal array sizes still stack base addresses on the
//! cache — TOMCATV is one of the biggest padding wins in the paper's
//! Figure 15. Dropped from the real code: convergence logic and I/O.

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at2;

/// TOMCATV's grid size (arrays are 513 × 513 in SPEC).
pub const DEFAULT_N: i64 = 513;

/// The modeled arrays.
pub const ARRAY_NAMES: [&str; 7] = ["X", "Y", "RX", "RY", "AA", "DD", "D"];

/// Builds the proxy's residual and solve nests at grid size `n`.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("TOMCATV");
    b.source_lines(190);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [n, n])))
        .collect();
    let [x, y, rx, ry, aa, dd, d] = ids[..] else {
        unreachable!()
    };

    // Residual computation: nine-point stencils on X and Y.
    b.push(Stmt::loop_nest(
        [Loop::new("j", 2, n - 1), Loop::new("i", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(x, "i", -1, "j", 0),
            at2(x, "i", 1, "j", 0),
            at2(x, "i", 0, "j", -1),
            at2(x, "i", 0, "j", 1),
            at2(x, "i", -1, "j", -1),
            at2(x, "i", 1, "j", 1),
            at2(y, "i", -1, "j", 0),
            at2(y, "i", 1, "j", 0),
            at2(y, "i", 0, "j", -1),
            at2(y, "i", 0, "j", 1),
            at2(rx, "i", 0, "j", 0).write(),
            at2(ry, "i", 0, "j", 0).write(),
        ])],
    ));
    // Tridiagonal factor/solve workspace sweeps.
    b.push(Stmt::loop_nest(
        [Loop::new("j", 2, n - 1), Loop::new("i", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(aa, "i", 0, "j", 0),
            at2(dd, "i", 0, "j", 0),
            at2(d, "i", 0, "j", -1),
            at2(rx, "i", 0, "j", 0),
            at2(d, "i", 0, "j", 0).write(),
            at2(rx, "i", 0, "j", 0).write(),
            at2(ry, "i", 0, "j", 0).write(),
        ])],
    ));
    // Mesh update.
    b.push(Stmt::loop_nest(
        [Loop::new("j", 2, n - 1), Loop::new("i", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(rx, "i", 0, "j", 0),
            at2(ry, "i", 0, "j", 0),
            at2(x, "i", 0, "j", 0),
            at2(y, "i", 0, "j", 0),
            at2(x, "i", 0, "j", 0).write(),
            at2(y, "i", 0, "j", 0).write(),
        ])],
    ));
    b.build().expect("TOMCATV spec is well-formed")
}

/// Runs one native residual/solve/update iteration matching [`spec`].
pub fn run_native(ws: &mut crate::Workspace, n: i64) {
    let ids: Vec<_> = ARRAY_NAMES.iter().map(|name| ws.array(name)).collect();
    let bases: Vec<usize> = ids.iter().map(|&id| ws.base_word(id)).collect();
    let cols: Vec<usize> = ids.iter().map(|&id| ws.strides(id)[1]).collect();
    let [x, y, rx, ry, aa, dd, d] = bases[..] else {
        unreachable!()
    };
    let [cx, cy, crx, cry, caa, cdd, cd] = cols[..] else {
        unreachable!()
    };
    let n = n as usize;
    let (buf, _) = ws.parts_mut();
    for j in 1..n - 1 {
        for i in 1..n - 1 {
            let xc = x + i + j * cx;
            let yc = y + i + j * cy;
            let xxx = buf[xc + 1] - buf[xc - 1];
            let yxx = buf[yc + 1] - buf[yc - 1];
            let xyy = buf[xc + cx] - buf[xc - cx];
            let yyy = buf[yc + cy] - buf[yc - cy];
            let a = 0.25 * (xyy * xyy + yyy * yyy);
            let bb = 0.25 * (xxx * xxx + yxx * yxx);
            let c = 0.125 * (xxx * xyy + yxx * yyy);
            buf[rx + i + j * crx] = a * (buf[xc - 1] + buf[xc + 1])
                + bb * (buf[xc - cx] + buf[xc + cx])
                - 2.0 * (a + bb) * buf[xc]
                - c * (buf[xc + 1 + cx] - buf[xc + 1 - cx]);
            buf[ry + i + j * cry] = a * (buf[yc - 1] + buf[yc + 1])
                + bb * (buf[yc - cy] + buf[yc + cy])
                - 2.0 * (a + bb) * buf[yc];
        }
    }
    for j in 1..n - 1 {
        for i in 1..n - 1 {
            let prev = buf[d + i + (j - 1) * cd];
            let denom = buf[dd + i + j * cdd] - buf[aa + i + j * caa] * prev + 4.0;
            buf[d + i + j * cd] = 1.0 / denom;
            buf[rx + i + j * crx] *= buf[d + i + j * cd];
            buf[ry + i + j * cry] *= buf[d + i + j * cd];
        }
    }
    for j in 1..n - 1 {
        for i in 1..n - 1 {
            buf[x + i + j * cx] += buf[rx + i + j * crx];
            buf[y + i + j * cy] += buf[ry + i + j * cry];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(65);
        assert_eq!(p.arrays().len(), 7);
        assert_eq!(p.ref_groups().len(), 3);
    }

    #[test]
    fn native_matches_under_padding() {
        use pad_core::DataLayout;
        let p = spec(20);
        let seed = |ws: &mut crate::Workspace| {
            for (i, name) in ARRAY_NAMES.iter().enumerate() {
                let id = ws.array(name);
                ws.fill_pattern(id, i as u64 + 1);
            }
        };
        let mut plain = crate::Workspace::new(&p, DataLayout::original(&p));
        seed(&mut plain);
        run_native(&mut plain, 20);

        let outcome = Pad::new(PaddingConfig::new(1024, 32).expect("valid")).run(&p);
        let mut padded = crate::Workspace::new(&p, outcome.layout);
        seed(&mut padded);
        run_native(&mut padded, 20);

        for name in ARRAY_NAMES {
            let id = plain.array(name);
            assert_eq!(plain.checksum(id), padded.checksum(id), "{name}");
        }
    }

    #[test]
    fn equal_sizes_attract_inter_padding_at_aliasing_sizes() {
        // Power-of-two variant: every array is the same size, so bases
        // collide mod the cache.
        let p = spec(512);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(outcome.stats.arrays_inter_padded > 0);
    }
}
