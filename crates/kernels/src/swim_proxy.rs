//! SWIM proxy — SPEC95's shallow-water benchmark (429 lines, 14 arrays).
//!
//! SWIM is the SPEC packaging of the same shallow-water model as
//! [`crate::shal`], run on a 513 × 513 grid. The proxy therefore reuses
//! the SHAL nests verbatim at SWIM's grid size. What is dropped from the
//! real benchmark: initialization, I/O, and the periodic-boundary copy
//! loops, none of which touch the conflict behaviour of the main sweeps.

use pad_ir::Program;

/// SWIM's grid size (arrays are 513 × 513).
pub const DEFAULT_N: i64 = 512;

/// Builds the proxy at grid size `n`.
pub fn spec(n: i64) -> Program {
    crate::shal::spec_named("SWIM", 429, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn swim_shares_shal_structure() {
        let p = spec(64);
        assert_eq!(p.name(), "SWIM");
        assert_eq!(p.arrays().len(), 14);
    }

    #[test]
    fn odd_grid_still_benefits_from_analysis() {
        // 513-wide columns are not power-of-two, but 14 conforming arrays
        // still produce inter-variable collisions PAD can clear.
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(outcome.layout.check_no_overlap());
    }
}
