//! MDLJDP2 proxy — SPEC92 molecular dynamics, double precision
//! (4316 lines, 25 arrays in the paper).
//!
//! Lennard-Jones MD: position/velocity/force vectors updated with unit
//! stride, plus a pair-interaction phase that gathers neighbours through
//! a list (modeled with scaled subscripts). Table 2 shows MDLJDP2 with
//! modest inter-variable padding and Figure 14 shows it benefiting from
//! PAD's precision on a 2 K cache — the equal-sized coordinate vectors
//! are the aliasing hazard.

use pad_ir::{ArrayBuilder, IndexVar, Loop, Program, Stmt, Subscript};

use crate::util::at1;

/// Atom count.
pub const DEFAULT_N: i64 = 4096;

/// Element size for this variant (double precision).
pub const ELEM_SIZE: u32 = 8;

/// Builds the MD proxy. `elem_size` distinguishes the DP/SP variants.
pub(crate) fn spec_sized(name: &str, lines: u32, n: i64, elem_size: u32) -> Program {
    let mut b = Program::builder(name);
    b.source_lines(lines);
    let names = ["X", "Y", "Z", "VX", "VY", "VZ", "FX", "FY", "FZ"];
    let ids: Vec<_> = names
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [n]).elem_size(elem_size)))
        .collect();
    let list = b.add_array(ArrayBuilder::new("LIST", [4 * n]).elem_size(elem_size));
    // Neighbour coordinates are fetched through the list; the scaled
    // stand-in for that indirection needs a full-width target.
    let xnb = b.add_array(ArrayBuilder::new("XNB", [4 * n]).elem_size(elem_size));
    let [x, y, z, vx, vy, vz, fx, fy, fz] = ids[..] else {
        unreachable!()
    };
    let gather = Subscript::from_terms([(IndexVar::new("i"), 4)], -3);

    // Pair forces: own coordinates sequential, neighbour through list.
    b.push(Stmt::loop_(
        Loop::new("i", 1, n),
        vec![Stmt::refs(vec![
            at1(x, "i", 0),
            at1(y, "i", 0),
            at1(z, "i", 0),
            list.at([gather.clone()]),
            xnb.at([gather.clone()]),
            at1(fx, "i", 0).write(),
            at1(fy, "i", 0).write(),
            at1(fz, "i", 0).write(),
        ])],
    ));
    // Leapfrog integration: all nine vectors together.
    b.push(Stmt::loop_(
        Loop::new("i", 1, n),
        vec![Stmt::refs(vec![
            at1(fx, "i", 0),
            at1(vx, "i", 0),
            at1(vx, "i", 0).write(),
            at1(x, "i", 0),
            at1(x, "i", 0).write(),
            at1(fy, "i", 0),
            at1(vy, "i", 0),
            at1(vy, "i", 0).write(),
            at1(y, "i", 0),
            at1(y, "i", 0).write(),
            at1(fz, "i", 0),
            at1(vz, "i", 0),
            at1(vz, "i", 0).write(),
            at1(z, "i", 0),
            at1(z, "i", 0).write(),
        ])],
    ));
    b.build().expect("MD spec is well-formed")
}

/// Builds the double-precision variant.
pub fn spec(n: i64) -> Program {
    spec_sized("MDLJDP2", 4316, n, ELEM_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn gather_in_x_is_not_uniform() {
        let p = spec(512);
        let f = pad_core::uniform_ref_fraction(&p);
        assert!(f > 0.8 && f < 1.0, "fraction {f}");
    }

    #[test]
    fn equal_coordinate_vectors_attract_inter_padding() {
        // 4096 doubles = 32 KiB per vector: nine equal-size vectors
        // alias the 16 KiB cache pairwise.
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(
            outcome.stats.arrays_inter_padded > 0,
            "{:?}",
            outcome.events
        );
    }
}
