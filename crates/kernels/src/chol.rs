//! CHOL — Cholesky factorization (165 lines, 5 global arrays in the
//! paper's version; modeled here with the factored matrix plus a diagonal
//! workspace).
//!
//! Column-oriented Cholesky: updating column `j` reads every earlier
//! column `k < j`, so the full distribution of column distances is
//! exercised — the paper's Figure 16 shows CHOL suffering severe
//! conflicts at far more problem sizes than any other kernel, and it is
//! the benchmark where `LINPAD2` clearly beats `LINPAD1` (Figure 17).

use pad_ir::{Loop, Program, Stmt, Subscript};

use crate::util::{at1, at2};
use crate::workspace::Workspace;

/// Paper problem size (`CHOL256`).
pub const DEFAULT_N: i64 = 256;

/// Columns factored by [`spec`] for cache simulation; enough that column
/// distances up to `LINPAD2`'s `j* = 129` occur.
pub const DEFAULT_STEPS: i64 = 160;

/// Builds the factorization of the leading [`DEFAULT_STEPS`] columns.
pub fn spec(n: i64) -> Program {
    spec_steps(n, DEFAULT_STEPS)
}

/// Builds the factorization truncated to the first `steps` columns.
pub fn spec_steps(n: i64, steps: i64) -> Program {
    let mut b = Program::builder("CHOL256");
    b.source_lines(165);
    let a = b.add_array(pad_ir::ArrayBuilder::new("A", [n, n]));
    let d = b.add_array(pad_ir::ArrayBuilder::new("D", [n]));
    b.push(Stmt::loop_(
        Loop::new("j", 1, steps.min(n)),
        vec![
            // cmod(j, k): subtract the contribution of each earlier column.
            Stmt::loop_(
                Loop::new("k", 1, Subscript::var_offset("j", -1)),
                vec![
                    Stmt::refs(vec![at2(a, "j", 0, "k", 0)]),
                    Stmt::loop_(
                        Loop::new("i", Subscript::var("j"), n),
                        vec![Stmt::refs(vec![
                            at2(a, "i", 0, "j", 0),
                            at2(a, "i", 0, "k", 0),
                            at2(a, "i", 0, "j", 0).write(),
                        ])],
                    ),
                ],
            ),
            // cdiv(j): scale column j by the square root of the diagonal.
            Stmt::refs(vec![at2(a, "j", 0, "j", 0), at1(d, "j", 0).write()]),
            Stmt::loop_(
                Loop::new("i", Subscript::var("j"), n),
                vec![Stmt::refs(vec![
                    at2(a, "i", 0, "j", 0),
                    at2(a, "i", 0, "j", 0).write(),
                ])],
            ),
        ],
    ));
    b.build().expect("CHOL spec is well-formed")
}

/// Runs the complete column-Cholesky factorization natively. `A` must be
/// symmetric positive definite; the lower triangle is replaced by `L`.
pub fn run_native(ws: &mut Workspace, n: i64) {
    let a = ws.array("A");
    let d = ws.array("D");
    let a0 = ws.base_word(a);
    let d0 = ws.base_word(d);
    let col = ws.strides(a)[1];
    let n = n as usize;
    let buf = ws.words_mut();
    let idx = |i: usize, j: usize| a0 + i + j * col;
    for j in 0..n {
        for k in 0..j {
            let ajk = buf[idx(j, k)];
            for i in j..n {
                buf[idx(i, j)] -= ajk * buf[idx(i, k)];
            }
        }
        let diag = buf[idx(j, j)];
        assert!(diag > 0.0, "matrix is not positive definite at column {j}");
        let root = diag.sqrt();
        buf[d0 + j] = root;
        let inv = 1.0 / root;
        for i in j..n {
            buf[idx(i, j)] *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{is_linear_algebra_array, DataLayout};

    #[test]
    fn spec_is_linear_algebra() {
        let p = spec(64);
        let a = p.arrays_with_ids().next().expect("has A").0;
        assert!(is_linear_algebra_array(&p, a));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // matrix math reads better indexed
    fn factorization_reproduces_the_matrix() {
        let n = 6usize;
        let p = spec_steps(n as i64, n as i64);
        let mut ws = Workspace::new(&p, DataLayout::original(&p));
        let a = ws.array("A");
        // Build S = M^T M + n*I, a guaranteed SPD matrix.
        let mut s = vec![vec![0.0f64; n]; n];
        for (i, row) in s.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for k in 0..n {
                    let mik = ((i * 7 + k * 3) % 5) as f64;
                    let mjk = ((j * 7 + k * 3) % 5) as f64;
                    acc += mik * mjk;
                }
                *v = acc + if i == j { n as f64 } else { 0.0 };
            }
        }
        for i in 0..n {
            for j in 0..n {
                ws.set(a, &[(i + 1) as i64, (j + 1) as i64], s[i][j]);
            }
        }
        run_native(&mut ws, n as i64);
        // Check L * L^T = S on the lower triangle.
        for i in 0..n {
            for j in 0..=i {
                let mut acc = 0.0;
                for k in 0..=j {
                    acc += ws.get(a, &[(i + 1) as i64, (k + 1) as i64])
                        * ws.get(a, &[(j + 1) as i64, (k + 1) as i64]);
                }
                assert!(
                    (acc - s[i][j]).abs() < 1e-9,
                    "LL^T({i},{j}) = {acc}, want {}",
                    s[i][j]
                );
            }
        }
    }

    #[test]
    fn truncated_spec_touches_fewer_columns() {
        use pad_trace::count_accesses;
        let full = spec_steps(64, 64);
        let cut = spec_steps(64, 8);
        let lf = DataLayout::original(&full);
        let lc = DataLayout::original(&cut);
        assert!(count_accesses(&cut, &lc) < count_accesses(&full, &lf) / 10);
    }
}
