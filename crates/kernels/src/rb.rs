//! RB — 2-D red-black over-relaxation (52 lines, 1 global array).
//!
//! Successive over-relaxation with a red/black ordering: the grid is
//! swept twice per iteration, visiting alternate points with stride-2
//! inner loops. A single array means only *intra*-variable effects (and
//! self-conflicts between columns) matter, which is why the paper's
//! Figure 11 shows RB benefiting from padding mainly at small cache
//! sizes.
//!
//! The true red-black ordering offsets the inner start by the outer
//! index's parity; an affine IR cannot express `mod`, so each color is
//! approximated by a pair of stride-2 nests covering both phases. The
//! native implementation performs the exact ordering.

use pad_ir::{Loop, Program, Stmt};

use crate::util::at2;
use crate::workspace::Workspace;

/// Paper problem size (`RB512`).
pub const DEFAULT_N: i64 = 512;

/// Relaxation factor used by the native kernel.
pub const OMEGA: f64 = 1.5;

/// Sweeps performed by the native kernel.
pub const NATIVE_SWEEPS: usize = 4;

/// Builds the red-black relaxation nests at problem size `n`.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("RB512");
    b.source_lines(52);
    let a = b.add_array(pad_ir::ArrayBuilder::new("A", [n, n]));
    for start in [2i64, 3] {
        b.push(Stmt::loop_nest(
            [
                Loop::new("i", 2, n - 1),
                Loop::with_step("j", start, n - 1, 2),
            ],
            vec![Stmt::refs(vec![
                at2(a, "j", -1, "i", 0),
                at2(a, "j", 1, "i", 0),
                at2(a, "j", 0, "i", -1),
                at2(a, "j", 0, "i", 1),
                at2(a, "j", 0, "i", 0),
                at2(a, "j", 0, "i", 0).write(),
            ])],
        ));
    }
    b.build().expect("RB spec is well-formed")
}

/// Runs [`NATIVE_SWEEPS`] exact red-black SOR sweeps.
pub fn run_native(ws: &mut Workspace, n: i64) {
    let a = ws.array("A");
    let a0 = ws.base_word(a);
    let col = ws.strides(a)[1];
    let n = n as usize;
    let buf = ws.words_mut();
    for _ in 0..NATIVE_SWEEPS {
        for color in 0..2usize {
            for i in 2..n {
                let start = 2 + (i + color) % 2;
                let mut j = start;
                while j < n {
                    let c = a0 + (j - 1) + (i - 1) * col;
                    let gs = 0.25 * (buf[c - 1] + buf[c + 1] + buf[c - col] + buf[c + col]);
                    buf[c] += OMEGA * (gs - buf[c]);
                    j += 2;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::DataLayout;

    #[test]
    fn spec_shape() {
        let p = spec(64);
        assert_eq!(p.arrays().len(), 1);
        assert_eq!(p.ref_groups().len(), 2);
    }

    #[test]
    fn native_converges_toward_boundary_average() {
        let p = spec(16);
        let mut ws = Workspace::new(&p, DataLayout::original(&p));
        let a = ws.array("A");
        // Boundary fixed at 1.0, interior 0: SOR pulls the interior up.
        for i in 1..=16i64 {
            for j in 1..=16i64 {
                if i == 1 || i == 16 || j == 1 || j == 16 {
                    ws.set(a, &[j, i], 1.0);
                }
            }
        }
        run_native(&mut ws, 16);
        let center = ws.get(a, &[8, 8]);
        assert!(center > 0.0 && center <= 1.0, "center = {center}");
    }

    #[test]
    fn padded_run_matches_plain() {
        use pad_core::{Pad, PaddingConfig};
        let p = spec(24);
        let a = p.arrays_with_ids().next().expect("has A").0;
        let mut plain = Workspace::new(&p, DataLayout::original(&p));
        plain.fill_pattern(a, 5);
        run_native(&mut plain, 24);

        let outcome = Pad::new(PaddingConfig::new(1024, 32).expect("valid")).run(&p);
        let mut padded = Workspace::new(&p, outcome.layout);
        padded.fill_pattern(a, 5);
        run_native(&mut padded, 24);
        assert_eq!(plain.checksum(a), padded.checksum(a));
    }
}
