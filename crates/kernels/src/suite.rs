//! The kernel registry used by the experiment harness.

use std::fmt;

use pad_ir::Program;

use crate::workspace::Workspace;

/// Where a benchmark came from, mirroring the sections of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Scientific kernels (Livermore loops, factorizations, solvers).
    Kernel,
    /// Reduced proxy for a NAS parallel benchmark.
    NasProxy,
    /// Reduced proxy for a SPEC92/SPEC95 benchmark.
    SpecProxy,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Kernel => f.write_str("kernel"),
            Category::NasProxy => f.write_str("NAS proxy"),
            Category::SpecProxy => f.write_str("SPEC proxy"),
        }
    }
}

/// One registered benchmark.
#[derive(Clone)]
pub struct Kernel {
    /// Display name (matches the paper's Table 2 where applicable).
    pub name: &'static str,
    /// One-line description from Table 2.
    pub description: &'static str,
    /// Provenance.
    pub category: Category,
    /// Problem size passed to `spec` by default.
    pub default_n: i64,
    /// Builds the loop-nest specification at a problem size.
    pub spec: fn(i64) -> Program,
    /// Native implementation for execution-time experiments, when one
    /// exists. Receives a workspace built from `spec(default_n)`.
    pub native: Option<fn(&mut Workspace, i64)>,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("category", &self.category)
            .field("default_n", &self.default_n)
            .field("native", &self.native.is_some())
            .finish()
    }
}

fn dot_native(ws: &mut Workspace, n: i64) {
    let _ = crate::dot::run_native(ws, n);
}

/// The full benchmark suite, in Table 2 order (kernels, then NAS proxies,
/// then SPEC proxies).
pub fn suite() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "ADI512",
            description: "2D ADI integration fragment (Liv8)",
            category: Category::Kernel,
            default_n: crate::adi::DEFAULT_N,
            spec: crate::adi::spec,
            native: Some(crate::adi::run_native),
        },
        Kernel {
            name: "CHOL256",
            description: "Cholesky factorization",
            category: Category::Kernel,
            default_n: crate::chol::DEFAULT_N,
            spec: crate::chol::spec,
            native: Some(crate::chol::run_native),
        },
        Kernel {
            name: "DGEFA256",
            description: "Gaussian elimination w/ pivoting",
            category: Category::Kernel,
            default_n: crate::dgefa::DEFAULT_N,
            spec: crate::dgefa::spec,
            native: Some(crate::dgefa::run_native),
        },
        Kernel {
            name: "DOT256K",
            description: "Vector dot product (Liv3)",
            category: Category::Kernel,
            default_n: crate::dot::DEFAULT_N,
            spec: crate::dot::spec,
            native: Some(dot_native),
        },
        Kernel {
            name: "ERLE64",
            description: "3D tridiagonal solver",
            category: Category::Kernel,
            default_n: crate::erle::DEFAULT_N,
            spec: crate::erle::spec,
            native: Some(crate::erle::run_native),
        },
        Kernel {
            name: "EXPL512",
            description: "2D explicit hydrodynamics (Liv18)",
            category: Category::Kernel,
            default_n: crate::expl::DEFAULT_N,
            spec: crate::expl::spec,
            native: Some(crate::expl::run_native),
        },
        Kernel {
            name: "IRR500K",
            description: "Relaxation over irregular mesh",
            category: Category::Kernel,
            default_n: crate::irr::DEFAULT_N,
            spec: crate::irr::spec,
            native: None,
        },
        Kernel {
            name: "JACOBI512",
            description: "2D Jacobi iteration w/ convergence",
            category: Category::Kernel,
            default_n: crate::jacobi::DEFAULT_N,
            spec: crate::jacobi::spec,
            native: Some(crate::jacobi::run_native),
        },
        Kernel {
            name: "LINPACKD",
            description: "Gaussian elimination w/ pivoting (driver)",
            category: Category::Kernel,
            default_n: crate::linpackd::DEFAULT_N,
            spec: crate::linpackd::spec,
            native: None,
        },
        Kernel {
            name: "MULT300",
            description: "Matrix multiplication (Liv21)",
            category: Category::Kernel,
            default_n: crate::mult::DEFAULT_N,
            spec: crate::mult::spec,
            native: Some(crate::mult::run_native),
        },
        Kernel {
            name: "RB512",
            description: "2D red-black over-relaxation",
            category: Category::Kernel,
            default_n: crate::rb::DEFAULT_N,
            spec: crate::rb::spec,
            native: Some(crate::rb::run_native),
        },
        Kernel {
            name: "SHAL512",
            description: "Shallow water model",
            category: Category::Kernel,
            default_n: crate::shal::DEFAULT_N,
            spec: crate::shal::spec,
            native: Some(crate::shal::run_native),
        },
        Kernel {
            name: "SIMPLE",
            description: "2D hydrodynamics",
            category: Category::Kernel,
            default_n: crate::simple::DEFAULT_N,
            spec: crate::simple::spec,
            native: Some(crate::simple::run_native),
        },
        Kernel {
            name: "APPBT",
            description: "Block-tridiagonal PDE solver (proxy)",
            category: Category::NasProxy,
            default_n: crate::appbt_proxy::DEFAULT_N,
            spec: crate::appbt_proxy::spec,
            native: None,
        },
        Kernel {
            name: "APPLU",
            description: "Parabolic/elliptic PDE solver (proxy)",
            category: Category::NasProxy,
            default_n: crate::applu_proxy::DEFAULT_N,
            spec: crate::applu_proxy::spec,
            native: None,
        },
        Kernel {
            name: "APPSP",
            description: "Scalar-pentadiagonal PDE solver (proxy)",
            category: Category::NasProxy,
            default_n: crate::appsp_proxy::DEFAULT_N,
            spec: crate::appsp_proxy::spec,
            native: None,
        },
        Kernel {
            name: "BUK",
            description: "Integer bucket sort (proxy)",
            category: Category::NasProxy,
            default_n: crate::buk_proxy::DEFAULT_N,
            spec: crate::buk_proxy::spec,
            native: None,
        },
        Kernel {
            name: "CGM",
            description: "Sparse conjugate gradient (proxy)",
            category: Category::NasProxy,
            default_n: crate::cgm_proxy::DEFAULT_N,
            spec: crate::cgm_proxy::spec,
            native: None,
        },
        Kernel {
            name: "EMBAR",
            description: "Monte Carlo (proxy)",
            category: Category::NasProxy,
            default_n: crate::embar_proxy::DEFAULT_N,
            spec: crate::embar_proxy::spec,
            native: None,
        },
        Kernel {
            name: "FFTPDE",
            description: "3D fast Fourier transform PDE (proxy)",
            category: Category::NasProxy,
            default_n: crate::fftpde_proxy::DEFAULT_N,
            spec: crate::fftpde_proxy::spec,
            native: None,
        },
        Kernel {
            name: "MGRID",
            description: "Multigrid solver (proxy)",
            category: Category::NasProxy,
            default_n: crate::mgrid_proxy::DEFAULT_N,
            spec: crate::mgrid_proxy::spec,
            native: Some(crate::mgrid_proxy::run_native),
        },
        Kernel {
            name: "APSI",
            description: "Pseudospectral air pollution (proxy)",
            category: Category::SpecProxy,
            default_n: crate::apsi_proxy::DEFAULT_N,
            spec: crate::apsi_proxy::spec,
            native: None,
        },
        Kernel {
            name: "FPPPP",
            description: "2-electron integral derivative (proxy)",
            category: Category::SpecProxy,
            default_n: crate::fpppp_proxy::DEFAULT_N,
            spec: crate::fpppp_proxy::spec,
            native: None,
        },
        Kernel {
            name: "HYDRO2D",
            description: "Navier-Stokes jets (proxy)",
            category: Category::SpecProxy,
            default_n: crate::hydro2d_proxy::DEFAULT_N,
            spec: crate::hydro2d_proxy::spec,
            native: Some(crate::hydro2d_proxy::run_native),
        },
        Kernel {
            name: "SU2COR",
            description: "Vector quantum chromodynamics (proxy)",
            category: Category::SpecProxy,
            default_n: crate::su2cor_proxy::DEFAULT_N,
            spec: crate::su2cor_proxy::spec,
            native: None,
        },
        Kernel {
            name: "SWIM",
            description: "Shallow water physics (proxy)",
            category: Category::SpecProxy,
            default_n: crate::swim_proxy::DEFAULT_N,
            spec: crate::swim_proxy::spec,
            native: None,
        },
        Kernel {
            name: "TOMCATV",
            description: "Vectorized mesh generation (proxy)",
            category: Category::SpecProxy,
            default_n: crate::tomcatv_proxy::DEFAULT_N,
            spec: crate::tomcatv_proxy::spec,
            native: Some(crate::tomcatv_proxy::run_native),
        },
        Kernel {
            name: "TURB3D",
            description: "Isotropic turbulence (proxy)",
            category: Category::SpecProxy,
            default_n: crate::turb3d_proxy::DEFAULT_N,
            spec: crate::turb3d_proxy::spec,
            native: None,
        },
        Kernel {
            name: "WAVE5",
            description: "Maxwell's equations particle-in-cell (proxy)",
            category: Category::SpecProxy,
            default_n: crate::wave5_proxy::DEFAULT_N,
            spec: crate::wave5_proxy::spec,
            native: None,
        },
        Kernel {
            name: "DODUC",
            description: "Thermohydraulic modelization (proxy)",
            category: Category::SpecProxy,
            default_n: crate::doduc_proxy::DEFAULT_N,
            spec: crate::doduc_proxy::spec,
            native: None,
        },
        Kernel {
            name: "MDLJDP2",
            description: "Molecular dynamics, double precision (proxy)",
            category: Category::SpecProxy,
            default_n: crate::mdljdp2_proxy::DEFAULT_N,
            spec: crate::mdljdp2_proxy::spec,
            native: None,
        },
        Kernel {
            name: "MDLJSP2",
            description: "Molecular dynamics, single precision (proxy)",
            category: Category::SpecProxy,
            default_n: crate::mdljsp2_proxy::DEFAULT_N,
            spec: crate::mdljsp2_proxy::spec,
            native: None,
        },
        Kernel {
            name: "NASA7",
            description: "NASA Ames kernel medley (proxy)",
            category: Category::SpecProxy,
            default_n: crate::nasa7_proxy::DEFAULT_N,
            spec: crate::nasa7_proxy::spec,
            native: None,
        },
        Kernel {
            name: "ORA",
            description: "Ray tracing (proxy; no array state)",
            category: Category::SpecProxy,
            default_n: crate::ora_proxy::DEFAULT_N,
            spec: crate::ora_proxy::spec,
            native: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_buildable() {
        let kernels = suite();
        assert_eq!(kernels.len(), 34);
        for k in &kernels {
            // Build each spec at a reduced size to keep the test fast.
            let n = k.default_n.clamp(8, 48);
            let p = (k.spec)(n);
            if k.name == "ORA" {
                // The deliberate degenerate case: scalar-only program.
                assert!(p.arrays().is_empty());
                continue;
            }
            assert!(!p.arrays().is_empty(), "{} has arrays", k.name);
            assert!(!p.ref_groups().is_empty(), "{} has loops", k.name);
            assert!(p.source_lines().is_some(), "{} records its size", k.name);
        }
    }

    #[test]
    fn every_spec_traces_in_bounds_at_small_sizes() {
        use pad_core::DataLayout;
        use pad_trace::count_accesses;
        // The trace generator bounds-checks every subscript in debug
        // builds, so simply walking each kernel proves the specs are
        // self-consistent.
        for k in suite() {
            let n = k.default_n.clamp(8, 24);
            let p = (k.spec)(n);
            let layout = DataLayout::original(&p);
            let accesses = count_accesses(&p, &layout);
            if k.name != "ORA" {
                assert!(accesses > 0, "{} generates accesses", k.name);
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let kernels = suite();
        let mut names: Vec<_> = kernels.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kernels.len());
    }

    #[test]
    fn categories_cover_all_three_sections() {
        let kernels = suite();
        for cat in [Category::Kernel, Category::NasProxy, Category::SpecProxy] {
            assert!(kernels.iter().any(|k| k.category == cat), "{cat} missing");
        }
    }

    #[test]
    fn native_kernels_run_at_small_sizes() {
        use pad_core::DataLayout;
        for k in suite() {
            let Some(native) = k.native else { continue };
            let n = 12.min(k.default_n);
            let p = (k.spec)(n);
            let mut ws = Workspace::new(&p, DataLayout::original(&p));
            for (i, (id, _)) in p.arrays_with_ids().enumerate() {
                ws.fill_pattern(id, i as u64 + 1);
            }
            if k.name == "DGEFA256" || k.name == "CHOL256" {
                // Factorizations need well-conditioned input.
                let a = ws.array("A");
                for i in 1..=n {
                    let v = ws.get(a, &[i, i]);
                    ws.set(a, &[i, i], v + 100.0);
                }
            }
            native(&mut ws, n);
            let first = p.arrays_with_ids().next().expect("nonempty").0;
            assert!(ws.checksum(first).is_finite(), "{} produced NaN", k.name);
        }
    }
}
