//! APPBT proxy — NAS block-tridiagonal PDE solver (4441 lines, 42 arrays
//! in the paper).
//!
//! APPBT factors 5×5 blocks along lines of a 3-D grid. The proxy keeps
//! the two access shapes that matter: block-strided sweeps over rank-3
//! state arrays (the `5·n` folded component dimension, as in the APPSP
//! proxy) and the small dense per-cell block solves that make APPBT's
//! reuse more register- than cache-bound — which is why the paper's
//! Table 2 shows modest padding activity for it. Dropped: the actual
//! Gaussian block inverses and boundary handling.

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at3;

/// Cube size.
pub const DEFAULT_N: i64 = 32;

/// The modeled arrays.
pub const ARRAY_NAMES: [&str; 5] = ["U", "RHS", "LHSA", "LHSB", "LHSC"];

/// Builds the proxy's sweeps on a `5n × n × n` layout.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("APPBT");
    b.source_lines(4441);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [5 * n, n, n])))
        .collect();
    let [u, rhs, lhsa, lhsb, lhsc] = ids[..] else {
        unreachable!()
    };

    // Flux computation along x.
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, n),
            Loop::new("j", 1, n),
            Loop::new("i", 6, 5 * n - 5),
        ],
        vec![Stmt::refs(vec![
            at3(u, "i", -5, "j", 0, "k", 0),
            at3(u, "i", 0, "j", 0, "k", 0),
            at3(u, "i", 5, "j", 0, "k", 0),
            at3(rhs, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    // Block-tridiagonal forward elimination along y: three coefficient
    // blocks per cell.
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, n),
            Loop::new("j", 2, n),
            Loop::new("i", 1, 5 * n),
        ],
        vec![Stmt::refs(vec![
            at3(lhsa, "i", 0, "j", 0, "k", 0),
            at3(lhsb, "i", 0, "j", 0, "k", 0),
            at3(lhsc, "i", 0, "j", -1, "k", 0),
            at3(rhs, "i", 0, "j", -1, "k", 0),
            at3(rhs, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    // Back substitution along z.
    b.push(Stmt::loop_nest(
        [
            Loop::with_step("k", 1, n - 1, 1),
            Loop::new("j", 1, n),
            Loop::new("i", 1, 5 * n),
        ],
        vec![Stmt::refs(vec![
            at3(rhs, "i", 0, "j", 0, "k", 1),
            at3(lhsc, "i", 0, "j", 0, "k", 0),
            at3(u, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    b.build().expect("APPBT spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(8);
        assert_eq!(p.arrays().len(), 5);
        assert_eq!(p.ref_groups().len(), 3);
    }

    #[test]
    fn pad_runs_cleanly() {
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(outcome.layout.check_no_overlap());
    }
}
