//! SHAL — shallow-water model (235 lines, 14 paddable arrays in the
//! paper; the same physics as SPEC's SWIM).
//!
//! Fourteen `(n+1) × (n+1)` arrays: velocities `U, V`, pressure `P`,
//! their `NEW`/`OLD` time levels, fluxes `CU, CV`, vorticity `Z`, height
//! `H`, and the stream function `PSI`. Because *all* of them conform,
//! power-of-two problem sizes alias many arrays simultaneously — SHAL is
//! among the biggest winners from inter-variable padding in Figure 8.

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at2;
use crate::workspace::Workspace;

/// Paper problem size (`SHAL512`).
pub const DEFAULT_N: i64 = 512;

/// The model's arrays, in declaration order.
pub const ARRAY_NAMES: [&str; 14] = [
    "U", "V", "P", "UNEW", "VNEW", "PNEW", "UOLD", "VOLD", "POLD", "CU", "CV", "Z", "H", "PSI",
];

/// Builds one time step (the three main nests of the model) at grid size
/// `n` (arrays are `(n+1) × (n+1)`).
///
/// Exposed with a custom program name so the SWIM proxy can reuse the
/// structure; see [`crate::swim_proxy`].
pub(crate) fn spec_named(name: &str, source_lines: u32, n: i64) -> Program {
    let m = n + 1;
    let mut b = Program::builder(name);
    b.source_lines(source_lines);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [m, m])))
        .collect();
    let [u, v, p, unew, vnew, pnew, uold, vold, pold, cu, cv, z, h, _psi] = ids[..] else {
        unreachable!()
    };

    // Nest 1: fluxes, vorticity, height.
    b.push(Stmt::loop_nest(
        [Loop::new("j", 1, n), Loop::new("i", 1, n)],
        vec![Stmt::refs(vec![
            at2(p, "i", 1, "j", 0),
            at2(p, "i", 0, "j", 0),
            at2(u, "i", 1, "j", 0),
            at2(cu, "i", 1, "j", 0).write(),
            at2(p, "i", 0, "j", 1),
            at2(v, "i", 0, "j", 1),
            at2(cv, "i", 0, "j", 1).write(),
            at2(v, "i", 1, "j", 1),
            at2(u, "i", 1, "j", 1),
            at2(p, "i", 1, "j", 1),
            at2(z, "i", 1, "j", 1).write(),
            at2(u, "i", 0, "j", 0),
            at2(v, "i", 0, "j", 0),
            at2(h, "i", 0, "j", 0).write(),
        ])],
    ));

    // Nest 2: new time level.
    b.push(Stmt::loop_nest(
        [Loop::new("j", 1, n), Loop::new("i", 1, n)],
        vec![Stmt::refs(vec![
            at2(uold, "i", 1, "j", 0),
            at2(z, "i", 1, "j", 1),
            at2(z, "i", 1, "j", 0),
            at2(cv, "i", 1, "j", 1),
            at2(cv, "i", 0, "j", 1),
            at2(cv, "i", 0, "j", 0),
            at2(cv, "i", 1, "j", 0),
            at2(h, "i", 1, "j", 0),
            at2(h, "i", 0, "j", 0),
            at2(unew, "i", 1, "j", 0).write(),
            at2(vold, "i", 0, "j", 1),
            at2(cu, "i", 0, "j", 1),
            at2(cu, "i", 1, "j", 1),
            at2(cu, "i", 1, "j", 0),
            at2(cu, "i", 0, "j", 0),
            at2(h, "i", 0, "j", 1),
            at2(vnew, "i", 0, "j", 1).write(),
            at2(pold, "i", 0, "j", 0),
            at2(pnew, "i", 0, "j", 0).write(),
        ])],
    ));

    // Nest 3: time smoothing.
    b.push(Stmt::loop_nest(
        [Loop::new("j", 1, n), Loop::new("i", 1, n)],
        vec![Stmt::refs(vec![
            at2(u, "i", 0, "j", 0),
            at2(unew, "i", 0, "j", 0),
            at2(uold, "i", 0, "j", 0),
            at2(uold, "i", 0, "j", 0).write(),
            at2(u, "i", 0, "j", 0).write(),
            at2(v, "i", 0, "j", 0),
            at2(vnew, "i", 0, "j", 0),
            at2(vold, "i", 0, "j", 0),
            at2(vold, "i", 0, "j", 0).write(),
            at2(v, "i", 0, "j", 0).write(),
            at2(p, "i", 0, "j", 0),
            at2(pnew, "i", 0, "j", 0),
            at2(pold, "i", 0, "j", 0),
            at2(pold, "i", 0, "j", 0).write(),
            at2(p, "i", 0, "j", 0).write(),
        ])],
    ));
    b.build().expect("SHAL spec is well-formed")
}

/// Builds the SHAL benchmark.
pub fn spec(n: i64) -> Program {
    spec_named("SHAL512", 235, n)
}

/// Runs one native time step.
pub fn run_native(ws: &mut Workspace, n: i64) {
    let ids: Vec<_> = ARRAY_NAMES.iter().map(|name| ws.array(name)).collect();
    let bases: Vec<usize> = ids.iter().map(|&id| ws.base_word(id)).collect();
    let cols: Vec<usize> = ids.iter().map(|&id| ws.strides(id)[1]).collect();
    let n = n as usize;
    let (buf, _) = ws.parts_mut();
    let fsdx = 4.0 / 1.0e5;
    let fsdy = 4.0 / 1.0e5;
    let tdts8 = 11.0;
    let tdtsdx = 9.0e-5;
    let tdtsdy = 9.0e-5;
    let alpha = 0.001;

    // Helper producing a closure that indexes array `a` at (i+di, j+dj),
    // 0-based logical coordinates.
    macro_rules! ix {
        ($arr:expr, $i:expr, $j:expr) => {
            bases[$arr] + ($i) + ($j) * cols[$arr]
        };
    }
    const U: usize = 0;
    const V: usize = 1;
    const P: usize = 2;
    const UNEW: usize = 3;
    const VNEW: usize = 4;
    const PNEW: usize = 5;
    const UOLD: usize = 6;
    const VOLD: usize = 7;
    const POLD: usize = 8;
    const CU: usize = 9;
    const CV: usize = 10;
    const Z: usize = 11;
    const H: usize = 12;

    for j in 0..n {
        for i in 0..n {
            buf[ix!(CU, i + 1, j)] =
                0.5 * (buf[ix!(P, i + 1, j)] + buf[ix!(P, i, j)]) * buf[ix!(U, i + 1, j)];
            buf[ix!(CV, i, j + 1)] =
                0.5 * (buf[ix!(P, i, j + 1)] + buf[ix!(P, i, j)]) * buf[ix!(V, i, j + 1)];
            buf[ix!(Z, i + 1, j + 1)] = (fsdx
                * (buf[ix!(V, i + 1, j + 1)] - buf[ix!(V, i, j + 1)])
                - fsdy * (buf[ix!(U, i + 1, j + 1)] - buf[ix!(U, i + 1, j)]))
                / (buf[ix!(P, i, j)]
                    + buf[ix!(P, i + 1, j)]
                    + buf[ix!(P, i + 1, j + 1)]
                    + buf[ix!(P, i, j + 1)]
                    + 1.0);
            buf[ix!(H, i, j)] = buf[ix!(P, i, j)]
                + 0.25
                    * (buf[ix!(U, i + 1, j)] * buf[ix!(U, i + 1, j)]
                        + buf[ix!(U, i, j)] * buf[ix!(U, i, j)]
                        + buf[ix!(V, i, j + 1)] * buf[ix!(V, i, j + 1)]
                        + buf[ix!(V, i, j)] * buf[ix!(V, i, j)]);
        }
    }
    for j in 0..n {
        for i in 0..n {
            buf[ix!(UNEW, i + 1, j)] = buf[ix!(UOLD, i + 1, j)]
                + tdts8
                    * (buf[ix!(Z, i + 1, j + 1)] + buf[ix!(Z, i + 1, j)])
                    * (buf[ix!(CV, i + 1, j + 1)]
                        + buf[ix!(CV, i, j + 1)]
                        + buf[ix!(CV, i, j)]
                        + buf[ix!(CV, i + 1, j)])
                - tdtsdx * (buf[ix!(H, i + 1, j)] - buf[ix!(H, i, j)]);
            buf[ix!(VNEW, i, j + 1)] = buf[ix!(VOLD, i, j + 1)]
                - tdts8
                    * (buf[ix!(Z, i + 1, j + 1)] + buf[ix!(Z, i, j + 1)])
                    * (buf[ix!(CU, i, j + 1)]
                        + buf[ix!(CU, i + 1, j + 1)]
                        + buf[ix!(CU, i + 1, j)]
                        + buf[ix!(CU, i, j)])
                - tdtsdy * (buf[ix!(H, i, j + 1)] - buf[ix!(H, i, j)]);
            buf[ix!(PNEW, i, j)] = buf[ix!(POLD, i, j)]
                - tdtsdx * (buf[ix!(CU, i + 1, j)] - buf[ix!(CU, i, j)])
                - tdtsdy * (buf[ix!(CV, i, j + 1)] - buf[ix!(CV, i, j)]);
        }
    }
    for j in 0..n {
        for i in 0..n {
            let unew = buf[ix!(UNEW, i, j)];
            let uold = buf[ix!(UOLD, i, j)];
            let ucur = buf[ix!(U, i, j)];
            buf[ix!(UOLD, i, j)] = ucur + alpha * (unew - 2.0 * ucur + uold);
            buf[ix!(U, i, j)] = unew;
            let vnew = buf[ix!(VNEW, i, j)];
            let vold = buf[ix!(VOLD, i, j)];
            let vcur = buf[ix!(V, i, j)];
            buf[ix!(VOLD, i, j)] = vcur + alpha * (vnew - 2.0 * vcur + vold);
            buf[ix!(V, i, j)] = vnew;
            let pnew = buf[ix!(PNEW, i, j)];
            let pold = buf[ix!(POLD, i, j)];
            let pcur = buf[ix!(P, i, j)];
            buf[ix!(POLD, i, j)] = pcur + alpha * (pnew - 2.0 * pcur + pold);
            buf[ix!(P, i, j)] = pnew;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::DataLayout;

    #[test]
    fn spec_shape() {
        let p = spec(64);
        assert_eq!(p.arrays().len(), 14);
        assert_eq!(p.ref_groups().len(), 3);
        assert_eq!(p.arrays()[0].dims()[0].size, 65);
    }

    #[test]
    fn native_runs_and_stays_finite() {
        let p = spec(16);
        let mut ws = Workspace::new(&p, DataLayout::original(&p));
        for (i, name) in ARRAY_NAMES.iter().enumerate() {
            let id = ws.array(name);
            ws.fill_pattern(id, i as u64 + 1);
        }
        run_native(&mut ws, 16);
        for name in ARRAY_NAMES {
            let id = ws.array(name);
            assert!(ws.checksum(id).is_finite(), "{name} went non-finite");
        }
    }

    #[test]
    fn padded_run_matches_plain() {
        use pad_core::{Pad, PaddingConfig};
        let p = spec(16);
        let seed_all = |ws: &mut Workspace| {
            for (i, name) in ARRAY_NAMES.iter().enumerate() {
                let id = ws.array(name);
                ws.fill_pattern(id, i as u64 + 1);
            }
        };
        let mut plain = Workspace::new(&p, DataLayout::original(&p));
        seed_all(&mut plain);
        run_native(&mut plain, 16);

        let outcome = Pad::new(PaddingConfig::new(1024, 32).expect("valid")).run(&p);
        let mut padded = Workspace::new(&p, outcome.layout);
        seed_all(&mut padded);
        run_native(&mut padded, 16);

        for name in ARRAY_NAMES {
            let a = plain.array(name);
            assert_eq!(plain.checksum(a), padded.checksum(a), "{name}");
        }
    }
}
