//! ERLE — 3-D tridiagonal solver (612 lines, 23 global arrays in the
//! paper; modeled with the five arrays of its dominant sweeps).
//!
//! Tridiagonal relaxations sweep the cube along each of the three axes in
//! turn. The `z` sweep steps by a whole `n × n` plane per iteration; at
//! power-of-two `n` the plane size is a multiple of the cache size, so
//! consecutive plane accesses conflict *within the same array* — the
//! higher-dimensional case of intra-variable padding.

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at3;
use crate::workspace::Workspace;

/// Paper problem size (`ERLE64`).
pub const DEFAULT_N: i64 = 64;

/// The solver's arrays.
pub const ARRAY_NAMES: [&str; 5] = ["U", "AX", "AY", "AZ", "F"];

/// Builds the three directional sweeps at cube size `n`.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("ERLE64");
    b.source_lines(612);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [n, n, n])))
        .collect();
    let [u, ax, ay, az, f] = ids[..] else {
        unreachable!()
    };

    // x sweep (unit stride recurrence).
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, n),
            Loop::new("j", 1, n),
            Loop::new("i", 2, n),
        ],
        vec![Stmt::refs(vec![
            at3(u, "i", -1, "j", 0, "k", 0),
            at3(ax, "i", 0, "j", 0, "k", 0),
            at3(f, "i", 0, "j", 0, "k", 0),
            at3(u, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    // y sweep (stride = one column).
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, n),
            Loop::new("j", 2, n),
            Loop::new("i", 1, n),
        ],
        vec![Stmt::refs(vec![
            at3(u, "i", 0, "j", -1, "k", 0),
            at3(ay, "i", 0, "j", 0, "k", 0),
            at3(f, "i", 0, "j", 0, "k", 0),
            at3(u, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    // z sweep (stride = one plane: the conflicting direction).
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 2, n),
            Loop::new("j", 1, n),
            Loop::new("i", 1, n),
        ],
        vec![Stmt::refs(vec![
            at3(u, "i", 0, "j", 0, "k", -1),
            at3(az, "i", 0, "j", 0, "k", 0),
            at3(f, "i", 0, "j", 0, "k", 0),
            at3(u, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    b.build().expect("ERLE spec is well-formed")
}

/// Runs the three sweeps natively.
pub fn run_native(ws: &mut Workspace, n: i64) {
    let ids: Vec<_> = ARRAY_NAMES.iter().map(|name| ws.array(name)).collect();
    let bases: Vec<usize> = ids.iter().map(|&id| ws.base_word(id)).collect();
    let strides: Vec<Vec<usize>> = ids.iter().map(|&id| ws.strides(id)).collect();
    let n = n as usize;
    let (buf, _) = ws.parts_mut();
    let at = |a: usize, s: &[Vec<usize>], i: usize, j: usize, k: usize, b: &[usize]| {
        b[a] + i * s[a][0] + j * s[a][1] + k * s[a][2]
    };
    const U: usize = 0;
    const AX: usize = 1;
    const AY: usize = 2;
    const AZ: usize = 3;
    const F: usize = 4;
    for k in 0..n {
        for j in 0..n {
            for i in 1..n {
                buf[at(U, &strides, i, j, k, &bases)] = buf[at(U, &strides, i - 1, j, k, &bases)]
                    * buf[at(AX, &strides, i, j, k, &bases)]
                    * 0.25
                    + buf[at(F, &strides, i, j, k, &bases)];
            }
        }
    }
    for k in 0..n {
        for j in 1..n {
            for i in 0..n {
                buf[at(U, &strides, i, j, k, &bases)] = buf[at(U, &strides, i, j - 1, k, &bases)]
                    * buf[at(AY, &strides, i, j, k, &bases)]
                    * 0.25
                    + buf[at(F, &strides, i, j, k, &bases)];
            }
        }
    }
    for k in 1..n {
        for j in 0..n {
            for i in 0..n {
                buf[at(U, &strides, i, j, k, &bases)] = buf[at(U, &strides, i, j, k - 1, &bases)]
                    * buf[at(AZ, &strides, i, j, k, &bases)]
                    * 0.25
                    + buf[at(F, &strides, i, j, k, &bases)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{DataLayout, Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(16);
        assert_eq!(p.arrays().len(), 5);
        assert_eq!(p.ref_groups().len(), 3);
        assert_eq!(p.arrays()[0].rank(), 3);
    }

    #[test]
    fn power_of_two_cube_gets_intra_padded() {
        // 64^2 doubles = 32 KiB planes alias a 16 KiB cache: the z sweep's
        // U(i,j,k-1)/U(i,j,k) pair is severe, so PAD must pad U.
        let p = spec(64);
        let u = p.arrays_with_ids().next().expect("has U").0;
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(
            outcome.layout.intra_pad_elements(u) > 0,
            "events: {:?}",
            outcome.events
        );
    }

    #[test]
    fn padded_run_matches_plain() {
        let p = spec(12);
        let seed = |ws: &mut Workspace| {
            for (i, name) in ARRAY_NAMES.iter().enumerate() {
                let id = ws.array(name);
                ws.fill_pattern(id, i as u64 + 1);
            }
        };
        let mut plain = Workspace::new(&p, DataLayout::original(&p));
        seed(&mut plain);
        run_native(&mut plain, 12);

        let outcome = Pad::new(PaddingConfig::new(1024, 32).expect("valid")).run(&p);
        let mut padded = Workspace::new(&p, outcome.layout);
        seed(&mut padded);
        run_native(&mut padded, 12);
        for name in ARRAY_NAMES {
            let id = plain.array(name);
            assert_eq!(plain.checksum(id), padded.checksum(id), "{name}");
        }
    }
}
