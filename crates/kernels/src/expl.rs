//! EXPL — 2-D explicit hydrodynamics, Livermore loop 18 (64 lines, 9
//! global arrays).
//!
//! Nine equally-sized `n × n` arrays swept by three stencil nests. With
//! so many conforming arrays, power-of-two problem sizes alias several of
//! them at once, producing some of the largest miss-rate improvements in
//! the paper (Figures 8 and 16).

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at2;
use crate::workspace::Workspace;

/// Paper problem size (EXPLODE is run at 512 in Figure 16's sweep).
pub const DEFAULT_N: i64 = 512;

/// The nine Livermore-18 arrays, in declaration order.
pub const ARRAY_NAMES: [&str; 9] = ["ZA", "ZB", "ZM", "ZP", "ZQ", "ZR", "ZU", "ZV", "ZZ"];

/// Builds one time step of the three Livermore-18 nests.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("EXPL512");
    b.source_lines(64);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|name| b.add_array(ArrayBuilder::new(*name, [n, n])))
        .collect();
    let [za, zb, zm, zp, zq, zr, zu, zv, zz] = ids[..] else {
        unreachable!()
    };

    // Nest 1: pressure/viscosity gradients into ZA, ZB.
    b.push(Stmt::loop_nest(
        [Loop::new("k", 2, n - 1), Loop::new("j", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(zp, "j", -1, "k", 1),
            at2(zq, "j", -1, "k", 1),
            at2(zp, "j", -1, "k", 0),
            at2(zq, "j", -1, "k", 0),
            at2(zr, "j", 0, "k", 0),
            at2(zr, "j", -1, "k", 0),
            at2(zm, "j", -1, "k", 0),
            at2(zm, "j", -1, "k", 1),
            at2(za, "j", 0, "k", 0).write(),
            at2(zp, "j", 0, "k", 0),
            at2(zq, "j", 0, "k", 0),
            at2(zr, "j", 0, "k", -1),
            at2(zm, "j", 0, "k", 0),
            at2(zb, "j", 0, "k", 0).write(),
        ])],
    ));

    // Nest 2: velocity updates from the gradients.
    b.push(Stmt::loop_nest(
        [Loop::new("k", 2, n - 1), Loop::new("j", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(zu, "j", 0, "k", 0),
            at2(za, "j", 0, "k", 0),
            at2(zz, "j", 0, "k", 0),
            at2(zz, "j", 1, "k", 0),
            at2(za, "j", -1, "k", 0),
            at2(zz, "j", -1, "k", 0),
            at2(zb, "j", 0, "k", 0),
            at2(zz, "j", 0, "k", -1),
            at2(zb, "j", 0, "k", 1),
            at2(zz, "j", 0, "k", 1),
            at2(zu, "j", 0, "k", 0).write(),
            at2(zv, "j", 0, "k", 0),
            at2(zr, "j", 0, "k", 0),
            at2(zr, "j", 1, "k", 0),
            at2(zr, "j", -1, "k", 0),
            at2(zr, "j", 0, "k", -1),
            at2(zr, "j", 0, "k", 1),
            at2(zv, "j", 0, "k", 0).write(),
        ])],
    ));

    // Nest 3: position/field advance.
    b.push(Stmt::loop_nest(
        [Loop::new("k", 2, n - 1), Loop::new("j", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(zr, "j", 0, "k", 0),
            at2(zu, "j", 0, "k", 0),
            at2(zr, "j", 0, "k", 0).write(),
            at2(zz, "j", 0, "k", 0),
            at2(zv, "j", 0, "k", 0),
            at2(zz, "j", 0, "k", 0).write(),
        ])],
    ));
    b.build().expect("EXPL spec is well-formed")
}

/// Runs one native time step matching [`spec`]'s reference pattern.
pub fn run_native(ws: &mut Workspace, n: i64) {
    let ids: Vec<_> = ARRAY_NAMES.iter().map(|name| ws.array(name)).collect();
    let bases: Vec<usize> = ids.iter().map(|&id| ws.base_word(id)).collect();
    let cols: Vec<usize> = ids.iter().map(|&id| ws.strides(id)[1]).collect();
    let [za, zb, zm, zp, zq, zr, zu, zv, zz] = bases[..] else {
        unreachable!()
    };
    let [ca, cb, cm, cp, cq, cr, cu, cv, cz] = cols[..] else {
        unreachable!()
    };
    let n = n as usize;
    let (buf, _) = ws.parts_mut();
    let s = 0.0174;
    let t = 0.0037;

    for k in 2..n {
        for j in 2..n {
            let (jj, kk) = (j - 1, k - 1);
            let idx = |base: usize, col: usize, dj: isize, dk: isize| {
                (base as isize + (jj as isize + dj) + (kk as isize + dk) * col as isize) as usize
            };
            buf[idx(za, ca, 0, 0)] = (buf[idx(zp, cp, -1, 1)] + buf[idx(zq, cq, -1, 1)]
                - buf[idx(zp, cp, -1, 0)]
                - buf[idx(zq, cq, -1, 0)])
                * (buf[idx(zr, cr, 0, 0)] + buf[idx(zr, cr, -1, 0)])
                / (buf[idx(zm, cm, -1, 0)] + buf[idx(zm, cm, -1, 1)] + 1.0);
            buf[idx(zb, cb, 0, 0)] = (buf[idx(zp, cp, -1, 0)] + buf[idx(zq, cq, -1, 0)]
                - buf[idx(zp, cp, 0, 0)]
                - buf[idx(zq, cq, 0, 0)])
                * (buf[idx(zr, cr, 0, 0)] + buf[idx(zr, cr, 0, -1)])
                / (buf[idx(zm, cm, 0, 0)] + buf[idx(zm, cm, -1, 0)] + 1.0);
        }
    }
    for k in 2..n {
        for j in 2..n {
            let (jj, kk) = (j - 1, k - 1);
            let idx = |base: usize, col: usize, dj: isize, dk: isize| {
                (base as isize + (jj as isize + dj) + (kk as isize + dk) * col as isize) as usize
            };
            buf[idx(zu, cu, 0, 0)] += s
                * (buf[idx(za, ca, 0, 0)] * (buf[idx(zz, cz, 0, 0)] - buf[idx(zz, cz, 1, 0)])
                    - buf[idx(za, ca, -1, 0)] * (buf[idx(zz, cz, 0, 0)] - buf[idx(zz, cz, -1, 0)])
                    - buf[idx(zb, cb, 0, 0)] * (buf[idx(zz, cz, 0, 0)] - buf[idx(zz, cz, 0, -1)])
                    + buf[idx(zb, cb, 0, 1)] * (buf[idx(zz, cz, 0, 0)] - buf[idx(zz, cz, 0, 1)]));
            buf[idx(zv, cv, 0, 0)] += s
                * (buf[idx(zr, cr, 0, 0)] * (buf[idx(zr, cr, 1, 0)] - buf[idx(zr, cr, -1, 0)])
                    + (buf[idx(zr, cr, 0, -1)] - buf[idx(zr, cr, 0, 1)]));
        }
    }
    for k in 2..n {
        for j in 2..n {
            let (jj, kk) = (j - 1, k - 1);
            let r = zr + jj + kk * cr;
            let z = zz + jj + kk * cz;
            buf[r] += t * buf[zu + jj + kk * cu];
            buf[z] += t * buf[zv + jj + kk * cv];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::DataLayout;

    #[test]
    fn spec_shape() {
        let p = spec(64);
        assert_eq!(p.arrays().len(), 9);
        assert_eq!(p.ref_groups().len(), 3);
    }

    #[test]
    fn native_runs_and_stays_finite() {
        let p = spec(24);
        let mut ws = Workspace::new(&p, DataLayout::original(&p));
        for (i, name) in ARRAY_NAMES.iter().enumerate() {
            let id = ws.array(name);
            ws.fill_pattern(id, i as u64 + 1);
        }
        run_native(&mut ws, 24);
        let zu = ws.array("ZU");
        assert!(ws.checksum(zu).is_finite());
    }

    #[test]
    fn padded_run_matches_plain() {
        use pad_core::{Pad, PaddingConfig};
        let p = spec(24);
        let seed_all = |ws: &mut Workspace| {
            for (i, name) in ARRAY_NAMES.iter().enumerate() {
                let id = ws.array(name);
                ws.fill_pattern(id, i as u64 + 1);
            }
        };
        let mut plain = Workspace::new(&p, DataLayout::original(&p));
        seed_all(&mut plain);
        run_native(&mut plain, 24);

        let outcome = Pad::new(PaddingConfig::new(1024, 32).expect("valid")).run(&p);
        let mut padded = Workspace::new(&p, outcome.layout);
        seed_all(&mut padded);
        run_native(&mut padded, 24);

        for name in ARRAY_NAMES {
            let a = plain.array(name);
            assert_eq!(plain.checksum(a), padded.checksum(a), "{name}");
        }
    }
}
