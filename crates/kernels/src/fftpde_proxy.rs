//! FFTPDE proxy — NAS 3-D fast Fourier transform PDE (773 lines, 7
//! arrays, 60% uniform references in the paper).
//!
//! Like TURB3D, the hot loops are power-of-two-strided butterflies, but
//! FFTPDE also contains bit-reversal permutations that the analysis
//! cannot express (modeled with scaled subscripts), which is why its
//! Table 2 row shows a lower uniform fraction and why the paper's
//! Figure 9 lists FFTPDE among the programs padding fails to fix.

use pad_ir::{ArrayBuilder, IndexVar, Loop, Program, Stmt, Subscript};

use crate::util::at3;

/// Cube size.
pub const DEFAULT_N: i64 = 64;

/// The modeled arrays.
pub const ARRAY_NAMES: [&str; 4] = ["XR", "XI", "TWIDDLE", "SCR"];

/// Builds butterfly and bit-reversal nests.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("FFTPDE");
    b.source_lines(773);
    let xr = b.add_array(ArrayBuilder::new("XR", [n, n, n]));
    let xi = b.add_array(ArrayBuilder::new("XI", [n, n, n]));
    let tw = b.add_array(ArrayBuilder::new("TWIDDLE", [n, n, n]));
    let scr = b.add_array(ArrayBuilder::new("SCR", [n, n, n]));
    let half = n / 2;

    // One butterfly stage in each direction (as in TURB3D).
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, n),
            Loop::new("j", 1, n),
            Loop::new("i", 1, half),
        ],
        vec![Stmt::refs(vec![
            at3(xr, "i", 0, "j", 0, "k", 0),
            at3(xr, "i", half, "j", 0, "k", 0),
            at3(xi, "i", 0, "j", 0, "k", 0),
            at3(xi, "i", half, "j", 0, "k", 0),
            at3(tw, "i", 0, "j", 0, "k", 0),
            at3(xr, "i", 0, "j", 0, "k", 0).write(),
            at3(xi, "i", half, "j", 0, "k", 0).write(),
        ])],
    ));
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, half),
            Loop::new("j", 1, n),
            Loop::new("i", 1, n),
        ],
        vec![Stmt::refs(vec![
            at3(xr, "i", 0, "j", 0, "k", 0),
            at3(xr, "i", 0, "j", 0, "k", half),
            at3(xr, "i", 0, "j", 0, "k", 0).write(),
            at3(xr, "i", 0, "j", 0, "k", half).write(),
        ])],
    ));
    // Bit-reversal copy: the permuted index is data-dependent; the proxy
    // uses a scaled subscript the analysis must treat as opaque.
    let rev = Subscript::from_terms([(IndexVar::new("i"), 2)], -1);
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, n),
            Loop::new("j", 1, n),
            Loop::new("i", 1, half),
        ],
        vec![Stmt::refs(vec![
            xr.at([rev.clone(), Subscript::var("j"), Subscript::var("k")]),
            scr.at([
                Subscript::var("i"),
                Subscript::var("j"),
                Subscript::var("k"),
            ])
            .write(),
        ])],
    ));
    b.build().expect("FFTPDE spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{uniform_ref_fraction, Pad, PaddingConfig};

    #[test]
    fn uniform_fraction_sits_between_irr_and_stencils() {
        let p = spec(16);
        let f = uniform_ref_fraction(&p);
        assert!(f > 0.5 && f < 1.0, "fraction {f}");
    }

    #[test]
    fn pad_runs_and_layout_is_valid() {
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(outcome.layout.check_no_overlap());
    }
}
