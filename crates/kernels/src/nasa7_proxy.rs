//! NASA7 proxy — SPEC92's seven NASA Ames kernels (1204 lines, 38
//! arrays in the paper).
//!
//! NASA7 is a medley: complex matmul, 2-D FFT, Cholesky, block
//! tridiagonal, vortex generation, emission, and Gaussian elimination.
//! The proxy includes three representative members — a matmul, a
//! power-of-two FFT stage, and a GMTRY-style back substitution — over
//! shared arrays, so the program mixes linear-algebra and butterfly
//! access like the original.

use pad_ir::{ArrayBuilder, Loop, Program, Stmt, Subscript};

use crate::util::{at1, at2};

/// Base matrix order.
pub const DEFAULT_N: i64 = 128;

/// Builds the three-kernel medley.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("NASA7");
    b.source_lines(1204);
    let a = b.add_array(ArrayBuilder::new("A", [n, n]));
    let bb = b.add_array(ArrayBuilder::new("B", [n, n]));
    let c = b.add_array(ArrayBuilder::new("C", [n, n]));
    let xr = b.add_array(ArrayBuilder::new("XR", [2 * n * n]));
    let xi = b.add_array(ArrayBuilder::new("XI", [2 * n * n]));
    let rhs = b.add_array(ArrayBuilder::new("RHS", [n]));
    let half = n * n;

    // MXM: matrix multiply (truncated outer loop as in MULT).
    b.push(Stmt::loop_(
        Loop::new("j", 1, 16.min(n)),
        vec![Stmt::loop_(
            Loop::new("k", 1, n),
            vec![
                Stmt::refs(vec![at2(bb, "k", 0, "j", 0)]),
                Stmt::loop_(
                    Loop::new("i", 1, n),
                    vec![Stmt::refs(vec![
                        at2(c, "i", 0, "j", 0),
                        at2(a, "i", 0, "k", 0),
                        at2(c, "i", 0, "j", 0).write(),
                    ])],
                ),
            ],
        )],
    ));
    // CFFT2D: one butterfly stage at half-array distance.
    b.push(Stmt::loop_(
        Loop::new("i", 1, half),
        vec![Stmt::refs(vec![
            at1(xr, "i", 0),
            xr.at([Subscript::var_offset("i", half)]),
            at1(xi, "i", 0),
            xi.at([Subscript::var_offset("i", half)]),
            at1(xr, "i", 0).write(),
            xi.at([Subscript::var_offset("i", half)]).write(),
        ])],
    ));
    // GMTRY-style back substitution over A.
    b.push(Stmt::loop_(
        Loop::new("k", 1, 16.min(n - 1)),
        vec![Stmt::loop_(
            Loop::new("i", Subscript::var_offset("k", 1), n),
            vec![Stmt::refs(vec![
                at2(a, "i", 0, "k", 0),
                at1(rhs, "k", 0),
                at1(rhs, "i", 0),
                at1(rhs, "i", 0).write(),
            ])],
        )],
    ));
    b.build().expect("NASA7 spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(32);
        assert_eq!(p.arrays().len(), 6);
        assert!(p.ref_groups().len() >= 4);
    }

    #[test]
    fn butterfly_arrays_conflict_at_power_of_two() {
        // XR and XI are 2n² doubles; at n=128 each is 256 KiB, so their
        // bases and the half-distance butterflies alias a 16 KiB cache.
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(
            outcome.stats.arrays_inter_padded > 0,
            "{:?}",
            outcome.events
        );
    }
}
