//! Layout-driven native execution buffers.

use std::collections::HashMap;

use pad_core::DataLayout;
use pad_ir::{ArrayId, IrError, Program};

/// A flat `f64` arena laid out exactly as a [`DataLayout`] prescribes.
///
/// Native kernel implementations index into the arena through the layout's
/// base addresses and (padded) column strides, so the same Rust code runs
/// under the original layout and under any padded layout — which is how
/// the execution-time experiments (Figure 15) compare the two.
///
/// # Example
///
/// ```
/// use pad_core::DataLayout;
/// use pad_kernels::{jacobi, Workspace};
///
/// let program = jacobi::spec(64);
/// let mut ws = Workspace::new(&program, DataLayout::original(&program));
/// let a = ws.array("A");
/// ws.set(a, &[1, 1], 3.5);
/// assert_eq!(ws.get(a, &[1, 1]), 3.5);
/// ```
#[derive(Debug, Clone)]
pub struct Workspace {
    buf: Vec<f64>,
    layout: DataLayout,
    by_name: HashMap<String, ArrayId>,
}

impl Workspace {
    /// Allocates a zero-filled arena for the program under the given
    /// layout.
    ///
    /// # Panics
    ///
    /// Panics if any array's element size is not 8 bytes (the native
    /// kernels compute in `f64`).
    pub fn new(program: &Program, layout: DataLayout) -> Self {
        let mut by_name = HashMap::new();
        for (id, spec) in program.arrays_with_ids() {
            assert_eq!(
                spec.elem_size(),
                8,
                "native workspaces hold f64; array {} has element size {}",
                spec.name(),
                spec.elem_size()
            );
            by_name.insert(spec.name().to_string(), id);
        }
        let words = layout.total_bytes().div_ceil(8) as usize;
        Workspace {
            buf: vec![0.0; words],
            layout,
            by_name,
        }
    }

    /// The layout backing this workspace.
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    /// Looks up an array by name.
    ///
    /// # Panics
    ///
    /// Panics if the program declares no array with that name. Use
    /// [`Workspace::try_array`] when the name comes from user input.
    pub fn array(&self, name: &str) -> ArrayId {
        match self.try_array(name) {
            Ok(id) => id,
            Err(e) => panic!("{e} in this workspace"),
        }
    }

    /// Fallible form of [`Workspace::array`]: an undeclared name is
    /// [`IrError::NoSuchArray`] instead of a panic.
    pub fn try_array(&self, name: &str) -> Result<ArrayId, IrError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| IrError::NoSuchArray {
                name: name.to_string(),
            })
    }

    /// The arena index of the array's first element.
    pub fn base_word(&self, id: ArrayId) -> usize {
        (self.layout.base_addr(id) / 8) as usize
    }

    /// The arena distance between consecutive elements along each
    /// dimension, in `f64` words (so `strides[0] == 1`).
    pub fn strides(&self, id: ArrayId) -> Vec<usize> {
        self.layout
            .strides_bytes(id)
            .iter()
            .map(|&s| (s / 8) as usize)
            .collect()
    }

    /// Reads one element by subscripts (bounds-checked through the
    /// layout).
    pub fn get(&self, id: ArrayId, indices: &[i64]) -> f64 {
        self.buf[(self.layout.address_of(id, indices) / 8) as usize]
    }

    /// Writes one element by subscripts.
    pub fn set(&mut self, id: ArrayId, indices: &[i64], value: f64) {
        self.buf[(self.layout.address_of(id, indices) / 8) as usize] = value;
    }

    /// The raw arena, for hot loops that index with
    /// [`Workspace::base_word`] + [`Workspace::strides`].
    pub fn words(&self) -> &[f64] {
        &self.buf
    }

    /// Mutable raw arena.
    pub fn words_mut(&mut self) -> &mut [f64] {
        &mut self.buf
    }

    /// Splits the workspace into the raw arena plus a clone of the layout,
    /// letting kernels hold `&mut [f64]` while still computing addresses.
    pub fn parts_mut(&mut self) -> (&mut [f64], &DataLayout) {
        (&mut self.buf, &self.layout)
    }

    /// Fills an array with a deterministic pseudo-random pattern so timed
    /// kernels do not operate on denormals or constant data.
    pub fn fill_pattern(&mut self, id: ArrayId, seed: u64) {
        let base = self.base_word(id);
        let len = (self.layout.array_bytes(id) / 8) as usize;
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for w in &mut self.buf[base..base + len] {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *w = 0.5 + (state % 1000) as f64 / 1000.0;
        }
    }

    /// Sums an array's elements — a cheap checksum the tests use to verify
    /// that padded and unpadded runs compute identical results.
    pub fn checksum(&self, id: ArrayId) -> f64 {
        let dims = self.layout.dims(id);
        // Walk logical subscripts (not raw words) so padding lanes are
        // excluded from the sum.
        let mut idx: Vec<i64> = dims.iter().map(|d| d.lower).collect();
        let original = self.layout.original_dims(id);
        let mut sum = 0.0;
        'outer: loop {
            sum += self.get(id, &idx);
            for d in 0..dims.len() {
                idx[d] += 1;
                if idx[d] < original[d].lower + original[d].size {
                    continue 'outer;
                }
                idx[d] = original[d].lower;
            }
            break;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_ir::{ArrayBuilder, Loop, Stmt, Subscript};

    fn two_array_program() -> Program {
        let mut b = Program::builder("ws");
        let a = b.add_array(ArrayBuilder::new("A", [4, 4]));
        let _c = b.add_array(ArrayBuilder::new("C", [8]));
        b.push(Stmt::loop_(
            Loop::new("i", 1, 4),
            vec![Stmt::refs(vec![
                a.at([Subscript::var("i"), Subscript::constant(1)])
            ])],
        ));
        b.build().expect("valid")
    }

    #[test]
    fn get_set_round_trip() {
        let p = two_array_program();
        let mut ws = Workspace::new(&p, DataLayout::original(&p));
        let a = ws.array("A");
        let c = ws.array("C");
        ws.set(a, &[3, 2], 42.0);
        ws.set(c, &[5], 7.0);
        assert_eq!(ws.get(a, &[3, 2]), 42.0);
        assert_eq!(ws.get(c, &[5]), 7.0);
        assert_eq!(ws.get(a, &[1, 1]), 0.0);
    }

    #[test]
    fn strides_reflect_padding() {
        let p = two_array_program();
        let mut layout = DataLayout::original(&p);
        let a = layout_id(&p, "A");
        layout.pad_dim(a, 0, 3);
        layout.assign_sequential_bases();
        let ws = Workspace::new(&p, layout);
        assert_eq!(ws.strides(a), vec![1, 7]);
    }

    fn layout_id(p: &Program, name: &str) -> ArrayId {
        p.arrays_with_ids()
            .find(|(_, s)| s.name() == name)
            .expect("exists")
            .0
    }

    #[test]
    fn checksum_ignores_padding_lanes() {
        let p = two_array_program();
        let a = layout_id(&p, "A");

        let mut plain = Workspace::new(&p, DataLayout::original(&p));
        let mut padded_layout = DataLayout::original(&p);
        padded_layout.pad_dim(a, 0, 2);
        padded_layout.assign_sequential_bases();
        let mut padded = Workspace::new(&p, padded_layout);

        for i in 1..=4 {
            for j in 1..=4 {
                let v = (i * 10 + j) as f64;
                plain.set(a, &[i, j], v);
                padded.set(a, &[i, j], v);
            }
        }
        assert_eq!(plain.checksum(a), padded.checksum(a));
    }

    #[test]
    fn fill_pattern_is_deterministic_and_bounded() {
        let p = two_array_program();
        let a = layout_id(&p, "A");
        let mut w1 = Workspace::new(&p, DataLayout::original(&p));
        let mut w2 = Workspace::new(&p, DataLayout::original(&p));
        w1.fill_pattern(a, 7);
        w2.fill_pattern(a, 7);
        assert_eq!(w1.checksum(a), w2.checksum(a));
        for i in 1..=4 {
            for j in 1..=4 {
                let v = w1.get(a, &[i, j]);
                assert!((0.5..1.5).contains(&v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "no array named")]
    fn unknown_array_panics() {
        let p = two_array_program();
        let ws = Workspace::new(&p, DataLayout::original(&p));
        let _ = ws.array("NOPE");
    }

    #[test]
    fn try_array_reports_unknown_names_as_errors() {
        let p = two_array_program();
        let ws = Workspace::new(&p, DataLayout::original(&p));
        assert!(ws.try_array("A").is_ok());
        assert_eq!(
            ws.try_array("NOPE"),
            Err(pad_ir::IrError::NoSuchArray {
                name: "NOPE".into()
            })
        );
    }
}
