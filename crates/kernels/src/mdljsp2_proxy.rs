//! MDLJSP2 proxy — SPEC92 molecular dynamics, *single* precision
//! (3885 lines, 23 arrays in the paper).
//!
//! Identical structure to [`crate::mdljdp2_proxy`] with 4-byte elements —
//! which exercises the analysis's element-size handling: conflict
//! distances halve, and arrays of the same element count are half the
//! size, so the aliasing problem sizes differ from the DP variant.

use pad_ir::Program;

/// Atom count.
pub const DEFAULT_N: i64 = 8192;

/// Element size for this variant (single precision).
pub const ELEM_SIZE: u32 = 4;

/// Builds the single-precision variant.
pub fn spec(n: i64) -> Program {
    crate::mdljdp2_proxy::spec_sized("MDLJSP2", 3885, n, ELEM_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn uses_four_byte_elements() {
        let p = spec(64);
        assert!(p.arrays().iter().all(|a| a.elem_size() == 4));
    }

    #[test]
    fn aliases_at_its_own_sizes() {
        // 8192 floats = 32 KiB per vector: same aliasing as the DP
        // variant at twice the element count.
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(outcome.stats.arrays_inter_padded > 0);
        assert!(outcome.layout.check_no_overlap());
    }
}
