//! SIMPLE — 2-D Lagrangian hydrodynamics (1346 lines, 37 global arrays
//! in the paper; modeled with the twelve arrays of its dominant phases).
//!
//! A large stencil application: staggered velocity/position meshes,
//! artificial viscosity, pressure and energy updates. The reduction keeps
//! what matters to padding — many conforming `n × n` arrays touched
//! together through shifted stencils across several nests.

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at2;

/// Default mesh size.
pub const DEFAULT_N: i64 = 256;

/// The modeled arrays.
pub const ARRAY_NAMES: [&str; 12] = [
    "R", "Z", "U", "V", "RHO", "P", "Q", "E", "AJ", "W1", "W2", "W3",
];

/// Builds the dominant hydro phases at mesh size `n`.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("SIMPLE");
    b.source_lines(1346);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [n, n])))
        .collect();
    let [r, z, u, v, rho, p, q, e, aj, w1, w2, w3] = ids[..] else {
        unreachable!()
    };

    // Phase 1: mesh geometry (Jacobian from positions).
    b.push(Stmt::loop_nest(
        [Loop::new("k", 2, n), Loop::new("l", 2, n)],
        vec![Stmt::refs(vec![
            at2(r, "l", 0, "k", 0),
            at2(r, "l", -1, "k", 0),
            at2(r, "l", 0, "k", -1),
            at2(z, "l", 0, "k", 0),
            at2(z, "l", -1, "k", 0),
            at2(z, "l", 0, "k", -1),
            at2(aj, "l", 0, "k", 0).write(),
        ])],
    ));
    // Phase 2: artificial viscosity.
    b.push(Stmt::loop_nest(
        [Loop::new("k", 2, n), Loop::new("l", 2, n)],
        vec![Stmt::refs(vec![
            at2(u, "l", 0, "k", 0),
            at2(u, "l", -1, "k", 0),
            at2(v, "l", 0, "k", 0),
            at2(v, "l", 0, "k", -1),
            at2(rho, "l", 0, "k", 0),
            at2(q, "l", 0, "k", 0).write(),
        ])],
    ));
    // Phase 3: velocity update from pressure gradients.
    b.push(Stmt::loop_nest(
        [Loop::new("k", 2, n - 1), Loop::new("l", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(p, "l", 1, "k", 0),
            at2(p, "l", -1, "k", 0),
            at2(q, "l", 1, "k", 0),
            at2(q, "l", -1, "k", 0),
            at2(aj, "l", 0, "k", 0),
            at2(u, "l", 0, "k", 0),
            at2(u, "l", 0, "k", 0).write(),
            at2(p, "l", 0, "k", 1),
            at2(p, "l", 0, "k", -1),
            at2(q, "l", 0, "k", 1),
            at2(q, "l", 0, "k", -1),
            at2(v, "l", 0, "k", 0),
            at2(v, "l", 0, "k", 0).write(),
        ])],
    ));
    // Phase 4: position advance and work arrays.
    b.push(Stmt::loop_nest(
        [Loop::new("k", 1, n), Loop::new("l", 1, n)],
        vec![Stmt::refs(vec![
            at2(u, "l", 0, "k", 0),
            at2(r, "l", 0, "k", 0),
            at2(r, "l", 0, "k", 0).write(),
            at2(v, "l", 0, "k", 0),
            at2(z, "l", 0, "k", 0),
            at2(z, "l", 0, "k", 0).write(),
            at2(w1, "l", 0, "k", 0).write(),
        ])],
    ));
    // Phase 5: energy / equation of state.
    b.push(Stmt::loop_nest(
        [Loop::new("k", 1, n), Loop::new("l", 1, n)],
        vec![Stmt::refs(vec![
            at2(rho, "l", 0, "k", 0),
            at2(e, "l", 0, "k", 0),
            at2(q, "l", 0, "k", 0),
            at2(w1, "l", 0, "k", 0),
            at2(p, "l", 0, "k", 0).write(),
            at2(e, "l", 0, "k", 0).write(),
            at2(w2, "l", 0, "k", 0).write(),
            at2(w3, "l", 0, "k", 0).write(),
        ])],
    ));
    b.build().expect("SIMPLE spec is well-formed")
}

/// Runs one native hydro step matching [`spec`]'s five phases.
pub fn run_native(ws: &mut crate::Workspace, n: i64) {
    let ids: Vec<_> = ARRAY_NAMES.iter().map(|name| ws.array(name)).collect();
    let bases: Vec<usize> = ids.iter().map(|&id| ws.base_word(id)).collect();
    let cols: Vec<usize> = ids.iter().map(|&id| ws.strides(id)[1]).collect();
    let [r, z, u, v, rho, p, q, e, aj, w1, w2, w3] = bases[..] else {
        unreachable!()
    };
    let [cr, cz, cu, cv, crho, cp, cq, ce, caj, cw1, cw2, cw3] = cols[..] else {
        unreachable!()
    };
    let n = n as usize;
    let (buf, _) = ws.parts_mut();
    let dt = 0.002;
    for k in 1..n {
        for l in 1..n {
            buf[aj + l + k * caj] = 0.5
                * ((buf[r + l + k * cr] - buf[r + (l - 1) + k * cr])
                    * (buf[z + l + k * cz] - buf[z + l + (k - 1) * cz])
                    - (buf[r + l + k * cr] - buf[r + l + (k - 1) * cr])
                        * (buf[z + l + k * cz] - buf[z + (l - 1) + k * cz]))
                + 1.0;
        }
    }
    for k in 1..n {
        for l in 1..n {
            let du = buf[u + l + k * cu] - buf[u + (l - 1) + k * cu];
            let dv = buf[v + l + k * cv] - buf[v + l + (k - 1) * cv];
            let compress = (du + dv).min(0.0);
            buf[q + l + k * cq] = buf[rho + l + k * crho] * compress * compress;
        }
    }
    for k in 1..n - 1 {
        for l in 1..n - 1 {
            let gradl = buf[p + (l + 1) + k * cp] - buf[p + (l - 1) + k * cp]
                + buf[q + (l + 1) + k * cq]
                - buf[q + (l - 1) + k * cq];
            let gradk = buf[p + l + (k + 1) * cp] - buf[p + l + (k - 1) * cp]
                + buf[q + l + (k + 1) * cq]
                - buf[q + l + (k - 1) * cq];
            let inv = 1.0 / buf[aj + l + k * caj];
            buf[u + l + k * cu] -= dt * gradl * inv;
            buf[v + l + k * cv] -= dt * gradk * inv;
        }
    }
    for k in 0..n {
        for l in 0..n {
            buf[r + l + k * cr] += dt * buf[u + l + k * cu];
            buf[z + l + k * cz] += dt * buf[v + l + k * cv];
            buf[w1 + l + k * cw1] = buf[u + l + k * cu] * buf[v + l + k * cv];
        }
    }
    for k in 0..n {
        for l in 0..n {
            let work = buf[q + l + k * cq] * buf[w1 + l + k * cw1];
            buf[e + l + k * ce] = (buf[e + l + k * ce] - dt * work).max(0.0);
            buf[p + l + k * cp] = 0.4 * buf[rho + l + k * crho] * buf[e + l + k * ce];
            buf[w2 + l + k * cw2] = work;
            buf[w3 + l + k * cw3] = buf[p + l + k * cp] + buf[q + l + k * cq];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{uniform_ref_fraction, Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(64);
        assert_eq!(p.arrays().len(), 12);
        assert_eq!(p.ref_groups().len(), 5);
        assert_eq!(uniform_ref_fraction(&p), 1.0);
    }

    #[test]
    fn power_of_two_mesh_attracts_inter_padding() {
        let p = spec(256); // 256*256*8 = 512 KiB arrays: all alias a 16K cache
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(outcome.stats.arrays_inter_padded > 0);
        assert!(outcome.layout.check_no_overlap());
        assert!(outcome.stats.size_increase_percent < 1.0);
    }

    #[test]
    fn native_matches_under_padding() {
        use pad_core::DataLayout;
        let p = spec(20);
        let seed = |ws: &mut crate::Workspace| {
            for (i, name) in ARRAY_NAMES.iter().enumerate() {
                let id = ws.array(name);
                ws.fill_pattern(id, i as u64 + 1);
            }
        };
        let mut plain = crate::Workspace::new(&p, DataLayout::original(&p));
        seed(&mut plain);
        run_native(&mut plain, 20);

        let outcome = Pad::new(PaddingConfig::new(1024, 32).expect("valid")).run(&p);
        let mut padded = crate::Workspace::new(&p, outcome.layout);
        seed(&mut padded);
        run_native(&mut padded, 20);

        for name in ARRAY_NAMES {
            let id = plain.array(name);
            assert_eq!(plain.checksum(id), padded.checksum(id), "{name}");
            assert!(plain.checksum(id).is_finite(), "{name} non-finite");
        }
    }
}
