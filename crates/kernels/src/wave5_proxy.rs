//! WAVE5 proxy — SPEC95 Maxwell's-equations particle-in-cell plasma code
//! (7764 lines, 57 arrays in the paper).
//!
//! WAVE5 alternates field solves on 2-D grids (uniform stencils) with
//! particle pushes that gather/scatter at particle positions
//! (indirection). The proxy keeps both phases: conforming field arrays
//! with stencil updates, and a particle phase whose grid accesses use
//! scaled subscripts standing in for position-dependent indexing.

use pad_ir::{ArrayBuilder, ArrayId, IndexVar, Loop, Program, Stmt, Subscript};

use crate::util::{at1, at2};

/// Field grid size (particle count = 8·n²).
pub const DEFAULT_N: i64 = 256;

/// The modeled arrays.
pub const ARRAY_NAMES: [&str; 8] = ["EX", "EY", "BZ", "RHO", "JX", "JY", "PX", "PV"];

/// Builds the field-solve and particle-push phases.
pub fn spec(n: i64) -> Program {
    let np = 8 * n;
    let mut b = Program::builder("WAVE5");
    b.source_lines(7764);
    let grids: Vec<ArrayId> = ["EX", "EY", "BZ", "JX", "JY"]
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [n, n])))
        .collect();
    let [ex, ey, bz, jx, jy] = grids[..] else {
        unreachable!()
    };
    // The charge grid is deposited through particle positions; the proxy
    // keeps it linearized so the scaled stand-in for indirection stays in
    // bounds.
    let rho = b.add_array(ArrayBuilder::new("RHO", [2 * np]));
    let px = b.add_array(ArrayBuilder::new("PX", [2 * np]));
    let pv = b.add_array(ArrayBuilder::new("PV", [2 * np]));

    // Field solve: curl updates on staggered grids.
    b.push(Stmt::loop_nest(
        [Loop::new("j", 2, n - 1), Loop::new("i", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(bz, "i", 0, "j", 0),
            at2(bz, "i", -1, "j", 0),
            at2(jx, "i", 0, "j", 0),
            at2(ex, "i", 0, "j", 0),
            at2(ex, "i", 0, "j", 0).write(),
            at2(bz, "i", 0, "j", -1),
            at2(jy, "i", 0, "j", 0),
            at2(ey, "i", 0, "j", 0),
            at2(ey, "i", 0, "j", 0).write(),
        ])],
    ));
    b.push(Stmt::loop_nest(
        [Loop::new("j", 2, n - 1), Loop::new("i", 2, n - 1)],
        vec![Stmt::refs(vec![
            at2(ex, "i", 0, "j", 1),
            at2(ex, "i", 0, "j", 0),
            at2(ey, "i", 1, "j", 0),
            at2(ey, "i", 0, "j", 0),
            at2(bz, "i", 0, "j", 0),
            at2(bz, "i", 0, "j", 0).write(),
        ])],
    ));
    // Particle push: sequential particle state, gathered charge deposit.
    let deposit = Subscript::from_terms([(IndexVar::new("p"), 2)], -1);
    b.push(Stmt::loop_(
        Loop::new("p", 1, np),
        vec![Stmt::refs(vec![
            at1(px, "p", 0),
            at1(pv, "p", 0),
            at1(pv, "p", 0).write(),
            at1(px, "p", 0).write(),
            rho.at([deposit.clone()]),
            rho.at([deposit]).write(),
        ])],
    ));
    b.build().expect("WAVE5 spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{uniform_ref_fraction, Pad, PaddingConfig};

    #[test]
    fn mixes_uniform_fields_with_opaque_particles() {
        let p = spec(64);
        let f = uniform_ref_fraction(&p);
        assert!(f > 0.7 && f < 1.0, "fraction {f}");
    }

    #[test]
    fn field_arrays_attract_padding_at_aliasing_sizes() {
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(outcome.layout.check_no_overlap());
        assert!(
            outcome.stats.arrays_inter_padded > 0,
            "{:?}",
            outcome.events
        );
    }
}
