//! Shared construction helpers for kernel specifications.

use pad_ir::{ArrayId, ArrayRef, Subscript};

/// `a(v0 + o0)` — 1-D reference.
pub(crate) fn at1(a: ArrayId, v0: &str, o0: i64) -> ArrayRef {
    a.at([Subscript::var_offset(v0, o0)])
}

/// `a(v0 + o0, v1 + o1)` — 2-D reference.
pub(crate) fn at2(a: ArrayId, v0: &str, o0: i64, v1: &str, o1: i64) -> ArrayRef {
    a.at([Subscript::var_offset(v0, o0), Subscript::var_offset(v1, o1)])
}

/// `a(v0 + o0, v1 + o1, v2 + o2)` — 3-D reference.
pub(crate) fn at3(a: ArrayId, v0: &str, o0: i64, v1: &str, o1: i64, v2: &str, o2: i64) -> ArrayRef {
    a.at([
        Subscript::var_offset(v0, o0),
        Subscript::var_offset(v1, o1),
        Subscript::var_offset(v2, o2),
    ])
}
