//! DGEFA — LU factorization with partial pivoting (LINPACK's `dgefa`;
//! 75 lines, 2 global arrays).
//!
//! The canonical linear-algebra workload of the paper: at step `k` the
//! update loop touches columns `j` and `k` of the same matrix together
//! (`A(i,j)` and `A(i,k)`), the Figure 3 pattern. When the column size
//! shares a large gcd with the cache size, many `(j, k)` column pairs
//! alias — the *semi-severe* conflicts `LINPAD2` exists to remove.

use pad_ir::{Loop, Program, Stmt, Subscript};

use crate::util::{at1, at2};
use crate::workspace::Workspace;

/// Paper problem size (`DGEFA256`).
pub const DEFAULT_N: i64 = 256;

/// Outer elimination steps used by [`spec`] for cache simulation.
/// Each step exercises the full spectrum of column distances, so a small
/// prefix of the elimination preserves the miss-rate shape at a fraction
/// of the trace length.
pub const DEFAULT_STEPS: i64 = 16;

/// Builds the factorization with [`DEFAULT_STEPS`] elimination steps.
pub fn spec(n: i64) -> Program {
    spec_steps(n, DEFAULT_STEPS)
}

/// Builds the factorization truncated to `steps` elimination steps
/// (`steps >= n-1` gives the whole elimination).
pub fn spec_steps(n: i64, steps: i64) -> Program {
    let mut b = Program::builder("DGEFA256");
    b.source_lines(75);
    let a = b.add_array(pad_ir::ArrayBuilder::new("A", [n, n]));
    let ipvt = b.add_array(pad_ir::ArrayBuilder::new("IPVT", [n]));
    b.push(Stmt::loop_(
        Loop::new("k", 1, steps.min(n - 1)),
        vec![
            // Pivot search down column k, then record the pivot.
            Stmt::loop_(
                Loop::new("i", Subscript::var_offset("k", 1), n),
                vec![Stmt::refs(vec![at2(a, "i", 0, "k", 0)])],
            ),
            Stmt::refs(vec![at1(ipvt, "k", 0).write()]),
            // Scale the pivot column.
            Stmt::loop_(
                Loop::new("i", Subscript::var_offset("k", 1), n),
                vec![Stmt::refs(vec![
                    at2(a, "i", 0, "k", 0),
                    at2(a, "i", 0, "k", 0).write(),
                ])],
            ),
            // Rank-1 update of the trailing submatrix.
            Stmt::loop_(
                Loop::new("j", Subscript::var_offset("k", 1), n),
                vec![Stmt::loop_(
                    Loop::new("i", Subscript::var_offset("k", 1), n),
                    vec![Stmt::refs(vec![
                        at2(a, "i", 0, "j", 0),
                        at2(a, "i", 0, "k", 0),
                        at2(a, "i", 0, "j", 0).write(),
                    ])],
                )],
            ),
        ],
    ));
    b.build().expect("DGEFA spec is well-formed")
}

/// Runs the complete LU factorization with partial pivoting natively.
/// Row swaps are recorded in `IPVT` (as `f64` indices, mirroring the
/// spec's arrays).
pub fn run_native(ws: &mut Workspace, n: i64) {
    let a = ws.array("A");
    let ipvt = ws.array("IPVT");
    let a0 = ws.base_word(a);
    let p0 = ws.base_word(ipvt);
    let col = ws.strides(a)[1];
    let n = n as usize;
    let buf = ws.words_mut();
    let idx = |i: usize, j: usize| a0 + i + j * col; // 0-based
    for k in 0..n - 1 {
        // Partial pivot: find the largest |A(i,k)|, i >= k.
        let mut l = k;
        let mut best = buf[idx(k, k)].abs();
        for i in k + 1..n {
            let v = buf[idx(i, k)].abs();
            if v > best {
                best = v;
                l = i;
            }
        }
        buf[p0 + k] = l as f64;
        if l != k {
            for j in k..n {
                buf.swap(idx(k, j), idx(l, j));
            }
        }
        let pivot = buf[idx(k, k)];
        if pivot == 0.0 {
            continue; // singular column; dgefa records and moves on
        }
        let inv = -1.0 / pivot;
        for i in k + 1..n {
            buf[idx(i, k)] *= inv;
        }
        for j in k + 1..n {
            let t = buf[idx(k, j)];
            for i in k + 1..n {
                buf[idx(i, j)] += t * buf[idx(i, k)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{is_linear_algebra_array, DataLayout};

    #[test]
    fn spec_is_linear_algebra() {
        let p = spec(64);
        let a = p.arrays_with_ids().next().expect("has A").0;
        assert!(is_linear_algebra_array(&p, a));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // matrix math reads better indexed
    fn factorization_solves_a_small_system() {
        // Factor a known matrix and verify L*U (with the recorded
        // permutation) reproduces it.
        let n = 5i64;
        let p = spec_steps(n, n - 1);
        let mut ws = Workspace::new(&p, DataLayout::original(&p));
        let a = ws.array("A");
        // A diagonally dominant matrix (no zero pivots).
        let mut original = vec![vec![0.0f64; n as usize]; n as usize];
        for i in 1..=n {
            for j in 1..=n {
                let v = if i == j { 10.0 } else { 1.0 / (i + j) as f64 };
                ws.set(a, &[i, j], v);
                original[(i - 1) as usize][(j - 1) as usize] = v;
            }
        }
        run_native(&mut ws, n);

        // Rebuild PA = L*U from the factored form (LINPACK stores the
        // negated multipliers below the diagonal).
        let nn = n as usize;
        let ipvt = ws.array("IPVT");
        let mut lu = vec![vec![0.0f64; nn]; nn];
        for i in 0..nn {
            for j in 0..nn {
                lu[i][j] = ws.get(a, &[(i + 1) as i64, (j + 1) as i64]);
            }
        }
        let mut reconstructed = vec![vec![0.0f64; nn]; nn];
        for i in 0..nn {
            for j in 0..nn {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    let l_ik = if i == k { 1.0 } else { -lu[i][k] };
                    let u_kj = if k <= j { lu[k][j] } else { 0.0 };
                    s += l_ik * u_kj;
                }
                reconstructed[i][j] = s;
            }
        }
        // Undo the row swaps (applied in reverse order).
        for k in (0..nn - 1).rev() {
            let l = ws.get(ipvt, &[(k + 1) as i64]) as usize;
            if l != k {
                reconstructed.swap(k, l);
            }
        }
        for i in 0..nn {
            for j in 0..nn {
                assert!(
                    (reconstructed[i][j] - original[i][j]).abs() < 1e-10,
                    "PA=LU mismatch at ({i},{j}): {} vs {}",
                    reconstructed[i][j],
                    original[i][j]
                );
            }
        }
    }

    #[test]
    fn padded_factorization_matches_plain() {
        use pad_core::{Pad, PaddingConfig};
        let n = 24i64;
        let p = spec_steps(n, n - 1);
        let a = p.arrays_with_ids().next().expect("has A").0;

        let mut plain = Workspace::new(&p, DataLayout::original(&p));
        plain.fill_pattern(a, 11);
        // Make it diagonally dominant to keep pivoting deterministic.
        for i in 1..=n {
            let v = plain.get(a, &[i, i]);
            plain.set(a, &[i, i], v + 50.0);
        }
        let mut padded_ws = {
            let outcome = Pad::new(PaddingConfig::new(2048, 32).expect("valid")).run(&p);
            Workspace::new(&p, outcome.layout)
        };
        padded_ws.fill_pattern(a, 11);
        for i in 1..=n {
            let v = padded_ws.get(a, &[i, i]);
            padded_ws.set(a, &[i, i], v + 50.0);
        }
        run_native(&mut plain, n);
        run_native(&mut padded_ws, n);
        assert!((plain.checksum(a) - padded_ws.checksum(a)).abs() < 1e-9);
    }
}
