//! APPSP proxy — NAS scalar-pentadiagonal PDE solver (3991 lines, 41
//! arrays in the paper).
//!
//! APPSP sweeps 5-component flow variables through the cube in all three
//! directions solving scalar pentadiagonal systems. The proxy keeps the
//! structure that drives its cache behaviour: rank-3 arrays with a small
//! leading component dimension folded in (`5·n` columns) and directional
//! sweeps whose strides are a column and a plane. Dropped: the actual
//! pentadiagonal coefficients, boundary conditions, and time-stepping
//! control.

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at3;

/// Cube size (NAS class-S-ish; the paper does not state one).
pub const DEFAULT_N: i64 = 51; // 5*51 = 255-element columns

/// The modeled arrays.
pub const ARRAY_NAMES: [&str; 4] = ["U", "RHS", "LHS", "RES"];

/// Builds the proxy's three sweeps on a `5n × n × n` layout.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("APPSP");
    b.source_lines(3991);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [5 * n, n, n])))
        .collect();
    let [u, rhs, lhs, res] = ids[..] else {
        unreachable!()
    };

    // RHS computation: neighbouring cells in the x (unit-stride)
    // direction.
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, n),
            Loop::new("j", 1, n),
            Loop::new("i", 6, 5 * n - 5),
        ],
        vec![Stmt::refs(vec![
            at3(u, "i", -5, "j", 0, "k", 0),
            at3(u, "i", 0, "j", 0, "k", 0),
            at3(u, "i", 5, "j", 0, "k", 0),
            at3(rhs, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    // y sweep: column-strided recurrence.
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, n),
            Loop::new("j", 2, n),
            Loop::new("i", 1, 5 * n),
        ],
        vec![Stmt::refs(vec![
            at3(rhs, "i", 0, "j", -1, "k", 0),
            at3(lhs, "i", 0, "j", 0, "k", 0),
            at3(rhs, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    // z sweep: plane-strided recurrence into the residual.
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 2, n),
            Loop::new("j", 1, n),
            Loop::new("i", 1, 5 * n),
        ],
        vec![Stmt::refs(vec![
            at3(rhs, "i", 0, "j", 0, "k", -1),
            at3(lhs, "i", 0, "j", 0, "k", 0),
            at3(res, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    b.build().expect("APPSP spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(12);
        assert_eq!(p.arrays().len(), 4);
        assert_eq!(p.ref_groups().len(), 3);
        assert_eq!(p.arrays()[0].dims()[0].size, 60);
    }

    #[test]
    fn pad_runs_cleanly() {
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(outcome.layout.check_no_overlap());
        assert!(outcome.stats.size_increase_percent < 2.0);
    }
}
