//! APSI proxy — SPEC95 pseudospectral air-pollution model (7361 lines,
//! 23 arrays in the paper).
//!
//! APSI advances temperature/wind/pollutant fields on a 3-D grid with
//! vertical FFT-based solves. The proxy keeps a set of conforming rank-3
//! field arrays updated by vertical sweeps and horizontal stencils.
//! Dropped: the spectral transforms (APSI's grid — 112×112×16 by
//! default — is not power-of-two, and its padding activity in Table 2 is
//! modest).

use pad_ir::{ArrayBuilder, ArrayId, Loop, Program, Stmt};

use crate::util::at3;

/// Horizontal grid size (vertical fixed at 16 levels).
pub const DEFAULT_N: i64 = 112;

/// The modeled arrays.
pub const ARRAY_NAMES: [&str; 6] = ["T", "U", "V", "W", "C", "DKZ"];

/// Builds vertical-solve and horizontal-advection nests.
pub fn spec(n: i64) -> Program {
    let levels = 16;
    let mut b = Program::builder("APSI");
    b.source_lines(7361);
    let ids: Vec<ArrayId> = ARRAY_NAMES
        .iter()
        .map(|nm| b.add_array(ArrayBuilder::new(*nm, [n, n, levels])))
        .collect();
    let [t, u, v, w, c, dkz] = ids[..] else {
        unreachable!()
    };

    // Horizontal advection of the pollutant field.
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 1, levels),
            Loop::new("j", 2, n - 1),
            Loop::new("i", 2, n - 1),
        ],
        vec![Stmt::refs(vec![
            at3(c, "i", -1, "j", 0, "k", 0),
            at3(c, "i", 1, "j", 0, "k", 0),
            at3(c, "i", 0, "j", -1, "k", 0),
            at3(c, "i", 0, "j", 1, "k", 0),
            at3(u, "i", 0, "j", 0, "k", 0),
            at3(v, "i", 0, "j", 0, "k", 0),
            at3(c, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    // Vertical diffusion solve (plane-strided recurrence).
    b.push(Stmt::loop_nest(
        [
            Loop::new("k", 2, levels),
            Loop::new("j", 1, n),
            Loop::new("i", 1, n),
        ],
        vec![Stmt::refs(vec![
            at3(t, "i", 0, "j", 0, "k", -1),
            at3(dkz, "i", 0, "j", 0, "k", 0),
            at3(w, "i", 0, "j", 0, "k", 0),
            at3(t, "i", 0, "j", 0, "k", 0).write(),
        ])],
    ));
    b.build().expect("APSI spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{Pad, PaddingConfig};

    #[test]
    fn spec_shape() {
        let p = spec(32);
        assert_eq!(p.arrays().len(), 6);
        assert_eq!(p.ref_groups().len(), 2);
    }

    #[test]
    fn pad_runs_cleanly() {
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert!(outcome.layout.check_no_overlap());
        assert!(outcome.stats.size_increase_percent < 1.0);
    }
}
