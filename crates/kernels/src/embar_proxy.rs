//! EMBAR proxy — NAS embarrassingly-parallel Monte Carlo (265 lines, 3
//! arrays, 80% uniform references in the paper).
//!
//! EMBAR generates pseudo-random pairs and tallies them into small
//! histogram arrays. Nearly all time is scalar arithmetic; the only array
//! traffic is a batch buffer written sequentially and ten histogram
//! counters. Padding finds nothing to do — a control point for Table 2.

use pad_ir::{ArrayBuilder, IndexVar, Loop, Program, Stmt, Subscript};

use crate::util::at1;

/// Batch size of generated randoms.
pub const DEFAULT_N: i64 = 8192;

/// Builds one Monte Carlo batch.
pub fn spec(n: i64) -> Program {
    let mut b = Program::builder("EMBAR");
    b.source_lines(265);
    let xbuf = b.add_array(ArrayBuilder::new("XBUF", [2 * n]));
    // The real histogram has 10 slots hit data-dependently; the proxy
    // gives the gather a full-width target so the affine stand-in for
    // indirection stays in bounds.
    let qhist = b.add_array(ArrayBuilder::new("Q", [2 * n]));
    let sums = b.add_array(ArrayBuilder::new("SUMS", [2]));
    let bucket = Subscript::from_terms([(IndexVar::new("i"), 2)], -1);

    // Fill the batch buffer (sequential writes).
    b.push(Stmt::loop_(
        Loop::new("i", 1, 2 * n),
        vec![Stmt::refs(vec![at1(xbuf, "i", 0).write()])],
    ));
    // Tally: read a pair, bump an unpredictable histogram slot.
    b.push(Stmt::loop_(
        Loop::new("i", 1, n),
        vec![Stmt::refs(vec![
            xbuf.at([Subscript::from_terms([(IndexVar::new("i"), 2)], -1)]),
            xbuf.at([Subscript::from_terms([(IndexVar::new("i"), 2)], 0)]),
            qhist.at([bucket.clone()]),
            qhist.at([bucket.clone()]).write(),
            sums.at([Subscript::constant(1)]).write(),
        ])],
    ));
    b.build().expect("EMBAR spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{uniform_ref_fraction, Pad, PaddingConfig};

    #[test]
    fn mostly_scalar_code_gets_no_intra_padding() {
        let p = spec(DEFAULT_N);
        let outcome = Pad::new(PaddingConfig::paper_base()).run(&p);
        assert_eq!(outcome.stats.arrays_intra_padded, 0);
        // Note: INTERPAD may still separate XBUF from Q — the scaled
        // subscripts have *equal* coefficients, so their difference is
        // constant and the generalized analysis can (correctly) see the
        // collision even though the refs are not uniformly generated in
        // the paper's syntactic sense.
        assert!(outcome.stats.inter_bytes_skipped < 128);
    }

    #[test]
    fn uniform_fraction_is_partial() {
        let p = spec(1024);
        let f = uniform_ref_fraction(&p);
        assert!(f > 0.2 && f < 0.9, "fraction {f}");
    }
}
