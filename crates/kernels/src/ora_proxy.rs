//! ORA proxy — SPEC92 ray tracing through an optical system (453 lines,
//! **zero** global arrays in the paper's Table 2).
//!
//! ORA is pure scalar floating-point code: it traces rays through lens
//! surfaces with no array state at all. It exists in the suite as the
//! degenerate control — the padding pipeline must handle an array-free
//! program gracefully and report nothing to do.

use pad_ir::Program;

/// Ray count (irrelevant — the program has no array accesses).
pub const DEFAULT_N: i64 = 1;

/// Builds the empty-data-space program.
pub fn spec(_n: i64) -> Program {
    let mut b = Program::builder("ORA");
    b.source_lines(453);
    b.build().expect("ORA spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::{DataLayout, Pad, PadLite, PaddingConfig};

    #[test]
    fn no_arrays_no_padding_no_crash() {
        let p = spec(DEFAULT_N);
        assert!(p.arrays().is_empty());
        for outcome in [
            Pad::new(PaddingConfig::paper_base()).run(&p),
            PadLite::new(PaddingConfig::paper_base()).run(&p),
        ] {
            assert!(outcome.events.is_empty());
            assert_eq!(outcome.layout.total_bytes(), 0);
        }
        assert_eq!(DataLayout::original(&p).total_bytes(), 0);
    }
}
