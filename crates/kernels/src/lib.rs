//! The benchmark suite of Rivera & Tseng (PLDI 1998).
//!
//! The paper evaluates its padding transformations on scientific kernels
//! (Livermore loops, linear-algebra factorizations, stencil solvers) and
//! on NAS / SPEC92 / SPEC95 applications. This crate provides that
//! workload suite in two interchangeable forms:
//!
//! 1. **Loop-nest specifications** (`spec` functions returning
//!    [`pad_ir::Program`]): the compile-time view the padding heuristics
//!    analyze, and the source the trace generator executes for cache
//!    simulation.
//! 2. **Native implementations** (`run_native` via [`Workspace`]):
//!    layout-parameterized Rust versions of the kernels, used to measure
//!    real execution time (the paper's Figure 15).
//!
//! The 13 kernels of the paper's Table 2 are modeled directly. The NAS and
//! SPEC *applications* the paper measured are proprietary multi-thousand
//! line Fortran codes; they are represented here by reduced proxies that
//! keep the array count, shapes, and dominant loop structure of the
//! originals (see `DESIGN.md` §2 for the substitution argument). Each
//! proxy's module documents what it keeps and what it drops.
//!
//! # Example
//!
//! ```
//! use pad_kernels::suite;
//!
//! let kernels = suite();
//! assert!(kernels.len() >= 19);
//! let jacobi = kernels.iter().find(|k| k.name == "JACOBI512").expect("registered");
//! let program = (jacobi.spec)(jacobi.default_n);
//! assert_eq!(program.arrays().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adi;
pub mod appbt_proxy;
pub mod applu_proxy;
pub mod appsp_proxy;
pub mod apsi_proxy;
pub mod buk_proxy;
pub mod cgm_proxy;
pub mod chol;
pub mod dgefa;
pub mod doduc_proxy;
pub mod dot;
pub mod embar_proxy;
pub mod erle;
pub mod expl;
pub mod fftpde_proxy;
pub mod fpppp_proxy;
pub mod hydro2d_proxy;
pub mod irr;
pub mod jacobi;
pub mod linpackd;
pub mod mdljdp2_proxy;
pub mod mdljsp2_proxy;
pub mod mgrid_proxy;
pub mod mult;
pub mod nasa7_proxy;
pub mod ora_proxy;
pub mod rb;
pub mod shal;
pub mod simple;
pub mod su2cor_proxy;
pub mod swim_proxy;
pub mod tomcatv_proxy;
pub mod turb3d_proxy;
pub mod wave5_proxy;

mod suite;
mod util;
mod workspace;

pub use suite::{suite, Category, Kernel};
pub use workspace::Workspace;
