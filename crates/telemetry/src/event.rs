//! The structured event model shared by every instrumented layer.

use crate::{now_us, thread_id};

/// A typed argument value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, byte sizes, indices).
    U64(u64),
    /// Signed integer (distances, deltas).
    I64(i64),
    /// Floating point (rates, percentages).
    F64(f64),
    /// Free text (labels, causes, serialized histograms).
    Str(String),
}

impl Value {
    /// The value rendered as a bare JSON token (numbers unquoted, strings
    /// *not* escaped — exporters own escaping).
    pub fn is_numeric(&self) -> bool {
        !matches!(self, Value::Str(_))
    }

    /// The value as `f64` when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// The value as `u64` when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload when the value is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// The temporal shape of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: work that started `dur_us` microseconds before
    /// `ts_us + dur_us`. Maps to a Chrome "complete" (`ph:"X"`) event.
    Span {
        /// Duration in microseconds.
        dur_us: u64,
    },
    /// A point in time (a retry firing, a pad decision). Maps to a
    /// Chrome instant (`ph:"i"`) event.
    Instant,
    /// A sampled counter snapshot (cache hit/miss counts). Maps to a
    /// Chrome counter (`ph:"C"`) event.
    Counter,
}

/// One structured telemetry event.
///
/// Events are plain data: the collector receives them fully built, and
/// exporters (`pad-report`) render them to NDJSON or Chrome trace format
/// without needing this crate's globals.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the process telemetry epoch ([`now_us`]). For
    /// spans this is the *start* of the span.
    pub ts_us: u64,
    /// Emitting thread ([`thread_id`]).
    pub tid: u64,
    /// Coarse subsystem category: `cell` (pool/harness), `sim` (batched
    /// trace engine), `cache` (simulator counters), `pad` (heuristic
    /// decisions), `sweep` (experiment lifecycle).
    pub category: &'static str,
    /// Event name — a cell label, kernel name, or decision site.
    pub name: String,
    /// Temporal shape.
    pub kind: EventKind,
    /// Structured arguments. Keys are static so argument tables never
    /// allocate per key.
    pub args: Vec<(&'static str, Value)>,
}

impl Event {
    /// A span that started at `start_us` (from [`now_us`]) and ends now.
    pub fn span(
        start_us: u64,
        category: &'static str,
        name: impl Into<String>,
        args: Vec<(&'static str, Value)>,
    ) -> Event {
        let end = now_us();
        Event {
            ts_us: start_us,
            tid: thread_id(),
            category,
            name: name.into(),
            kind: EventKind::Span {
                dur_us: end.saturating_sub(start_us),
            },
            args,
        }
    }

    /// An instantaneous event stamped now.
    pub fn instant(
        category: &'static str,
        name: impl Into<String>,
        args: Vec<(&'static str, Value)>,
    ) -> Event {
        Event {
            ts_us: now_us(),
            tid: thread_id(),
            category,
            name: name.into(),
            kind: EventKind::Instant,
            args,
        }
    }

    /// A counter snapshot stamped now.
    pub fn counter(
        category: &'static str,
        name: impl Into<String>,
        args: Vec<(&'static str, Value)>,
    ) -> Event {
        Event {
            ts_us: now_us(),
            tid: thread_id(),
            category,
            name: name.into(),
            kind: EventKind::Counter,
            args,
        }
    }

    /// The span duration, if this is a span.
    pub fn dur_us(&self) -> Option<u64> {
        match self.kind {
            EventKind::Span { dur_us } => Some(dur_us),
            _ => None,
        }
    }

    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&Value> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_measures_forward_from_start() {
        let start = now_us();
        let e = Event::span(start, "cell", "c0", vec![("index", Value::U64(0))]);
        assert_eq!(e.ts_us, start);
        assert!(e.dur_us().is_some());
        assert_eq!(e.arg("index").and_then(Value::as_u64), Some(0));
        assert!(e.arg("missing").is_none());
    }

    #[test]
    fn instants_and_counters_have_no_duration() {
        let i = Event::instant("pad", "inter/A", vec![]);
        let c = Event::counter("cache", "dm16k", vec![("misses", Value::U64(9))]);
        assert_eq!(i.dur_us(), None);
        assert_eq!(c.dur_us(), None);
        assert_eq!(i.kind, EventKind::Instant);
        assert_eq!(c.kind, EventKind::Counter);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::U64(3).as_f64(), Some(3.0));
        assert_eq!(Value::I64(-2).as_f64(), Some(-2.0));
        assert_eq!(Value::F64(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::U64(1).is_numeric());
        assert!(!Value::Str(String::new()).is_numeric());
    }
}
