//! End-of-sweep aggregation of a recorded event stream.
//!
//! The harness renders the result as a human-readable table; keeping the
//! aggregation here (over plain structs) lets it be tested without any
//! rendering dependency and reused by any sink.

use crate::event::{Event, EventKind, Value};
use crate::histogram::Histogram;

/// Aggregate of one cell label's execution (all attempts).
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// The cell's label.
    pub label: String,
    /// Total wall time across attempts, microseconds.
    pub total_us: u64,
    /// Attempt spans observed.
    pub attempts: u64,
    /// Thread id of the last attempt.
    pub thread: u64,
}

/// Aggregate simulation throughput for one kernel/trace name.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelThroughput {
    /// The compiled trace's program name.
    pub name: String,
    /// Batched walks performed.
    pub walks: u64,
    /// Total simulated accesses across walks.
    pub accesses: u64,
    /// Total walk wall time, microseconds.
    pub busy_us: u64,
}

impl KernelThroughput {
    /// Simulated accesses per second over the busy time.
    pub fn accesses_per_sec(&self) -> f64 {
        if self.busy_us == 0 {
            0.0
        } else {
            self.accesses as f64 / (self.busy_us as f64 / 1e6)
        }
    }
}

/// Aggregate of one advisor-service session's request stream
/// (`advisor`-category events emitted by `pad-advisor`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdvisorSummary {
    /// Completed request spans.
    pub requests: u64,
    /// Total request wall time, microseconds.
    pub request_us: u64,
    /// Analysis (`advise`) spans — cache hits never run one.
    pub advises: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests answered from the persistent store.
    pub cache_hits: u64,
    /// Requests answered on the degraded fast rung.
    pub degraded: u64,
}

impl AdvisorSummary {
    /// True when no advisor events were observed at all (the summary
    /// table omits the section entirely).
    pub fn is_empty(&self) -> bool {
        *self == AdvisorSummary::default()
    }

    /// Mean wall time per completed request, microseconds.
    pub fn mean_request_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.request_us as f64 / self.requests as f64
        }
    }
}

/// Everything the end-of-sweep summary table reports.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySummary {
    /// Per-cell aggregates, slowest first.
    pub cells: Vec<CellSummary>,
    /// Distribution of per-attempt cell durations (microseconds).
    pub cell_durations_us: Histogram,
    /// `retry` instants observed.
    pub retries: u64,
    /// `timeout` instants observed.
    pub timeouts: u64,
    /// `err` instants observed.
    pub errors: u64,
    /// Per-kernel simulation throughput, highest access count first.
    pub kernels: Vec<KernelThroughput>,
    /// Pad-decision events observed.
    pub pad_decisions: u64,
    /// Sampled cache-counter snapshots observed.
    pub cache_samples: u64,
    /// Advisor-service request aggregates.
    pub advisor: AdvisorSummary,
}

/// Folds an event stream into a [`TelemetrySummary`].
pub fn summarize(events: &[Event]) -> TelemetrySummary {
    let mut summary = TelemetrySummary::default();
    let mut cells: Vec<CellSummary> = Vec::new();
    let mut kernels: Vec<KernelThroughput> = Vec::new();

    for event in events {
        match (event.category, &event.kind) {
            ("cell", EventKind::Span { dur_us }) => {
                summary.cell_durations_us.record(*dur_us);
                match cells.iter_mut().find(|c| c.label == event.name) {
                    Some(cell) => {
                        cell.total_us += dur_us;
                        cell.attempts += 1;
                        cell.thread = event.tid;
                    }
                    None => cells.push(CellSummary {
                        label: event.name.clone(),
                        total_us: *dur_us,
                        attempts: 1,
                        thread: event.tid,
                    }),
                }
            }
            ("cell", EventKind::Instant) => match event.name.as_str() {
                "retry" => summary.retries += 1,
                "timeout" => summary.timeouts += 1,
                "err" => summary.errors += 1,
                _ => {}
            },
            ("sim", EventKind::Span { dur_us }) => {
                let accesses = event.arg("accesses").and_then(Value::as_u64).unwrap_or(0);
                match kernels.iter_mut().find(|k| k.name == event.name) {
                    Some(k) => {
                        k.walks += 1;
                        k.accesses += accesses;
                        k.busy_us += dur_us;
                    }
                    None => kernels.push(KernelThroughput {
                        name: event.name.clone(),
                        walks: 1,
                        accesses,
                        busy_us: *dur_us,
                    }),
                }
            }
            ("pad", _) => summary.pad_decisions += 1,
            ("cache", EventKind::Counter) => summary.cache_samples += 1,
            ("advisor", EventKind::Span { dur_us }) => match event.name.as_str() {
                "request" => {
                    summary.advisor.requests += 1;
                    summary.advisor.request_us += dur_us;
                }
                "advise" => summary.advisor.advises += 1,
                _ => {}
            },
            ("advisor", EventKind::Instant) => match event.name.as_str() {
                "shed" => summary.advisor.shed += 1,
                "cache_hit" => summary.advisor.cache_hits += 1,
                "degraded" => summary.advisor.degraded += 1,
                _ => {}
            },
            _ => {}
        }
    }

    cells.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.label.cmp(&b.label)));
    kernels.sort_by(|a, b| b.accesses.cmp(&a.accesses).then(a.name.cmp(&b.name)));
    summary.cells = cells;
    summary.kernels = kernels;
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, Value};

    fn span(cat: &'static str, name: &str, dur_us: u64, args: Vec<(&'static str, Value)>) -> Event {
        Event {
            ts_us: 0,
            tid: 1,
            category: cat,
            name: name.to_string(),
            kind: EventKind::Span { dur_us },
            args,
        }
    }

    #[test]
    fn cells_aggregate_across_attempts_and_sort_by_duration() {
        let events = vec![
            span("cell", "fig: fast", 10, vec![]),
            span("cell", "fig: slow", 500, vec![]),
            span("cell", "fig: slow", 700, vec![]),
            Event::instant("cell", "retry", vec![]),
        ];
        let s = summarize(&events);
        assert_eq!(s.cells.len(), 2);
        assert_eq!(s.cells[0].label, "fig: slow");
        assert_eq!(s.cells[0].total_us, 1200);
        assert_eq!(s.cells[0].attempts, 2);
        assert_eq!(s.cells[1].total_us, 10);
        assert_eq!(s.retries, 1);
        assert_eq!(s.cell_durations_us.count(), 3);
    }

    #[test]
    fn kernel_throughput_sums_walks() {
        let events = vec![
            span(
                "sim",
                "jacobi",
                1_000_000,
                vec![("accesses", Value::U64(2_000_000))],
            ),
            span(
                "sim",
                "jacobi",
                1_000_000,
                vec![("accesses", Value::U64(2_000_000))],
            ),
            span("sim", "dot", 10, vec![("accesses", Value::U64(5))]),
        ];
        let s = summarize(&events);
        assert_eq!(s.kernels.len(), 2);
        assert_eq!(s.kernels[0].name, "jacobi");
        assert_eq!(s.kernels[0].walks, 2);
        assert_eq!(s.kernels[0].accesses, 4_000_000);
        let rate = s.kernels[0].accesses_per_sec();
        assert!((rate - 2_000_000.0).abs() < 1.0, "rate = {rate}");
    }

    #[test]
    fn failures_and_decisions_are_counted() {
        let events = vec![
            Event::instant("cell", "timeout", vec![]),
            Event::instant("cell", "err", vec![]),
            Event::instant("pad", "intra/A", vec![]),
            Event::counter("cache", "jacobi/dm16k", vec![]),
            Event::instant("cell", "something-else", vec![]),
        ];
        let s = summarize(&events);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.errors, 1);
        assert_eq!(s.pad_decisions, 1);
        assert_eq!(s.cache_samples, 1);
        assert_eq!(s.retries, 0);
    }

    #[test]
    fn advisor_events_aggregate_into_their_own_section() {
        let events = vec![
            span("advisor", "request", 400, vec![("frame", Value::U64(0))]),
            span("advisor", "request", 600, vec![("frame", Value::U64(1))]),
            span("advisor", "advise", 350, vec![("exact", Value::U64(1))]),
            Event::instant("advisor", "cache_hit", vec![("frame", Value::U64(1))]),
            Event::instant("advisor", "shed", vec![("frame", Value::U64(2))]),
            Event::instant("advisor", "degraded", vec![("frame", Value::U64(3))]),
            Event::instant("advisor", "unknown-name", vec![]),
        ];
        let s = summarize(&events);
        assert_eq!(s.advisor.requests, 2);
        assert_eq!(s.advisor.request_us, 1000);
        assert!((s.advisor.mean_request_us() - 500.0).abs() < f64::EPSILON);
        assert_eq!(s.advisor.advises, 1);
        assert_eq!(s.advisor.cache_hits, 1);
        assert_eq!(s.advisor.shed, 1);
        assert_eq!(s.advisor.degraded, 1);
        assert!(!s.advisor.is_empty());
        // Advisor spans are not cell spans; they stay out of the cell table.
        assert!(s.cells.is_empty());
    }

    #[test]
    fn empty_stream_is_empty_summary() {
        let s = summarize(&[]);
        assert!(s.cells.is_empty());
        assert!(s.kernels.is_empty());
        assert_eq!(s.cell_durations_us.count(), 0);
        assert!(s.advisor.is_empty());
    }
}
