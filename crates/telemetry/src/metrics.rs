//! Live service metrics: a process-global registry of monotonic
//! counters, gauges, and latency histograms, cheap enough to leave in
//! the request path of a long-running server.
//!
//! The event/span layer in this crate answers *post-hoc* questions —
//! what did a sweep do, where did the time go. This module answers the
//! *live* ones: how many requests per second is `padtool serve`
//! answering right now, at what p99, with how deep a queue. It follows
//! the same discipline as the event layer:
//!
//! * the disabled state costs one relaxed atomic load per
//!   instrumentation site ([`metrics_enabled`]), gated by the
//!   `RIVERA_METRICS` environment variable;
//! * hot counters are single relaxed `fetch_add`s; latency histograms
//!   are **sharded** ([`HIST_SHARDS`] cache-line-aligned shards, one
//!   picked per recording thread) so concurrent workers never contend
//!   on one cache line;
//! * registration takes a mutex, but every call site registers once
//!   through a `OnceLock` handle and then touches only its own atomics.
//!
//! Histograms reuse the crate's log2-bucketed [`Histogram`] for
//! percentile math: a snapshot folds the shards element-wise into one
//! `Histogram`, whose [`Histogram::percentile`] gives exact (to bucket
//! resolution) p50/p95/p99 over everything recorded since process
//! start.
//!
//! Snapshots ([`MetricsRegistry::snapshot`]) are deterministic: metrics
//! are keyed in a `BTreeMap` by (family, labels), so two snapshots of
//! an unchanged registry render byte-identically — the property the
//! Prometheus exposition in `pad_report` and the advisor's `metrics`
//! op both build on.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::Histogram;

/// Environment variable switching the live metrics layer (`on`/`off`;
/// commands choose their own default — `padtool serve` and `padtool
/// top` default on, batch/figure binaries default off).
pub const METRICS_ENV: &str = "RIVERA_METRICS";

/// Environment variable setting the request-latency SLO threshold in
/// milliseconds (default [`DEFAULT_SLO_MS`]; `0` disables SLO
/// accounting). Requests answered within the threshold count as SLO
/// *good*, everything else — including sheds and errors — as *bad*.
pub const SLO_ENV: &str = "RIVERA_SLO_MS";

/// Default SLO latency threshold, in milliseconds.
pub const DEFAULT_SLO_MS: u64 = 250;

/// Shards per latency histogram. Each recording thread picks the shard
/// `thread_id % HIST_SHARDS`, so up to this many threads record
/// without sharing a cache line.
pub const HIST_SHARDS: usize = 8;

/// The single branch every metrics site takes while the layer is off.
static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// True when live metrics are being recorded. `#[inline]` + relaxed
/// load: the whole cost of a disabled site.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Turns the metrics layer on or off process-wide.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// The `RIVERA_METRICS` override, if one was given: `on`/`1`/`true`
/// mean on, `off`/`0`/`false`/`` mean off, anything else warns and
/// counts as unset.
pub fn metrics_env_override() -> Option<bool> {
    let raw = std::env::var(METRICS_ENV).ok()?;
    match raw.trim().to_ascii_lowercase().as_str() {
        "on" | "1" | "true" | "yes" => Some(true),
        "" | "off" | "0" | "false" | "no" => Some(false),
        _ => {
            eprintln!("warning: ignoring {METRICS_ENV}={raw:?} (want on|off)");
            None
        }
    }
}

/// Enables or disables metrics from the environment, using
/// `default_on` when `RIVERA_METRICS` is unset. Returns the resulting
/// state.
pub fn init_metrics_from_env(default_on: bool) -> bool {
    let on = metrics_env_override().unwrap_or(default_on);
    set_metrics_enabled(on);
    on
}

/// The SLO latency threshold in microseconds (`None` when disabled via
/// `RIVERA_SLO_MS=0`). Unparseable values warn and fall back to the
/// default.
pub fn slo_threshold_us() -> Option<u64> {
    let ms = match std::env::var(SLO_ENV) {
        Err(_) => DEFAULT_SLO_MS,
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) => ms,
            Err(_) => {
                eprintln!("warning: ignoring {SLO_ENV}={raw:?} (want milliseconds; 0 disables)");
                DEFAULT_SLO_MS
            }
        },
    };
    (ms > 0).then(|| ms.saturating_mul(1000))
}

/// A monotonic counter. Cloned `Arc` handles all update the same
/// value; reads are relaxed snapshots.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous value (queue depth, in-flight requests). Signed so
/// transient dips below a racing zero never wrap.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::dec`]).
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// One cache-line-aligned shard of a latency histogram.
#[repr(align(64))]
struct HistShard {
    buckets: [AtomicU64; Histogram::BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A sharded log2-bucketed histogram of `u64` samples (latencies in
/// microseconds, by convention). Recording is three relaxed
/// `fetch_add`s on the calling thread's shard plus one `fetch_max`;
/// snapshots fold the shards into a [`Histogram`] for percentile math.
pub struct LatencyHistogram {
    shards: Vec<HistShard>,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            shards: (0..HIST_SHARDS).map(|_| HistShard::new()).collect(),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &s.histogram.count())
            .field("max", &s.histogram.max())
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample on the calling thread's shard.
    #[inline]
    pub fn record(&self, value: u64) {
        let shard = &self.shards[crate::thread_id() as usize % HIST_SHARDS];
        shard.buckets[Histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Folds the shards into one immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; Histogram::BUCKETS];
        let mut sum = 0u64;
        for shard in &self.shards {
            for (acc, b) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            histogram: Histogram::from_buckets(buckets, self.max.load(Ordering::Relaxed)),
            sum,
        }
    }
}

/// An immutable fold of a [`LatencyHistogram`]: the merged log2
/// histogram (for [`Histogram::percentile`]) plus the exact sample
/// sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Merged bucket counts and maximum.
    pub histogram: Histogram,
    /// Exact sum of every recorded sample.
    pub sum: u64,
}

/// A metric's identity: family name plus a (sorted-at-registration,
/// rendered-verbatim) label list. Ordering is the registry's snapshot
/// order, hence the exposition order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

fn key_of(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    MetricKey {
        name: name.to_string(),
        labels: labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    }
}

/// The value kinds a snapshot carries.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// A monotonic counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A latency histogram's folded shards (boxed: the bucket array
    /// dwarfs the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMetric {
    /// Family name (e.g. `pad_advisor_requests_total`).
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text registered with the family.
    pub help: String,
    /// The value.
    pub value: SnapshotValue,
}

impl SnapshotMetric {
    /// The `name{k="v",...}` form used as a stable flat key in the
    /// advisor's `metrics` op.
    pub fn flat_name(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut s = String::with_capacity(self.name.len() + 16);
        s.push_str(&self.name);
        s.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(k);
            s.push_str("=\"");
            s.push_str(v);
            s.push('"');
        }
        s.push('}');
        s
    }
}

/// A deterministic point-in-time copy of every registered metric,
/// ordered by (family name, labels).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Every counter, in key order.
    pub counters: Vec<SnapshotMetric>,
    /// Every gauge, in key order.
    pub gauges: Vec<SnapshotMetric>,
    /// Every histogram, in key order.
    pub histograms: Vec<SnapshotMetric>,
}

impl MetricsSnapshot {
    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks a counter up by flat name (`name` or `name{k="v"}`).
    pub fn counter(&self, flat: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|m| m.flat_name() == flat)
            .and_then(|m| match m.value {
                SnapshotValue::Counter(v) => Some(v),
                _ => None,
            })
    }

    /// Looks a gauge up by flat name.
    pub fn gauge(&self, flat: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|m| m.flat_name() == flat)
            .and_then(|m| match m.value {
                SnapshotValue::Gauge(v) => Some(v),
                _ => None,
            })
    }

    /// Looks a histogram up by flat name.
    pub fn histogram(&self, flat: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|m| m.flat_name() == flat)
            .and_then(|m| match &m.value {
                SnapshotValue::Histogram(h) => Some(h.as_ref()),
                _ => None,
            })
    }
}

/// The process-global metrics registry. Metric handles are registered
/// once (mutex-guarded) and updated lock-free thereafter; snapshots
/// iterate the sorted key space so output order is deterministic.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<LatencyHistogram>>>,
    help: Mutex<BTreeMap<String, String>>,
}

fn poisoned<T>(e: std::sync::PoisonError<T>) -> T {
    e.into_inner()
}

impl MetricsRegistry {
    /// An empty registry (tests; production code uses [`registry`]).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn note_help(&self, name: &str, help: &str) {
        self.help
            .lock()
            .unwrap_or_else(poisoned)
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
    }

    /// Gets or registers the counter `name` (no labels).
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Gets or registers the counter `name{labels}`.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.note_help(name, help);
        Arc::clone(
            self.counters
                .lock()
                .unwrap_or_else(poisoned)
                .entry(key_of(name, labels))
                .or_default(),
        )
    }

    /// Gets or registers the gauge `name` (no labels).
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Gets or registers the gauge `name{labels}`.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.note_help(name, help);
        Arc::clone(
            self.gauges
                .lock()
                .unwrap_or_else(poisoned)
                .entry(key_of(name, labels))
                .or_default(),
        )
    }

    /// Gets or registers the latency histogram `name` (no labels).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<LatencyHistogram> {
        self.histogram_with(name, help, &[])
    }

    /// Gets or registers the latency histogram `name{labels}`.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<LatencyHistogram> {
        self.note_help(name, help);
        Arc::clone(
            self.histograms
                .lock()
                .unwrap_or_else(poisoned)
                .entry(key_of(name, labels))
                .or_default(),
        )
    }

    /// A deterministic point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let help = self.help.lock().unwrap_or_else(poisoned).clone();
        let help_of = |name: &str| help.get(name).cloned().unwrap_or_default();
        let metric = |key: &MetricKey, value: SnapshotValue| SnapshotMetric {
            name: key.name.clone(),
            labels: key.labels.clone(),
            help: help_of(&key.name),
            value,
        };
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap_or_else(poisoned)
                .iter()
                .map(|(k, c)| metric(k, SnapshotValue::Counter(c.get())))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap_or_else(poisoned)
                .iter()
                .map(|(k, g)| metric(k, SnapshotValue::Gauge(g.get())))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap_or_else(poisoned)
                .iter()
                .map(|(k, h)| metric(k, SnapshotValue::Histogram(Box::new(h.snapshot()))))
                .collect(),
        }
    }
}

/// The process-global registry every instrumented layer registers
/// into. Created on first use; never torn down.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_flag_round_trips() {
        // Process-global; keep the end state off for sibling tests.
        set_metrics_enabled(true);
        assert!(metrics_enabled());
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = MetricsRegistry::new();
        let c = r.counter("t_total", "a test counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same underlying metric.
        assert_eq!(r.counter("t_total", "a test counter").get(), 5);

        let g = r.gauge("t_depth", "a test gauge");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_shards_fold_into_exact_percentiles() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.histogram.count(), 1000);
        assert_eq!(snap.histogram.max(), 1000);
        assert_eq!(snap.sum, (1..=1000u64).sum::<u64>());
        assert!(snap.histogram.percentile(50.0) >= 500);
        assert_eq!(snap.histogram.percentile(100.0), 1000);
    }

    #[test]
    fn histogram_recording_is_thread_safe_across_shards() {
        let r = MetricsRegistry::new();
        let h = r.histogram("t_latency_us", "latency");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for v in 0..250u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().histogram.count(), 1000);
    }

    #[test]
    fn snapshots_are_ordered_and_stable() {
        let r = MetricsRegistry::new();
        r.counter("b_total", "second").inc();
        r.counter("a_total", "first").add(2);
        r.counter_with("c_total", "labeled", &[("op", "ping")])
            .inc();
        r.counter_with("c_total", "labeled", &[("op", "advise")])
            .add(3);
        let snap = r.snapshot();
        let names: Vec<String> = snap
            .counters
            .iter()
            .map(SnapshotMetric::flat_name)
            .collect();
        assert_eq!(
            names,
            [
                "a_total",
                "b_total",
                "c_total{op=\"advise\"}",
                "c_total{op=\"ping\"}"
            ]
        );
        assert_eq!(snap.counter("a_total"), Some(2));
        assert_eq!(snap.counter("c_total{op=\"advise\"}"), Some(3));
        assert_eq!(snap, r.snapshot(), "unchanged registry snapshots equal");
    }

    #[test]
    fn env_parsing_is_forgiving() {
        // metrics_env_override reads the real environment; only the
        // pure pieces are testable without racing other tests, so pin
        // the SLO default math instead.
        assert_eq!(DEFAULT_SLO_MS, 250);
    }
}
