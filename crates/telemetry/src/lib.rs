//! Zero-cost-when-disabled instrumentation for the padding reproduction.
//!
//! Every layer of the system — the work-stealing experiment pool, the
//! batched trace engine, the cache simulator, and the padding heuristics —
//! emits structured [`Event`]s (timing spans, instants, counters) through
//! one process-global [`Collector`]. The layer is engineered so that the
//! *disabled* state costs a single relaxed atomic load per instrumentation
//! site and nothing else:
//!
//! * [`enabled`] is an `#[inline]` read of an `AtomicBool`; every
//!   instrumentation site checks it before doing any work;
//! * event construction happens inside closures passed to [`emit`], so
//!   label formatting, clock reads, and argument collection are never
//!   executed while telemetry is off;
//! * hot loops (the per-access cache simulation paths) are never
//!   instrumented per access — sampling happens at chunk granularity in
//!   the batched engine, outside the tight loops.
//!
//! The `bench_telemetry` binary in `pad-bench` enforces the zero-cost
//! claim (< 2 % overhead with telemetry off) and byte-identical result
//! tables in every mode.
//!
//! # Modes
//!
//! Selected by the `RIVERA_TELEMETRY` environment variable
//! ([`TELEMETRY_ENV`]):
//!
//! | value     | effect                                                    |
//! |-----------|-----------------------------------------------------------|
//! | `off`     | (default) no collector installed, no events, no output    |
//! | `summary` | events collected in memory; end-of-sweep summary table    |
//! | `events`  | additionally: cache-counter sampling, NDJSON + Chrome     |
//! |           | trace-event export (`RIVERA_TRACE_OUT`, Perfetto-loadable)|
//!
//! Sink selection and rendering live downstream (`pad-report` renders the
//! Chrome trace and NDJSON streams; `pad-bench` renders the summary
//! table) — this crate owns only the event model, the global collector,
//! and the summary aggregation, and has zero dependencies.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pad_telemetry::{self as telemetry, Event, Mode, Recorder, Value};
//!
//! let recorder = telemetry::install_recorder(Mode::Events);
//! let t0 = telemetry::now_us();
//! // ... timed work ...
//! telemetry::emit(|| {
//!     Event::span(t0, "cell", "demo", vec![("index", Value::U64(7))])
//! });
//! assert_eq!(recorder.snapshot().len(), 1);
//! telemetry::uninstall();
//! assert!(!telemetry::enabled());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod event;
mod histogram;
pub mod metrics;
mod summary;

pub use collector::{Collector, NoopCollector, Recorder};
pub use event::{Event, EventKind, Value};
pub use histogram::Histogram;
pub use metrics::{
    init_metrics_from_env, metrics_enabled, registry, set_metrics_enabled, slo_threshold_us,
    Counter, Gauge, HistogramSnapshot, LatencyHistogram, MetricsRegistry, MetricsSnapshot,
    SnapshotMetric, SnapshotValue, DEFAULT_SLO_MS, METRICS_ENV, SLO_ENV,
};
pub use summary::{summarize, AdvisorSummary, CellSummary, KernelThroughput, TelemetrySummary};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Environment variable selecting the telemetry mode
/// (`off` | `summary` | `events`; default `off`).
pub const TELEMETRY_ENV: &str = "RIVERA_TELEMETRY";

/// Environment variable naming the Chrome trace-event output path used in
/// `events` mode (default `results/trace.json`; the NDJSON stream lands
/// beside it with an `.ndjson` extension).
pub const TRACE_OUT_ENV: &str = "RIVERA_TRACE_OUT";

/// Environment variable setting the cache-counter sampling interval in
/// simulated accesses (`events` mode only; `0` disables sampling;
/// default [`DEFAULT_SAMPLE_INTERVAL`]).
pub const SIM_SAMPLE_ENV: &str = "RIVERA_SIM_SAMPLE";

/// Default cache-counter sampling interval: one sample per 2^20 simulated
/// accesses. Coarse enough that even full sweeps generate kilobytes, not
/// gigabytes, of counter events.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 1 << 20;

/// Telemetry operating mode (see [`TELEMETRY_ENV`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// No collector installed; every instrumentation site reduces to one
    /// relaxed atomic load.
    #[default]
    Off,
    /// Events are collected in memory and rendered as an end-of-sweep
    /// summary table (stderr); no files are written.
    Summary,
    /// Everything `summary` does, plus cache-counter sampling and NDJSON
    /// + Chrome trace-event export.
    Events,
}

impl Mode {
    /// Parses a mode string (`off` / `summary` / `events`,
    /// case-insensitive). Returns `None` for anything else.
    pub fn parse(raw: &str) -> Option<Mode> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "" | "off" | "0" | "none" => Some(Mode::Off),
            "summary" => Some(Mode::Summary),
            "events" => Some(Mode::Events),
            _ => None,
        }
    }

    /// Reads the mode from [`TELEMETRY_ENV`]; unset means [`Mode::Off`],
    /// unparseable values warn to stderr and fall back to off.
    pub fn from_env() -> Mode {
        match std::env::var(TELEMETRY_ENV) {
            Err(_) => Mode::Off,
            Ok(raw) => Mode::parse(&raw).unwrap_or_else(|| {
                eprintln!(
                    "warning: ignoring {TELEMETRY_ENV}={raw:?} \
                     (want off|summary|events)"
                );
                Mode::Off
            }),
        }
    }

    /// The canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Summary => "summary",
            Mode::Events => "events",
        }
    }
}

/// The single branch every instrumentation site takes while telemetry is
/// off. Kept separate from the collector lock so the disabled fast path
/// never touches an `RwLock`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Current mode, encoded as `u8` (0 off / 1 summary / 2 events).
static MODE: AtomicU8 = AtomicU8::new(0);

/// The installed collector. An `RwLock` (not a `OnceLock`) so tests and
/// the overhead benchmark can install, exercise, and uninstall collectors
/// within one process.
static COLLECTOR: RwLock<Option<Arc<dyn Collector>>> = RwLock::new(None);

/// The default in-memory recorder, kept typed so the harness can
/// snapshot it at sweep end ([`recorder`]).
static RECORDER: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);

/// True when a collector is installed. `#[inline]` + relaxed load: this
/// is the whole cost of a disabled instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The currently installed mode ([`Mode::Off`] when nothing is
/// installed).
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        1 => Mode::Summary,
        2 => Mode::Events,
        _ => Mode::Off,
    }
}

/// Installs `collector` process-wide under `mode`. Replaces any previous
/// collector. `Mode::Off` is equivalent to [`uninstall`].
pub fn install(mode: Mode, collector: Arc<dyn Collector>) {
    if mode == Mode::Off {
        uninstall();
        return;
    }
    *COLLECTOR
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(collector);
    MODE.store(
        match mode {
            Mode::Off => 0,
            Mode::Summary => 1,
            Mode::Events => 2,
        },
        Ordering::Relaxed,
    );
    ENABLED.store(true, Ordering::Relaxed);
}

/// Installs a fresh in-memory [`Recorder`] under `mode` and returns it.
/// The harness snapshots it at sweep end; [`recorder`] retrieves it from
/// anywhere in the process.
pub fn install_recorder(mode: Mode) -> Arc<Recorder> {
    let recorder = Arc::new(Recorder::new());
    *RECORDER
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::clone(&recorder));
    install(mode, Arc::clone(&recorder) as Arc<dyn Collector>);
    recorder
}

/// Removes the installed collector; every instrumentation site returns to
/// its single-load disabled cost.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Relaxed);
    MODE.store(0, Ordering::Relaxed);
    *COLLECTOR
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    *RECORDER
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// The default recorder installed by [`install_recorder`] /
/// [`init_from_env`], if any.
pub fn recorder() -> Option<Arc<Recorder>> {
    RECORDER
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Installs a recorder according to [`TELEMETRY_ENV`] and returns the
/// selected mode. Idempotent: if a collector is already installed the
/// current mode is returned unchanged, so several experiments in one
/// binary share one recorder (and one event stream).
pub fn init_from_env() -> Mode {
    if enabled() {
        return mode();
    }
    let requested = Mode::from_env();
    if requested != Mode::Off {
        install_recorder(requested);
    }
    requested
}

/// Records one event. `build` runs only when a collector is installed, so
/// argument formatting and clock reads cost nothing while telemetry is
/// off.
#[inline]
pub fn emit(build: impl FnOnce() -> Event) {
    if !enabled() {
        return;
    }
    let collector = COLLECTOR
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    if let Some(collector) = collector {
        collector.record(build());
    }
}

/// Microseconds since the process-wide telemetry epoch (the first call).
/// All event timestamps share this clock, which is what lets Perfetto lay
/// spans from every thread on one timeline.
pub fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_micros() as u64
}

/// A small dense id for the calling thread (the main thread observes the
/// id of whoever called first; ids are assigned in first-call order).
/// Used as the `tid` lane in trace exports.
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// The cache-counter sampling interval for the current mode: `0` (off)
/// unless the mode is [`Mode::Events`], in which case [`SIM_SAMPLE_ENV`]
/// applies (default [`DEFAULT_SAMPLE_INTERVAL`]; `0` disables).
pub fn sample_interval() -> u64 {
    if mode() != Mode::Events {
        return 0;
    }
    match std::env::var(SIM_SAMPLE_ENV) {
        Err(_) => DEFAULT_SAMPLE_INTERVAL,
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "warning: ignoring {SIM_SAMPLE_ENV}={raw:?} \
                     (want an access count; 0 disables sampling)"
                );
                DEFAULT_SAMPLE_INTERVAL
            }
        },
    }
}

/// The Chrome trace output path for `events` mode: [`TRACE_OUT_ENV`] when
/// set, otherwise `results/trace.json`.
pub fn trace_out_path() -> std::path::PathBuf {
    match std::env::var_os(TRACE_OUT_ENV) {
        Some(path) if !path.is_empty() => std::path::PathBuf::from(path),
        _ => std::path::PathBuf::from("results").join("trace.json"),
    }
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// Tests that install/uninstall the global collector serialize on
    /// this lock so they can run in one test binary without racing.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(Mode::parse("off"), Some(Mode::Off));
        assert_eq!(Mode::parse("SUMMARY"), Some(Mode::Summary));
        assert_eq!(Mode::parse(" events "), Some(Mode::Events));
        assert_eq!(Mode::parse("verbose"), None);
        assert_eq!(Mode::default(), Mode::Off);
        for m in [Mode::Off, Mode::Summary, Mode::Events] {
            assert_eq!(Mode::parse(m.name()), Some(m));
        }
    }

    #[test]
    fn disabled_emit_never_builds_the_event() {
        let _guard = test_lock::hold();
        uninstall();
        emit(|| panic!("event built while disabled"));
    }

    #[test]
    fn install_emit_uninstall_round_trip() {
        let _guard = test_lock::hold();
        let recorder = install_recorder(Mode::Summary);
        assert!(enabled());
        assert_eq!(mode(), Mode::Summary);
        assert_eq!(sample_interval(), 0, "sampling is events-mode only");
        emit(|| Event::instant("cell", "retry", vec![("index", Value::U64(3))]));
        assert_eq!(recorder.snapshot().len(), 1);
        let global = super::recorder().expect("recorder installed");
        assert!(Arc::ptr_eq(&recorder, &global));
        uninstall();
        assert!(!enabled());
        assert_eq!(mode(), Mode::Off);
        assert!(super::recorder().is_none());
        emit(|| panic!("still recording after uninstall"));
        assert_eq!(recorder.snapshot().len(), 1, "old recorder untouched");
    }

    #[test]
    fn clock_is_monotonic_and_thread_ids_are_stable() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
        assert_eq!(thread_id(), thread_id());
        let other = std::thread::spawn(thread_id).join().expect("joins");
        assert_ne!(other, thread_id());
    }

    #[test]
    fn off_mode_install_is_uninstall() {
        let _guard = test_lock::hold();
        let recorder = Arc::new(Recorder::new());
        install(Mode::Off, recorder as Arc<dyn Collector>);
        assert!(!enabled());
    }
}
