//! The collector trait and the default in-memory recorder.

use std::sync::Mutex;

use crate::event::Event;

/// Receives every emitted [`Event`]. Implementations must be cheap and
/// must never panic — collectors run inside worker threads of the
/// experiment pool, inside the same `catch_unwind` scope as the science.
///
/// The no-op default is simply *no collector installed*: the global
/// dispatch in [`crate::emit`] checks [`crate::enabled`] first, so the
/// uninstalled state needs no trait object at all (and costs one relaxed
/// atomic load).
pub trait Collector: Send + Sync {
    /// Records one event.
    fn record(&self, event: Event);
}

/// A collector that drops everything — useful as an explicit stand-in
/// where an `Arc<dyn Collector>` is required but output is unwanted.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopCollector;

impl Collector for NoopCollector {
    fn record(&self, _event: Event) {}
}

/// The default collector: an append-only in-memory event buffer.
///
/// One mutex push per event is deliberate — events are emitted at cell /
/// chunk / decision granularity (tens to thousands per sweep), never per
/// simulated access, so contention is negligible and the buffer keeps
/// completion-order semantics simple.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Number of events recorded so far. Used as a watermark: a sweep
    /// notes `len()` at start and summarizes `snapshot()[watermark..]`.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of every event recorded so far, in emission order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

impl Collector for Recorder {
    fn record(&self, event: Event) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Value};

    #[test]
    fn recorder_accumulates_in_order() {
        let r = Recorder::new();
        assert!(r.is_empty());
        r.record(Event::instant("cell", "a", vec![]));
        r.record(Event::instant("cell", "b", vec![("n", Value::U64(1))]));
        let events = r.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].name, "b");
        r.clear();
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn noop_collector_drops_events() {
        NoopCollector.record(Event::instant("cell", "ignored", vec![]));
    }

    #[test]
    fn recorder_is_thread_safe() {
        let r = std::sync::Arc::new(Recorder::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        r.record(Event::instant(
                            "cell",
                            format!("t{t}"),
                            vec![("i", Value::U64(i))],
                        ));
                    }
                });
            }
        });
        assert_eq!(r.len(), 400);
    }
}
