//! A small log2-bucketed histogram for duration and count distributions.

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)` (bucket 0 counts zeros
/// and ones). Sixty-five buckets cover the whole `u64` range, so the type
/// is allocation-free after construction and merging is element-wise —
/// exactly what per-thread aggregation needs.
///
/// # Example
///
/// ```
/// use pad_telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 200] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(50.0) <= 100);
/// assert!(h.percentile(100.0) >= 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(value: u64) -> usize {
        (63 - value.max(1).leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// An upper bound on the `p`-th percentile (the top of the bucket the
    /// percentile falls in; the recorded maximum caps the last bucket).
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let top = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return top.min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn percentiles_bound_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 990, "p99 = {p99}");
        assert_eq!(h.percentile(100.0), 1000);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
    }
}
