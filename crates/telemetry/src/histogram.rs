//! A small log2-bucketed histogram for duration and count distributions.

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)` (bucket 0 counts zeros
/// and ones). Sixty-five buckets cover the whole `u64` range, so the type
/// is allocation-free after construction and merging is element-wise —
/// exactly what per-thread aggregation needs.
///
/// # Example
///
/// ```
/// use pad_telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 200] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(50.0) <= 100);
/// assert!(h.percentile(100.0) >= 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Number of buckets: one per power of two over the `u64` range,
    /// plus the shared zeros-and-ones bucket.
    pub const BUCKETS: usize = 65;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Reconstructs a histogram from raw bucket counts (the live
    /// metrics layer folds its atomic shards through this to reuse
    /// [`Histogram::percentile`]). `max` caps the last occupied
    /// bucket's upper bound, exactly as if the samples had been
    /// recorded one by one.
    pub fn from_buckets(buckets: [u64; Self::BUCKETS], max: u64) -> Self {
        Histogram {
            buckets,
            count: buckets.iter().sum(),
            max,
        }
    }

    /// The bucket `value` falls in (`[2^(i-1), 2^i)`; bucket 0 holds
    /// zeros and ones).
    pub fn bucket_index(value: u64) -> usize {
        (63 - value.max(1).leading_zeros()) as usize
    }

    fn bucket_of(value: u64) -> usize {
        Self::bucket_index(value)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; Self::BUCKETS] {
        &self.buckets
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// An upper bound on the `p`-th percentile (the top of the bucket the
    /// percentile falls in; the recorded maximum caps the last bucket).
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let top = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return top.min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn percentiles_bound_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 990, "p99 = {p99}");
        assert_eq!(h.percentile(100.0), 1000);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        let mut h = Histogram::new();
        h.record(37);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 37, "p{p}");
        }
    }

    #[test]
    fn percentile_extremes_clamp() {
        let mut h = Histogram::new();
        for v in [1u64, 8, 64, 512] {
            h.record(v);
        }
        // p=0 clamps to the first sample's bucket; p=100 is the max.
        assert!(h.percentile(0.0) >= 1);
        assert!(h.percentile(-5.0) >= 1, "below-range p clamps to 0");
        assert_eq!(h.percentile(100.0), 512);
        assert_eq!(h.percentile(250.0), 512, "above-range p clamps to 100");
    }

    #[test]
    fn merge_then_percentile_matches_single_histogram() {
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for v in 1..=1000u64 {
            whole.record(v);
            if v % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(left.percentile(p), whole.percentile(p), "p{p}");
        }
    }

    #[test]
    fn from_buckets_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 100, 70_000] {
            h.record(v);
        }
        let rebuilt = Histogram::from_buckets(*h.buckets(), h.max());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.count(), 5);
        assert_eq!(rebuilt.percentile(100.0), 70_000);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
    }
}
