//! Incremental construction of [`Program`]s.

use crate::array::{ArrayBuilder, ArrayId};
use crate::error::IrError;
use crate::loops::Stmt;
use crate::program::Program;

/// Builder for [`Program`]; see [`Program::builder`].
///
/// Arrays are declared first (each declaration returns the [`ArrayId`] used
/// to build references), then statements are pushed in program order, and
/// [`ProgramBuilder::build`] validates the result.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    arrays: Vec<ArrayBuilder>,
    body: Vec<Stmt>,
    source_lines: Option<u32>,
}

impl ProgramBuilder {
    pub(crate) fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            arrays: Vec::new(),
            body: Vec::new(),
            source_lines: None,
        }
    }

    /// Declares an array and returns its id.
    pub fn add_array(&mut self, array: ArrayBuilder) -> ArrayId {
        let id = ArrayId(self.arrays.len());
        self.arrays.push(array);
        id
    }

    /// Appends a top-level statement.
    pub fn push(&mut self, stmt: Stmt) -> &mut Self {
        self.body.push(stmt);
        self
    }

    /// Records the original benchmark's source-line count (Table 2
    /// metadata).
    pub fn source_lines(&mut self, lines: u32) -> &mut Self {
        self.source_lines = Some(lines);
        self
    }

    /// Validates and produces the program.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] if any array shape is malformed, a reference
    /// has the wrong number of subscripts or points at an undeclared array,
    /// or a subscript/bound uses an index variable not bound by an
    /// enclosing loop.
    pub fn build(self) -> Result<Program, IrError> {
        let arrays = self
            .arrays
            .into_iter()
            .map(ArrayBuilder::finish)
            .collect::<Result<Vec<_>, _>>()?;
        Program::from_parts(self.name, arrays, self.body, self.source_lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::Loop;
    use crate::reference::Subscript;

    #[test]
    fn builds_a_program() {
        let mut b = Program::builder("t");
        let a = b.add_array(ArrayBuilder::new("A", [10]));
        b.source_lines(42);
        b.push(Stmt::loop_(
            Loop::new("i", 1, 10),
            vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
        ));
        let p = b.build().expect("valid");
        assert_eq!(p.name(), "t");
        assert_eq!(p.source_lines(), Some(42));
        assert_eq!(p.arrays().len(), 1);
    }

    #[test]
    fn empty_program_is_fine() {
        let p = Program::builder("empty").build().expect("valid");
        assert!(p.all_refs().is_empty());
        assert!(p.ref_groups().is_empty());
    }
}
