//! Loops and statements.

use crate::affine::{AffineExpr, IndexVar};
use crate::error::IrError;
use crate::reference::ArrayRef;

/// A counted loop `do var = lower, upper, step`.
///
/// Bounds are affine in outer loop variables, which expresses the
/// triangular iteration spaces of linear-algebra kernels
/// (`do i = k+1, n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    var: IndexVar,
    lower: AffineExpr,
    upper: AffineExpr,
    step: i64,
}

impl Loop {
    /// A unit-step loop from `lower` to `upper` inclusive.
    pub fn new(
        var: impl Into<IndexVar>,
        lower: impl Into<AffineExpr>,
        upper: impl Into<AffineExpr>,
    ) -> Self {
        Loop::with_step(var, lower, upper, 1)
    }

    /// A loop with an explicit (nonzero) step.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`. Use [`Loop::try_with_step`] when the step
    /// comes from user input.
    pub fn with_step(
        var: impl Into<IndexVar>,
        lower: impl Into<AffineExpr>,
        upper: impl Into<AffineExpr>,
        step: i64,
    ) -> Self {
        match Loop::try_with_step(var, lower, upper, step) {
            Ok(l) => l,
            Err(e) => panic!("loop step must be nonzero: {e}"),
        }
    }

    /// Fallible form of [`Loop::with_step`]: rejects a zero step as
    /// [`IrError::ZeroStep`] instead of panicking, so parsers and other
    /// user-input paths report it as a clean error.
    pub fn try_with_step(
        var: impl Into<IndexVar>,
        lower: impl Into<AffineExpr>,
        upper: impl Into<AffineExpr>,
        step: i64,
    ) -> Result<Self, IrError> {
        let var = var.into();
        if step == 0 {
            return Err(IrError::ZeroStep {
                var: var.name().to_string(),
            });
        }
        Ok(Loop {
            var,
            lower: lower.into(),
            upper: upper.into(),
            step,
        })
    }

    /// The loop index variable.
    pub fn var(&self) -> &IndexVar {
        &self.var
    }

    /// The (inclusive) lower bound.
    pub fn lower(&self) -> &AffineExpr {
        &self.lower
    }

    /// The (inclusive) upper bound.
    pub fn upper(&self) -> &AffineExpr {
        &self.upper
    }

    /// The step (never zero).
    pub fn step(&self) -> i64 {
        self.step
    }
}

/// A statement: either a straight-line group of array references (executed
/// in order once per enclosing iteration) or a nested loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// References performed by one statement, in program order.
    Refs(Vec<ArrayRef>),
    /// A loop with a body of statements.
    Loop {
        /// Loop header.
        header: Loop,
        /// Statements executed each iteration, in order.
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// A straight-line statement touching `refs` in order.
    pub fn refs(refs: Vec<ArrayRef>) -> Self {
        Stmt::Refs(refs)
    }

    /// A single loop with the given body.
    pub fn loop_(header: Loop, body: Vec<Stmt>) -> Self {
        Stmt::Loop { header, body }
    }

    /// Convenience: builds a perfectly nested loop around `body`, with the
    /// first header outermost.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty. Use [`Stmt::try_loop_nest`] when the
    /// headers come from user input.
    pub fn loop_nest(headers: impl IntoIterator<Item = Loop>, body: Vec<Stmt>) -> Self {
        match Stmt::try_loop_nest(headers, body) {
            Ok(stmt) => stmt,
            Err(e) => panic!("loop_nest requires at least one loop header: {e}"),
        }
    }

    /// Fallible form of [`Stmt::loop_nest`]: an empty header list is
    /// [`IrError::EmptyLoopNest`] instead of a panic.
    pub fn try_loop_nest(
        headers: impl IntoIterator<Item = Loop>,
        body: Vec<Stmt>,
    ) -> Result<Self, IrError> {
        let mut headers: Vec<Loop> = headers.into_iter().collect();
        let Some(innermost) = headers.pop() else {
            return Err(IrError::EmptyLoopNest);
        };
        let mut stmt = Stmt::Loop {
            header: innermost,
            body,
        };
        while let Some(header) = headers.pop() {
            stmt = Stmt::Loop {
                header,
                body: vec![stmt],
            };
        }
        Ok(stmt)
    }

    /// Visits every [`ArrayRef`] in this statement tree, in program order.
    pub fn visit_refs<'a>(&'a self, f: &mut impl FnMut(&'a ArrayRef)) {
        match self {
            Stmt::Refs(refs) => refs.iter().for_each(&mut *f),
            Stmt::Loop { body, .. } => body.iter().for_each(|s| s.visit_refs(f)),
        }
    }

    /// Visits every [`Loop`] header in this statement tree (pre-order).
    pub fn visit_loops<'a>(&'a self, f: &mut impl FnMut(&'a Loop)) {
        if let Stmt::Loop { header, body } = self {
            f(header);
            body.iter().for_each(|s| s.visit_loops(f));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayId;
    use crate::reference::Subscript;

    #[test]
    fn loop_nest_builds_inside_out() {
        let nest = Stmt::loop_nest(
            [Loop::new("i", 1, 10), Loop::new("j", 1, 20)],
            vec![Stmt::refs(vec![ArrayId(0).at([Subscript::var("j")])])],
        );
        let Stmt::Loop { header, body } = &nest else {
            panic!("expected loop");
        };
        assert_eq!(header.var().name(), "i");
        let Stmt::Loop { header: inner, .. } = &body[0] else {
            panic!("expected inner loop");
        };
        assert_eq!(inner.var().name(), "j");
    }

    #[test]
    #[should_panic(expected = "at least one loop header")]
    fn empty_nest_panics() {
        let _ = Stmt::loop_nest([], vec![]);
    }

    #[test]
    #[should_panic(expected = "step must be nonzero")]
    fn zero_step_panics() {
        let _ = Loop::with_step("i", 1, 10, 0);
    }

    #[test]
    fn fallible_constructors_return_errors() {
        assert_eq!(
            Loop::try_with_step("i", 1, 10, 0),
            Err(IrError::ZeroStep { var: "i".into() })
        );
        assert!(Loop::try_with_step("i", 1, 10, -2).is_ok());
        assert_eq!(Stmt::try_loop_nest([], vec![]), Err(IrError::EmptyLoopNest));
        assert!(Stmt::try_loop_nest([Loop::new("i", 1, 4)], vec![]).is_ok());
    }

    #[test]
    fn visit_refs_in_order() {
        let r1 = ArrayId(0).at([Subscript::var("i")]);
        let r2 = ArrayId(1).at([Subscript::var("i")]);
        let nest = Stmt::loop_nest(
            [Loop::new("i", 1, 4)],
            vec![Stmt::refs(vec![r1.clone()]), Stmt::refs(vec![r2.clone()])],
        );
        let mut seen = Vec::new();
        nest.visit_refs(&mut |r| seen.push(r.array().index()));
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn visit_loops_preorder() {
        let nest = Stmt::loop_nest(
            [
                Loop::new("a", 1, 2),
                Loop::new("b", 1, 2),
                Loop::new("c", 1, 2),
            ],
            vec![],
        );
        let mut names = Vec::new();
        nest.visit_loops(&mut |l| names.push(l.var().name().to_string()));
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn triangular_bounds() {
        let l = Loop::new("i", Subscript::var_offset("k", 1), Subscript::var("n"));
        assert_eq!(l.lower().to_string(), "k+1");
        assert_eq!(l.step(), 1);
    }
}
