//! Mechanical loop transformations.
//!
//! The paper contrasts its data-layout transformations with
//! *computation-reordering* transformations (permutation, tiling, fusion
//! — Section 5). This module supplies the two mechanisms those are built
//! from, operating on validated programs:
//!
//! * [`strip_mine`] — split `do v = lo, hi` into a tile loop and an
//!   element loop;
//! * [`interchange`] — swap two perfectly nested loops.
//!
//! Both are *mechanisms only*: like most compiler infrastructure they
//! perform the rewrite and re-validate structure, while legality with
//! respect to data dependences is the caller's obligation (the IR carries
//! no dependence information). `pad_kernels::mult::spec_tiled` shows the
//! transformations' effect built by hand; these functions produce the
//! same shapes programmatically.

use std::error::Error;
use std::fmt;

use crate::affine::AffineExpr;
use crate::loops::{Loop, Stmt};
use crate::program::Program;

/// Errors from the loop transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransformError {
    /// No loop with the requested index variable exists.
    NoSuchLoop {
        /// The variable that was searched for.
        var: String,
    },
    /// Strip-mining needs constant bounds and a trip count divisible by
    /// the tile size (affine bounds cannot express the `min` a partial
    /// tile would need).
    NotTileable {
        /// The loop variable.
        var: String,
        /// Why the loop cannot be strip-mined.
        reason: String,
    },
    /// Interchange requires the outer loop's body to be exactly the
    /// inner loop (perfect nesting) and neither loop's bounds to use the
    /// other's variable.
    NotPerfectlyNested {
        /// The outer variable.
        outer: String,
        /// The inner variable.
        inner: String,
    },
    /// The rewritten program failed re-validation (should not happen;
    /// indicates a bug in the rewrite).
    Rebuild(crate::IrError),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NoSuchLoop { var } => write!(f, "no loop binds {var}"),
            TransformError::NotTileable { var, reason } => {
                write!(f, "loop {var} cannot be strip-mined: {reason}")
            }
            TransformError::NotPerfectlyNested { outer, inner } => {
                write!(f, "loops {outer} and {inner} are not perfectly nested")
            }
            TransformError::Rebuild(e) => write!(f, "rewritten program invalid: {e}"),
        }
    }
}

impl Error for TransformError {}

/// Strip-mines every loop binding `var` by `tile`: `do v = lo, hi`
/// becomes `do vt = lo, hi, tile { do v = vt, vt+tile-1 }`, with the tile
/// loop's variable named `<var>_t`.
///
/// Iteration order is unchanged, so strip-mining alone is always legal;
/// it becomes tiling when combined with [`interchange`].
///
/// # Errors
///
/// Fails if no loop binds `var`, if any such loop has non-constant bounds
/// or non-unit step, or if `tile` does not divide its trip count.
pub fn strip_mine(program: &Program, var: &str, tile: i64) -> Result<Program, TransformError> {
    if tile < 1 {
        return Err(TransformError::NotTileable {
            var: var.into(),
            reason: "tile must be positive".into(),
        });
    }
    let mut found = false;
    let body = program
        .body()
        .iter()
        .map(|s| rewrite_strip(s, var, tile, &mut found))
        .collect::<Result<Vec<_>, _>>()?;
    if !found {
        return Err(TransformError::NoSuchLoop { var: var.into() });
    }
    rebuild(program, body)
}

fn rewrite_strip(
    stmt: &Stmt,
    var: &str,
    tile: i64,
    found: &mut bool,
) -> Result<Stmt, TransformError> {
    let Stmt::Loop { header, body } = stmt else {
        return Ok(stmt.clone());
    };
    let body = body
        .iter()
        .map(|s| rewrite_strip(s, var, tile, found))
        .collect::<Result<Vec<_>, _>>()?;
    if header.var().name() != var {
        return Ok(Stmt::Loop {
            header: header.clone(),
            body,
        });
    }
    *found = true;
    let err = |reason: &str| TransformError::NotTileable {
        var: var.into(),
        reason: reason.into(),
    };
    if header.step() != 1 {
        return Err(err("step is not 1"));
    }
    if !header.lower().is_constant() || !header.upper().is_constant() {
        return Err(err("bounds are not constant"));
    }
    let lo = header.lower().offset();
    let hi = header.upper().offset();
    let trip = hi - lo + 1;
    if trip <= 0 {
        return Err(err("empty iteration space"));
    }
    if trip % tile != 0 {
        return Err(err("tile does not divide the trip count"));
    }
    let tile_var = format!("{var}_t");
    let outer = Loop::with_step(tile_var.as_str(), lo, hi, tile);
    let inner = Loop::new(
        var,
        AffineExpr::var(tile_var.as_str()),
        AffineExpr::var_offset(tile_var.as_str(), tile - 1),
    );
    Ok(Stmt::Loop {
        header: outer,
        body: vec![Stmt::Loop {
            header: inner,
            body,
        }],
    })
}

/// Interchanges the perfectly nested pair where a loop binding `outer`
/// contains, as its only statement, a loop binding `inner`.
///
/// Legality with respect to data dependences is the caller's obligation.
///
/// # Errors
///
/// Fails if the pair is not found, not perfectly nested, or the bounds of
/// either loop reference the other's variable (a triangular nest cannot
/// be interchanged without restructuring).
pub fn interchange(program: &Program, outer: &str, inner: &str) -> Result<Program, TransformError> {
    let mut found = false;
    let body = program
        .body()
        .iter()
        .map(|s| rewrite_interchange(s, outer, inner, &mut found))
        .collect::<Result<Vec<_>, _>>()?;
    if !found {
        return Err(TransformError::NoSuchLoop { var: outer.into() });
    }
    rebuild(program, body)
}

fn rewrite_interchange(
    stmt: &Stmt,
    outer: &str,
    inner: &str,
    found: &mut bool,
) -> Result<Stmt, TransformError> {
    let Stmt::Loop { header, body } = stmt else {
        return Ok(stmt.clone());
    };
    if header.var().name() == outer {
        let not_nested = || TransformError::NotPerfectlyNested {
            outer: outer.into(),
            inner: inner.into(),
        };
        let [Stmt::Loop {
            header: inner_header,
            body: inner_body,
        }] = body.as_slice()
        else {
            return Err(not_nested());
        };
        if inner_header.var().name() != inner {
            return Err(not_nested());
        }
        let uses = |e: &AffineExpr, v: &str| e.vars().any(|x| x.name() == v);
        if uses(inner_header.lower(), outer)
            || uses(inner_header.upper(), outer)
            || uses(header.lower(), inner)
            || uses(header.upper(), inner)
        {
            return Err(not_nested());
        }
        *found = true;
        return Ok(Stmt::Loop {
            header: inner_header.clone(),
            body: vec![Stmt::Loop {
                header: header.clone(),
                body: inner_body.clone(),
            }],
        });
    }
    let body = body
        .iter()
        .map(|s| rewrite_interchange(s, outer, inner, found))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Stmt::Loop {
        header: header.clone(),
        body,
    })
}

fn rebuild(program: &Program, body: Vec<Stmt>) -> Result<Program, TransformError> {
    let mut b = Program::builder(program.name());
    if let Some(lines) = program.source_lines() {
        b.source_lines(lines);
    }
    for spec in program.arrays() {
        let mut array = crate::ArrayBuilder::new(spec.name(), []).dims(spec.dims().to_vec());
        array = array.elem_size(spec.elem_size());
        let s = spec.safety();
        array = array
            .storage_associated(s.storage_associated)
            .passed_as_parameter(s.passed_as_parameter)
            .fixed_common_block(s.fixed_common_block);
        b.add_array(array);
    }
    for stmt in body {
        b.push(stmt);
    }
    b.build().map_err(TransformError::Rebuild)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayBuilder, Subscript};

    fn copy2d(n: i64) -> Program {
        let mut b = Program::builder("copy");
        let a = b.add_array(ArrayBuilder::new("A", [n, n]));
        let c = b.add_array(ArrayBuilder::new("C", [n, n]));
        b.push(Stmt::loop_nest(
            [Loop::new("i", 1, n), Loop::new("j", 1, n)],
            vec![Stmt::refs(vec![
                a.at([Subscript::var("j"), Subscript::var("i")]),
                c.at([Subscript::var("j"), Subscript::var("i")]).write(),
            ])],
        ));
        b.build().expect("valid")
    }

    #[test]
    fn strip_mine_splits_the_loop() {
        let p = copy2d(16);
        let tiled = strip_mine(&p, "j", 4).expect("tileable");
        let mut names = Vec::new();
        tiled.body()[0].visit_loops(&mut |l| names.push(l.var().name().to_string()));
        assert_eq!(names, vec!["i", "j_t", "j"]);
    }

    #[test]
    fn strip_mine_preserves_iteration_count() {
        let p = copy2d(16);
        let tiled = strip_mine(&p, "i", 8).expect("tileable");
        let count = |program: &Program| {
            let mut n = 0u64;
            for s in program.body() {
                s.visit_refs(&mut |_| n += 1);
            }
            n
        };
        // Static ref count unchanged; dynamic equivalence is covered by
        // the pad-trace integration test.
        assert_eq!(count(&p), count(&tiled));
        assert_eq!(tiled.arrays().len(), p.arrays().len());
    }

    #[test]
    fn strip_mine_rejects_bad_tiles() {
        let p = copy2d(16);
        assert!(matches!(
            strip_mine(&p, "i", 5),
            Err(TransformError::NotTileable { .. })
        ));
        assert!(matches!(
            strip_mine(&p, "q", 4),
            Err(TransformError::NoSuchLoop { .. })
        ));
        assert!(matches!(
            strip_mine(&p, "i", 0),
            Err(TransformError::NotTileable { .. })
        ));
    }

    #[test]
    fn strip_mine_rejects_triangular_bounds() {
        let mut b = Program::builder("tri");
        let a = b.add_array(ArrayBuilder::new("A", [32]));
        b.push(Stmt::loop_(
            Loop::new("k", 1, 31),
            vec![Stmt::loop_(
                Loop::new("i", Subscript::var_offset("k", 1), 32),
                vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
            )],
        ));
        let p = b.build().expect("valid");
        assert!(matches!(
            strip_mine(&p, "i", 4),
            Err(TransformError::NotTileable { .. })
        ));
    }

    #[test]
    fn interchange_swaps_perfect_nests() {
        let p = copy2d(8);
        let swapped = interchange(&p, "i", "j").expect("perfect nest");
        let mut names = Vec::new();
        swapped.body()[0].visit_loops(&mut |l| names.push(l.var().name().to_string()));
        assert_eq!(names, vec!["j", "i"]);
    }

    #[test]
    fn interchange_rejects_imperfect_and_triangular_nests() {
        // Imperfect: statement between the loops.
        let mut b = Program::builder("imperfect");
        let a = b.add_array(ArrayBuilder::new("A", [8, 8]));
        b.push(Stmt::loop_(
            Loop::new("i", 1, 8),
            vec![
                Stmt::refs(vec![a.at([Subscript::constant(1), Subscript::var("i")])]),
                Stmt::loop_(
                    Loop::new("j", 1, 8),
                    vec![Stmt::refs(vec![
                        a.at([Subscript::var("j"), Subscript::var("i")])
                    ])],
                ),
            ],
        ));
        let p = b.build().expect("valid");
        assert!(matches!(
            interchange(&p, "i", "j"),
            Err(TransformError::NotPerfectlyNested { .. })
        ));

        // Triangular: inner bound uses the outer variable.
        let mut b = Program::builder("tri");
        let a = b.add_array(ArrayBuilder::new("A", [32]));
        b.push(Stmt::loop_(
            Loop::new("k", 1, 31),
            vec![Stmt::loop_(
                Loop::new("i", Subscript::var_offset("k", 1), 32),
                vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
            )],
        ));
        let p = b.build().expect("valid");
        assert!(matches!(
            interchange(&p, "k", "i"),
            Err(TransformError::NotPerfectlyNested { .. })
        ));
    }

    #[test]
    fn tiling_composes_strip_mine_and_interchange() {
        // The classic recipe: strip-mine the inner loop, then interchange
        // the tile loop outward.
        let p = copy2d(16);
        let stripped = strip_mine(&p, "j", 4).expect("tileable");
        let tiled = interchange(&stripped, "i", "j_t").expect("perfect");
        let mut names = Vec::new();
        tiled.body()[0].visit_loops(&mut |l| names.push(l.var().name().to_string()));
        assert_eq!(names, vec!["j_t", "i", "j"]);
    }
}
