//! Array references with affine subscripts.

use std::fmt;

use crate::affine::AffineExpr;
use crate::array::ArrayId;

/// A subscript expression in one dimension of an array reference.
///
/// Subscripts are affine in the enclosing loop index variables. The paper's
/// conflict analysis only reasons about the *uniformly generated* form
/// `i + r` (see [`Subscript::as_uniform`]), but the IR allows general affine
/// subscripts so kernels like triangular solvers can be expressed and
/// traced faithfully.
pub type Subscript = AffineExpr;

impl Subscript {
    /// If this subscript has the uniformly generated form `i + r` (a single
    /// index variable with coefficient 1) returns `(Some(i), r)`; if it is a
    /// constant `r`, returns `(None, r)` — the paper treats integer
    /// subscripts as `i_j = 0`. Otherwise returns `None`.
    pub fn as_uniform(&self) -> Option<(Option<&crate::IndexVar>, i64)> {
        if self.is_constant() {
            Some((None, self.offset()))
        } else {
            self.as_single_var().map(|(v, r)| (Some(v), r))
        }
    }
}

/// Whether a reference reads or writes memory.
///
/// The transformations assume a write-allocating, write-back cache, so any
/// two accesses may conflict whether read or write; the distinction matters
/// to the cache simulator's write-back statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// A single textual array reference, e.g. `A(j-1, i)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    array: ArrayId,
    subscripts: Vec<Subscript>,
    kind: AccessKind,
}

impl ArrayRef {
    /// Creates a reference to `array` with the given subscripts and access
    /// kind. Prefer [`ArrayId::at`] for fluent construction.
    pub fn new(
        array: ArrayId,
        subscripts: impl IntoIterator<Item = Subscript>,
        kind: AccessKind,
    ) -> Self {
        ArrayRef {
            array,
            subscripts: subscripts.into_iter().collect(),
            kind,
        }
    }

    /// The referenced array.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// The subscript expressions, first (column) dimension first.
    pub fn subscripts(&self) -> &[Subscript] {
        &self.subscripts
    }

    /// Read or write.
    pub fn kind(&self) -> AccessKind {
        self.kind
    }

    /// Returns this reference with a different access kind.
    #[must_use]
    pub fn with_kind(mut self, kind: AccessKind) -> Self {
        self.kind = kind;
        self
    }

    /// Shorthand for [`ArrayRef::with_kind`]`(AccessKind::Write)`.
    #[must_use]
    pub fn write(self) -> Self {
        self.with_kind(AccessKind::Write)
    }

    /// If every subscript is uniformly generated (`i + r` or constant),
    /// returns for each dimension the pair `(index variable, offset)`.
    ///
    /// Two references are *uniformly generated* with respect to each other
    /// when both are in this form, they refer to conforming arrays, and
    /// corresponding dimensions use the same index variable — the test
    /// performed by `pad-core`'s analysis.
    pub fn uniform_subscripts(&self) -> Option<Vec<(Option<&crate::IndexVar>, i64)>> {
        self.subscripts.iter().map(Subscript::as_uniform).collect()
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.array)?;
        for (i, s) in self.subscripts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")?;
        if self.kind == AccessKind::Write {
            write!(f, " [w]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexVar;

    #[test]
    fn uniform_subscript_forms() {
        let s = Subscript::var_offset("i", -1);
        let (var, off) = s.as_uniform().expect("uniform");
        assert_eq!(var.map(IndexVar::name), Some("i"));
        assert_eq!(off, -1);

        let c = Subscript::constant(4);
        assert_eq!(c.as_uniform(), Some((None, 4)));

        let non = Subscript::from_terms([(IndexVar::new("i"), 2)], 0);
        assert!(non.as_uniform().is_none());
    }

    #[test]
    fn reference_accessors() {
        let r = ArrayId(0)
            .at([Subscript::var("i"), Subscript::var("j")])
            .write();
        assert_eq!(r.kind(), AccessKind::Write);
        assert_eq!(r.subscripts().len(), 2);
        assert_eq!(r.array().index(), 0);
    }

    #[test]
    fn uniform_subscripts_all_or_nothing() {
        let ok = ArrayId(1).at([Subscript::var("i"), Subscript::constant(3)]);
        assert!(ok.uniform_subscripts().is_some());

        let bad = ArrayId(1).at([
            Subscript::var("i"),
            Subscript::from_terms([(IndexVar::new("i"), 1), (IndexVar::new("j"), 1)], 0),
        ]);
        assert!(bad.uniform_subscripts().is_none());
    }

    #[test]
    fn display() {
        let r = ArrayId(2).at([Subscript::var_offset("j", 1), Subscript::var("i")]);
        assert_eq!(r.to_string(), "array#2(j+1,i)");
    }
}
