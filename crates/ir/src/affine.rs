//! Affine expressions over loop index variables.

use std::collections::HashMap;
use std::fmt;

/// A loop index variable, identified by name.
///
/// Index variables are scoped by the loops that bind them; two loops in the
/// same program may reuse a name as long as their scopes do not overlap in a
/// way that confuses the reader (validation only requires that every
/// variable used in a subscript or bound is bound by an enclosing loop).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexVar(Box<str>);

impl IndexVar {
    /// Creates an index variable with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        IndexVar(name.into().into_boxed_str())
    }

    /// Returns the variable name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for IndexVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for IndexVar {
    fn from(name: &str) -> Self {
        IndexVar::new(name)
    }
}

impl From<String> for IndexVar {
    fn from(name: String) -> Self {
        IndexVar::new(name)
    }
}

/// An affine expression `c0 + c1*v1 + c2*v2 + ...` over index variables.
///
/// Used both for array subscripts and for loop bounds (which lets the IR
/// express triangular iteration spaces such as `do i = k+1, n`).
///
/// # Example
///
/// ```
/// use pad_ir::AffineExpr;
///
/// // k + 1
/// let e = AffineExpr::var("k").add_const(1);
/// assert_eq!(e.eval(&[("k".into(), 4)].into_iter().collect()), Some(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    terms: Vec<(IndexVar, i64)>,
    offset: i64,
}

impl AffineExpr {
    /// The constant expression `value`.
    pub fn constant(value: i64) -> Self {
        AffineExpr {
            terms: Vec::new(),
            offset: value,
        }
    }

    /// The expression `var` (coefficient 1, offset 0).
    pub fn var(var: impl Into<IndexVar>) -> Self {
        AffineExpr {
            terms: vec![(var.into(), 1)],
            offset: 0,
        }
    }

    /// The expression `var + offset`.
    pub fn var_offset(var: impl Into<IndexVar>, offset: i64) -> Self {
        AffineExpr {
            terms: vec![(var.into(), 1)],
            offset,
        }
    }

    /// Builds an expression from `(variable, coefficient)` terms plus a
    /// constant offset. Zero-coefficient terms are dropped; repeated
    /// variables are combined.
    pub fn from_terms(terms: impl IntoIterator<Item = (IndexVar, i64)>, offset: i64) -> Self {
        let mut combined: Vec<(IndexVar, i64)> = Vec::new();
        for (var, coeff) in terms {
            if coeff == 0 {
                continue;
            }
            match combined.iter_mut().find(|(v, _)| *v == var) {
                Some((_, c)) => *c += coeff,
                None => combined.push((var, coeff)),
            }
        }
        combined.retain(|&(_, c)| c != 0);
        combined.sort_by(|a, b| a.0.cmp(&b.0));
        AffineExpr {
            terms: combined,
            offset,
        }
    }

    /// Returns a copy of this expression with `delta` added to the constant
    /// offset.
    #[must_use]
    pub fn add_const(&self, delta: i64) -> Self {
        AffineExpr {
            terms: self.terms.clone(),
            offset: self.offset + delta,
        }
    }

    /// The constant part of the expression.
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// The `(variable, coefficient)` terms, sorted by variable name.
    pub fn terms(&self) -> &[(IndexVar, i64)] {
        &self.terms
    }

    /// Returns `true` if the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// If the expression is exactly `var + offset` (single variable,
    /// coefficient 1), returns `(var, offset)`.
    ///
    /// This is the *uniformly generated* subscript form of Gannon, Jalby &
    /// Gallivan that the paper's conflict analysis requires.
    pub fn as_single_var(&self) -> Option<(&IndexVar, i64)> {
        match self.terms.as_slice() {
            [(var, 1)] => Some((var, self.offset)),
            _ => None,
        }
    }

    /// Evaluates the expression in an environment binding variables to
    /// values. Returns `None` if any variable is unbound.
    pub fn eval(&self, env: &HashMap<IndexVar, i64>) -> Option<i64> {
        let mut acc = self.offset;
        for (var, coeff) in &self.terms {
            acc += coeff * env.get(var)?;
        }
        Some(acc)
    }

    /// Evaluates against a slice-backed environment (used by the trace
    /// generator, which keeps loop values in a small stack). `lookup` maps a
    /// variable to its current value.
    pub fn eval_with(&self, mut lookup: impl FnMut(&IndexVar) -> Option<i64>) -> Option<i64> {
        let mut acc = self.offset;
        for (var, coeff) in &self.terms {
            acc += coeff * lookup(var)?;
        }
        Some(acc)
    }

    /// The set of variables referenced by this expression.
    pub fn vars(&self) -> impl Iterator<Item = &IndexVar> {
        self.terms.iter().map(|(v, _)| v)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "{}", self.offset);
        }
        let mut first = true;
        for (var, coeff) in &self.terms {
            if first {
                match *coeff {
                    1 => write!(f, "{var}")?,
                    -1 => write!(f, "-{var}")?,
                    c => write!(f, "{c}*{var}")?,
                }
                first = false;
            } else {
                match *coeff {
                    1 => write!(f, "+{var}")?,
                    -1 => write!(f, "-{var}")?,
                    c if c > 0 => write!(f, "+{c}*{var}")?,
                    c => write!(f, "{c}*{var}")?,
                }
            }
        }
        match self.offset {
            0 => Ok(()),
            o if o > 0 => write!(f, "+{o}"),
            o => write!(f, "{o}"),
        }
    }
}

impl From<i64> for AffineExpr {
    fn from(value: i64) -> Self {
        AffineExpr::constant(value)
    }
}

impl From<&str> for AffineExpr {
    fn from(var: &str) -> Self {
        AffineExpr::var(var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> HashMap<IndexVar, i64> {
        pairs.iter().map(|&(n, v)| (IndexVar::new(n), v)).collect()
    }

    #[test]
    fn constant_eval() {
        assert_eq!(AffineExpr::constant(7).eval(&env(&[])), Some(7));
    }

    #[test]
    fn var_eval() {
        assert_eq!(AffineExpr::var("i").eval(&env(&[("i", 3)])), Some(3));
    }

    #[test]
    fn var_offset_eval() {
        assert_eq!(
            AffineExpr::var_offset("i", -2).eval(&env(&[("i", 3)])),
            Some(1)
        );
    }

    #[test]
    fn unbound_var_is_none() {
        assert_eq!(AffineExpr::var("i").eval(&env(&[])), None);
    }

    #[test]
    fn from_terms_combines_duplicates() {
        let e = AffineExpr::from_terms([(IndexVar::new("i"), 2), (IndexVar::new("i"), 3)], 1);
        assert_eq!(e.eval(&env(&[("i", 10)])), Some(51));
        assert_eq!(e.terms().len(), 1);
    }

    #[test]
    fn from_terms_drops_zero_coefficients() {
        let e = AffineExpr::from_terms([(IndexVar::new("i"), 1), (IndexVar::new("i"), -1)], 5);
        assert!(e.is_constant());
        assert_eq!(e.offset(), 5);
    }

    #[test]
    fn single_var_form() {
        let e = AffineExpr::var_offset("j", 4);
        let (var, off) = e.as_single_var().expect("single var form");
        assert_eq!(var.name(), "j");
        assert_eq!(off, 4);
        assert!(AffineExpr::constant(3).as_single_var().is_none());
        let two = AffineExpr::from_terms([(IndexVar::new("i"), 2)], 0);
        assert!(two.as_single_var().is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(AffineExpr::constant(3).to_string(), "3");
        assert_eq!(AffineExpr::var("i").to_string(), "i");
        assert_eq!(AffineExpr::var_offset("i", -1).to_string(), "i-1");
        assert_eq!(AffineExpr::var_offset("i", 2).to_string(), "i+2");
        let e = AffineExpr::from_terms([(IndexVar::new("i"), 1), (IndexVar::new("k"), -1)], 0);
        assert_eq!(e.to_string(), "i-k");
    }

    #[test]
    fn add_const_keeps_terms() {
        let e = AffineExpr::var("i").add_const(5);
        assert_eq!(e.eval(&env(&[("i", 1)])), Some(6));
    }
}
