//! Fortran-flavoured pretty-printing of programs.

use std::fmt;

use crate::loops::Stmt;
use crate::program::Program;
use crate::reference::AccessKind;

impl fmt::Display for Program {
    /// Renders the program in a Fortran-like sketch, useful for debugging
    /// kernel specifications:
    ///
    /// ```text
    /// program jacobi
    ///   real A(512,512), B(512,512)
    ///   do i = 2, 511
    ///     do j = 2, 511
    ///       A(j-1,i) A(j,i-1) A(j+1,i) A(j,i+1) B(j,i)=
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {}", self.name())?;
        write!(f, "  real ")?;
        for (i, a) in self.arrays().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        writeln!(f)?;
        for stmt in self.body() {
            fmt_stmt(self, stmt, 1, f)?;
        }
        Ok(())
    }
}

fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        write!(f, "  ")?;
    }
    Ok(())
}

fn fmt_stmt(
    program: &Program,
    stmt: &Stmt,
    depth: usize,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    match stmt {
        Stmt::Refs(refs) => {
            indent(f, depth)?;
            for (i, r) in refs.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                let name = program.array(r.array()).name();
                write!(f, "{name}(")?;
                for (k, s) in r.subscripts().iter().enumerate() {
                    if k > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")?;
                if r.kind() == AccessKind::Write {
                    write!(f, "=")?;
                }
            }
            writeln!(f)
        }
        Stmt::Loop { header, body } => {
            indent(f, depth)?;
            if header.step() == 1 {
                writeln!(
                    f,
                    "do {} = {}, {}",
                    header.var(),
                    header.lower(),
                    header.upper()
                )?;
            } else {
                writeln!(
                    f,
                    "do {} = {}, {}, {}",
                    header.var(),
                    header.lower(),
                    header.upper(),
                    header.step()
                )?;
            }
            for s in body {
                fmt_stmt(program, s, depth + 1, f)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::array::ArrayBuilder;
    use crate::loops::{Loop, Stmt};
    use crate::program::Program;
    use crate::reference::Subscript;

    #[test]
    fn renders_fortran_sketch() {
        let mut b = Program::builder("demo");
        let a = b.add_array(ArrayBuilder::new("A", [8, 8]));
        b.push(Stmt::loop_nest(
            [Loop::new("i", 2, 7), Loop::new("j", 2, 7)],
            vec![Stmt::refs(vec![
                a.at([Subscript::var_offset("j", -1), Subscript::var("i")]),
                a.at([Subscript::var("j"), Subscript::var("i")]).write(),
            ])],
        ));
        let text = b.build().expect("valid").to_string();
        assert!(text.contains("program demo"));
        assert!(text.contains("real A(8,8)"));
        assert!(text.contains("do i = 2, 7"));
        assert!(text.contains("A(j-1,i) A(j,i)="));
    }

    #[test]
    fn renders_nonunit_step() {
        let mut b = Program::builder("s");
        let a = b.add_array(ArrayBuilder::new("A", [16]));
        b.push(Stmt::loop_(
            Loop::with_step("i", 1, 16, 2),
            vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
        ));
        let text = b.build().expect("valid").to_string();
        assert!(text.contains("do i = 1, 16, 2"));
    }
}
