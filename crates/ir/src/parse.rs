//! A small textual frontend for loop-nest programs.
//!
//! The builder API is the primary interface, but a Fortran-flavoured text
//! form makes kernels easy to write, store, and diff — the role source
//! files played for the paper's SUIF-based implementation. The grammar:
//!
//! ```text
//! program jacobi
//! lines 52                      # optional Table-2 metadata
//! array A(512, 512)             # elem size defaults to 8 bytes
//! array B(512, 512) elem 4      # explicit element size
//! array P(100) param            # passed as parameter (not intra-paddable)
//! array Q(0:99)                 # explicit lower bound
//!
//! do i = 2, 511
//!   do j = 2, 511
//!     B(j, i) = A(j-1, i) + A(j, i-1) + A(j+1, i) + A(j, i+1)
//!   end
//! end
//! ```
//!
//! Statements are assignments. Every array reference on the right-hand
//! side becomes a read (in textual order); the left-hand side becomes a
//! write. A left-hand side without parentheses is a scalar and is ignored
//! (scalars live in registers, as the paper assumes). Loop bounds and
//! subscripts are affine expressions over the enclosing loop variables
//! (`k+1`, `2*j-1`, ...). Comments run from `#` or `!` to end of line.
//!
//! # Example
//!
//! ```
//! let program = pad_ir::parse(
//!     "program dot
//!      array A(1000)
//!      array B(1000)
//!      do i = 1, 1000
//!        s = s + A(i) * B(i)
//!      end",
//! )?;
//! assert_eq!(program.arrays().len(), 2);
//! assert_eq!(program.all_refs().len(), 2);
//! # Ok::<(), pad_ir::ParseError>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::affine::{AffineExpr, IndexVar};
use crate::array::{ArrayBuilder, ArrayId, Dim};
use crate::loops::{Loop, Stmt};
use crate::program::Program;
use crate::reference::{ArrayRef, Subscript};

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the problem was found.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<crate::IrError> for ParseError {
    fn from(e: crate::IrError) -> Self {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// Parses the textual program form described in the module-level docs.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the offending line for syntax
/// errors, and wraps [`crate::IrError`] for semantic problems (unbound
/// variables, arity mismatches) found during final validation.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    Parser::new(source).parse()
}

struct Parser<'s> {
    lines: Vec<(usize, &'s str)>,
    pos: usize,
    arrays: Vec<(String, ArrayId)>,
}

impl<'s> Parser<'s> {
    fn new(source: &'s str) -> Self {
        let lines = source
            .lines()
            .enumerate()
            .map(|(i, raw)| {
                let stripped = raw.split(['#', '!']).next().unwrap_or("").trim();
                (i + 1, stripped)
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser {
            lines,
            pos: 0,
            arrays: Vec::new(),
        }
    }

    fn err<T>(&self, line: usize, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line,
            message: message.into(),
        })
    }

    fn parse(mut self) -> Result<Program, ParseError> {
        // Header: program NAME.
        let Some(&(line, text)) = self.lines.first() else {
            return self.err(1, "empty program text");
        };
        let Some(name) = text.strip_prefix("program ") else {
            return self.err(line, "expected `program <name>` on the first line");
        };
        let mut builder = Program::builder(name.trim());
        self.pos = 1;

        // Declarations: lines/array, until the first do.
        while let Some(&(line, text)) = self.lines.get(self.pos) {
            if let Some(rest) = text.strip_prefix("lines ") {
                let n: u32 = rest.trim().parse().map_err(|_| ParseError {
                    line,
                    message: "bad line count".into(),
                })?;
                builder.source_lines(n);
                self.pos += 1;
            } else if let Some(rest) = text.strip_prefix("array ") {
                let (name, array) = parse_array_decl(line, rest)?;
                let id = builder.add_array(array);
                self.arrays.push((name, id));
                self.pos += 1;
            } else {
                break;
            }
        }

        // Body: loops and statements at top level.
        while self.pos < self.lines.len() {
            let stmt = self.parse_stmt()?;
            builder.push(stmt);
        }
        builder.build().map_err(Into::into)
    }

    fn lookup(&self, line: usize, name: &str) -> Result<ArrayId, ParseError> {
        self.arrays
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
            .ok_or_else(|| ParseError {
                line,
                message: format!("undeclared array {name}"),
            })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        // Callers only invoke this with `pos` in bounds; a typed error
        // (never a panic) keeps an internal slip from taking down a
        // request-handling thread that parses untrusted program text.
        let Some(&(line, text)) = self.lines.get(self.pos) else {
            return self.err(0, "internal: statement parser ran past the input");
        };
        if let Some(rest) = text.strip_prefix("do ") {
            self.pos += 1;
            let header = parse_do(line, rest)?;
            let mut body = Vec::new();
            loop {
                let Some(&(l, t)) = self.lines.get(self.pos) else {
                    return self.err(line, "unterminated `do` (missing `end`)");
                };
                if t == "end" || t == "enddo" || t == "end do" {
                    self.pos += 1;
                    break;
                }
                let _ = l;
                body.push(self.parse_stmt()?);
            }
            Ok(Stmt::Loop { header, body })
        } else if text == "end" || text == "enddo" || text == "end do" {
            self.err(line, "`end` without a matching `do`")
        } else {
            self.pos += 1;
            self.parse_assignment(line, text)
        }
    }

    fn parse_assignment(&self, line: usize, text: &str) -> Result<Stmt, ParseError> {
        let Some(eq) = top_level_eq(text) else {
            return self.err(line, "expected an assignment `lhs = rhs`");
        };
        let (lhs, rhs) = (text[..eq].trim(), text[eq + 1..].trim());
        let mut refs = Vec::new();
        for (name, subs) in extract_refs(line, rhs)? {
            let id = self.lookup(line, &name)?;
            refs.push(ArrayRef::new(id, subs, crate::AccessKind::Read));
        }
        let lhs_refs = extract_refs(line, lhs)?;
        match lhs_refs.len() {
            0 => {} // scalar target: lives in a register, no memory traffic
            1 => {
                let Some((name, subs)) = lhs_refs.into_iter().next() else {
                    return self.err(line, "internal: lost the left-hand-side reference");
                };
                let id = self.lookup(line, &name)?;
                refs.push(ArrayRef::new(id, subs, crate::AccessKind::Write));
            }
            _ => return self.err(line, "multiple array references on the left-hand side"),
        }
        Ok(Stmt::Refs(refs))
    }
}

/// Finds the `=` separating lhs from rhs (not inside parentheses).
fn top_level_eq(text: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            '=' if depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// `A(512, 512) elem 4 param` -> (name, builder).
fn parse_array_decl(line: usize, text: &str) -> Result<(String, ArrayBuilder), ParseError> {
    let text = text.trim();
    let open = text.find('(').ok_or_else(|| ParseError {
        line,
        message: "array declaration needs (dims)".into(),
    })?;
    let close = text.rfind(')').ok_or_else(|| ParseError {
        line,
        message: "unclosed ( in array declaration".into(),
    })?;
    let name = text[..open].trim().to_string();
    if name.is_empty() {
        return Err(ParseError {
            line,
            message: "array declaration needs a name".into(),
        });
    }
    let mut dims = Vec::new();
    for part in text[open + 1..close].split(',') {
        let part = part.trim();
        let dim = if let Some((lo, hi)) = part.split_once(':') {
            let lo: i64 = lo.trim().parse().map_err(|_| ParseError {
                line,
                message: format!("bad lower bound {lo}"),
            })?;
            let hi: i64 = hi.trim().parse().map_err(|_| ParseError {
                line,
                message: format!("bad upper bound {hi}"),
            })?;
            if hi < lo {
                return Err(ParseError {
                    line,
                    message: format!("empty range {part}"),
                });
            }
            Dim::with_lower(hi - lo + 1, lo)
        } else {
            let size: i64 = part.parse().map_err(|_| ParseError {
                line,
                message: format!("bad dimension size {part}"),
            })?;
            if size < 1 {
                return Err(ParseError {
                    line,
                    message: format!("bad dimension size {part}"),
                });
            }
            Dim::new(size)
        };
        dims.push(dim);
    }
    let mut array = ArrayBuilder::new(&name, []).dims(dims);
    let mut rest = text[close + 1..].split_whitespace().peekable();
    while let Some(word) = rest.next() {
        match word {
            "elem" => {
                let n = rest.next().ok_or_else(|| ParseError {
                    line,
                    message: "elem needs a byte count".into(),
                })?;
                let bytes: u32 = n.parse().map_err(|_| ParseError {
                    line,
                    message: format!("bad element size {n}"),
                })?;
                array = array.elem_size(bytes);
            }
            "param" => array = array.passed_as_parameter(true),
            "assoc" => array = array.storage_associated(true),
            "common" => array = array.fixed_common_block(true),
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unknown array attribute {other}"),
                })
            }
        }
    }
    Ok((name, array))
}

/// `i = 2, n-1` or `i = 1, 100, 2` after the `do `.
fn parse_do(line: usize, text: &str) -> Result<Loop, ParseError> {
    let Some(eq) = text.find('=') else {
        return Err(ParseError {
            line,
            message: "do needs `var = lo, hi`".into(),
        });
    };
    let var = text[..eq].trim();
    if var.is_empty() || !is_ident(var) {
        return Err(ParseError {
            line,
            message: format!("bad loop variable `{var}`"),
        });
    }
    let parts: Vec<&str> = text[eq + 1..].split(',').map(str::trim).collect();
    if parts.len() < 2 || parts.len() > 3 {
        return Err(ParseError {
            line,
            message: "do needs `var = lo, hi[, step]`".into(),
        });
    }
    let lower = parse_affine(line, parts[0])?;
    let upper = parse_affine(line, parts[1])?;
    let step = if parts.len() == 3 {
        parts[2].parse().map_err(|_| ParseError {
            line,
            message: format!("bad step {}", parts[2]),
        })?
    } else {
        1
    };
    Loop::try_with_step(var, lower, upper, step).map_err(|e| ParseError {
        line,
        message: e.to_string(),
    })
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Extracts every `NAME(sub, sub, ...)` occurrence, left to right.
fn extract_refs(line: usize, text: &str) -> Result<Vec<(String, Vec<Subscript>)>, ParseError> {
    let bytes = text.as_bytes();
    let mut refs = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let name = &text[start..i];
            // Skip whitespace before a potential subscript list.
            let mut j = i;
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'(' {
                let mut depth = 1;
                let open = j;
                j += 1;
                while j < bytes.len() && depth > 0 {
                    match bytes[j] {
                        b'(' => depth += 1,
                        b')' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                if depth != 0 {
                    return Err(ParseError {
                        line,
                        message: format!("unclosed ( after {name}"),
                    });
                }
                let inner = &text[open + 1..j - 1];
                let subs = inner
                    .split(',')
                    .map(|s| parse_affine(line, s))
                    .collect::<Result<Vec<_>, _>>()?;
                refs.push((name.to_string(), subs));
                i = j;
            }
            // bare identifier: scalar or loop variable — not a reference
        } else {
            i += 1;
        }
    }
    Ok(refs)
}

/// Parses `2*j - 1 + k` style affine expressions.
fn parse_affine(line: usize, text: &str) -> Result<AffineExpr, ParseError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(ParseError {
            line,
            message: "empty expression".into(),
        });
    }
    let mut terms: Vec<(IndexVar, i64)> = Vec::new();
    let mut offset = 0i64;
    let mut sign = 1i64;
    let mut rest = text;
    loop {
        rest = rest.trim_start();
        if rest.is_empty() {
            return Err(ParseError {
                line,
                message: format!("dangling operator in `{text}`"),
            });
        }
        // One term: [INT *] IDENT | INT.
        let (term_end, term) = split_term(rest);
        parse_term(line, term, sign, &mut terms, &mut offset, text)?;
        rest = &rest[term_end..];
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        sign = match rest.as_bytes()[0] {
            b'+' => 1,
            b'-' => -1,
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected `{}` in `{text}`", other as char),
                })
            }
        };
        rest = &rest[1..];
    }
    Ok(AffineExpr::from_terms(terms, offset))
}

fn split_term(s: &str) -> (usize, &str) {
    let bytes = s.as_bytes();
    let mut i = 0;
    // A leading sign belongs to the operator handling above, except at the
    // very start of the expression.
    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
        i += 1;
    }
    while i < bytes.len() {
        match bytes[i] {
            b'+' | b'-' => break,
            _ => i += 1,
        }
    }
    (i, s[..i].trim())
}

fn parse_term(
    line: usize,
    term: &str,
    sign: i64,
    terms: &mut Vec<(IndexVar, i64)>,
    offset: &mut i64,
    whole: &str,
) -> Result<(), ParseError> {
    let term = term.trim();
    let (sign, term) = match term.strip_prefix('-') {
        Some(rest) => (-sign, rest.trim()),
        None => (sign, term.strip_prefix('+').unwrap_or(term).trim()),
    };
    if let Some((coeff, var)) = term.split_once('*') {
        let c: i64 = coeff.trim().parse().map_err(|_| ParseError {
            line,
            message: format!("bad coefficient `{coeff}` in `{whole}`"),
        })?;
        let var = var.trim();
        if !is_ident(var) {
            return Err(ParseError {
                line,
                message: format!("bad variable `{var}` in `{whole}`"),
            });
        }
        terms.push((IndexVar::new(var), sign * c));
    } else if is_ident(term) {
        terms.push((IndexVar::new(term), sign));
    } else {
        let n: i64 = term.parse().map_err(|_| ParseError {
            line,
            message: format!("bad term `{term}` in `{whole}`"),
        })?;
        *offset += sign * n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessKind;

    const JACOBI: &str = "
        program jacobi
        lines 52
        array A(512, 512)
        array B(512, 512)
        do i = 2, 511
          do j = 2, 511
            B(j, i) = A(j-1, i) + A(j, i-1) + A(j+1, i) + A(j, i+1)
          end
        end
        do i = 2, 511
          do j = 2, 511
            A(j, i) = B(j, i)
          end
        end
    ";

    #[test]
    fn parses_jacobi() {
        let p = parse(JACOBI).expect("parses");
        assert_eq!(p.name(), "jacobi");
        assert_eq!(p.source_lines(), Some(52));
        assert_eq!(p.arrays().len(), 2);
        let groups = p.ref_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].refs.len(), 5);
        assert_eq!(groups[0].refs[4].kind(), AccessKind::Write);
        // Reads come before the write within the statement.
        assert_eq!(groups[0].refs[0].kind(), AccessKind::Read);
    }

    #[test]
    fn parse_matches_builder_for_jacobi() {
        // The parsed JACOBI must agree with the builder-constructed suite
        // kernel on the analysis-relevant structure.
        let parsed = parse(JACOBI).expect("parses");
        let parsed_text = parsed.to_string();
        assert!(parsed_text.contains("do i = 2, 511"));
        assert!(parsed_text.contains("A(j-1,i)"));
    }

    #[test]
    fn scalar_assignment_has_no_write_ref() {
        let p = parse(
            "program dot
             array A(100)
             array B(100)
             do i = 1, 100
               s = s + A(i) * B(i)
             end",
        )
        .expect("parses");
        let refs = p.all_refs();
        assert_eq!(refs.len(), 2);
        assert!(refs.iter().all(|r| r.kind() == AccessKind::Read));
    }

    #[test]
    fn attributes_and_element_sizes() {
        let p = parse(
            "program attrs
             array A(10, 10) elem 4 param
             array C(0:9) common
             do i = 1, 10
               A(i, 1) = C(i-1)
             end",
        )
        .expect("parses");
        let a = &p.arrays()[0];
        assert_eq!(a.elem_size(), 4);
        assert!(!a.safety().can_pad_intra());
        assert!(a.safety().can_pad_inter());
        let c = &p.arrays()[1];
        assert_eq!(c.dims()[0].lower, 0);
        assert!(!c.safety().can_pad_inter());
    }

    #[test]
    fn triangular_bounds_and_steps() {
        let p = parse(
            "program tri
             array A(64, 64)
             do k = 1, 63
               do i = k+1, 64, 2
                 A(i, k) = A(i, k)
               end
             end",
        )
        .expect("parses");
        let mut headers = Vec::new();
        p.body()[0].visit_loops(&mut |l| headers.push(l.clone()));
        assert_eq!(headers[1].lower().to_string(), "k+1");
        assert_eq!(headers[1].step(), 2);
    }

    #[test]
    fn affine_coefficients() {
        let p = parse(
            "program coeff
             array X(300)
             do i = 1, 100
               X(3*i - 2) = X(3*i)
             end",
        )
        .expect("parses");
        let refs = p.all_refs();
        assert!(refs[0].uniform_subscripts().is_none(), "3*i is not uniform");
    }

    #[test]
    fn error_cases_point_at_lines() {
        let cases: &[(&str, &str)] = &[
            ("", "empty program"),
            ("array A(10)", "expected `program"),
            ("program p\narray A", "needs (dims)"),
            ("program p\narray A(10) weird", "unknown array attribute"),
            ("program p\narray A(9:2)", "empty range"),
            (
                "program p\narray A(10)\ndo i = 1, 10\nA(i) = 1",
                "unterminated",
            ),
            ("program p\nend", "without a matching"),
            (
                "program p\narray A(5)\ndo i = 1, 5\nA(i) + 1\nend",
                "assignment",
            ),
            (
                "program p\narray A(5)\ndo i = 1, 5\nA(i) = B(i)\nend",
                "undeclared array",
            ),
            (
                "program p\narray A(5)\ndo i = 1, 5, 0\nA(i) = 0\nend",
                "has a zero step",
            ),
            (
                "program p\narray A(5)\ndo i = 1, 5\nA(q) = 0\nend",
                "not bound",
            ),
        ];
        for (src, needle) in cases {
            let err = parse(src).expect_err(src);
            assert!(
                err.to_string().contains(needle),
                "source {src:?} gave {err} (wanted {needle})"
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse(
            "# a comment\nprogram c\n\n! fortran comment\narray A(4)\ndo i = 1, 4 # trailing\n  A(i) = 0\nend",
        )
        .expect("parses");
        assert_eq!(p.all_refs().len(), 1);
    }

    #[test]
    fn constants_on_rhs_are_not_refs() {
        let p = parse(
            "program k
             array A(4)
             do i = 1, 4
               A(i) = 3 + 4
             end",
        )
        .expect("parses");
        assert_eq!(p.all_refs().len(), 1);
        assert_eq!(p.all_refs()[0].kind(), AccessKind::Write);
    }

    #[test]
    fn round_trip_through_analysis() {
        // A parsed program behaves identically in the padding pipeline.
        let p = parse(JACOBI).expect("parses");
        let groups = p.ref_groups();
        assert!(groups[0].binds(&"i".into()));
        assert!(groups[0].binds(&"j".into()));
    }
}
