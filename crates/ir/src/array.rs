//! Array declarations: shapes, element sizes, and padding-safety flags.

use std::fmt;

use crate::error::IrError;
use crate::reference::{AccessKind, ArrayRef, Subscript};

/// Identifies an array within a [`crate::Program`].
///
/// Obtained from [`crate::ProgramBuilder::add_array`]; stable for the
/// lifetime of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub(crate) usize);

impl ArrayId {
    /// The zero-based index of the array in [`crate::Program::arrays`].
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from its index.
    ///
    /// Ids are nothing more than positions in the program's declaration
    /// order; this is the inverse of [`ArrayId::index`]. An id fabricated
    /// for an index that no array occupies will make accessors panic, so
    /// only round-trip indices obtained from a real program.
    pub fn from_index(index: usize) -> Self {
        ArrayId(index)
    }

    /// Builds a reference to this array with the given subscripts (a read
    /// by default; see [`ArrayRef::with_kind`]).
    pub fn at(self, subscripts: impl IntoIterator<Item = Subscript>) -> ArrayRef {
        ArrayRef::new(self, subscripts, AccessKind::Read)
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "array#{}", self.0)
    }
}

/// One array dimension: its extent in elements and its lower bound
/// (Fortran arrays default to a lower bound of 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim {
    /// Number of elements along this dimension.
    pub size: i64,
    /// Smallest legal subscript along this dimension.
    pub lower: i64,
}

impl Dim {
    /// A dimension of `size` elements with the Fortran default lower bound
    /// of 1.
    ///
    /// # Panics
    ///
    /// Panics if `size < 1`.
    pub fn new(size: i64) -> Self {
        assert!(size >= 1, "dimension size must be at least 1, got {size}");
        Dim { size, lower: 1 }
    }

    /// A dimension with an explicit lower bound.
    ///
    /// # Panics
    ///
    /// Panics if `size < 1`.
    pub fn with_lower(size: i64, lower: i64) -> Self {
        assert!(size >= 1, "dimension size must be at least 1, got {size}");
        Dim { size, lower }
    }

    /// The largest legal subscript along this dimension.
    pub fn upper(&self) -> i64 {
        self.lower + self.size - 1
    }
}

/// Why an array may or may not be legally padded.
///
/// Mirrors the safety analysis of Section 4.1 of the paper: local variables
/// are *globalized* so the compiler controls base addresses, but arrays
/// whose internal layout is observable (sequence/storage association,
/// arrays passed as procedure parameters) cannot be intra-padded, and
/// variables trapped in non-splittable common blocks cannot be moved at
/// all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Safety {
    /// The array takes part in Fortran storage/sequence association
    /// (EQUIVALENCE or layout-sensitive COMMON): its element layout is
    /// observable, so dimension sizes must not change.
    pub storage_associated: bool,
    /// The array is passed as an argument to some procedure that assumes
    /// its declared shape, so dimension sizes must not change.
    pub passed_as_parameter: bool,
    /// The variable lives in a common block that sequence association
    /// prevents splitting: neither its base address nor its shape may
    /// change.
    pub fixed_common_block: bool,
}

impl Safety {
    /// Fully paddable (the default for globalized locals).
    pub fn safe() -> Self {
        Safety::default()
    }

    /// May this array's dimension sizes be changed (intra-variable
    /// padding)?
    pub fn can_pad_intra(&self) -> bool {
        !self.storage_associated && !self.passed_as_parameter && !self.fixed_common_block
    }

    /// May this array's base address be changed (inter-variable padding)?
    pub fn can_pad_inter(&self) -> bool {
        !self.fixed_common_block
    }
}

/// A declared array: name, column-major shape, element size, and safety
/// attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArraySpec {
    name: String,
    dims: Vec<Dim>,
    elem_size: u32,
    safety: Safety,
}

impl ArraySpec {
    /// Element size (in bytes) used when none is specified: `f64`/REAL*8.
    pub const DEFAULT_ELEM_SIZE: u32 = 8;

    pub(crate) fn from_parts(
        name: String,
        dims: Vec<Dim>,
        elem_size: u32,
        safety: Safety,
    ) -> Result<Self, IrError> {
        if dims.is_empty() {
            return Err(IrError::EmptyShape { array: name });
        }
        if elem_size == 0 {
            return Err(IrError::ZeroElementSize { array: name });
        }
        Ok(ArraySpec {
            name,
            dims,
            elem_size,
            safety,
        })
    }

    /// The array's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The array's dimensions, first (fastest-varying, column) dimension
    /// first.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Size of one element, in bytes.
    pub fn elem_size(&self) -> u32 {
        self.elem_size
    }

    /// Padding-safety attributes.
    pub fn safety(&self) -> Safety {
        self.safety
    }

    /// The column size `Col_s`: the extent of the first (fastest-varying)
    /// dimension, in elements.
    pub fn column_size(&self) -> i64 {
        self.dims[0].size
    }

    /// The row size `R_s`: the extent of the second dimension, or 1 for
    /// one-dimensional arrays. Used to cap `j*` in the LINPAD2 heuristic.
    pub fn row_size(&self) -> i64 {
        self.dims.get(1).map_or(1, |d| d.size)
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> i64 {
        self.dims.iter().map(|d| d.size).product()
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> i64 {
        self.num_elements() * i64::from(self.elem_size)
    }

    /// Returns a copy with dimension `dim` grown by `pad` elements.
    /// This is the primitive applied by intra-variable padding.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range or the resulting size would be
    /// non-positive.
    #[must_use]
    pub fn with_padded_dim(&self, dim: usize, pad: i64) -> Self {
        let mut padded = self.clone();
        let d = &mut padded.dims[dim];
        let new_size = d.size + pad;
        assert!(
            new_size >= 1,
            "padding dimension {dim} by {pad} leaves no elements"
        );
        d.size = new_size;
        padded
    }

    /// Size in elements of the subarray spanned by dimensions `0..=dim`
    /// (so `subarray_elements(0)` is the column size). Used by the
    /// higher-dimensional generalization of INTRAPADLITE.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= rank`.
    pub fn subarray_elements(&self, dim: usize) -> i64 {
        assert!(
            dim < self.rank(),
            "dimension {dim} out of range for rank {}",
            self.rank()
        );
        self.dims[..=dim].iter().map(|d| d.size).product()
    }
}

impl fmt::Display for ArraySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if d.lower == 1 {
                write!(f, "{}", d.size)?;
            } else {
                write!(f, "{}:{}", d.lower, d.upper())?;
            }
        }
        write!(f, ")")
    }
}

/// Builder for [`ArraySpec`], consumed by
/// [`crate::ProgramBuilder::add_array`].
///
/// # Example
///
/// ```
/// use pad_ir::{ArrayBuilder, Program};
///
/// let mut b = Program::builder("demo");
/// let id = b.add_array(
///     ArrayBuilder::new("A", [512, 512])
///         .elem_size(4)
///         .passed_as_parameter(true),
/// );
/// let program = b.build()?;
/// assert_eq!(program.array(id).elem_size(), 4);
/// assert!(!program.array(id).safety().can_pad_intra());
/// # Ok::<(), pad_ir::IrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ArrayBuilder {
    name: String,
    dims: Vec<Dim>,
    elem_size: u32,
    safety: Safety,
}

impl ArrayBuilder {
    /// Starts an array with the given name and dimension sizes (lower
    /// bounds default to 1, element size to
    /// [`ArraySpec::DEFAULT_ELEM_SIZE`]).
    pub fn new(name: impl Into<String>, dims: impl IntoIterator<Item = i64>) -> Self {
        ArrayBuilder {
            name: name.into(),
            dims: dims.into_iter().map(Dim::new).collect(),
            elem_size: ArraySpec::DEFAULT_ELEM_SIZE,
            safety: Safety::default(),
        }
    }

    /// Replaces the dimensions with explicit [`Dim`]s (for non-unit lower
    /// bounds).
    pub fn dims(mut self, dims: impl IntoIterator<Item = Dim>) -> Self {
        self.dims = dims.into_iter().collect();
        self
    }

    /// Sets the element size in bytes.
    pub fn elem_size(mut self, bytes: u32) -> Self {
        self.elem_size = bytes;
        self
    }

    /// Marks the array as storage-associated (not intra-paddable).
    pub fn storage_associated(mut self, yes: bool) -> Self {
        self.safety.storage_associated = yes;
        self
    }

    /// Marks the array as passed to a procedure (not intra-paddable).
    pub fn passed_as_parameter(mut self, yes: bool) -> Self {
        self.safety.passed_as_parameter = yes;
        self
    }

    /// Marks the array as trapped in a non-splittable common block
    /// (not paddable at all).
    pub fn fixed_common_block(mut self, yes: bool) -> Self {
        self.safety.fixed_common_block = yes;
        self
    }

    pub(crate) fn finish(self) -> Result<ArraySpec, IrError> {
        ArraySpec::from_parts(self.name, self.dims, self.elem_size, self.safety)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(dims: &[i64]) -> ArraySpec {
        ArraySpec::from_parts(
            "A".into(),
            dims.iter().copied().map(Dim::new).collect(),
            8,
            Safety::default(),
        )
        .expect("valid spec")
    }

    #[test]
    fn sizes() {
        let a = spec(&[512, 512]);
        assert_eq!(a.column_size(), 512);
        assert_eq!(a.row_size(), 512);
        assert_eq!(a.num_elements(), 512 * 512);
        assert_eq!(a.size_bytes(), 512 * 512 * 8);
    }

    #[test]
    fn one_dimensional_row_size_is_one() {
        assert_eq!(spec(&[100]).row_size(), 1);
    }

    #[test]
    fn subarray_elements_products() {
        let a = spec(&[10, 20, 30]);
        assert_eq!(a.subarray_elements(0), 10);
        assert_eq!(a.subarray_elements(1), 200);
        assert_eq!(a.subarray_elements(2), 6000);
    }

    #[test]
    fn padding_a_dimension() {
        let a = spec(&[512, 512]).with_padded_dim(0, 8);
        assert_eq!(a.column_size(), 520);
        assert_eq!(a.row_size(), 512);
    }

    #[test]
    fn empty_shape_rejected() {
        let err = ArraySpec::from_parts("A".into(), vec![], 8, Safety::default());
        assert!(matches!(err, Err(IrError::EmptyShape { .. })));
    }

    #[test]
    fn zero_elem_size_rejected() {
        let err = ArraySpec::from_parts("A".into(), vec![Dim::new(4)], 0, Safety::default());
        assert!(matches!(err, Err(IrError::ZeroElementSize { .. })));
    }

    #[test]
    fn safety_rules() {
        assert!(Safety::safe().can_pad_intra());
        assert!(Safety::safe().can_pad_inter());
        let s = Safety {
            passed_as_parameter: true,
            ..Safety::default()
        };
        assert!(!s.can_pad_intra());
        assert!(s.can_pad_inter());
        let c = Safety {
            fixed_common_block: true,
            ..Safety::default()
        };
        assert!(!c.can_pad_intra());
        assert!(!c.can_pad_inter());
    }

    #[test]
    fn dim_bounds() {
        let d = Dim::with_lower(10, 0);
        assert_eq!(d.upper(), 9);
        assert_eq!(Dim::new(10).upper(), 10);
    }

    #[test]
    fn display_shapes() {
        assert_eq!(spec(&[512, 512]).to_string(), "A(512,512)");
        let b = ArraySpec::from_parts(
            "B".into(),
            vec![Dim::with_lower(10, 0), Dim::new(4)],
            8,
            Safety::default(),
        )
        .expect("valid");
        assert_eq!(b.to_string(), "B(0:9,4)");
    }
}
