//! Loop-nest program representation for compile-time data-layout analysis.
//!
//! This crate provides the intermediate representation consumed by the
//! padding heuristics of Rivera & Tseng, *Data Transformations for
//! Eliminating Conflict Misses* (PLDI 1998). It plays the role the Stanford
//! SUIF compiler's IR played in the original work: it captures exactly the
//! program properties the heuristics need —
//!
//! * array shapes (dimension sizes, lower bounds, element sizes),
//! * *padding safety* attributes (storage association, parameter passing,
//!   Fortran common blocks),
//! * loop nests with affine bounds, and
//! * array references with affine subscripts.
//!
//! Programs are column-major (Fortran layout): the first subscript varies
//! fastest in memory.
//!
//! # Example
//!
//! Build the JACOBI stencil from Figure 7 of the paper:
//!
//! ```
//! use pad_ir::{AccessKind, ArrayBuilder, Loop, Program, Stmt, Subscript};
//!
//! let n = 512;
//! let mut builder = Program::builder("jacobi");
//! let a = builder.add_array(ArrayBuilder::new("A", [n, n]));
//! let b = builder.add_array(ArrayBuilder::new("B", [n, n]));
//!
//! let body = Stmt::loop_nest(
//!     [Loop::new("i", 2, n - 1), Loop::new("j", 2, n - 1)],
//!     vec![Stmt::refs(vec![
//!         a.at([Subscript::var_offset("j", -1), Subscript::var("i")]),
//!         a.at([Subscript::var("j"), Subscript::var_offset("i", -1)]),
//!         a.at([Subscript::var_offset("j", 1), Subscript::var("i")]),
//!         a.at([Subscript::var("j"), Subscript::var_offset("i", 1)]),
//!         b.at([Subscript::var("j"), Subscript::var("i")]).with_kind(AccessKind::Write),
//!     ])],
//! );
//! builder.push(body);
//! let program = builder.build()?;
//! assert_eq!(program.arrays().len(), 2);
//! # Ok::<(), pad_ir::IrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affine;
mod array;
mod builder;
mod display;
mod error;
mod loops;
mod parse;
mod program;
mod reference;
mod transform;
mod validate;

pub use affine::{AffineExpr, IndexVar};
pub use array::{ArrayBuilder, ArrayId, ArraySpec, Dim, Safety};
pub use builder::ProgramBuilder;
pub use error::IrError;
pub use loops::{Loop, Stmt};
pub use parse::{parse, ParseError};
pub use program::{Program, RefGroup, RefInContext};
pub use reference::{AccessKind, ArrayRef, Subscript};
pub use transform::{interchange, strip_mine, TransformError};
