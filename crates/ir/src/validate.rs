//! Structural validation of programs.

use std::collections::HashSet;

use crate::affine::{AffineExpr, IndexVar};
use crate::error::IrError;
use crate::loops::Stmt;
use crate::program::Program;
use crate::reference::ArrayRef;

/// Checks that every reference is well-formed and every variable is bound.
pub(crate) fn validate(program: &Program) -> Result<(), IrError> {
    let mut bound: Vec<IndexVar> = Vec::new();
    for stmt in program.body() {
        validate_stmt(program, stmt, &mut bound)?;
    }
    Ok(())
}

fn validate_stmt(program: &Program, stmt: &Stmt, bound: &mut Vec<IndexVar>) -> Result<(), IrError> {
    match stmt {
        Stmt::Refs(refs) => refs
            .iter()
            .try_for_each(|r| validate_ref(program, r, bound)),
        Stmt::Loop { header, body } => {
            check_expr(header.lower(), bound)?;
            check_expr(header.upper(), bound)?;
            if bound.contains(header.var()) {
                return Err(IrError::ShadowedVariable {
                    var: header.var().name().into(),
                });
            }
            bound.push(header.var().clone());
            let result = body
                .iter()
                .try_for_each(|s| validate_stmt(program, s, bound));
            bound.pop();
            result
        }
    }
}

fn validate_ref(
    program: &Program,
    array_ref: &ArrayRef,
    bound: &[IndexVar],
) -> Result<(), IrError> {
    let index = array_ref.array().index();
    let Some(spec) = program.arrays().get(index) else {
        return Err(IrError::UnknownArray { index });
    };
    if array_ref.subscripts().len() != spec.rank() {
        return Err(IrError::SubscriptArity {
            array: spec.name().into(),
            got: array_ref.subscripts().len(),
            expected: spec.rank(),
        });
    }
    for sub in array_ref.subscripts() {
        check_expr(sub, bound)?;
    }
    Ok(())
}

fn check_expr(expr: &AffineExpr, bound: &[IndexVar]) -> Result<(), IrError> {
    let bound_set: HashSet<&IndexVar> = bound.iter().collect();
    for var in expr.vars() {
        if !bound_set.contains(var) {
            return Err(IrError::UnboundVariable {
                var: var.name().into(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayBuilder;
    use crate::loops::Loop;
    use crate::reference::Subscript;

    #[test]
    fn wrong_arity_rejected() {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [10, 10]));
        b.push(Stmt::loop_(
            Loop::new("i", 1, 10),
            vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
        ));
        assert!(matches!(b.build(), Err(IrError::SubscriptArity { .. })));
    }

    #[test]
    fn unbound_variable_rejected() {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [10]));
        b.push(Stmt::loop_(
            Loop::new("i", 1, 10),
            vec![Stmt::refs(vec![a.at([Subscript::var("q")])])],
        ));
        assert!(matches!(b.build(), Err(IrError::UnboundVariable { .. })));
    }

    #[test]
    fn unbound_bound_variable_rejected() {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [10]));
        b.push(Stmt::loop_(
            Loop::new("i", Subscript::var("k"), 10),
            vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
        ));
        assert!(matches!(b.build(), Err(IrError::UnboundVariable { .. })));
    }

    #[test]
    fn shadowed_variable_rejected() {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [10]));
        b.push(Stmt::loop_nest(
            [Loop::new("i", 1, 10), Loop::new("i", 1, 10)],
            vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
        ));
        assert!(matches!(b.build(), Err(IrError::ShadowedVariable { .. })));
    }

    #[test]
    fn sibling_loops_may_share_names() {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [10]));
        for _ in 0..2 {
            b.push(Stmt::loop_(
                Loop::new("i", 1, 10),
                vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
            ));
        }
        assert!(b.build().is_ok());
    }

    #[test]
    fn unknown_array_rejected() {
        // Construct a reference to an id from a *different* builder.
        let mut other = Program::builder("other");
        let _ = other.add_array(ArrayBuilder::new("A", [10]));
        let phantom = other.add_array(ArrayBuilder::new("B", [10]));

        let mut b = Program::builder("p");
        let _ = b.add_array(ArrayBuilder::new("A", [10]));
        b.push(Stmt::loop_(
            Loop::new("i", 1, 10),
            vec![Stmt::refs(vec![phantom.at([Subscript::var("i")])])],
        ));
        assert!(matches!(b.build(), Err(IrError::UnknownArray { .. })));
    }
}
