//! Whole-program container and reference-group extraction.

use crate::array::{ArrayId, ArraySpec};
use crate::builder::ProgramBuilder;
use crate::error::IrError;
use crate::loops::{Loop, Stmt};
use crate::reference::ArrayRef;

/// A whole program: array declarations plus a statement tree.
///
/// Programs are immutable once built (via [`Program::builder`]); the
/// padding transformations never rewrite the program, they only compute a
/// new data layout for its arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    arrays: Vec<ArraySpec>,
    body: Vec<Stmt>,
    source_lines: Option<u32>,
}

impl Program {
    /// Starts building a program with the given name.
    pub fn builder(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder::new(name)
    }

    pub(crate) fn from_parts(
        name: String,
        arrays: Vec<ArraySpec>,
        body: Vec<Stmt>,
        source_lines: Option<u32>,
    ) -> Result<Self, IrError> {
        let program = Program {
            name,
            arrays,
            body,
            source_lines,
        };
        crate::validate::validate(&program)?;
        Ok(program)
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All declared arrays, indexable by [`ArrayId::index`].
    pub fn arrays(&self) -> &[ArraySpec] {
        &self.arrays
    }

    /// Looks up one array.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn array(&self, id: ArrayId) -> &ArraySpec {
        &self.arrays[id.index()]
    }

    /// Iterates over `(id, spec)` pairs.
    pub fn arrays_with_ids(&self) -> impl Iterator<Item = (ArrayId, &ArraySpec)> {
        self.arrays.iter().enumerate().map(|(i, a)| (ArrayId(i), a))
    }

    /// Top-level statements, in program order.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Source-line count of the original benchmark, if recorded
    /// (metadata reported in Table 2 of the paper).
    pub fn source_lines(&self) -> Option<u32> {
        self.source_lines
    }

    /// All array references in the program, in program order.
    pub fn all_refs(&self) -> Vec<&ArrayRef> {
        let mut out = Vec::new();
        for stmt in &self.body {
            stmt.visit_refs(&mut |r| out.push(r));
        }
        out
    }

    /// Groups references by their *immediately enclosing loop*.
    ///
    /// The paper's conflict analysis considers pairs of references executed
    /// together "on each loop iteration"; references that are straight-line
    /// statements in the body of the same loop iterate together, so they
    /// form one group. References outside any loop are ignored (they cannot
    /// cause per-iteration severe conflicts).
    pub fn ref_groups(&self) -> Vec<RefGroup<'_>> {
        let mut groups = Vec::new();
        let mut stack: Vec<&Loop> = Vec::new();
        for stmt in &self.body {
            collect_groups(stmt, &mut stack, &mut groups);
        }
        groups
    }
}

/// A reference together with the loops enclosing it, innermost last.
#[derive(Debug, Clone)]
pub struct RefInContext<'p> {
    /// The reference itself.
    pub array_ref: &'p ArrayRef,
    /// Enclosing loop headers, outermost first.
    pub loops: Vec<&'p Loop>,
}

/// References that share an immediately enclosing loop, i.e. that execute
/// together on every iteration of that loop.
#[derive(Debug, Clone)]
pub struct RefGroup<'p> {
    /// Enclosing loop headers, outermost first; the last one is the loop
    /// whose iterations the group shares.
    pub loops: Vec<&'p Loop>,
    /// The references, in program order.
    pub refs: Vec<&'p ArrayRef>,
}

impl RefGroup<'_> {
    /// The loop whose body directly contains these references.
    pub fn innermost(&self) -> &Loop {
        self.loops
            .last()
            .expect("ref groups always have at least one enclosing loop")
    }

    /// True if `var` is one of the enclosing loops' index variables.
    pub fn binds(&self, var: &crate::IndexVar) -> bool {
        self.loops.iter().any(|l| l.var() == var)
    }
}

fn collect_groups<'p>(stmt: &'p Stmt, stack: &mut Vec<&'p Loop>, groups: &mut Vec<RefGroup<'p>>) {
    match stmt {
        Stmt::Refs(_) => {} // handled by the enclosing loop below
        Stmt::Loop { header, body } => {
            stack.push(header);
            let direct: Vec<&ArrayRef> = body
                .iter()
                .filter_map(|s| match s {
                    Stmt::Refs(refs) => Some(refs.iter()),
                    Stmt::Loop { .. } => None,
                })
                .flatten()
                .collect();
            if !direct.is_empty() {
                groups.push(RefGroup {
                    loops: stack.clone(),
                    refs: direct,
                });
            }
            for s in body {
                collect_groups(s, stack, groups);
            }
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayBuilder;
    use crate::reference::Subscript;

    fn two_nest_program() -> Program {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [100, 100]));
        let c = b.add_array(ArrayBuilder::new("C", [100]));
        b.push(Stmt::loop_nest(
            [Loop::new("i", 1, 100), Loop::new("j", 1, 100)],
            vec![Stmt::refs(vec![
                a.at([Subscript::var("j"), Subscript::var("i")])
            ])],
        ));
        b.push(Stmt::loop_(
            Loop::new("k", 1, 100),
            vec![
                Stmt::refs(vec![c.at([Subscript::var("k")])]),
                Stmt::loop_(
                    Loop::new("m", 1, 100),
                    vec![Stmt::refs(vec![
                        a.at([Subscript::var("m"), Subscript::var("k")])
                    ])],
                ),
            ],
        ));
        b.build().expect("valid program")
    }

    #[test]
    fn ref_groups_follow_immediate_loops() {
        let p = two_nest_program();
        let groups = p.ref_groups();
        assert_eq!(groups.len(), 3);
        // First nest: refs grouped under j (innermost).
        assert_eq!(groups[0].innermost().var().name(), "j");
        assert_eq!(groups[0].loops.len(), 2);
        // Second nest: C(k) grouped under k, A(m,k) under m.
        assert_eq!(groups[1].innermost().var().name(), "k");
        assert_eq!(groups[1].refs.len(), 1);
        assert_eq!(groups[2].innermost().var().name(), "m");
    }

    #[test]
    fn all_refs_in_program_order() {
        let p = two_nest_program();
        let refs = p.all_refs();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0].array().index(), 0);
        assert_eq!(refs[1].array().index(), 1);
    }

    #[test]
    fn binds_checks_enclosing_loops() {
        let p = two_nest_program();
        let groups = p.ref_groups();
        assert!(groups[0].binds(&"i".into()));
        assert!(groups[0].binds(&"j".into()));
        assert!(!groups[0].binds(&"k".into()));
    }

    #[test]
    fn array_lookup() {
        let p = two_nest_program();
        let (id, spec) = p.arrays_with_ids().next().expect("has arrays");
        assert_eq!(p.array(id).name(), spec.name());
    }
}
