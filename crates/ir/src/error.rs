//! IR construction and validation errors.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a [`crate::Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// An array was declared with no dimensions.
    EmptyShape {
        /// Name of the offending array.
        array: String,
    },
    /// An array was declared with a zero element size.
    ZeroElementSize {
        /// Name of the offending array.
        array: String,
    },
    /// A reference points at an array id not declared in the program.
    UnknownArray {
        /// The out-of-range array index.
        index: usize,
    },
    /// A reference has the wrong number of subscripts for its array.
    SubscriptArity {
        /// Name of the referenced array.
        array: String,
        /// Number of subscripts supplied.
        got: usize,
        /// The array's rank.
        expected: usize,
    },
    /// A subscript or loop bound uses a variable not bound by an enclosing
    /// loop.
    UnboundVariable {
        /// The unbound variable's name.
        var: String,
    },
    /// Two nested loops bind the same index variable.
    ShadowedVariable {
        /// The doubly-bound variable's name.
        var: String,
    },
    /// An array was looked up by a name the program does not declare.
    NoSuchArray {
        /// The name that failed to resolve.
        name: String,
    },
    /// A loop was constructed with a zero step.
    ZeroStep {
        /// The loop's index variable name.
        var: String,
    },
    /// A loop nest was requested with no loop headers.
    EmptyLoopNest,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::EmptyShape { array } => {
                write!(f, "array {array} declared with no dimensions")
            }
            IrError::ZeroElementSize { array } => {
                write!(f, "array {array} declared with zero element size")
            }
            IrError::UnknownArray { index } => {
                write!(f, "reference to undeclared array index {index}")
            }
            IrError::SubscriptArity {
                array,
                got,
                expected,
            } => write!(
                f,
                "reference to {array} has {got} subscripts but the array has rank {expected}"
            ),
            IrError::UnboundVariable { var } => {
                write!(f, "index variable {var} is not bound by an enclosing loop")
            }
            IrError::ShadowedVariable { var } => {
                write!(f, "index variable {var} is bound by two nested loops")
            }
            IrError::NoSuchArray { name } => {
                write!(f, "no array named {name} is declared")
            }
            IrError::ZeroStep { var } => {
                write!(f, "loop over {var} has a zero step")
            }
            IrError::EmptyLoopNest => {
                write!(f, "a loop nest requires at least one loop header")
            }
        }
    }
}

impl Error for IrError {}
