//! The advisor wire protocol: typed requests, typed errors.
//!
//! One NDJSON frame is one request object:
//!
//! ```json
//! {"id": 7, "op": "advise", "kernel": "EXPL", "n": 64,
//!  "cache": {"size": 16384, "line": 32, "ways": 1},
//!  "algorithm": "pad", "mode": "auto"}
//! ```
//!
//! `op` is one of `advise`, `ping`, `stats`, `metrics`, `shutdown`. An
//! advise
//! request names a registered kernel (`kernel`, optional `n`), carries
//! an inline loop-nest spec (`program`, pad-ir surface syntax), or
//! points at an on-disk address trace (`trace`, optional `format` and
//! SHARDS `sample` exponent) for a conflict diagnosis.
//! `cache` defaults to the paper's base configuration; `algorithm` to
//! `pad` (`padlite` selects the heuristic-only variant, `search` the
//! global layout optimizer, qualified by optional `strategy`, `budget`,
//! `seed`, and `beam` fields); `mode` to `auto` (`exact` forbids
//! degradation, `fast` skips simulation).
//!
//! Every way a frame can be wrong maps to a typed [`ErrorKind`], so a
//! client always learns *why* it was refused — the server never answers
//! a malformed frame with silence, and never crashes on one.

use pad_cache_sim::CacheConfig;
use pad_trace_ingest::TraceFormat;

use crate::json::Json;

/// Largest inline program text accepted, in bytes. Loop-nest specs in
/// the paper's entire Table 2 are under 2 KiB; anything near this limit
/// is adversarial.
pub const MAX_PROGRAM_BYTES: usize = 64 * 1024;

/// Largest trace file path accepted, in bytes. Real paths are tens of
/// bytes; a multi-kilobyte one is adversarial.
pub const MAX_TRACE_PATH_BYTES: usize = 4096;

/// Largest problem size accepted for a kernel instantiation. Keeps a
/// single request's trace bounded; the deadline ladder handles cost
/// within the bound.
pub const MAX_PROBLEM_SIZE: i64 = 1 << 16;

/// Largest search candidate budget a request may ask for. The fast rung
/// evaluates in microseconds, so this bounds one request to well under a
/// second of analytic work.
pub const MAX_SEARCH_BUDGET: u64 = 100_000;

/// Largest beam width a request may ask for.
pub const MAX_SEARCH_BEAM: u64 = 64;

/// Why a request was refused. The wire string (`ErrorKind::wire`) is
/// stable protocol surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame was not valid JSON, or not an object.
    Malformed,
    /// The frame exceeded the server's size limit.
    Oversized,
    /// An inline program failed to parse as a loop-nest spec.
    Parse,
    /// The frame was well-formed JSON but semantically invalid
    /// (unknown op/kernel/algorithm, bad cache geometry, out-of-range n).
    Invalid,
    /// The admission queue was full; the request was shed unprocessed.
    Overloaded,
    /// The request exceeded its deadline and could not be degraded.
    Timeout,
    /// The handler failed unexpectedly (an isolated panic).
    Internal,
}

impl ErrorKind {
    /// The stable wire name of this error kind.
    pub fn wire(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::Oversized => "oversized",
            ErrorKind::Parse => "parse",
            ErrorKind::Invalid => "invalid",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A typed refusal: kind plus a human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The error class (stable wire surface).
    pub kind: ErrorKind,
    /// What exactly was wrong.
    pub detail: String,
}

impl RequestError {
    /// Builds an error of `kind` with `detail`.
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> Self {
        RequestError {
            kind,
            detail: detail.into(),
        }
    }
}

fn invalid(detail: impl Into<String>) -> RequestError {
    RequestError::new(ErrorKind::Invalid, detail)
}

/// Where the loop nest to analyze comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A kernel from the registered suite, instantiated at problem size
    /// `n` (`None` = the kernel's default).
    Kernel {
        /// Registered kernel name (case-insensitive match).
        name: String,
        /// Problem size override.
        n: Option<i64>,
    },
    /// An inline loop-nest spec in pad-ir surface syntax.
    Text(String),
    /// An on-disk address trace (read server-side with
    /// `pad-trace-ingest`). Trace requests answer a conflict *diagnosis*
    /// — measured miss rates, XOR/victim comparisons, per-set heat, and
    /// a (possibly SHARDS-sampled) miss-ratio curve — rather than
    /// padding advice: a raw address stream names no arrays to pad.
    Trace {
        /// Path of the trace file, resolved server-side.
        path: String,
        /// Encoding override (`None` = guess from the extension,
        /// defaulting to binary).
        format: Option<TraceFormat>,
        /// SHARDS sampling exponent for the reuse analysis
        /// (`0` = exact).
        sample_log2: u32,
    },
}

/// Which padding algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Full PAD: set-conflict search, paper §4.
    Pad,
    /// PADLITE: GCD-based heuristic, paper §5.
    PadLite,
    /// Global layout search over joint inter/intra pad vectors
    /// (`pad-search`), seeded with both heuristics' answers.
    Search,
}

impl Algorithm {
    /// Canonical lowercase name (used in cache keys and responses).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Pad => "pad",
            Algorithm::PadLite => "padlite",
            Algorithm::Search => "search",
        }
    }
}

/// Per-request overrides for the `search` algorithm; absent fields take
/// the server's defaults. Qualifies `algorithm: "search"` only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchParams {
    /// Strategy override (`"beam"` or `"anneal"`).
    pub strategy: Option<pad_search::StrategyKind>,
    /// Fast-evaluation candidate budget.
    pub budget: Option<u64>,
    /// Annealer seed.
    pub seed: Option<u64>,
    /// Beam width.
    pub beam: Option<usize>,
}

/// How hard to try for an exact (simulation-backed) answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Exact when the deadline budget allows, analytic fallback
    /// otherwise (`degraded: true` on the response).
    Auto,
    /// Exact or nothing: a blown deadline is a `timeout` error.
    Exact,
    /// Analytic estimate only; never simulates.
    Fast,
}

impl Mode {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Auto => "auto",
            Mode::Exact => "exact",
            Mode::Fast => "fast",
        }
    }
}

/// A validated advise request.
#[derive(Debug, Clone, PartialEq)]
pub struct AdviseRequest {
    /// The loop nest to analyze.
    pub source: Source,
    /// The cache to pad for.
    pub cache: CacheConfig,
    /// Which transformation to run.
    pub algorithm: Algorithm,
    /// Search overrides (all-default unless `algorithm` is `search`).
    pub search: SearchParams,
    /// Degradation policy.
    pub mode: Mode,
}

/// One parsed request frame. `id` is echoed verbatim on the response so
/// clients can pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Run a padding analysis.
    Advise(AdviseRequest),
    /// Liveness probe; also a sync barrier (answered in receive order,
    /// ahead of queued work).
    Ping,
    /// Server counters snapshot.
    Stats,
    /// Live metrics snapshot: every registered counter, gauge, and
    /// latency histogram (with p50/p95/p99), answered inline like
    /// `stats`. `padtool top` polls this op.
    Metrics,
    /// Drain and exit cleanly.
    Shutdown,
}

/// A request frame: the echoed `id` plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed verbatim (any JSON value; `null`
    /// when absent).
    pub id: Json,
    /// The operation.
    pub op: Op,
}

/// Parses and validates one frame that already passed JSON parsing.
///
/// # Errors
///
/// Returns a typed [`RequestError`] for every invalid shape — unknown
/// ops, missing/mistyped fields, out-of-range sizes, bad cache
/// geometry. Never panics.
pub fn parse_request(frame: &Json) -> Result<Request, RequestError> {
    let Json::Obj(_) = frame else {
        return Err(RequestError::new(
            ErrorKind::Malformed,
            "frame is not a JSON object",
        ));
    };
    let id = frame.get("id").cloned().unwrap_or(Json::Null);
    let op = match frame.get("op").and_then(Json::as_str) {
        None => return Err(invalid("missing `op` field")),
        Some("ping") => Op::Ping,
        Some("stats") => Op::Stats,
        Some("metrics") => Op::Metrics,
        Some("shutdown") => Op::Shutdown,
        Some("advise") => Op::Advise(parse_advise(frame)?),
        Some(other) => return Err(invalid(format!("unknown op `{other}`"))),
    };
    Ok(Request { id, op })
}

fn parse_advise(frame: &Json) -> Result<AdviseRequest, RequestError> {
    let named = [
        frame.get("kernel"),
        frame.get("program"),
        frame.get("trace"),
    ]
    .iter()
    .filter(|v| v.is_some())
    .count();
    if named > 1 {
        return Err(invalid(
            "`kernel`, `program`, and `trace` are mutually exclusive",
        ));
    }
    if named == 0 {
        return Err(invalid("advise needs `kernel`, `program`, or `trace`"));
    }
    // `format` and `sample` qualify a trace source only.
    if frame.get("trace").is_none()
        && (frame.get("format").is_some() || frame.get("sample").is_some())
    {
        return Err(invalid("`format`/`sample` require a `trace` source"));
    }
    let source = match (frame.get("kernel"), frame.get("program")) {
        (Some(_), Some(_)) => unreachable!("exclusivity checked above"),
        (None, None) => parse_trace_source(frame)?,
        (Some(k), None) => {
            let Some(name) = k.as_str() else {
                return Err(invalid("`kernel` must be a string"));
            };
            let n = match frame.get("n") {
                None | Some(Json::Null) => None,
                Some(v) => match v.as_i64() {
                    Some(n) if (1..=MAX_PROBLEM_SIZE).contains(&n) => Some(n),
                    Some(n) => {
                        return Err(invalid(format!(
                            "`n` must be in 1..={MAX_PROBLEM_SIZE}, got {n}"
                        )))
                    }
                    None => return Err(invalid("`n` must be an integer")),
                },
            };
            Source::Kernel {
                name: name.to_string(),
                n,
            }
        }
        (None, Some(p)) => {
            let Some(text) = p.as_str() else {
                return Err(invalid("`program` must be a string"));
            };
            if text.len() > MAX_PROGRAM_BYTES {
                return Err(RequestError::new(
                    ErrorKind::Oversized,
                    format!(
                        "program text is {} bytes; limit is {MAX_PROGRAM_BYTES}",
                        text.len()
                    ),
                ));
            }
            Source::Text(text.to_string())
        }
    };

    let cache = match frame.get("cache") {
        None => CacheConfig::paper_base(),
        Some(c) => parse_cache(c)?,
    };

    let algorithm = match frame.get("algorithm").and_then(Json::as_str) {
        None | Some("pad") => Algorithm::Pad,
        Some("padlite") => Algorithm::PadLite,
        Some("search") => Algorithm::Search,
        Some(other) => return Err(invalid(format!("unknown algorithm `{other}`"))),
    };

    // `strategy`/`budget`/`seed`/`beam` qualify the search algorithm only.
    if algorithm != Algorithm::Search
        && ["strategy", "budget", "seed", "beam"]
            .iter()
            .any(|k| frame.get(k).is_some())
    {
        return Err(invalid(
            "`strategy`/`budget`/`seed`/`beam` require `algorithm: \"search\"`",
        ));
    }
    let search = if algorithm == Algorithm::Search {
        // A raw address trace names no arrays, so there is no layout
        // space to search over.
        if matches!(source, Source::Trace { .. }) {
            return Err(invalid("algorithm `search` cannot answer a `trace` source"));
        }
        parse_search_params(frame)?
    } else {
        SearchParams::default()
    };

    let mode = match frame.get("mode").and_then(Json::as_str) {
        None | Some("auto") => Mode::Auto,
        Some("exact") => Mode::Exact,
        Some("fast") => Mode::Fast,
        Some(other) => return Err(invalid(format!("unknown mode `{other}`"))),
    };

    // Trace diagnosis has no analytic model to fall back on — the fast
    // rung cannot answer it, so asking for it is a client error.
    if mode == Mode::Fast && matches!(source, Source::Trace { .. }) {
        return Err(invalid("mode `fast` cannot answer a `trace` source"));
    }

    Ok(AdviseRequest {
        source,
        cache,
        algorithm,
        search,
        mode,
    })
}

fn parse_search_params(frame: &Json) -> Result<SearchParams, RequestError> {
    let strategy = match frame.get("strategy") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_str() {
            Some("beam") => Some(pad_search::StrategyKind::Beam),
            Some("anneal") => Some(pad_search::StrategyKind::Anneal),
            Some(other) => {
                return Err(invalid(format!(
                    "unknown strategy `{other}` (beam or anneal)"
                )))
            }
            None => return Err(invalid("`strategy` must be a string")),
        },
    };
    let bounded = |key: &str, max: u64| -> Result<Option<u64>, RequestError> {
        match frame.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => match v.as_u64() {
                Some(x) if (1..=max).contains(&x) => Ok(Some(x)),
                Some(x) => Err(invalid(format!("`{key}` must be in 1..={max}, got {x}"))),
                None => Err(invalid(format!("`{key}` must be a positive integer"))),
            },
        }
    };
    let budget = bounded("budget", MAX_SEARCH_BUDGET)?;
    let beam = bounded("beam", MAX_SEARCH_BEAM)?.map(|b| b as usize);
    let seed = match frame.get("seed") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_u64() {
            Some(s) => Some(s),
            None => return Err(invalid("`seed` must be a non-negative integer")),
        },
    };
    Ok(SearchParams {
        strategy,
        budget,
        seed,
        beam,
    })
}

fn parse_trace_source(frame: &Json) -> Result<Source, RequestError> {
    let trace = frame.get("trace").expect("caller checked presence");
    let Some(path) = trace.as_str() else {
        return Err(invalid("`trace` must be a string path"));
    };
    if path.is_empty() {
        return Err(invalid("`trace` path is empty"));
    }
    if path.len() > MAX_TRACE_PATH_BYTES {
        return Err(RequestError::new(
            ErrorKind::Oversized,
            format!(
                "trace path is {} bytes; limit is {MAX_TRACE_PATH_BYTES}",
                path.len()
            ),
        ));
    }
    let format = match frame.get("format") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let Some(name) = v.as_str() else {
                return Err(invalid("`format` must be a string"));
            };
            Some(TraceFormat::from_name(name).ok_or_else(|| {
                invalid(format!("unknown trace format `{name}` (binary or ndjson)"))
            })?)
        }
    };
    let sample_log2 = match frame.get("sample") {
        None | Some(Json::Null) => 0,
        Some(v) => match v.as_u64() {
            Some(k) if k <= u64::from(pad_cache_sim::MAX_SAMPLE_LOG2) => k as u32,
            Some(k) => {
                return Err(invalid(format!(
                    "`sample` must be in 0..={}, got {k}",
                    pad_cache_sim::MAX_SAMPLE_LOG2
                )))
            }
            None => return Err(invalid("`sample` must be a non-negative integer")),
        },
    };
    Ok(Source::Trace {
        path: path.to_string(),
        format,
        sample_log2,
    })
}

fn parse_cache(c: &Json) -> Result<CacheConfig, RequestError> {
    let Json::Obj(_) = c else {
        return Err(invalid("`cache` must be an object"));
    };
    let field = |key: &str, default: u64| -> Result<u64, RequestError> {
        match c.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_u64()
                .ok_or_else(|| invalid(format!("cache `{key}` must be a non-negative integer"))),
        }
    };
    let size = field("size", 16 * 1024)?;
    let line = field("line", 32)?;
    let ways = field("ways", 1)?;
    let ways =
        u32::try_from(ways).map_err(|_| invalid(format!("cache `ways` out of range: {ways}")))?;
    CacheConfig::try_new(size, line, ways).map_err(|e| invalid(format!("bad cache geometry: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn req(text: &str) -> Result<Request, RequestError> {
        parse_request(&json::parse(text).expect("test frames are valid JSON"))
    }

    #[test]
    fn parses_a_full_advise_frame() {
        let r = req(r#"{"id": 7, "op": "advise", "kernel": "EXPL", "n": 64,
               "cache": {"size": 8192, "line": 64, "ways": 2},
               "algorithm": "padlite", "mode": "fast"}"#)
        .expect("valid frame");
        assert_eq!(r.id, Json::Int(7));
        let Op::Advise(a) = r.op else {
            panic!("expected advise")
        };
        assert_eq!(
            a.source,
            Source::Kernel {
                name: "EXPL".into(),
                n: Some(64)
            }
        );
        assert_eq!(a.cache.size(), 8192);
        assert_eq!(a.cache.line_size(), 64);
        assert_eq!(a.cache.ways(), 2);
        assert_eq!(a.algorithm, Algorithm::PadLite);
        assert_eq!(a.mode, Mode::Fast);
    }

    #[test]
    fn defaults_fill_in() {
        let r = req(r#"{"op": "advise", "kernel": "dot"}"#).expect("valid");
        let Op::Advise(a) = r.op else { panic!() };
        assert_eq!(a.cache, CacheConfig::paper_base());
        assert_eq!(a.algorithm, Algorithm::Pad);
        assert_eq!(a.mode, Mode::Auto);
        assert_eq!(r.id, Json::Null, "absent id echoes as null");
    }

    #[test]
    fn control_ops_parse() {
        for (text, want) in [
            (r#"{"op":"ping"}"#, Op::Ping),
            (r#"{"op":"stats"}"#, Op::Stats),
            (r#"{"op":"metrics"}"#, Op::Metrics),
            (r#"{"op":"shutdown"}"#, Op::Shutdown),
        ] {
            assert_eq!(req(text).expect("valid").op, want);
        }
    }

    #[test]
    fn every_invalid_shape_gets_a_typed_error() {
        let cases: &[(&str, ErrorKind)] = &[
            ("[1,2,3]", ErrorKind::Malformed),
            (r#""just a string""#, ErrorKind::Malformed),
            (r#"{"id": 1}"#, ErrorKind::Invalid),
            (r#"{"op": "frobnicate"}"#, ErrorKind::Invalid),
            (r#"{"op": "advise"}"#, ErrorKind::Invalid),
            (
                r#"{"op": "advise", "kernel": "a", "program": "b"}"#,
                ErrorKind::Invalid,
            ),
            (r#"{"op": "advise", "kernel": 7}"#, ErrorKind::Invalid),
            (
                r#"{"op": "advise", "kernel": "dot", "n": 0}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "kernel": "dot", "n": -5}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "kernel": "dot", "n": 99999999}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "kernel": "dot", "n": 1.5}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "kernel": "dot", "algorithm": "magic"}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "kernel": "dot", "mode": "wishful"}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "kernel": "dot", "cache": 42}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "kernel": "dot", "cache": {"size": 1000}}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "kernel": "dot", "cache": {"ways": -1}}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "kernel": "dot", "cache": {"size": 32, "line": 64}}"#,
                ErrorKind::Invalid,
            ),
        ];
        for (text, kind) in cases {
            match req(text) {
                Err(e) => assert_eq!(e.kind, *kind, "{text} -> {e:?}"),
                Ok(r) => panic!("{text} parsed as {r:?}"),
            }
        }
    }

    #[test]
    fn parses_the_search_algorithm_with_qualifiers() {
        let r = req(r#"{"op": "advise", "kernel": "dot", "algorithm": "search",
               "strategy": "anneal", "budget": 500, "seed": 42, "beam": 8}"#)
        .expect("valid frame");
        let Op::Advise(a) = r.op else {
            panic!("expected advise")
        };
        assert_eq!(a.algorithm, Algorithm::Search);
        assert_eq!(a.search.strategy, Some(pad_search::StrategyKind::Anneal));
        assert_eq!(a.search.budget, Some(500));
        assert_eq!(a.search.seed, Some(42));
        assert_eq!(a.search.beam, Some(8));

        // Defaults: all overrides absent.
        let r = req(r#"{"op": "advise", "kernel": "dot", "algorithm": "search"}"#).expect("valid");
        let Op::Advise(a) = r.op else { panic!() };
        assert_eq!(a.search, SearchParams::default());
    }

    #[test]
    fn search_qualifier_invalid_shapes_are_typed() {
        let cases: &[&str] = &[
            // Search fields without the search algorithm.
            r#"{"op": "advise", "kernel": "dot", "budget": 10}"#,
            r#"{"op": "advise", "kernel": "dot", "algorithm": "pad", "seed": 1}"#,
            // No layout space behind a raw address trace.
            r#"{"op": "advise", "trace": "t.bin", "algorithm": "search"}"#,
            // Out-of-range or mistyped overrides.
            r#"{"op": "advise", "kernel": "dot", "algorithm": "search", "strategy": "magic"}"#,
            r#"{"op": "advise", "kernel": "dot", "algorithm": "search", "strategy": 7}"#,
            r#"{"op": "advise", "kernel": "dot", "algorithm": "search", "budget": 0}"#,
            r#"{"op": "advise", "kernel": "dot", "algorithm": "search", "budget": 100001}"#,
            r#"{"op": "advise", "kernel": "dot", "algorithm": "search", "beam": 65}"#,
            r#"{"op": "advise", "kernel": "dot", "algorithm": "search", "seed": -1}"#,
        ];
        for text in cases {
            let err = req(text).expect_err(text);
            assert_eq!(err.kind, ErrorKind::Invalid, "{text}");
        }
    }

    #[test]
    fn parses_a_trace_source_with_qualifiers() {
        let r =
            req(r#"{"op": "advise", "trace": "/tmp/app.trc", "format": "ndjson", "sample": 6}"#)
                .expect("valid frame");
        let Op::Advise(a) = r.op else {
            panic!("expected advise")
        };
        assert_eq!(
            a.source,
            Source::Trace {
                path: "/tmp/app.trc".into(),
                format: Some(TraceFormat::Ndjson),
                sample_log2: 6,
            }
        );

        // Defaults: no format override, exact reuse analysis.
        let r = req(r#"{"op": "advise", "trace": "t.bin"}"#).expect("valid");
        let Op::Advise(a) = r.op else { panic!() };
        assert_eq!(
            a.source,
            Source::Trace {
                path: "t.bin".into(),
                format: None,
                sample_log2: 0
            }
        );
    }

    #[test]
    fn trace_source_invalid_shapes_are_typed() {
        let cases: &[(&str, ErrorKind)] = &[
            (r#"{"op": "advise", "trace": 7}"#, ErrorKind::Invalid),
            (r#"{"op": "advise", "trace": ""}"#, ErrorKind::Invalid),
            (
                r#"{"op": "advise", "trace": "t", "kernel": "dot"}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "trace": "t", "program": "x"}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "trace": "t", "format": "csv"}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "trace": "t", "format": 9}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "trace": "t", "sample": -1}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "trace": "t", "sample": 64}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "trace": "t", "sample": 1.5}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "trace": "t", "mode": "fast"}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "kernel": "dot", "sample": 4}"#,
                ErrorKind::Invalid,
            ),
            (
                r#"{"op": "advise", "kernel": "dot", "format": "ndjson"}"#,
                ErrorKind::Invalid,
            ),
        ];
        for (text, kind) in cases {
            match req(text) {
                Err(e) => assert_eq!(e.kind, *kind, "{text} -> {e:?}"),
                Ok(r) => panic!("{text} parsed as {r:?}"),
            }
        }

        let long = format!(
            r#"{{"op": "advise", "trace": "{}"}}"#,
            "p".repeat(MAX_TRACE_PATH_BYTES + 1)
        );
        assert_eq!(
            req(&long).expect_err("must refuse").kind,
            ErrorKind::Oversized
        );
    }

    #[test]
    fn oversized_inline_programs_are_refused_as_oversized() {
        let big = "x".repeat(MAX_PROGRAM_BYTES + 1);
        let frame = Json::Obj(vec![
            ("op".into(), Json::Str("advise".into())),
            ("program".into(), Json::Str(big)),
        ]);
        let err = parse_request(&frame).expect_err("must refuse");
        assert_eq!(err.kind, ErrorKind::Oversized);
    }

    #[test]
    fn wire_names_are_stable() {
        assert_eq!(ErrorKind::Overloaded.wire(), "overloaded");
        assert_eq!(ErrorKind::Timeout.wire(), "timeout");
        assert_eq!(ErrorKind::Internal.wire(), "internal");
        assert_eq!(Algorithm::PadLite.name(), "padlite");
        assert_eq!(Mode::Auto.name(), "auto");
    }
}
