//! The advisor's analysis engine: one validated request in, one
//! deterministic JSON answer out.
//!
//! Two rungs of a degradation ladder:
//!
//! * **Exact** — run the padding pipeline, then simulate both the
//!   original and the padded layout through the batch simulator with a
//!   reuse-distance sink attached, yielding measured miss rates plus a
//!   miss-ratio curve. This is the answer the paper's tables are made
//!   of, and it costs time proportional to the trace length.
//! * **Fast** — run the same pipeline but report the analytic miss-rate
//!   estimate instead of simulating. Costs microseconds, marked
//!   `degraded` when it stands in for an exact answer.
//!
//! The server picks the rung (deadline budget, retry attempt, request
//! mode); the engine only guarantees that for a fixed request and rung
//! the produced JSON is byte-identical across runs and processes — the
//! property the persistent answer cache replays rely on.

use pad_core::{DataLayout, PaddingPipeline};
use pad_ir::Program;
use pad_kernels::suite;
use pad_telemetry::{self as telemetry, Event, Value};
use pad_trace::{count_accesses, padding_config_for, simulate_batch, BatchRequest};
use pad_trace_ingest::replay::{ReplayRequest, Replayer};
use pad_trace_ingest::IngestError;

use crate::json::Json;
use crate::protocol::{
    AdviseRequest, Algorithm, ErrorKind, RequestError, Source, MAX_PROBLEM_SIZE,
};

/// Records one finished analysis in the live metrics layer:
/// `pad_engine_analysis_us{rung=...}` latency plus the run counter the
/// dashboard rates. Handles are registered once and cached.
fn record_analysis(rung: &'static str, start_us: u64) {
    use std::sync::OnceLock;
    if !telemetry::metrics_enabled() {
        return;
    }
    static HISTS: OnceLock<[std::sync::Arc<telemetry::LatencyHistogram>; 3]> = OnceLock::new();
    const RUNGS: [&str; 3] = ["exact", "fast", "trace"];
    let hists = HISTS.get_or_init(|| {
        RUNGS.map(|rung| {
            telemetry::registry().histogram_with(
                "pad_engine_analysis_us",
                "Padding-analysis latency in microseconds, per rung.",
                &[("rung", rung)],
            )
        })
    });
    let i = RUNGS.iter().position(|&r| r == rung).unwrap_or(0);
    hists[i].record(telemetry::now_us().saturating_sub(start_us));
}

/// Resolves a request's source into a program.
///
/// # Errors
///
/// `Invalid` for unknown kernel names, `Parse` (with the parser's
/// line-numbered message) for inline text that is not a loop-nest spec.
pub fn resolve(source: &Source) -> Result<Program, RequestError> {
    match source {
        Source::Kernel { name, n } => {
            let kernel = suite()
                .into_iter()
                .find(|k| k.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    RequestError::new(ErrorKind::Invalid, format!("unknown kernel `{name}`"))
                })?;
            let n = n.unwrap_or(kernel.default_n).clamp(1, MAX_PROBLEM_SIZE);
            Ok((kernel.spec)(n))
        }
        Source::Text(text) => {
            pad_ir::parse(text).map_err(|e| RequestError::new(ErrorKind::Parse, e.to_string()))
        }
        // Trace sources never resolve to a program — the server routes
        // them to [`advise_trace`] instead; reaching here is a bug
        // upstream, answered as a typed error rather than a panic.
        Source::Trace { .. } => Err(RequestError::new(
            ErrorKind::Invalid,
            "a `trace` source carries no loop nest to resolve",
        )),
    }
}

/// Trace length (accesses over both layouts) an exact answer for
/// `program` would simulate. The server divides this by its calibrated
/// simulation rate to decide whether exact fits the deadline budget.
pub fn exact_cost(program: &Program) -> u64 {
    // The padded layout replays the same reference stream, so the cost
    // is twice one walk. `count_accesses` itself is a cheap closed-form
    // pass over the loop structure, not a trace walk.
    count_accesses(program, &DataLayout::original(program)).saturating_mul(2)
}

/// Builds the search configuration for a request — library defaults
/// overridden by the request's [`crate::protocol::SearchParams`] — and
/// runs the global layout search. The exact rung confirms the promoted
/// frontier through simulation; the fast rung answers from analytic
/// scores only (reported degraded by the caller's ladder as usual).
fn run_search(
    program: &Program,
    request: &AdviseRequest,
    exact: bool,
) -> (pad_search::SearchResult, pad_search::SearchConfig) {
    let p = &request.search;
    let mut cfg = pad_search::SearchConfig {
        // The server already isolates each request in its own cell;
        // confirmation fan-out stays serial inside it.
        threads: 1,
        confirm_exact: exact,
        ..pad_search::SearchConfig::default()
    };
    if let Some(s) = p.strategy {
        cfg.strategy = s;
    }
    if let Some(b) = p.budget {
        cfg.budget = b;
    }
    if let Some(s) = p.seed {
        cfg.seed = s;
    }
    if let Some(w) = p.beam {
        cfg.beam_width = w;
    }
    (pad_search::search(program, &request.cache, &cfg), cfg)
}

/// One produced answer: the JSON body plus how it was produced.
#[derive(Debug, Clone)]
pub struct Advice {
    /// The `result` object (deterministic serialization).
    pub body: Json,
    /// True when the fast rung answered a request that wanted exact.
    pub degraded: bool,
    /// True when the batch simulator ran (exact rung).
    pub simulated: bool,
}

/// Runs the analysis at the chosen rung. `exact` selects the
/// simulation-backed rung; `degraded` records whether this rung is a
/// fallback (the caller knows; the engine just stamps it).
pub fn advise(program: &Program, request: &AdviseRequest, exact: bool, degraded: bool) -> Advice {
    let start = telemetry::now_us();
    let cache = &request.cache;
    let config = padding_config_for(cache);
    // The search algorithm produces its layout (and an extra response
    // section) through `pad-search`; the heuristics run their pipeline.
    let (layout, events, search_section) = match request.algorithm {
        Algorithm::Pad => {
            let outcome = PaddingPipeline::pad(config.clone()).run(program);
            (outcome.layout, outcome.events, None)
        }
        Algorithm::PadLite => {
            let outcome = PaddingPipeline::padlite(config.clone()).run(program);
            (outcome.layout, outcome.events, None)
        }
        Algorithm::Search => {
            let (result, cfg) = run_search(program, request, exact);
            let events: Vec<pad_core::PadEvent> = Vec::new();
            let section = Json::Obj(vec![
                ("strategy".into(), Json::Str(result.strategy.to_string())),
                ("seed".into(), Json::Int(cfg.seed as i64)),
                ("budget".into(), Json::Int(cfg.budget as i64)),
                ("candidates".into(), Json::Int(result.fast_evals as i64)),
                ("promoted".into(), Json::Int(result.promotions.len() as i64)),
                ("discarded".into(), Json::Int(result.discarded as i64)),
                (
                    "best_exact_misses".into(),
                    result
                        .best_exact
                        .map_or(Json::Null, |m| Json::Int(m as i64)),
                ),
            ]);
            (result.best.layout, events, Some(section))
        }
    };
    let original = DataLayout::original(program);

    let mut fields: Vec<(String, Json)> = vec![
        ("program".into(), Json::Str(program.name().to_string())),
        (
            "algorithm".into(),
            Json::Str(request.algorithm.name().to_string()),
        ),
        (
            "mode_used".into(),
            Json::Str(if exact { "exact" } else { "fast" }.into()),
        ),
        (
            "cache".into(),
            Json::Obj(vec![
                ("size".into(), Json::Int(cache.size() as i64)),
                ("line".into(), Json::Int(cache.line_size() as i64)),
                ("ways".into(), Json::Int(i64::from(cache.ways()))),
            ]),
        ),
    ];

    if exact {
        let request_batch = BatchRequest::new()
            .with_plain(*cache)
            .with_reuse(cache.line_size());
        let before = simulate_batch(program, &original, &request_batch);
        let after = simulate_batch(program, &layout, &request_batch);
        let (bs, as_) = (&before.plain[0], &after.plain[0]);
        fields.push(("original".into(), stats_json(bs.accesses, bs.misses)));
        fields.push(("padded".into(), stats_json(as_.accesses, as_.misses)));
        fields.push((
            "improvement_points".into(),
            Json::Num(bs.miss_rate_percent() - as_.miss_rate_percent()),
        ));
        fields.push(("mrc".into(), mrc_json(cache.line_size(), &before, &after)));
    } else {
        let before = pad_core::estimate_miss_rate(program, &original, &config);
        let after = pad_core::estimate_miss_rate(program, &layout, &config);
        fields.push((
            "original".into(),
            Json::Obj(vec![(
                "miss_rate_percent".into(),
                Json::Num(before.miss_rate_percent()),
            )]),
        ));
        fields.push((
            "padded".into(),
            Json::Obj(vec![(
                "miss_rate_percent".into(),
                Json::Num(after.miss_rate_percent()),
            )]),
        ));
        fields.push((
            "improvement_points".into(),
            Json::Num(before.miss_rate_percent() - after.miss_rate_percent()),
        ));
    }

    fields.push(("arrays".into(), arrays_json(program, &layout)));
    fields.push((
        "events".into(),
        Json::Arr(events.iter().map(|e| Json::Str(e.to_string())).collect()),
    ));
    if let Some(section) = search_section {
        fields.push(("search".into(), section));
    }

    telemetry::emit(|| {
        Event::span(
            start,
            "advisor",
            "advise",
            vec![
                ("program", Value::Str(program.name().to_string())),
                ("exact", Value::U64(u64::from(exact))),
            ],
        )
    });

    record_analysis(if exact { "exact" } else { "fast" }, start);

    Advice {
        body: Json::Obj(fields),
        degraded,
        simulated: exact,
    }
}

/// Diagnoses an on-disk address trace: one streaming pass through the
/// plain, XOR-indexed, victim-buffered, per-set-heat, and (possibly
/// SHARDS-sampled) reuse sinks, answered as a `result` body shaped like
/// [`advise`]'s but carrying measurements instead of padding advice.
///
/// Deterministic: for a fixed file and request the produced JSON is
/// byte-identical across runs (the reader is exact, the sampler's hash
/// is seedless, and serialization is ordered) — but the server never
/// persists trace answers, because the file behind the path can change
/// between requests.
///
/// # Errors
///
/// `Invalid` when the file cannot be opened or read, `Parse` when its
/// contents are not a well-formed trace (bad magic, truncated record,
/// garbage NDJSON line).
pub fn advise_trace(request: &AdviseRequest) -> Result<Advice, RequestError> {
    let Source::Trace {
        path,
        format,
        sample_log2,
    } = &request.source
    else {
        return Err(RequestError::new(
            ErrorKind::Invalid,
            "advise_trace requires a `trace` source",
        ));
    };
    let start = telemetry::now_us();
    let cache = &request.cache;

    /// Lines the fully-associative victim buffer holds in the
    /// victim-cache scenario (the paper's victim experiments use small
    /// single-digit buffers; 8 is the figure sweeps' default).
    const VICTIM_LINES: usize = 8;

    let xor_cache = cache.with_index_function(pad_cache_sim::IndexFunction::Xor);
    let replay_request = ReplayRequest::new()
        .with_plain(*cache)
        .with_plain(xor_cache)
        .with_victim(*cache, VICTIM_LINES)
        .with_heat(*cache)
        .with_reuse(cache.line_size(), *sample_log2);

    let mut replayer = Replayer::new(&replay_request);
    pad_trace_ingest::read_trace_file(std::path::Path::new(path), *format, |chunk| {
        replayer.feed(chunk)
    })
    .map_err(|e| {
        let kind = match e {
            IngestError::Io(_) => ErrorKind::Invalid,
            _ => ErrorKind::Parse,
        };
        RequestError::new(kind, format!("trace `{path}`: {e}"))
    })?;
    let results = replayer.finish();

    let plain = &results.plain[0];
    let xor = &results.plain[1];
    let victim = &results.victim[0];
    let heat = &results.heat[0];
    let reuse = results.reuse.as_ref().expect("reuse sink requested");

    let census = heat.class_counts();
    let hottest: Vec<Json> = heat
        .hottest()
        .into_iter()
        .take(8)
        .filter(|row| row.evictions > 0)
        .map(|row| {
            Json::Obj(vec![
                ("set".into(), Json::Int(row.set as i64)),
                ("accesses".into(), Json::Int(row.accesses as i64)),
                ("misses".into(), Json::Int(row.misses as i64)),
                ("evictions".into(), Json::Int(row.evictions as i64)),
                ("class".into(), Json::Str(row.class.as_str().to_string())),
            ])
        })
        .collect();

    let hist = &reuse.histogram;
    let mrc = Json::Arr(
        hist.pow2_capacities()
            .into_iter()
            .map(|lines| {
                Json::Obj(vec![
                    (
                        "capacity_bytes".into(),
                        Json::Int((lines * cache.line_size()) as i64),
                    ),
                    ("miss_ratio".into(), Json::Num(hist.miss_ratio_at(lines))),
                ])
            })
            .collect(),
    );

    let fields: Vec<(String, Json)> = vec![
        ("trace".into(), Json::Str(path.clone())),
        ("mode_used".into(), Json::Str("exact".into())),
        (
            "cache".into(),
            Json::Obj(vec![
                ("size".into(), Json::Int(cache.size() as i64)),
                ("line".into(), Json::Int(cache.line_size() as i64)),
                ("ways".into(), Json::Int(i64::from(cache.ways()))),
            ]),
        ),
        ("accesses".into(), Json::Int(results.accesses as i64)),
        ("plain".into(), stats_json(plain.accesses, plain.misses)),
        ("xor".into(), stats_json(xor.accesses, xor.misses)),
        (
            "victim".into(),
            Json::Obj(vec![
                ("lines".into(), Json::Int(VICTIM_LINES as i64)),
                ("misses".into(), Json::Int(victim.misses as i64)),
                (
                    "miss_rate_percent".into(),
                    Json::Num(victim.miss_rate_percent()),
                ),
            ]),
        ),
        (
            "heat".into(),
            Json::Obj(vec![
                ("very_hot_sets".into(), Json::Int(census[0] as i64)),
                ("hot_sets".into(), Json::Int(census[1] as i64)),
                ("cold_sets".into(), Json::Int(census[2] as i64)),
                ("very_cold_sets".into(), Json::Int(census[3] as i64)),
                ("evictions".into(), Json::Int(heat.total_evictions() as i64)),
                ("hottest".into(), Json::Arr(hottest)),
            ]),
        ),
        (
            "reuse".into(),
            Json::Obj(vec![
                (
                    "sample_log2".into(),
                    Json::Int(i64::from(reuse.sample_log2)),
                ),
                (
                    "sampled_accesses".into(),
                    Json::Int(reuse.sampled_accesses as i64),
                ),
                ("distinct_lines".into(), Json::Int(hist.cold() as i64)),
                ("mrc".into(), mrc),
            ]),
        ),
    ];

    telemetry::emit(|| {
        Event::span(
            start,
            "advisor",
            "advise_trace",
            vec![
                ("accesses", Value::U64(results.accesses)),
                ("sample_log2", Value::U64(u64::from(reuse.sample_log2))),
            ],
        )
    });

    record_analysis("trace", start);

    // Always simulation-backed, never degraded. The server still never
    // persists these answers: a trace source resolves to no program, so
    // no store fingerprint exists — correctly, since the file behind
    // the path can change between requests.
    Ok(Advice {
        body: Json::Obj(fields),
        degraded: false,
        simulated: true,
    })
}

fn stats_json(accesses: u64, misses: u64) -> Json {
    let pct = if accesses == 0 {
        0.0
    } else {
        100.0 * misses as f64 / accesses as f64
    };
    Json::Obj(vec![
        ("accesses".into(), Json::Int(accesses as i64)),
        ("misses".into(), Json::Int(misses as i64)),
        ("miss_rate_percent".into(), Json::Num(pct)),
    ])
}

/// Miss-ratio curve points for both layouts over the union of their
/// power-of-two capacity grids, in bytes.
fn mrc_json(
    line_size: u64,
    before: &pad_trace::BatchResults,
    after: &pad_trace::BatchResults,
) -> Json {
    let (hb, ha) = (&before.reuse[0], &after.reuse[0]);
    let mut capacities: Vec<u64> = hb
        .pow2_capacities()
        .into_iter()
        .chain(ha.pow2_capacities())
        .collect();
    capacities.sort_unstable();
    capacities.dedup();
    let points = capacities
        .into_iter()
        .map(|lines| {
            Json::Obj(vec![
                (
                    "capacity_bytes".into(),
                    Json::Int((lines * line_size) as i64),
                ),
                ("original".into(), Json::Num(hb.miss_ratio_at(lines))),
                ("padded".into(), Json::Num(ha.miss_ratio_at(lines))),
            ])
        })
        .collect();
    Json::Arr(points)
}

fn arrays_json(program: &Program, layout: &DataLayout) -> Json {
    let items = program
        .arrays_with_ids()
        .map(|(id, spec)| {
            let dims: Vec<Json> = layout.dims(id).iter().map(|d| Json::Int(d.size)).collect();
            let original: Vec<Json> = spec.dims().iter().map(|d| Json::Int(d.size)).collect();
            Json::Obj(vec![
                ("name".into(), Json::Str(spec.name().to_string())),
                ("base".into(), Json::Int(layout.base_addr(id) as i64)),
                ("dims".into(), Json::Arr(dims)),
                ("original_dims".into(), Json::Arr(original)),
            ])
        })
        .collect();
    Json::Arr(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Mode, SearchParams};
    use pad_cache_sim::CacheConfig;

    fn request(source: Source) -> AdviseRequest {
        AdviseRequest {
            source,
            cache: CacheConfig::paper_base(),
            algorithm: Algorithm::Pad,
            search: SearchParams::default(),
            mode: Mode::Auto,
        }
    }

    #[test]
    fn resolves_kernels_case_insensitively_and_rejects_unknowns() {
        let program = resolve(&Source::Kernel {
            name: "dot256k".into(),
            n: Some(128),
        })
        .expect("DOT256K exists (case-insensitive)");
        assert!(!program.arrays().is_empty());
        let err = resolve(&Source::Kernel {
            name: "no-such-kernel".into(),
            n: None,
        })
        .expect_err("must refuse");
        assert_eq!(err.kind, ErrorKind::Invalid);
    }

    #[test]
    fn inline_parse_failures_are_typed() {
        let err = resolve(&Source::Text("this is not a spec".into())).expect_err("must refuse");
        assert_eq!(err.kind, ErrorKind::Parse);
        assert!(!err.detail.is_empty(), "parser message is forwarded");
    }

    #[test]
    fn exact_and_fast_rungs_are_deterministic_and_distinct() {
        let source = Source::Kernel {
            name: "DOT256K".into(),
            n: Some(256),
        };
        let program = resolve(&source).expect("resolves");
        let req = request(source);

        let exact_a = advise(&program, &req, true, false);
        let exact_b = advise(&program, &req, true, false);
        assert_eq!(
            exact_a.body.to_string(),
            exact_b.body.to_string(),
            "exact answers are byte-identical across runs"
        );
        assert!(exact_a.simulated && !exact_a.degraded);

        let fast = advise(&program, &req, false, true);
        assert!(!fast.simulated && fast.degraded);
        assert_eq!(
            fast.body.get("mode_used").and_then(Json::as_str),
            Some("fast")
        );
        assert!(
            fast.body.get("mrc").is_none(),
            "fast rung has no measured curve"
        );
        assert!(
            exact_a.body.get("mrc").is_some(),
            "exact rung carries the curve"
        );
    }

    #[test]
    fn search_algorithm_is_deterministic_and_never_worse_than_pad() {
        let source = Source::Kernel {
            name: "JACOBI512".into(),
            n: Some(32),
        };
        let program = resolve(&source).expect("resolves");
        let mut req = request(source);
        req.algorithm = Algorithm::Search;
        req.search.budget = Some(100);

        let a = advise(&program, &req, true, false);
        let b = advise(&program, &req, true, false);
        assert_eq!(
            a.body.to_string(),
            b.body.to_string(),
            "search answers are byte-identical across runs"
        );
        let section = a.body.get("search").expect("search section present");
        assert_eq!(section.get("strategy").and_then(Json::as_str), Some("beam"));
        assert!(section
            .get("best_exact_misses")
            .and_then(Json::as_u64)
            .is_some());

        // Seeded with PAD's answer, the search can only tie or beat it.
        let mut pad_req = req.clone();
        pad_req.algorithm = Algorithm::Pad;
        pad_req.search = SearchParams::default();
        let pad = advise(&program, &pad_req, true, false);
        let misses = |advice: &Advice| {
            advice
                .body
                .get("padded")
                .and_then(|p| p.get("misses"))
                .and_then(Json::as_u64)
                .expect("padded misses present")
        };
        assert!(misses(&a) <= misses(&pad));

        // The fast rung still answers (no simulation), section intact.
        let fast = advise(&program, &req, false, true);
        assert!(!fast.simulated && fast.degraded);
        assert!(fast.body.get("search").is_some());
    }

    #[test]
    fn exact_answers_report_measured_improvement_on_dot() {
        // Figure 1's dot product at the paper's base cache: padding must
        // eliminate the cross-interference, so the measured improvement
        // is large and positive.
        let source = Source::Kernel {
            name: "DOT256K".into(),
            n: Some(4096),
        };
        let program = resolve(&source).expect("resolves");
        let advice = advise(&program, &request(source), true, false);
        let improvement = match advice.body.get("improvement_points") {
            Some(Json::Num(x)) => *x,
            other => panic!("improvement_points missing: {other:?}"),
        };
        assert!(
            improvement > 10.0,
            "dot improves by >10 points, got {improvement}"
        );
        let arrays = advice.body.get("arrays").expect("arrays present");
        let Json::Arr(items) = arrays else {
            panic!("arrays is a list")
        };
        assert_eq!(items.len(), program.arrays().len());
    }

    #[test]
    fn exact_cost_scales_with_problem_size() {
        let small = resolve(&Source::Kernel {
            name: "DOT256K".into(),
            n: Some(64),
        })
        .unwrap();
        let large = resolve(&Source::Kernel {
            name: "DOT256K".into(),
            n: Some(1024),
        })
        .unwrap();
        assert!(exact_cost(&large) > exact_cost(&small) * 8);
    }

    /// Records `name`'s reference stream (original layout) as a PTRC
    /// file under the OS temp dir and returns its path.
    fn record_kernel_trace(name: &str, n: i64, tag: &str) -> std::path::PathBuf {
        let source = Source::Kernel {
            name: name.into(),
            n: Some(n),
        };
        let program = resolve(&source).expect("kernel resolves");
        let layout = DataLayout::original(&program);
        let compiled = pad_trace::CompiledTrace::compile(&program, &layout);

        let mut path = std::env::temp_dir();
        path.push(format!(
            "pad-advisor-trace-{tag}-{}.trc",
            std::process::id()
        ));
        let mut file = std::fs::File::create(&path).expect("create trace file");
        let mut writer =
            pad_trace_ingest::binary::BinaryTraceWriter::new(&mut file).expect("header");
        compiled.for_each(|access| writer.write(access).expect("record"));
        writer.finish().expect("flush");
        path
    }

    fn trace_request(path: &std::path::Path, sample_log2: u32) -> AdviseRequest {
        request(Source::Trace {
            path: path.to_str().expect("utf-8 temp path").to_string(),
            format: None,
            sample_log2,
        })
    }

    #[test]
    fn trace_replay_reproduces_kernel_miss_counts_bit_identically() {
        let path = record_kernel_trace("DOT256K", 512, "exact");
        let req = trace_request(&path, 0);

        let advice = advise_trace(&req).expect("trace answers");
        assert!(advice.simulated && !advice.degraded);
        let again = advise_trace(&req).expect("trace answers twice");
        assert_eq!(
            advice.body.to_string(),
            again.body.to_string(),
            "trace answers are byte-identical across runs"
        );

        // The replayed plain-cache stats must equal the batch
        // simulator's answer for the kernel itself — same stream, same
        // simulator, different transport.
        let source = Source::Kernel {
            name: "DOT256K".into(),
            n: Some(512),
        };
        let program = resolve(&source).expect("resolves");
        let layout = DataLayout::original(&program);
        let batch = simulate_batch(
            &program,
            &layout,
            &BatchRequest::new().with_plain(CacheConfig::paper_base()),
        );
        let plain = advice.body.get("plain").expect("plain stats");
        assert_eq!(
            plain.get("accesses").and_then(Json::as_u64),
            Some(batch.plain[0].accesses)
        );
        assert_eq!(
            plain.get("misses").and_then(Json::as_u64),
            Some(batch.plain[0].misses)
        );
        assert_eq!(
            advice.body.get("accesses").and_then(Json::as_u64),
            Some(batch.plain[0].accesses)
        );

        // The answer carries every diagnostic section the replay ran.
        for key in ["xor", "victim", "heat", "reuse"] {
            assert!(advice.body.get(key).is_some(), "section `{key}` present");
        }
        let heat = advice.body.get("heat").unwrap();
        let census: u64 = ["very_hot_sets", "hot_sets", "cold_sets", "very_cold_sets"]
            .iter()
            .map(|k| heat.get(k).and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(census, CacheConfig::paper_base().num_sets());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_sampling_is_reported_and_errors_are_typed() {
        let path = record_kernel_trace("DOT256K", 256, "sampled");
        let advice = advise_trace(&trace_request(&path, 4)).expect("sampled trace answers");
        let reuse = advice.body.get("reuse").expect("reuse section");
        assert_eq!(reuse.get("sample_log2").and_then(Json::as_u64), Some(4));
        let sampled = reuse
            .get("sampled_accesses")
            .and_then(Json::as_u64)
            .unwrap();
        let total = advice.body.get("accesses").and_then(Json::as_u64).unwrap();
        assert!(sampled < total, "rate 1/16 samples a strict subset");
        std::fs::remove_file(&path).ok();

        let missing = trace_request(std::path::Path::new("/no/such/trace.trc"), 0);
        let err = advise_trace(&missing).expect_err("missing file refused");
        assert_eq!(err.kind, ErrorKind::Invalid);

        let mut garbage = std::env::temp_dir();
        garbage.push(format!(
            "pad-advisor-trace-garbage-{}.trc",
            std::process::id()
        ));
        std::fs::write(&garbage, b"not a trace at all").unwrap();
        let err = advise_trace(&trace_request(&garbage, 0)).expect_err("garbage refused");
        assert_eq!(err.kind, ErrorKind::Parse);
        std::fs::remove_file(&garbage).ok();
    }
}
