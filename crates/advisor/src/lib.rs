//! # pad-advisor: the fault-hardened layout-advisor service
//!
//! The rest of the workspace answers the paper's question *offline*:
//! run PAD or PADLITE over a loop nest, simulate, print a table. This
//! crate turns that analysis into a *service* with the operational
//! contract a compiler farm or CI fleet needs — analyze once, serve
//! millions, survive anything:
//!
//! * **NDJSON protocol** ([`protocol`]): one request frame per line in,
//!   one response line per frame out, over any `BufRead`/`Write` pair
//!   (the CLI wires stdin/stdout; tests wire in-memory pipes). Every
//!   malformed, oversized, or semantically invalid frame gets a typed
//!   error response — never silence, never a crash.
//! * **Fault isolation** ([`server`]): each analysis runs in its own
//!   isolation cell (the bench pool's `catch_unwind` + deadline
//!   watchdog). A panicking handler answers `internal`; a deadline
//!   blowout retries once on the fast rung or answers `timeout`.
//! * **Bounded admission**: a full queue sheds new work with an
//!   explicit `overloaded` response instead of buffering unboundedly.
//! * **Graceful degradation** ([`engine`]): exact simulation-backed
//!   answers (miss rates plus miss-ratio curves) when the deadline
//!   budget permits; the analytic fast rung, marked `degraded: true`,
//!   when it does not.
//! * **Crash-safe caching** ([`store`]): exact answers persist in a
//!   checksummed append-only journal and replay **bit-exactly** after a
//!   restart — a warm query never re-simulates, even across `kill -9`.
//!
//! Determinism is load-bearing throughout: fault schedules come from
//! seeded [`pad_bench::faults::FaultPlan`]s, deadlines trip on virtual
//! time, and the engine's serialization is byte-stable, so the entire
//! failure matrix is tested without sleeps or flakes.

#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod store;

pub use engine::{advise, exact_cost, resolve, Advice};
pub use json::{Json, JsonError};
pub use metrics::{advisor_metrics, snapshot_json, AdvisorMetrics};
/// The hand-rolled JSON layer now lives in `pad-trace-ingest` (both the
/// NDJSON trace reader and this protocol parse with it); re-exported so
/// `pad_advisor::json::...` paths keep working.
pub use pad_trace_ingest::json;
pub use protocol::{
    parse_request, AdviseRequest, Algorithm, ErrorKind, Mode, Op, Request, RequestError, Source,
};
pub use server::{
    Counters, Server, ServerConfig, DEADLINE_ENV, QUEUE_ENV, RATE_ENV, STORE_ENV, THREADS_ENV,
};
pub use store::Store;
