//! The advisor's live metric handles.
//!
//! Registered once on first use into the process-global
//! [`pad_telemetry::registry`] and cached in a `OnceLock`, so the
//! request path touches only its own atomics — never the registry
//! mutex. Every update site is gated on
//! [`pad_telemetry::metrics_enabled`]; with metrics off the whole layer
//! costs one relaxed load per site.
//!
//! Metric families (all `pad_advisor_`-prefixed):
//!
//! | metric                               | kind      | meaning                                   |
//! |--------------------------------------|-----------|-------------------------------------------|
//! | `requests_total{op=...}`             | counter   | frames received, per operation            |
//! | `request_latency_us{op=...}`         | histogram | receipt-to-response latency               |
//! | `errors_total{kind=...}`             | counter   | typed refusals, per [`ErrorKind`]         |
//! | `shed_total`                         | counter   | frames shed by the full admission queue   |
//! | `degraded_total`                     | counter   | fast-rung answers to exact-wanting asks   |
//! | `cache_hits_total`                   | counter   | answers spliced from the store            |
//! | `simulations_total`                  | counter   | exact (simulation-backed) analyses run    |
//! | `queue_depth`                        | gauge     | jobs waiting in the admission queue       |
//! | `inflight`                           | gauge     | jobs currently inside an isolation cell   |
//! | `slo_good_total` / `slo_bad_total`   | counter   | advise answers within / beyond the SLO    |
//!
//! SLO semantics: an advise request is *good* when it is answered `ok`
//! within `RIVERA_SLO_MS` ([`pad_telemetry::SLO_ENV`]); everything else
//! that reaches a response — typed errors, sheds, timeouts, or merely
//! slow successes — is *bad*. The burn ratio `bad / (good + bad)` is
//! derived by consumers (`padtool top`, dashboards), not stored.

use std::sync::{Arc, OnceLock};

use pad_telemetry::{self as telemetry, Counter, Gauge, LatencyHistogram};

use crate::json::Json;
use crate::protocol::ErrorKind;

/// The operations that get per-op request accounting.
pub const OPS: [&str; 4] = ["advise", "metrics", "ping", "stats"];

const ERROR_KINDS: [ErrorKind; 7] = [
    ErrorKind::Malformed,
    ErrorKind::Oversized,
    ErrorKind::Parse,
    ErrorKind::Invalid,
    ErrorKind::Overloaded,
    ErrorKind::Timeout,
    ErrorKind::Internal,
];

/// Cached handles to every advisor metric (see the module table).
pub struct AdvisorMetrics {
    requests: Vec<Arc<Counter>>,
    latency: Vec<Arc<LatencyHistogram>>,
    errors: Vec<Arc<Counter>>,
    /// Frames shed by the full admission queue.
    pub shed: Arc<Counter>,
    /// Fast-rung answers to requests that wanted exact.
    pub degraded: Arc<Counter>,
    /// Answers served from the persistent store.
    pub cache_hits: Arc<Counter>,
    /// Exact simulation-backed analyses run.
    pub simulations: Arc<Counter>,
    /// Jobs waiting in the admission queue.
    pub queue_depth: Arc<Gauge>,
    /// Jobs currently inside an isolation cell.
    pub inflight: Arc<Gauge>,
    /// Advise answers that met the SLO.
    pub slo_good: Arc<Counter>,
    /// Advise answers that missed it (errors and sheds included).
    pub slo_bad: Arc<Counter>,
    /// The SLO threshold in microseconds, captured once at first use
    /// (`None` when `RIVERA_SLO_MS=0` disabled SLO accounting).
    pub slo_us: Option<u64>,
}

impl AdvisorMetrics {
    fn register() -> Self {
        let r = telemetry::registry();
        let requests = OPS
            .iter()
            .map(|op| {
                r.counter_with(
                    "pad_advisor_requests_total",
                    "Frames received, per operation.",
                    &[("op", op)],
                )
            })
            .collect();
        let latency = OPS
            .iter()
            .map(|op| {
                r.histogram_with(
                    "pad_advisor_request_latency_us",
                    "Receipt-to-response latency in microseconds.",
                    &[("op", op)],
                )
            })
            .collect();
        let errors = ERROR_KINDS
            .iter()
            .map(|kind| {
                r.counter_with(
                    "pad_advisor_errors_total",
                    "Typed refusals, per error kind.",
                    &[("kind", kind.wire())],
                )
            })
            .collect();
        AdvisorMetrics {
            requests,
            latency,
            errors,
            shed: r.counter(
                "pad_advisor_shed_total",
                "Frames shed by the full admission queue.",
            ),
            degraded: r.counter(
                "pad_advisor_degraded_total",
                "Fast-rung answers to requests that wanted exact.",
            ),
            cache_hits: r.counter(
                "pad_advisor_cache_hits_total",
                "Answers served from the persistent store.",
            ),
            simulations: r.counter(
                "pad_advisor_simulations_total",
                "Exact (simulation-backed) analyses run.",
            ),
            queue_depth: r.gauge(
                "pad_advisor_queue_depth",
                "Jobs waiting in the admission queue.",
            ),
            inflight: r.gauge(
                "pad_advisor_inflight",
                "Jobs currently inside an isolation cell.",
            ),
            slo_good: r.counter(
                "pad_advisor_slo_good_total",
                "Advise answers within the RIVERA_SLO_MS threshold.",
            ),
            slo_bad: r.counter(
                "pad_advisor_slo_bad_total",
                "Advise answers beyond the threshold, errors and sheds included.",
            ),
            slo_us: telemetry::slo_threshold_us(),
        }
    }

    fn op_index(op: &str) -> usize {
        OPS.iter().position(|&o| o == op).unwrap_or(0)
    }

    /// The `requests_total` counter for `op`.
    pub fn requests(&self, op: &str) -> &Counter {
        &self.requests[Self::op_index(op)]
    }

    /// The `request_latency_us` histogram for `op`.
    pub fn latency(&self, op: &str) -> &LatencyHistogram {
        &self.latency[Self::op_index(op)]
    }

    /// The `errors_total` counter for `kind`.
    pub fn error(&self, kind: ErrorKind) -> &Counter {
        let i = ERROR_KINDS
            .iter()
            .position(|&k| k == kind)
            .expect("every ErrorKind is registered");
        &self.errors[i]
    }

    /// Closes the books on one advise request: records its latency and
    /// its SLO verdict (good only when it answered `ok` within the
    /// threshold).
    pub fn finish_advise(&self, start_us: u64, ok: bool) {
        let elapsed = telemetry::now_us().saturating_sub(start_us);
        self.latency("advise").record(elapsed);
        match self.slo_us {
            Some(slo) if ok && elapsed <= slo => self.slo_good.inc(),
            Some(_) => self.slo_bad.inc(),
            None => {}
        }
    }
}

/// The process-global advisor metric handles (registered on first
/// call).
pub fn advisor_metrics() -> &'static AdvisorMetrics {
    static METRICS: OnceLock<AdvisorMetrics> = OnceLock::new();
    METRICS.get_or_init(AdvisorMetrics::register)
}

/// The `metrics` op response body: a deterministic JSON rendering of
/// the whole registry. Counters and gauges flatten to
/// `name{label="v"}: value` maps in key order; histograms carry count,
/// sum, max, and the p50/p95/p99 the log2 buckets resolve. `slo_ms`
/// echoes the active threshold (`0` = disabled) so clients can compute
/// burn against the same line the server scored.
pub fn snapshot_json() -> Json {
    let snap = telemetry::registry().snapshot();
    let scalars = |metrics: &[telemetry::SnapshotMetric]| {
        Json::Obj(
            metrics
                .iter()
                .map(|m| {
                    let v = match m.value {
                        telemetry::SnapshotValue::Counter(v) => Json::Int(v as i64),
                        telemetry::SnapshotValue::Gauge(v) => Json::Int(v),
                        telemetry::SnapshotValue::Histogram(_) => unreachable!("scalar metrics"),
                    };
                    (m.flat_name(), v)
                })
                .collect(),
        )
    };
    let histograms = Json::Obj(
        snap.histograms
            .iter()
            .filter_map(|m| {
                let telemetry::SnapshotValue::Histogram(h) = &m.value else {
                    return None;
                };
                Some((
                    m.flat_name(),
                    Json::Obj(vec![
                        ("count".into(), Json::Int(h.histogram.count() as i64)),
                        ("sum".into(), Json::Int(h.sum as i64)),
                        ("max".into(), Json::Int(h.histogram.max() as i64)),
                        ("p50".into(), Json::Int(h.histogram.percentile(50.0) as i64)),
                        ("p95".into(), Json::Int(h.histogram.percentile(95.0) as i64)),
                        ("p99".into(), Json::Int(h.histogram.percentile(99.0) as i64)),
                    ]),
                ))
            })
            .collect(),
    );
    Json::Obj(vec![
        ("enabled".into(), Json::Bool(telemetry::metrics_enabled())),
        ("uptime_us".into(), Json::Int(telemetry::now_us() as i64)),
        (
            "slo_ms".into(),
            Json::Int(
                telemetry::slo_threshold_us()
                    .map(|us| (us / 1000) as i64)
                    .unwrap_or(0),
            ),
        ),
        ("counters".into(), scalars(&snap.counters)),
        ("gauges".into(), scalars(&snap.gauges)),
        ("histograms".into(), histograms),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_error_kind_has_a_counter() {
        let m = advisor_metrics();
        for kind in ERROR_KINDS {
            // Must not panic, and distinct kinds map to distinct counters.
            let _ = m.error(kind);
        }
        let a = m.error(ErrorKind::Timeout) as *const Counter;
        let b = m.error(ErrorKind::Internal) as *const Counter;
        assert_ne!(a, b);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_typed() {
        let m = advisor_metrics();
        m.requests("ping").inc();
        m.latency("ping").record(17);
        let a = snapshot_json().to_string();
        let b = snapshot_json().to_string();
        // uptime_us differs between calls; everything else must not.
        let strip = |s: &str| {
            let start = s.find("\"uptime_us\":").expect("uptime present");
            let end = s[start..].find(',').expect("more fields") + start;
            format!("{}{}", &s[..start], &s[end..])
        };
        assert_eq!(strip(&a), strip(&b));
        assert!(a.contains("\"counters\":{"), "{a}");
        // Flat names carry literal quotes, escaped in the JSON text.
        assert!(
            a.contains("pad_advisor_requests_total{op=\\\"ping\\\"}"),
            "{a}"
        );
        assert!(a.contains("\"p99\":"), "{a}");
    }
}
