//! The long-running advisor server: NDJSON frames in, NDJSON answers
//! out, and no input — malformed, oversized, adversarial, or merely
//! unlucky — takes the process down.
//!
//! # Architecture
//!
//! The calling thread reads frames and answers control ops (`ping`,
//! `stats`, `metrics`, `shutdown`) plus every refusal inline; `advise`
//! work is
//! handed to a pool of worker threads through a **bounded** queue.
//! When the queue is full the frame is shed immediately with a typed
//! `overloaded` response — the server never buffers unboundedly and
//! never blocks its intake on slow analyses.
//!
//! Each analysis runs fault-isolated through the bench pool's
//! single-cell outcome runner: a panicking handler is caught and
//! answered as a typed `internal` error; a deadline blowout is caught
//! by the pool's watchdog and — in `auto` mode — retried once on the
//! *fast* rung (`degraded: true`). The same virtual-clock machinery the
//! sweep harness uses makes deadline behavior testable without
//! sleeping: an injected `FaultPlan` delay trips the watchdog
//! deterministically.
//!
//! Exact answers are cached in a crash-safe persistent [`Store`]; a
//! cache hit splices the stored bytes into the response verbatim, so a
//! restarted server answers repeated queries bit-exactly without
//! re-simulating.

use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Mutex;
use std::time::Duration;

use pad_bench::faults::FaultPlan;
use pad_bench::pool::{self, CellCtx, CellOutcome, RunPolicy};
use pad_telemetry::{self as telemetry, Event, Value};

use crate::engine::{self, Advice};
use crate::json::{self, Json};
use crate::metrics::{self, advisor_metrics};
use crate::protocol::{
    parse_request, AdviseRequest, Algorithm, ErrorKind, Mode, Op, RequestError, Source,
};
use crate::store::Store;

/// Worker thread count (`0`/unset = the bench pool's thread count).
pub const THREADS_ENV: &str = "RIVERA_ADVISOR_THREADS";
/// Admission queue capacity (requests buffered beyond the in-flight
/// ones before shedding starts).
pub const QUEUE_ENV: &str = "RIVERA_ADVISOR_QUEUE";
/// Per-request deadline in milliseconds (`0` = no deadline).
pub const DEADLINE_ENV: &str = "RIVERA_ADVISOR_DEADLINE_MS";
/// Calibrated simulation rate (accesses/second) used to budget exact
/// answers against the deadline.
pub const RATE_ENV: &str = "RIVERA_ADVISOR_RATE";
/// Path of the persistent answer store (unset = in-memory only).
pub const STORE_ENV: &str = "RIVERA_ADVISOR_STORE";

/// Server tuning; build with [`ServerConfig::default`] or
/// [`ServerConfig::from_env`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Analysis worker threads.
    pub threads: usize,
    /// Bounded admission queue capacity.
    pub queue: usize,
    /// Per-request deadline (`None` = unbounded).
    pub deadline: Option<Duration>,
    /// Simulated accesses per second assumed when budgeting exact
    /// answers against the deadline.
    pub rate: f64,
    /// Largest accepted request frame, in bytes.
    pub max_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 2,
            queue: 64,
            deadline: Some(Duration::from_secs(2)),
            rate: 20e6,
            max_frame: 256 * 1024,
        }
    }
}

impl ServerConfig {
    /// Reads tuning from `RIVERA_ADVISOR_*` environment variables,
    /// falling back to defaults for unset or unparsable values.
    pub fn from_env() -> Self {
        let mut config = ServerConfig::default();
        let get = |name: &str| std::env::var(name).ok();
        if let Some(n) = get(THREADS_ENV).and_then(|v| v.parse::<usize>().ok()) {
            config.threads = if n == 0 { pool::thread_count() } else { n };
        }
        if let Some(n) = get(QUEUE_ENV).and_then(|v| v.parse::<usize>().ok()) {
            config.queue = n.max(1);
        }
        if let Some(ms) = get(DEADLINE_ENV).and_then(|v| v.parse::<u64>().ok()) {
            config.deadline = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(rate) = get(RATE_ENV).and_then(|v| v.parse::<f64>().ok()) {
            if rate.is_finite() && rate > 0.0 {
                config.rate = rate;
            }
        }
        config
    }
}

/// Monotonic request accounting, readable while the server runs (the
/// `stats` op snapshots these, and tests assert on them).
#[derive(Debug, Default)]
pub struct Counters {
    /// Advise frames admitted or shed.
    pub requests: AtomicU64,
    /// Successful answers (fresh or cached).
    pub ok: AtomicU64,
    /// Typed error answers of any kind.
    pub errors: AtomicU64,
    /// Frames shed by the full admission queue.
    pub shed: AtomicU64,
    /// Answers served from the store without re-analysis.
    pub cache_hits: AtomicU64,
    /// Exact (simulation-backed) analyses run.
    pub simulations: AtomicU64,
    /// Answers produced on the fast rung for requests that wanted exact.
    pub degraded: AtomicU64,
    /// Requests refused with `timeout`.
    pub timeouts: AtomicU64,
    /// Handler panics caught and answered as `internal`.
    pub panics: AtomicU64,
}

impl Counters {
    fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Current values as a JSON object (plus the store's replay count).
    fn snapshot(&self, replayed: usize) -> Json {
        let read = |f: &AtomicU64| Json::Int(f.load(Ordering::Relaxed) as i64);
        Json::Obj(vec![
            ("requests".into(), read(&self.requests)),
            ("ok".into(), read(&self.ok)),
            ("errors".into(), read(&self.errors)),
            ("shed".into(), read(&self.shed)),
            ("cache_hits".into(), read(&self.cache_hits)),
            ("simulations".into(), read(&self.simulations)),
            ("degraded".into(), read(&self.degraded)),
            ("timeouts".into(), read(&self.timeouts)),
            ("panics".into(), read(&self.panics)),
            ("replayed".into(), Json::Int(replayed as i64)),
        ])
    }
}

/// A test-injectable replacement for the engine: receives the frame
/// index and the validated request, runs *inside* the fault isolation
/// (so its panics and stalls exercise the real recovery paths).
pub type AdviseHandler =
    Box<dyn Fn(usize, &AdviseRequest) -> Result<Advice, RequestError> + Send + Sync>;

/// Counts one typed refusal in the live metrics layer (the legacy
/// [`Counters`] keep their own tally for the `stats` op).
fn metric_error(kind: ErrorKind) {
    if telemetry::metrics_enabled() {
        advisor_metrics().error(kind).inc();
    }
}

/// Records an inline-answered control op in the live metrics layer.
fn record_control_op(op: &str, received: u64) {
    if telemetry::metrics_enabled() {
        let m = advisor_metrics();
        m.requests(op).inc();
        m.latency(op)
            .record(telemetry::now_us().saturating_sub(received));
    }
}

/// One advise job queued for the worker pool.
struct Job {
    frame: usize,
    id: Json,
    request: AdviseRequest,
    /// Receipt timestamp ([`telemetry::now_us`]); request latency and
    /// the SLO verdict measure from here, so queue wait counts.
    received: u64,
}

/// The advisor server. One instance serves one connection at a time
/// (`serve` borrows the streams); state (store, counters) persists
/// across connections.
pub struct Server {
    config: ServerConfig,
    store: Store,
    counters: Counters,
    faults: FaultPlan,
    handler: Option<AdviseHandler>,
}

impl Server {
    /// A server with the given tuning and an in-memory store.
    pub fn new(config: ServerConfig) -> Server {
        Server::with_store(config, Store::in_memory())
    }

    /// A server answering from (and recording to) `store`.
    pub fn with_store(config: ServerConfig, store: Store) -> Server {
        Server {
            config,
            store,
            counters: Counters::default(),
            faults: FaultPlan::none(),
            handler: None,
        }
    }

    /// Injects a deterministic fault plan, keyed by request frame index:
    /// frame `i`'s analysis runs as if the plan's cell `i` faults were
    /// its own. Frame-level faults ([`FaultPlan::frame_fault`]) are
    /// applied by test harnesses to the input stream, not here.
    pub fn with_faults(mut self, faults: FaultPlan) -> Server {
        self.faults = faults;
        self
    }

    /// Replaces the analysis engine for tests (see [`AdviseHandler`]).
    pub fn with_handler(mut self, handler: AdviseHandler) -> Server {
        self.handler = Some(handler);
        self
    }

    /// The request accounting counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The answer store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Serves one connection: reads NDJSON frames from `input` until
    /// EOF or a `shutdown` op, writing one response line per frame to
    /// `output`. Control ops answer in receive order; advise answers
    /// complete in analysis order (clients correlate by `id`). On
    /// shutdown every admitted request is drained before the
    /// acknowledgment is written.
    ///
    /// # Errors
    ///
    /// Propagates read failures from `input`; write failures are
    /// swallowed (a vanished client must not kill the server loop).
    pub fn serve<R: BufRead, W: Write + Send>(&self, mut input: R, output: W) -> io::Result<()> {
        let out = Mutex::new(output);
        let (tx, rx) = mpsc::sync_channel::<Job>(self.config.queue);
        let rx = Mutex::new(rx);
        let mut shutdown_id: Option<Json> = None;

        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..self.config.threads.max(1) {
                scope.spawn(|| self.worker(&rx, &out));
            }
            let result = self.read_loop(&mut input, &out, &tx, &mut shutdown_id);
            // Closing the channel lets workers drain the queue and exit.
            drop(tx);
            result
        })?;

        if let Some(id) = shutdown_id {
            let mut line = String::from("{\"id\":");
            id.write(&mut line);
            line.push_str(",\"status\":\"ok\",\"bye\":true}");
            write_line(&out, &line);
        }
        Ok(())
    }

    fn read_loop<R: BufRead, W: Write>(
        &self,
        input: &mut R,
        out: &Mutex<W>,
        tx: &SyncSender<Job>,
        shutdown_id: &mut Option<Json>,
    ) -> io::Result<()> {
        let mut frame_index = 0usize;
        loop {
            let frame = match read_frame(input, self.config.max_frame)? {
                None => return Ok(()),
                Some(frame) => frame,
            };
            let index = frame_index;
            frame_index += 1;
            let received = telemetry::now_us();
            let text = match frame {
                Frame::Oversized => {
                    Counters::bump(&self.counters.errors);
                    metric_error(ErrorKind::Oversized);
                    write_error(
                        out,
                        &Json::Null,
                        ErrorKind::Oversized,
                        &format!("frame exceeds {} bytes", self.config.max_frame),
                    );
                    continue;
                }
                Frame::Binary => {
                    Counters::bump(&self.counters.errors);
                    metric_error(ErrorKind::Malformed);
                    write_error(out, &Json::Null, ErrorKind::Malformed, "frame is not UTF-8");
                    continue;
                }
                Frame::Line(text) => text,
            };
            if text.trim().is_empty() {
                continue;
            }
            let parsed = match json::parse(&text) {
                Ok(v) => v,
                Err(e) => {
                    Counters::bump(&self.counters.errors);
                    metric_error(ErrorKind::Malformed);
                    write_error(out, &Json::Null, ErrorKind::Malformed, &e.to_string());
                    continue;
                }
            };
            let request = match parse_request(&parsed) {
                Ok(r) => r,
                Err(e) => {
                    let id = parsed.get("id").cloned().unwrap_or(Json::Null);
                    Counters::bump(&self.counters.errors);
                    metric_error(e.kind);
                    write_error(out, &id, e.kind, &e.detail);
                    continue;
                }
            };
            match request.op {
                Op::Ping => {
                    let mut line = String::from("{\"id\":");
                    request.id.write(&mut line);
                    line.push_str(",\"status\":\"ok\",\"pong\":true}");
                    write_line(out, &line);
                    record_control_op("ping", received);
                }
                Op::Stats => {
                    let mut line = String::from("{\"id\":");
                    request.id.write(&mut line);
                    line.push_str(",\"status\":\"ok\",\"stats\":");
                    self.counters
                        .snapshot(self.store.replayed())
                        .write(&mut line);
                    line.push('}');
                    write_line(out, &line);
                    record_control_op("stats", received);
                }
                Op::Metrics => {
                    // The request counter bumps before the snapshot so
                    // the answer counts the poll that produced it.
                    if telemetry::metrics_enabled() {
                        advisor_metrics().requests("metrics").inc();
                    }
                    let mut line = String::from("{\"id\":");
                    request.id.write(&mut line);
                    line.push_str(",\"status\":\"ok\",\"metrics\":");
                    metrics::snapshot_json().write(&mut line);
                    line.push('}');
                    write_line(out, &line);
                    if telemetry::metrics_enabled() {
                        advisor_metrics()
                            .latency("metrics")
                            .record(telemetry::now_us().saturating_sub(received));
                    }
                }
                Op::Shutdown => {
                    *shutdown_id = Some(request.id);
                    return Ok(());
                }
                Op::Advise(advise) => {
                    Counters::bump(&self.counters.requests);
                    if telemetry::metrics_enabled() {
                        advisor_metrics().requests("advise").inc();
                    }
                    let job = Job {
                        frame: index,
                        id: request.id,
                        request: advise,
                        received,
                    };
                    match tx.try_send(job) {
                        Ok(()) => {
                            if telemetry::metrics_enabled() {
                                advisor_metrics().queue_depth.inc();
                            }
                        }
                        Err(TrySendError::Full(job)) => {
                            Counters::bump(&self.counters.shed);
                            Counters::bump(&self.counters.errors);
                            if telemetry::metrics_enabled() {
                                let m = advisor_metrics();
                                m.shed.inc();
                                m.error(ErrorKind::Overloaded).inc();
                                m.finish_advise(job.received, false);
                            }
                            telemetry::emit(|| {
                                Event::instant(
                                    "advisor",
                                    "shed",
                                    vec![("frame", Value::U64(job.frame as u64))],
                                )
                            });
                            write_error(
                                out,
                                &job.id,
                                ErrorKind::Overloaded,
                                "admission queue full; retry later",
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => return Ok(()),
                    }
                }
            }
        }
    }

    fn worker<W: Write>(&self, rx: &Mutex<Receiver<Job>>, out: &Mutex<W>) {
        loop {
            let job = match rx.lock() {
                Ok(rx) => rx.recv(),
                Err(_) => return,
            };
            match job {
                Ok(job) => {
                    if telemetry::metrics_enabled() {
                        let m = advisor_metrics();
                        m.queue_depth.dec();
                        m.inflight.inc();
                    }
                    self.handle(job, out);
                    if telemetry::metrics_enabled() {
                        advisor_metrics().inflight.dec();
                    }
                }
                Err(_) => return, // channel closed and drained
            }
        }
    }

    fn handle<W: Write>(&self, job: Job, out: &Mutex<W>) {
        let start = telemetry::now_us();
        let Job {
            frame,
            id,
            request,
            received,
        } = job;

        // Resolution happens outside the isolation cell so its typed
        // errors (unknown kernel, parse failure) answer directly. Trace
        // sources carry no loop nest: they skip resolution (and with it
        // store fingerprinting — trace files can change between
        // requests) and route to the streaming replay engine below.
        let is_trace = matches!(request.source, Source::Trace { .. });
        let resolved = match self.handler {
            Some(_) => None,
            None if is_trace => None,
            None => match engine::resolve(&request.source) {
                Ok(program) => Some(program),
                Err(e) => {
                    Counters::bump(&self.counters.errors);
                    if telemetry::metrics_enabled() {
                        let m = advisor_metrics();
                        m.error(e.kind).inc();
                        m.finish_advise(received, false);
                    }
                    write_error(out, &id, e.kind, &e.detail);
                    return;
                }
            },
        };

        // Cache: any request that accepts an exact answer can be served
        // from a stored one, including requests that would degrade now.
        // Search answers are never stored: the store key does not encode
        // the per-request strategy/budget/seed/beam overrides, so a
        // cached answer could shadow a differently-parameterized search.
        let fingerprint = resolved
            .as_ref()
            .filter(|_| request.mode != Mode::Fast && request.algorithm != Algorithm::Search)
            .map(|program| Store::key(&program.to_string(), &request.cache, request.algorithm));
        if let Some(fp) = fingerprint {
            if let Some(body) = self.store.get(fp) {
                Counters::bump(&self.counters.cache_hits);
                Counters::bump(&self.counters.ok);
                if telemetry::metrics_enabled() {
                    let m = advisor_metrics();
                    m.cache_hits.inc();
                    m.finish_advise(received, true);
                }
                telemetry::emit(|| {
                    Event::instant(
                        "advisor",
                        "cache_hit",
                        vec![("frame", Value::U64(frame as u64))],
                    )
                });
                write_ok(out, &id, true, false, &body);
                return;
            }
        }

        // Budget: `exact` mode always tries exact; `auto` tries exact
        // only when the deadline budget can afford the simulation, and
        // otherwise takes the fast rung immediately — marked degraded,
        // because the client wanted exact and got the fallback. A
        // deadline blowout in `auto` retries once, and the retry
        // attempt takes the fast rung (also degraded).
        let affordable = match (&resolved, self.config.deadline) {
            (None, _) | (_, None) => true, // custom handler / no deadline: no cost model
            (Some(program), Some(deadline)) => {
                let budget = (self.config.rate * deadline.as_secs_f64()) as u64;
                engine::exact_cost(program) <= budget
            }
        };
        let exact_first = match request.mode {
            Mode::Fast => false,
            Mode::Exact => true,
            Mode::Auto => affordable,
        };
        // Trace replay has no fast fallback rung, so `auto` gets no
        // second attempt: a deadline blowout answers as an error.
        let policy = RunPolicy {
            deadline: self.config.deadline,
            max_attempts: if request.mode == Mode::Auto && !is_trace {
                2
            } else {
                1
            },
            backoff: Duration::ZERO,
        };

        let faults = &self.faults;
        let outcomes = pool::run_cells_outcome_on(1, 1, &policy, |cell: CellCtx| {
            faults.inject(CellCtx {
                index: frame,
                attempt: cell.attempt,
            });
            let exact_now = exact_first && cell.attempt == 1;
            // Degraded = the fast rung standing in where `auto` ideally
            // answers exact (budget shortfall or a failed first attempt).
            let degraded = request.mode == Mode::Auto && !exact_now;
            match (&self.handler, &resolved) {
                (Some(handler), _) => handler(frame, &request),
                (None, Some(program)) => Ok(engine::advise(program, &request, exact_now, degraded)),
                (None, None) => {
                    debug_assert!(is_trace, "resolution errors returned above");
                    engine::advise_trace(&request)
                }
            }
        });
        let outcome = outcomes.into_iter().next().expect("one cell requested");

        telemetry::emit(|| {
            Event::span(
                start,
                "advisor",
                "request",
                vec![("frame", Value::U64(frame as u64))],
            )
        });

        self.finish(frame, &id, fingerprint, outcome, received, out);
    }

    fn finish<W: Write>(
        &self,
        frame: usize,
        id: &Json,
        fingerprint: Option<u64>,
        outcome: CellOutcome<Result<Advice, RequestError>>,
        received: u64,
        out: &Mutex<W>,
    ) {
        let metrics_on = telemetry::metrics_enabled();
        match flatten_outcome(outcome) {
            Flat::Answer(advice) => {
                if advice.simulated {
                    Counters::bump(&self.counters.simulations);
                    if metrics_on {
                        advisor_metrics().simulations.inc();
                    }
                }
                if advice.degraded {
                    Counters::bump(&self.counters.degraded);
                    if metrics_on {
                        advisor_metrics().degraded.inc();
                    }
                    telemetry::emit(|| {
                        Event::instant(
                            "advisor",
                            "degraded",
                            vec![("frame", Value::U64(frame as u64))],
                        )
                    });
                }
                let body = advice.body.to_string();
                // Only full-fidelity answers are worth persisting: a
                // degraded or handler-produced body must never shadow a
                // future exact one.
                if advice.simulated && !advice.degraded && self.handler.is_none() {
                    if let Some(fp) = fingerprint {
                        self.store.put(fp, &body);
                    }
                }
                Counters::bump(&self.counters.ok);
                if metrics_on {
                    advisor_metrics().finish_advise(received, true);
                }
                write_ok(out, id, false, advice.degraded, &body);
            }
            Flat::Refused(e) => {
                Counters::bump(&self.counters.errors);
                if metrics_on {
                    let m = advisor_metrics();
                    m.error(e.kind).inc();
                    m.finish_advise(received, false);
                }
                write_error(out, id, e.kind, &e.detail);
            }
            Flat::TimedOut => {
                Counters::bump(&self.counters.errors);
                Counters::bump(&self.counters.timeouts);
                if metrics_on {
                    let m = advisor_metrics();
                    m.error(ErrorKind::Timeout).inc();
                    m.finish_advise(received, false);
                }
                write_error(out, id, ErrorKind::Timeout, "deadline exceeded");
            }
            Flat::Panicked(detail) => {
                Counters::bump(&self.counters.errors);
                Counters::bump(&self.counters.panics);
                if metrics_on {
                    let m = advisor_metrics();
                    m.error(ErrorKind::Internal).inc();
                    m.finish_advise(received, false);
                }
                write_error(out, id, ErrorKind::Internal, &detail);
            }
        }
    }
}

/// The four ways an isolated analysis can end.
enum Flat {
    Answer(Advice),
    Refused(RequestError),
    TimedOut,
    Panicked(String),
}

fn flatten_outcome(outcome: CellOutcome<Result<Advice, RequestError>>) -> Flat {
    match outcome {
        CellOutcome::Ok(Ok(advice)) => Flat::Answer(advice),
        CellOutcome::Ok(Err(e)) => Flat::Refused(e),
        CellOutcome::Retried { outcome, .. } => flatten_outcome(*outcome),
        CellOutcome::TimedOut { .. } => Flat::TimedOut,
        CellOutcome::Panicked { message, .. } => {
            Flat::Panicked(format!("handler panicked: {message}"))
        }
    }
}

/// One frame read from the wire.
enum Frame {
    /// A complete UTF-8 line (without the newline).
    Line(String),
    /// The line exceeded the frame limit (already drained to newline).
    Oversized,
    /// The line was not valid UTF-8.
    Binary,
}

/// Reads one newline-terminated frame with a hard size cap. Oversized
/// frames are drained to their newline so the stream stays framed —
/// one huge frame costs one error response, not the connection.
fn read_frame<R: BufRead>(input: &mut R, max: usize) -> io::Result<Option<Frame>> {
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let buf = input.fill_buf()?;
        if buf.is_empty() {
            return Ok(if oversized {
                Some(Frame::Oversized)
            } else if line.is_empty() {
                None
            } else {
                Some(frame_from(line))
            });
        }
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (buf.len(), false),
        };
        if !oversized {
            let keep = chunk.min(max.saturating_sub(line.len()) + 1);
            line.extend_from_slice(&buf[..keep]);
            if line.len() > max {
                oversized = true;
                line.clear();
            }
        }
        input.consume(chunk);
        if done {
            return Ok(Some(if oversized {
                Frame::Oversized
            } else {
                frame_from(line)
            }));
        }
    }
}

fn frame_from(mut line: Vec<u8>) -> Frame {
    if line.last() == Some(&b'\n') {
        line.pop();
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    match String::from_utf8(line) {
        Ok(text) => Frame::Line(text),
        Err(_) => Frame::Binary,
    }
}

fn write_line<W: Write>(out: &Mutex<W>, line: &str) {
    if let Ok(mut out) = out.lock() {
        // A vanished client is the client's problem; the serve loop
        // keeps answering whoever is still listening.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

fn write_ok<W: Write>(out: &Mutex<W>, id: &Json, cached: bool, degraded: bool, body: &str) {
    let mut line = String::from("{\"id\":");
    id.write(&mut line);
    line.push_str(",\"status\":\"ok\",\"cached\":");
    line.push_str(if cached { "true" } else { "false" });
    line.push_str(",\"degraded\":");
    line.push_str(if degraded { "true" } else { "false" });
    line.push_str(",\"result\":");
    line.push_str(body);
    line.push('}');
    write_line(out, &line);
}

fn write_error<W: Write>(out: &Mutex<W>, id: &Json, kind: ErrorKind, detail: &str) {
    let mut line = String::from("{\"id\":");
    id.write(&mut line);
    line.push_str(",\"status\":\"error\",\"error\":");
    Json::Str(kind.wire().to_string()).write(&mut line);
    line.push_str(",\"detail\":");
    Json::Str(detail.to_string()).write(&mut line);
    line.push('}');
    write_line(out, &line);
}
