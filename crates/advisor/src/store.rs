//! The crash-safe persistent answer cache.
//!
//! Keys are FNV fingerprints of a canonical request description
//! (program text, cache geometry, algorithm); values are the engine's
//! serialized `result` bodies, stored verbatim. Persistence rides on
//! the bench crate's checkpoint [`Journal`]: append-only, flushed per
//! record, each record sealed with a checksum so a `kill -9` mid-write
//! can tear at most the record being written — never a previously
//! stored answer. On restart the journal replays and every stored
//! answer is served *bit-exactly* (the stored body bytes are spliced
//! into responses verbatim, not re-serialized).
//!
//! The journal's replay map loads once at open, so a session-level
//! overlay map serves answers recorded *during* this run; lookups
//! consult the overlay first, then the replayed records.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

use pad_bench::journal::{fingerprint, Journal};
use pad_cache_sim::CacheConfig;

use crate::protocol::Algorithm;

/// The persistent answer cache (see module docs).
#[derive(Debug)]
pub struct Store {
    journal: Option<Journal>,
    overlay: Mutex<HashMap<u64, String>>,
}

impl Store {
    /// An in-memory store: answers are cached for the process lifetime
    /// only. The server uses this when no store path is configured.
    pub fn in_memory() -> Store {
        Store {
            journal: None,
            overlay: Mutex::new(HashMap::new()),
        }
    }

    /// Opens (or creates) a persistent store at `path`, replaying every
    /// intact record from previous runs.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures opening or creating the journal file.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Store> {
        let journal = Journal::resume(path)?;
        Ok(Store {
            journal: Some(journal),
            overlay: Mutex::new(HashMap::new()),
        })
    }

    /// The canonical cache key for an analysis. The program's *display
    /// form* (not the request text) is fingerprinted, so the same nest
    /// reached via kernel name or inline spec shares an entry; the mode
    /// is excluded because only exact answers are stored.
    pub fn key(program_text: &str, cache: &CacheConfig, algorithm: Algorithm) -> u64 {
        let canonical = format!(
            "{}|{}/{}/{}|{}",
            program_text,
            cache.size(),
            cache.line_size(),
            cache.ways(),
            algorithm.name(),
        );
        fingerprint("advisor", &canonical)
    }

    /// Number of answers replayed from disk at open.
    pub fn replayed(&self) -> usize {
        self.journal.as_ref().map_or(0, Journal::replayable)
    }

    /// Looks up a stored answer body.
    pub fn get(&self, fp: u64) -> Option<String> {
        if let Ok(overlay) = self.overlay.lock() {
            if let Some(body) = overlay.get(&fp) {
                return Some(body.clone());
            }
        }
        self.journal.as_ref()?.lookup::<String>(fp)
    }

    /// Stores an answer body: visible to this session immediately,
    /// durable (when persistent) as soon as the journal's flush returns.
    pub fn put(&self, fp: u64, body: &str) {
        if let Some(journal) = &self.journal {
            journal.record_ok(fp, &body.to_string());
        }
        if let Ok(mut overlay) = self.overlay.lock() {
            overlay.insert(fp, body.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("pad-advisor-store-{name}-{}", std::process::id()));
        path
    }

    #[test]
    fn keys_distinguish_every_input_dimension() {
        let base = CacheConfig::paper_base();
        let other = CacheConfig::set_associative(16 * 1024, 32, 2);
        let k = Store::key("prog-a", &base, Algorithm::Pad);
        assert_eq!(k, Store::key("prog-a", &base, Algorithm::Pad), "stable");
        assert_ne!(k, Store::key("prog-b", &base, Algorithm::Pad), "program");
        assert_ne!(k, Store::key("prog-a", &other, Algorithm::Pad), "cache");
        assert_ne!(
            k,
            Store::key("prog-a", &base, Algorithm::PadLite),
            "algorithm"
        );
    }

    #[test]
    fn in_memory_round_trips_within_a_session() {
        let store = Store::in_memory();
        assert_eq!(store.get(42), None);
        store.put(42, r#"{"x":1}"#);
        assert_eq!(store.get(42).as_deref(), Some(r#"{"x":1}"#));
        assert_eq!(store.replayed(), 0);
    }

    #[test]
    fn persistent_store_replays_bit_exactly_after_reopen() {
        let path = scratch("replay");
        let _ = std::fs::remove_file(&path);
        let body = r#"{"program":"dot","miss_rate_percent":49.975609756097562}"#;
        {
            let store = Store::open(&path).expect("create");
            store.put(7, body);
            store.put(8, "second");
            // Same-session read-back comes from the overlay.
            assert_eq!(store.get(7).as_deref(), Some(body));
        }
        // "Restart": a fresh open replays from disk only.
        let store = Store::open(&path).expect("reopen");
        assert_eq!(store.replayed(), 2);
        assert_eq!(store.get(7).as_deref(), Some(body), "bytes replay exactly");
        assert_eq!(store.get(8).as_deref(), Some("second"));
        assert_eq!(store.get(9), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_record_costs_only_itself() {
        let path = scratch("torn");
        let _ = std::fs::remove_file(&path);
        {
            let store = Store::open(&path).expect("create");
            store.put(1, "kept");
            store.put(2, "torn away");
        }
        let bytes = std::fs::read(&path).expect("journal exists");
        std::fs::write(&path, &bytes[..bytes.len() - 9]).expect("tear");
        let store = Store::open(&path).expect("reopen torn");
        assert_eq!(store.get(1).as_deref(), Some("kept"));
        assert_eq!(store.get(2), None, "torn record must not replay");
        let _ = std::fs::remove_file(&path);
    }
}
