//! Kill-and-restart: a server populates its persistent answer store,
//! dies (simulated hard kill, including a torn final journal record),
//! and a fresh server over the same store answers the same queries
//! bit-exactly from replay — zero re-simulation.

mod common;

use std::io::{BufReader, Cursor};
use std::path::PathBuf;
use std::sync::atomic::Ordering;

use common::{by_id, status};
use pad_advisor::json::{self, Json};
use pad_advisor::{Server, ServerConfig, Store};

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("pad-advisor-restart-{name}-{}", std::process::id()));
    path
}

fn session(server: &Server, frames: &str) -> Vec<Json> {
    let mut out: Vec<u8> = Vec::new();
    server
        .serve(BufReader::new(Cursor::new(frames.to_string())), &mut out)
        .expect("in-memory serve cannot fail");
    String::from_utf8(out)
        .expect("responses are UTF-8")
        .lines()
        .map(|line| json::parse(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}")))
        .collect()
}

fn result_bodies(responses: &[Json], ids: &[i64]) -> Vec<String> {
    ids.iter()
        .map(|&id| {
            let r = by_id(responses, id);
            assert_eq!(status(r), "ok", "{r:?}");
            r.get("result")
                .expect("ok responses carry a result")
                .to_string()
        })
        .collect()
}

#[test]
fn a_restarted_server_replays_its_answers_bit_exactly() {
    let path = scratch("replay");
    let _ = std::fs::remove_file(&path);
    let config = ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    };
    let frames: String = (0..4i64)
        .map(|i| {
            format!(
                r#"{{"id": {i}, "op": "advise", "kernel": "DOT256K", "n": {}}}"#,
                300 + 10 * i
            ) + "\n"
        })
        .collect();

    // Life 1: cold queries simulate and persist.
    let before = {
        let server = Server::with_store(config.clone(), Store::open(&path).expect("create"));
        let responses = session(&server, &frames);
        assert_eq!(server.counters().simulations.load(Ordering::Relaxed), 4);
        assert_eq!(server.counters().cache_hits.load(Ordering::Relaxed), 0);
        result_bodies(&responses, &[0, 1, 2, 3])
        // The server is dropped without any shutdown handshake — the
        // journal's per-record flush is the only durability mechanism,
        // exactly as in a `kill -9`.
    };

    // The kill tears the journal mid-record: chop bytes off the tail so
    // the last record is torn. That answer is lost; the rest replay.
    let bytes = std::fs::read(&path).expect("journal exists");
    std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("tear");

    // Life 2: same queries, fresh process state, same store.
    let server = Server::with_store(config, Store::open(&path).expect("reopen"));
    assert_eq!(
        server.store().replayed(),
        3,
        "torn final record is dropped cleanly"
    );
    let responses = session(&server, &frames);
    let after = result_bodies(&responses, &[0, 1, 2, 3]);

    assert_eq!(
        before, after,
        "every answer replays bit-exactly across the restart"
    );
    for id in 0..3i64 {
        assert_eq!(
            by_id(&responses, id).get("cached"),
            Some(&Json::Bool(true)),
            "intact answers come from the store"
        );
    }
    assert_eq!(
        by_id(&responses, 3).get("cached"),
        Some(&Json::Bool(false)),
        "the torn answer is re-simulated"
    );
    let counters = server.counters();
    assert_eq!(counters.cache_hits.load(Ordering::Relaxed), 3);
    assert_eq!(
        counters.simulations.load(Ordering::Relaxed),
        1,
        "only the torn record re-simulates; warm answers never re-run the simulator"
    );

    // Life 3: the re-simulated record was re-persisted; now everything
    // replays and the simulator never runs at all.
    let server = Server::with_store(
        ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        },
        Store::open(&path).expect("reopen again"),
    );
    assert_eq!(server.store().replayed(), 4);
    let responses = session(&server, &frames);
    assert_eq!(result_bodies(&responses, &[0, 1, 2, 3]), before);
    assert_eq!(server.counters().simulations.load(Ordering::Relaxed), 0);
    assert_eq!(server.counters().cache_hits.load(Ordering::Relaxed), 4);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn cache_keys_unify_kernel_and_inline_forms_of_the_same_nest() {
    // The store keys on the *resolved* program, so an inline spec that
    // parses to the same nest as a registered kernel shares its cached
    // answer. (Asserted indirectly: two textual routes, one simulation.)
    let path = scratch("unify");
    let _ = std::fs::remove_file(&path);
    let config = ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    };
    let server = Server::with_store(config, Store::open(&path).expect("create"));

    // DOT256K at n=400 and its hand-written surface form.
    let inline = "program DOT256K\n\
                  array A(400)\n\
                  array B(400)\n\
                  do i = 1, 400\n\
                    s = s + A(i) * B(i)\n\
                  end\n";
    let mut inline_frame = String::from(r#"{"id": 2, "op": "advise", "program": "#);
    Json::Str(inline.to_string()).write(&mut inline_frame);
    inline_frame.push('}');

    let frames = format!(
        "{}\n{}\n",
        r#"{"id": 1, "op": "advise", "kernel": "DOT256K", "n": 400}"#, inline_frame
    );
    let responses = session(&server, &frames);
    let bodies = result_bodies(&responses, &[1, 2]);
    assert_eq!(bodies[0], bodies[1], "one nest, one answer");
    assert_eq!(server.counters().simulations.load(Ordering::Relaxed), 1);
    assert_eq!(server.counters().cache_hits.load(Ordering::Relaxed), 1);

    let _ = std::fs::remove_file(&path);
}
