//! Deterministic admission-control test: saturate the bounded queue
//! with a gated handler, verify shed requests answer `overloaded`
//! immediately while admitted and in-flight requests complete
//! untouched once the gate opens. No timing assumptions — the handler
//! signals when it holds a request, and the gate is an explicit
//! condvar.

mod common;

use std::io::BufReader;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use common::{by_id, error_kind, next_response, status, ChannelReader, LineWriter};
use pad_advisor::engine::Advice;
use pad_advisor::json::Json;
use pad_advisor::{Server, ServerConfig};

/// A gate the test opens once the queue is provably saturated.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let guard = self.open.lock().expect("gate lock");
        let (_guard, timeout) = self
            .cv
            .wait_timeout_while(guard, Duration::from_secs(30), |open| !*open)
            .expect("gate lock");
        assert!(!timeout.timed_out(), "gate never opened");
    }

    fn open(&self) {
        *self.open.lock().expect("gate lock") = true;
        self.cv.notify_all();
    }
}

#[test]
fn a_saturated_queue_sheds_new_requests_and_finishes_admitted_ones() {
    const WORKERS: usize = 1;
    const QUEUE: usize = 2;
    // Admission capacity: WORKERS in flight + QUEUE waiting.
    const ADMITTED: usize = WORKERS + QUEUE;
    const SHED: usize = 3;

    let gate = Arc::new(Gate::default());
    let (entered_tx, entered_rx) = mpsc::channel::<usize>();

    let handler_gate = Arc::clone(&gate);
    // Sender is !Sync and the handler runs inside the Sync isolation
    // closure, so the channel goes behind a mutex.
    let entered_tx = Mutex::new(entered_tx);
    let server = Server::new(ServerConfig {
        threads: WORKERS,
        queue: QUEUE,
        deadline: None, // the gate holds requests as long as it likes
        ..ServerConfig::default()
    })
    .with_handler(Box::new(move |frame, _request| {
        entered_tx
            .lock()
            .expect("channel lock")
            .send(frame)
            .expect("test is listening");
        handler_gate.wait();
        Ok(Advice {
            body: Json::Obj(vec![("frame".into(), Json::Int(frame as i64))]),
            degraded: false,
            simulated: false,
        })
    }));

    let (in_tx, in_rx) = mpsc::channel::<Vec<u8>>();
    let (out_tx, out_rx) = mpsc::channel::<String>();

    std::thread::scope(|scope| {
        scope.spawn(|| {
            server
                .serve(
                    BufReader::new(ChannelReader::new(in_rx)),
                    LineWriter::new(out_tx),
                )
                .expect("in-memory serve cannot fail");
        });

        let advise =
            |id: usize| format!(r#"{{"id": {id}, "op": "advise", "kernel": "DOT256K"}}"#) + "\n";

        // Request 0 occupies the only worker (the handler tells us so).
        in_tx.send(advise(0).into_bytes()).expect("server reading");
        assert_eq!(entered_rx.recv_timeout(Duration::from_secs(30)), Ok(0));

        // Requests 1..=QUEUE fill the queue. A ping after them proves
        // the reader thread has admitted both (frames are processed in
        // order, and ping answers inline from that same thread).
        for id in 1..ADMITTED {
            in_tx.send(advise(id).into_bytes()).expect("server reading");
        }
        in_tx
            .send(b"{\"id\": 100, \"op\": \"ping\"}\n".to_vec())
            .expect("server reading");
        let pong = next_response(&out_rx, 30);
        assert_eq!(pong.get("id").and_then(Json::as_i64), Some(100));
        assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));

        // The queue now holds QUEUE requests and the worker holds one:
        // the next SHED frames must bounce with `overloaded`, answered
        // inline (no waiting on the gate).
        for id in ADMITTED..ADMITTED + SHED {
            in_tx.send(advise(id).into_bytes()).expect("server reading");
            let shed = next_response(&out_rx, 30);
            assert_eq!(
                shed.get("id").and_then(Json::as_i64),
                Some(id as i64),
                "{shed:?}"
            );
            assert_eq!(status(&shed), "error");
            assert_eq!(error_kind(&shed), "overloaded");
        }

        // Open the gate: every admitted request completes untouched.
        gate.open();
        let mut finished = Vec::new();
        for _ in 0..ADMITTED {
            finished.push(next_response(&out_rx, 30));
        }
        for id in 0..ADMITTED {
            let r = by_id(&finished, id as i64);
            assert_eq!(status(r), "ok", "admitted request {id} completes: {r:?}");
            assert_eq!(
                r.get("result")
                    .and_then(|b| b.get("frame"))
                    .and_then(Json::as_i64),
                Some(id as i64),
                "the answer belongs to the request"
            );
        }

        drop(in_tx); // EOF: serve drains and returns
    });

    let counters = server.counters();
    assert_eq!(
        counters.requests.load(Ordering::Relaxed),
        (ADMITTED + SHED) as u64
    );
    assert_eq!(counters.shed.load(Ordering::Relaxed), SHED as u64);
    assert_eq!(counters.ok.load(Ordering::Relaxed), ADMITTED as u64);
}
