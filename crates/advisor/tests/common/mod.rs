//! Shared plumbing for the advisor integration suites: in-memory duplex
//! streams so a test can feed the server frames and read its answers
//! while `serve` runs on another thread, plus response-line helpers.
//!
//! Each integration binary compiles its own copy and uses a subset.
#![allow(dead_code)]

use std::io::{self, Read, Write};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::{Duration, Instant};

use pad_advisor::json::{self, Json};

/// A `Read` fed by an mpsc channel: `send` pushes bytes, dropping the
/// sender is EOF. Lets a test interleave writing requests with waiting
/// on responses (a plain `Cursor` cannot).
pub struct ChannelReader {
    rx: Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl ChannelReader {
    pub fn new(rx: Receiver<Vec<u8>>) -> Self {
        ChannelReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(bytes) => {
                    self.buf = bytes;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // senders dropped: EOF
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A `Write` that forwards each complete line to an mpsc channel, so a
/// test can block on the next response with a timeout.
pub struct LineWriter {
    tx: Sender<String>,
    pending: Vec<u8>,
}

impl LineWriter {
    pub fn new(tx: Sender<String>) -> Self {
        LineWriter {
            tx,
            pending: Vec::new(),
        }
    }
}

impl Write for LineWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.pending.extend_from_slice(buf);
        while let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.pending.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            let _ = self.tx.send(text);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Receives the next response line, parsed, panicking after `secs`
/// seconds — a dropped response is a test failure, not a hang.
pub fn next_response(rx: &Receiver<String>, secs: u64) -> Json {
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(line) => json::parse(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}")),
        Err(e) => panic!("no response within {secs}s: {e}"),
    }
}

/// Drains every remaining response until the channel closes (the serve
/// loop returned), with an overall timeout.
pub fn drain_responses(rx: &Receiver<String>, secs: u64) -> Vec<Json> {
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut out = Vec::new();
    loop {
        match rx.try_recv() {
            Ok(line) => out
                .push(json::parse(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))),
            Err(TryRecvError::Disconnected) => return out,
            Err(TryRecvError::Empty) => {
                if Instant::now() > deadline {
                    panic!("serve loop still running after {secs}s; got {out:?}");
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// The response whose `id` equals `id`, from a drained batch.
pub fn by_id(responses: &[Json], id: i64) -> &Json {
    responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_i64) == Some(id))
        .unwrap_or_else(|| panic!("no response with id {id} in {responses:?}"))
}

/// Field accessors that panic with context instead of unwrapping blind.
pub fn status(response: &Json) -> &str {
    response
        .get("status")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response without status: {response:?}"))
}

pub fn error_kind(response: &Json) -> &str {
    response
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response without error kind: {response:?}"))
}
