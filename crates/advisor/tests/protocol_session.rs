//! End-to-end protocol sessions over in-memory streams: well-formed
//! requests answer, malformed ones get typed errors, warm queries hit
//! the cache, and the server survives all of it in one connection.

mod common;

use std::io::{BufReader, Cursor};
use std::sync::mpsc;

use common::{by_id, error_kind, next_response, status, ChannelReader, LineWriter};
use pad_advisor::json::{self, Json};
use pad_advisor::{Server, ServerConfig};

/// Runs one complete scripted session and returns the parsed responses.
fn session(server: &Server, frames: &str) -> Vec<Json> {
    let mut out: Vec<u8> = Vec::new();
    server
        .serve(BufReader::new(Cursor::new(frames.to_string())), &mut out)
        .expect("in-memory serve cannot fail");
    String::from_utf8(out)
        .expect("responses are UTF-8")
        .lines()
        .map(|line| json::parse(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}")))
        .collect()
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    }
}

#[test]
fn a_mixed_session_answers_every_frame() {
    let server = Server::new(quick_config());
    let frames = concat!(
        r#"{"id": 1, "op": "ping"}"#,
        "\n",
        r#"{"id": 2, "op": "advise", "kernel": "DOT256K", "n": 512}"#,
        "\n",
        "\n", // blank lines are ignored, not errors
        r#"{"id": 3, "op": "advise", "kernel": "EXPL512", "n": 64, "algorithm": "padlite", "mode": "fast"}"#,
        "\n",
        r#"{"id": 4, "op": "stats"}"#,
        "\n",
        r#"{"id": 5, "op": "shutdown"}"#,
        "\n",
    );
    let responses = session(&server, frames);
    assert_eq!(responses.len(), 5, "every frame answered: {responses:?}");

    assert_eq!(by_id(&responses, 1).get("pong"), Some(&Json::Bool(true)));

    let advise = by_id(&responses, 2);
    assert_eq!(status(advise), "ok");
    assert_eq!(advise.get("cached"), Some(&Json::Bool(false)));
    let result = advise.get("result").expect("ok responses carry a result");
    assert_eq!(
        result.get("program").and_then(Json::as_str),
        Some("DOT256K")
    );
    assert_eq!(
        result.get("mode_used").and_then(Json::as_str),
        Some("exact")
    );
    assert!(
        result.get("mrc").is_some(),
        "exact answers carry a miss-ratio curve"
    );

    let fast = by_id(&responses, 3);
    assert_eq!(status(fast), "ok");
    assert_eq!(
        fast.get("result")
            .and_then(|r| r.get("mode_used"))
            .and_then(Json::as_str),
        Some("fast")
    );
    assert_eq!(
        fast.get("degraded"),
        Some(&Json::Bool(false)),
        "fast-by-request is not degradation"
    );

    // Stats answers inline from the reader thread, so its counters may
    // precede queued work finishing; exact accounting is asserted in
    // the streamed warm-cache test below.
    assert!(by_id(&responses, 4).get("stats").is_some());

    assert_eq!(by_id(&responses, 5).get("bye"), Some(&Json::Bool(true)));
}

#[test]
fn inline_programs_are_analyzed_and_parse_errors_are_typed() {
    let server = Server::new(quick_config());
    let spec = "program inline_dot\n\
                array A(4096)\n\
                array B(4096)\n\
                do i = 1, 4096\n\
                  s = s + A(i) * B(i)\n\
                end\n";
    let mut frame = String::from(r#"{"id": 1, "op": "advise", "program": "#);
    Json::Str(spec.to_string()).write(&mut frame);
    frame.push('}');
    frame.push('\n');
    frame.push_str(r#"{"id": 2, "op": "advise", "program": "for ever and ever"}"#);
    frame.push('\n');

    let responses = session(&server, &frame);
    assert_eq!(responses.len(), 2);
    assert_eq!(status(by_id(&responses, 1)), "ok", "{responses:?}");
    let err = by_id(&responses, 2);
    assert_eq!(status(err), "error");
    assert_eq!(error_kind(err), "parse");
    assert!(
        !err.get("detail")
            .and_then(Json::as_str)
            .unwrap_or("")
            .is_empty(),
        "parser diagnostics are forwarded"
    );
}

#[test]
fn adversarial_frames_get_typed_errors_and_never_kill_the_session() {
    let server = Server::new(quick_config());
    let huge = "z".repeat(ServerConfig::default().max_frame + 10);
    let frames = format!(
        "this is not json\n\
         {huge}\n\
         {{\"id\": 1, \"op\": \"advise\"}}\n\
         {{\"id\": 2, \"op\": \"advise\", \"kernel\": \"NOPE\"}}\n\
         {{\"id\": 3, \"op\": \"advise\", \"kernel\": \"DOT256K\", \"cache\": {{\"size\": 1000}}}}\n\
         {{\"id\": 4, \"op\": \"ping\"}}\n"
    );
    let responses = session(&server, &frames);
    assert_eq!(responses.len(), 6, "every frame answered: {responses:?}");
    // The unknown-kernel refusal comes from a worker thread, so error
    // order can interleave; assert the multiset, not positions.
    let mut kinds: Vec<&str> = responses
        .iter()
        .filter(|r| status(r) == "error")
        .map(error_kind)
        .collect();
    kinds.sort_unstable();
    assert_eq!(
        kinds,
        ["invalid", "invalid", "invalid", "malformed", "oversized"]
    );
    assert_eq!(
        by_id(&responses, 4).get("pong"),
        Some(&Json::Bool(true)),
        "the session survives to answer the ping"
    );
}

#[test]
fn trace_sources_answer_end_to_end_and_never_cache() {
    // Record DOT256K's reference stream to a PTRC file, then advise on
    // the trace through the full server loop: the reply must carry the
    // replay diagnostics, reproduce the kernel's access count, and
    // never answer from the store (the file behind a path can change).
    let program = pad_kernels::suite()
        .into_iter()
        .find(|k| k.name == "DOT256K")
        .map(|k| (k.spec)(256))
        .expect("DOT256K is a built-in kernel");
    let layout = pad_core::DataLayout::original(&program);
    let compiled = pad_trace::CompiledTrace::compile(&program, &layout);

    let mut path = std::env::temp_dir();
    path.push(format!(
        "pad-advisor-session-trace-{}.trc",
        std::process::id()
    ));
    let mut file = std::fs::File::create(&path).expect("create trace file");
    let mut writer = pad_trace_ingest::binary::BinaryTraceWriter::new(&mut file).expect("header");
    compiled.for_each(|access| writer.write(access).expect("record"));
    writer.finish().expect("flush");
    drop(file);
    let path_json = {
        let mut s = String::new();
        Json::Str(path.to_str().expect("utf-8 temp path").to_string()).write(&mut s);
        s
    };

    let server = Server::new(quick_config());
    let frames = format!(
        "{{\"id\": 1, \"op\": \"advise\", \"trace\": {path_json}, \"sample\": 0}}\n\
         {{\"id\": 2, \"op\": \"advise\", \"trace\": {path_json}}}\n\
         {{\"id\": 3, \"op\": \"advise\", \"trace\": {path_json}, \"kernel\": \"DOT256K\"}}\n\
         {{\"id\": 4, \"op\": \"advise\", \"trace\": {path_json}, \"mode\": \"fast\"}}\n\
         {{\"id\": 5, \"op\": \"advise\", \"trace\": \"/no/such/file.trc\"}}\n"
    );
    let responses = session(&server, &frames);
    std::fs::remove_file(&path).ok();
    assert_eq!(responses.len(), 5, "every frame answered: {responses:?}");

    for id in [1, 2] {
        let ok = by_id(&responses, id);
        assert_eq!(status(ok), "ok", "{ok:?}");
        assert_eq!(
            ok.get("cached"),
            Some(&Json::Bool(false)),
            "trace answers never replay"
        );
        assert_eq!(ok.get("degraded"), Some(&Json::Bool(false)));
        let result = ok.get("result").expect("result body");
        assert_eq!(
            result.get("mode_used").and_then(Json::as_str),
            Some("exact")
        );
        assert_eq!(
            result.get("accesses").and_then(Json::as_u64),
            Some(compiled.count())
        );
        for key in ["plain", "xor", "victim", "heat", "reuse"] {
            assert!(
                result.get(key).is_some(),
                "section `{key}` present: {result:?}"
            );
        }
    }
    assert_eq!(
        by_id(&responses, 1)
            .get("result")
            .expect("body")
            .to_string(),
        by_id(&responses, 2)
            .get("result")
            .expect("body")
            .to_string(),
        "trace answers are deterministic even without the store"
    );

    assert_eq!(
        error_kind(by_id(&responses, 3)),
        "invalid",
        "kernel+trace is ambiguous"
    );
    assert_eq!(
        error_kind(by_id(&responses, 4)),
        "invalid",
        "fast cannot answer a trace"
    );
    assert_eq!(
        error_kind(by_id(&responses, 5)),
        "invalid",
        "missing file is refused"
    );
}

#[test]
fn warm_queries_answer_from_cache_without_resimulation() {
    // Streamed session: each response is awaited before the next frame
    // goes in, so the stats snapshot at the end is deterministic.
    let server = Server::new(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let (in_tx, in_rx) = mpsc::channel::<Vec<u8>>();
    let (out_tx, out_rx) = mpsc::channel::<String>();

    std::thread::scope(|scope| {
        scope.spawn(|| {
            server
                .serve(
                    BufReader::new(ChannelReader::new(in_rx)),
                    LineWriter::new(out_tx),
                )
                .expect("in-memory serve cannot fail");
        });

        let advise = r#"{"id": IDX, "op": "advise", "kernel": "DOT256K", "n": 512}"#;
        let mut bodies = Vec::new();
        for i in 1..=3i64 {
            in_tx
                .send((advise.replace("IDX", &i.to_string()) + "\n").into_bytes())
                .expect("server is reading");
            let response = next_response(&out_rx, 30);
            assert_eq!(response.get("id").and_then(Json::as_i64), Some(i));
            assert_eq!(status(&response), "ok");
            assert_eq!(
                response.get("cached"),
                Some(&Json::Bool(i > 1)),
                "first answer is cold, the rest replay"
            );
            bodies.push(response.get("result").expect("result body").to_string());
        }
        assert_eq!(bodies[0], bodies[1], "cached answers are bit-exact");
        assert_eq!(bodies[0], bodies[2], "cached answers are bit-exact");

        in_tx
            .send(
                br#"{"id": 9, "op": "stats"}
"#
                .to_vec(),
            )
            .expect("server is reading");
        let stats = next_response(&out_rx, 30);
        let stats = stats.get("stats").expect("stats body");
        assert_eq!(stats.get("simulations").and_then(Json::as_i64), Some(1));
        assert_eq!(stats.get("cache_hits").and_then(Json::as_i64), Some(2));
        assert_eq!(stats.get("ok").and_then(Json::as_i64), Some(3));
        assert_eq!(stats.get("errors").and_then(Json::as_i64), Some(0));
        drop(in_tx); // EOF ends the serve loop
    });
}
