//! The advisor fault-injection suite: a deterministic session where
//! handlers panic, deadlines blow out, frames arrive corrupted, and the
//! degradation ladder engages — and every single request still gets a
//! correct, typed answer. No sleeps: deadlines trip on virtual time,
//! fault schedules are fixed per frame index.

mod common;

use std::io::{BufReader, Cursor};
use std::sync::atomic::Ordering;
use std::time::Duration;

use common::{by_id, error_kind, status};
use pad_advisor::json::{self, Json};
use pad_advisor::{Server, ServerConfig};
use pad_bench::faults::{FaultPlan, FrameFault};

fn advise_frame(id: usize) -> String {
    // Unique problem size per frame: identical requests would answer
    // from the cache before the injected cell fault could fire.
    format!(
        r#"{{"id": {id}, "op": "advise", "kernel": "DOT256K", "n": {}}}"#,
        256 + id
    )
}

/// Renders an NDJSON stream of `count` advise frames with the plan's
/// frame faults applied — the server sees the corrupted bytes exactly
/// as a broken client would send them.
fn render_stream(count: usize, plan: &FaultPlan, max_frame: usize) -> String {
    let mut stream = String::new();
    for index in 0..count {
        let frame = advise_frame(index);
        match plan.frame_fault(index) {
            None => stream.push_str(&frame),
            Some(FrameFault::Garbage) => stream.push_str("\u{1}\u{2} not json at all"),
            Some(FrameFault::Truncated) => stream.push_str(&frame[..frame.len() / 2]),
            Some(FrameFault::Oversized) => {
                stream.push_str(&frame[..frame.len() - 1]);
                stream.push_str(&" ".repeat(max_frame));
                stream.push('}');
            }
        }
        stream.push('\n');
    }
    stream
}

fn serve_session(server: &Server, stream: &str) -> Vec<Json> {
    let mut out: Vec<u8> = Vec::new();
    server
        .serve(BufReader::new(Cursor::new(stream.to_string())), &mut out)
        .expect("in-memory serve cannot fail");
    String::from_utf8(out)
        .expect("responses are UTF-8")
        .lines()
        .map(|line| json::parse(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}")))
        .collect()
}

#[test]
fn every_faulted_request_gets_exactly_one_typed_answer() {
    // 16 frames; fault schedule keyed by frame index:
    //   3  -> handler panics hard           -> `internal`
    //   5  -> transient panic, retry wins   -> ok (degraded rung)
    //   7  -> virtual delay beyond deadline -> `timeout` (both attempts
    //         charge the delay, so the fast retry times out too)
    //   9  -> garbage bytes on the wire     -> `malformed`
    //   11 -> frame torn mid-token          -> `malformed`
    //   13 -> frame inflated past the cap   -> `oversized`
    let plan = FaultPlan::none()
        .panic_at(3)
        .flaky_at(5, 1)
        .delay_at(7, Duration::from_secs(60))
        .frame_at(9, FrameFault::Garbage)
        .frame_at(11, FrameFault::Truncated)
        .frame_at(13, FrameFault::Oversized);
    let config = ServerConfig {
        threads: 2,
        deadline: Some(Duration::from_secs(5)),
        ..ServerConfig::default()
    };
    let max_frame = config.max_frame;
    let server = Server::new(config).with_faults(plan.clone());
    let stream = render_stream(16, &plan, max_frame);
    let responses = serve_session(&server, &stream);

    assert_eq!(responses.len(), 16, "zero dropped-without-response answers");

    for index in 0..16usize {
        match index {
            3 => {
                let r = by_id(&responses, 3);
                assert_eq!(status(r), "error");
                assert_eq!(error_kind(r), "internal");
                let detail = r.get("detail").and_then(Json::as_str).unwrap_or("");
                assert!(
                    detail.contains("injected fault"),
                    "panic payload surfaces: {detail}"
                );
            }
            5 => {
                let r = by_id(&responses, 5);
                assert_eq!(status(r), "ok", "transient fault recovers on retry: {r:?}");
                assert_eq!(
                    r.get("degraded"),
                    Some(&Json::Bool(true)),
                    "the retry attempt takes the fast rung"
                );
                assert_eq!(
                    r.get("result")
                        .and_then(|b| b.get("mode_used"))
                        .and_then(Json::as_str),
                    Some("fast")
                );
            }
            7 => {
                let r = by_id(&responses, 7);
                assert_eq!(status(r), "error");
                assert_eq!(error_kind(r), "timeout");
            }
            9 | 11 => {
                // Corrupted frames carry no recoverable id; their error
                // responses have id null and are checked in aggregate.
            }
            13 => {}
            index => {
                let r = by_id(&responses, index as i64);
                assert_eq!(status(r), "ok", "clean frame {index} answers: {r:?}");
                assert_eq!(r.get("degraded"), Some(&Json::Bool(false)));
            }
        }
    }

    let anonymous: Vec<&str> = responses
        .iter()
        .filter(|r| r.get("id") == Some(&Json::Null))
        .map(error_kind)
        .collect();
    let mut sorted = anonymous.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        ["malformed", "malformed", "oversized"],
        "wire corruption maps to typed errors: {anonymous:?}"
    );

    let counters = server.counters();
    assert_eq!(counters.panics.load(Ordering::Relaxed), 1);
    assert_eq!(counters.timeouts.load(Ordering::Relaxed), 1);
    assert_eq!(counters.degraded.load(Ordering::Relaxed), 1);
    assert_eq!(counters.shed.load(Ordering::Relaxed), 0);
}

#[test]
fn seeded_plans_run_whole_sessions_without_losing_answers() {
    // The randomized (but seed-determined) variant: several schedules,
    // each applied to a session; the invariant is always the same —
    // request in, answer out, server alive.
    for seed in [11u64, 29, 47] {
        let plan = FaultPlan::from_seed(
            seed,
            24,
            &pad_bench::faults::FaultSpec {
                panics: 3,
                flaky: 3,
                flaky_failures: 1,
                delays: 2,
                delay: Duration::from_secs(60),
            },
        );
        let config = ServerConfig {
            threads: 3,
            deadline: Some(Duration::from_secs(5)),
            ..ServerConfig::default()
        };
        let server = Server::new(config).with_faults(plan.clone());
        let stream = render_stream(24, &plan, 0);
        let responses = serve_session(&server, &stream);
        assert_eq!(responses.len(), 24, "seed {seed}: every frame answered");

        for index in 0..24usize {
            let r = by_id(&responses, index as i64);
            if plan.panics_at(index) {
                assert_eq!(error_kind(r), "internal", "seed {seed} frame {index}");
            } else if plan.delay_for(index).is_some() {
                assert_eq!(error_kind(r), "timeout", "seed {seed} frame {index}");
            } else {
                assert_eq!(status(r), "ok", "seed {seed} frame {index}: {r:?}");
            }
        }
    }
}

#[test]
fn exact_mode_refuses_to_degrade() {
    // A deadline blowout in `exact` mode answers `timeout` — it must
    // not silently fall back to the fast rung.
    let plan = FaultPlan::none().delay_at(0, Duration::from_secs(60));
    let config = ServerConfig {
        threads: 1,
        deadline: Some(Duration::from_secs(5)),
        ..ServerConfig::default()
    };
    let server = Server::new(config).with_faults(plan);
    let stream = concat!(
        r#"{"id": 0, "op": "advise", "kernel": "DOT256K", "n": 256, "mode": "exact"}"#,
        "\n",
        r#"{"id": 1, "op": "advise", "kernel": "DOT256K", "n": 256, "mode": "exact"}"#,
        "\n"
    );
    let responses = serve_session(&server, stream);
    assert_eq!(responses.len(), 2);
    assert_eq!(error_kind(by_id(&responses, 0)), "timeout");
    assert_eq!(
        status(by_id(&responses, 1)),
        "ok",
        "the next exact request is unaffected"
    );
    assert_eq!(
        by_id(&responses, 1)
            .get("result")
            .and_then(|b| b.get("mode_used"))
            .and_then(Json::as_str),
        Some("exact")
    );
}

#[test]
fn auto_mode_degrades_when_the_budget_cannot_afford_exact() {
    // No injected faults at all: a tiny simulation-rate budget makes
    // `auto` choose the fast rung up front, marked degraded.
    let config = ServerConfig {
        threads: 1,
        deadline: Some(Duration::from_millis(10)),
        rate: 1.0, // one access per second: nothing fits
        ..ServerConfig::default()
    };
    let server = Server::new(config);
    let responses = serve_session(&server, &(advise_frame(0) + "\n"));
    assert_eq!(responses.len(), 1);
    let r = by_id(&responses, 0);
    assert_eq!(status(r), "ok");
    assert_eq!(r.get("degraded"), Some(&Json::Bool(true)));
    assert_eq!(
        r.get("result")
            .and_then(|b| b.get("mode_used"))
            .and_then(Json::as_str),
        Some("fast")
    );
    assert_eq!(server.counters().degraded.load(Ordering::Relaxed), 1);
    assert_eq!(server.counters().simulations.load(Ordering::Relaxed), 0);
}
