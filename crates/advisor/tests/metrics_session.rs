//! End-to-end accounting test for the `metrics` protocol op: drive one
//! in-memory server session through a deterministic mix of ok,
//! degraded, shed, and error traffic, then assert the `metrics`
//! response reports exactly that traffic — counters matching frame by
//! frame, gauges drained back to zero, and a nonzero advise p99.
//!
//! The metrics registry is process-global, so this lives in its own
//! integration binary with a single test: nothing else in the process
//! touches the advisor counters.

mod common;

use std::io::BufReader;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use common::{error_kind, next_response, status, ChannelReader, LineWriter};
use pad_advisor::engine::Advice;
use pad_advisor::json::Json;
use pad_advisor::{ErrorKind, RequestError, Server, ServerConfig, Source};

/// A reusable handler gate: `hold()` makes subsequent waiters block,
/// `release()` lets them all through.
#[derive(Default)]
struct Gate {
    blocked: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn hold(&self) {
        *self.blocked.lock().expect("gate lock") = true;
    }

    fn release(&self) {
        *self.blocked.lock().expect("gate lock") = false;
        self.cv.notify_all();
    }

    fn pass(&self) {
        let guard = self.blocked.lock().expect("gate lock");
        let (_guard, timeout) = self
            .cv
            .wait_timeout_while(guard, Duration::from_secs(30), |blocked| *blocked)
            .expect("gate lock");
        assert!(!timeout.timed_out(), "gate never released");
    }
}

fn counter(metrics: &Json, name: &str) -> i64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("metrics response lacks counter {name}: {metrics}"))
}

fn gauge(metrics: &Json, name: &str) -> i64 {
    metrics
        .get("gauges")
        .and_then(|g| g.get(name))
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("metrics response lacks gauge {name}: {metrics}"))
}

#[test]
fn metrics_op_reports_the_sessions_traffic_exactly() {
    // A generous SLO so every ok answer in this test scores good no
    // matter how loaded the test host is; set before anything registers
    // the advisor metrics (which capture the threshold once).
    std::env::set_var(pad_telemetry::SLO_ENV, "600000");
    pad_telemetry::set_metrics_enabled(true);

    let gate = Arc::new(Gate::default());
    let (entered_tx, entered_rx) = mpsc::channel::<String>();
    let entered_tx = Mutex::new(entered_tx);

    let handler_gate = Arc::clone(&gate);
    let server = Server::new(ServerConfig {
        threads: 1,
        queue: 1,
        deadline: None,
        ..ServerConfig::default()
    })
    .with_handler(Box::new(move |_frame, request| {
        let kernel = match &request.source {
            Source::Kernel { name, .. } => name.clone(),
            other => panic!("test sends kernel requests only, got {other:?}"),
        };
        entered_tx
            .lock()
            .expect("channel lock")
            .send(kernel.clone())
            .expect("test is listening");
        match kernel.as_str() {
            "BOOM" => Err(RequestError::new(ErrorKind::Invalid, "handler refusal")),
            "GATED" => {
                // A measurable latency floor, so the advise histogram's
                // top samples are guaranteed off the zero bucket.
                std::thread::sleep(Duration::from_millis(3));
                handler_gate.pass();
                Ok(Advice {
                    body: Json::Obj(vec![("gated".into(), Json::Bool(true))]),
                    degraded: false,
                    simulated: false,
                })
            }
            name => Ok(Advice {
                body: Json::Obj(vec![("kernel".into(), Json::Str(name.into()))]),
                degraded: name == "DEGRADED",
                simulated: false,
            }),
        }
    }));

    let (in_tx, in_rx) = mpsc::channel::<Vec<u8>>();
    let (out_tx, out_rx) = mpsc::channel::<String>();

    let metrics = std::thread::scope(|scope| {
        scope.spawn(|| {
            server
                .serve(
                    BufReader::new(ChannelReader::new(in_rx)),
                    LineWriter::new(out_tx),
                )
                .expect("in-memory serve cannot fail");
        });

        let send = |text: String| {
            in_tx
                .send((text + "\n").into_bytes())
                .expect("server reading")
        };
        let advise = |id: usize, kernel: &str| {
            format!(r#"{{"id": {id}, "op": "advise", "kernel": "{kernel}"}}"#)
        };

        // Phase 1 — two plain ok answers, each completed before the
        // next is sent (no queueing, deterministic frame accounting).
        for id in [1, 2] {
            send(advise(id, "OK"));
            let r = next_response(&out_rx, 30);
            assert_eq!(r.get("id").and_then(Json::as_i64), Some(id as i64));
            assert_eq!(status(&r), "ok");
            assert_eq!(r.get("degraded"), Some(&Json::Bool(false)));
        }

        // Phase 2 — two degraded answers.
        for id in [3, 4] {
            send(advise(id, "DEGRADED"));
            let r = next_response(&out_rx, 30);
            assert_eq!(status(&r), "ok");
            assert_eq!(r.get("degraded"), Some(&Json::Bool(true)));
        }

        // Phase 3 — one typed handler refusal.
        send(advise(5, "BOOM"));
        let r = next_response(&out_rx, 30);
        assert_eq!(status(&r), "error");
        assert_eq!(error_kind(&r), "invalid");

        // Phase 4 — saturate the 1-worker/1-slot queue and shed one.
        // First drain the five handler entries phases 1-3 produced, so
        // the next receive really is request 6 reaching the worker.
        for expected in ["OK", "OK", "DEGRADED", "DEGRADED", "BOOM"] {
            assert_eq!(
                entered_rx.recv_timeout(Duration::from_secs(30)).as_deref(),
                Ok(expected)
            );
        }
        gate.hold();
        send(advise(6, "GATED"));
        assert_eq!(
            entered_rx.recv_timeout(Duration::from_secs(30)).as_deref(),
            Ok("GATED"),
            "request 6 occupies the worker"
        );
        send(advise(7, "GATED"));
        // A ping answered inline by the reader thread proves frame 7
        // has been admitted (frames are processed in order).
        send(r#"{"id": 100, "op": "ping"}"#.to_string());
        let pong = next_response(&out_rx, 30);
        assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));
        send(advise(8, "SHED"));
        let shed = next_response(&out_rx, 30);
        assert_eq!(shed.get("id").and_then(Json::as_i64), Some(8));
        assert_eq!(error_kind(&shed), "overloaded");
        gate.release();
        for _ in 0..2 {
            let r = next_response(&out_rx, 30);
            assert_eq!(status(&r), "ok", "admitted gated requests complete: {r}");
        }

        // Phase 5 — one stats op, then the metrics op under test.
        send(r#"{"id": 9, "op": "stats"}"#.to_string());
        let stats = next_response(&out_rx, 30);
        assert_eq!(status(&stats), "ok");
        send(r#"{"id": 10, "op": "metrics"}"#.to_string());
        let resp = next_response(&out_rx, 30);
        assert_eq!(resp.get("id").and_then(Json::as_i64), Some(10));
        assert_eq!(status(&resp), "ok");
        let metrics = resp.get("metrics").expect("metrics body").clone();

        drop(in_tx); // EOF: serve drains and returns
        metrics
    });

    assert_eq!(metrics.get("enabled"), Some(&Json::Bool(true)));
    assert_eq!(metrics.get("slo_ms").and_then(Json::as_i64), Some(600000));

    // Eight advise frames hit the wire: 5 immediate (ok/degraded/error),
    // 2 gated, 1 shed. Control ops: 1 ping, 1 stats, 1 metrics (bumped
    // before the snapshot is taken).
    assert_eq!(
        counter(&metrics, "pad_advisor_requests_total{op=\"advise\"}"),
        8
    );
    assert_eq!(
        counter(&metrics, "pad_advisor_requests_total{op=\"ping\"}"),
        1
    );
    assert_eq!(
        counter(&metrics, "pad_advisor_requests_total{op=\"stats\"}"),
        1
    );
    assert_eq!(
        counter(&metrics, "pad_advisor_requests_total{op=\"metrics\"}"),
        1
    );

    assert_eq!(counter(&metrics, "pad_advisor_shed_total"), 1);
    assert_eq!(counter(&metrics, "pad_advisor_degraded_total"), 2);
    assert_eq!(
        counter(&metrics, "pad_advisor_errors_total{kind=\"invalid\"}"),
        1
    );
    assert_eq!(
        counter(&metrics, "pad_advisor_errors_total{kind=\"overloaded\"}"),
        1
    );
    assert_eq!(
        counter(&metrics, "pad_advisor_errors_total{kind=\"timeout\"}"),
        0
    );

    // SLO: good = the 6 ok answers (all far inside the 600 s line);
    // bad = the refusal and the shed.
    assert_eq!(counter(&metrics, "pad_advisor_slo_good_total"), 6);
    assert_eq!(counter(&metrics, "pad_advisor_slo_bad_total"), 2);

    // Admission gauges drain back to zero once the session idles.
    assert_eq!(gauge(&metrics, "pad_advisor_queue_depth"), 0);
    assert_eq!(gauge(&metrics, "pad_advisor_inflight"), 0);

    // The advise latency histogram saw every finished advise (6 ok +
    // 1 refusal + 1 shed) and its p99 tracks the gated requests, which
    // slept 3 ms — provably nonzero.
    let advise_latency = metrics
        .get("histograms")
        .and_then(|h| h.get("pad_advisor_request_latency_us{op=\"advise\"}"))
        .unwrap_or_else(|| panic!("no advise latency histogram: {metrics}"));
    assert_eq!(advise_latency.get("count").and_then(Json::as_i64), Some(8));
    let p99 = advise_latency
        .get("p99")
        .and_then(Json::as_i64)
        .expect("p99 present");
    assert!(
        p99 > 0,
        "gated requests slept 3ms; p99 must be nonzero, got {p99}"
    );
    let max = advise_latency
        .get("max")
        .and_then(Json::as_i64)
        .expect("max");
    assert!(
        max >= 3000,
        "max advise latency covers the 3ms sleep, got {max}µs"
    );
}
