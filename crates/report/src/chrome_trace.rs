//! Telemetry event export: Chrome trace-event JSON and NDJSON.
//!
//! The Chrome trace format (the `{"traceEvents": [...]}` flavor) loads
//! directly into Perfetto (`ui.perfetto.dev`) and `chrome://tracing`:
//! spans become `ph:"X"` complete events, instants `ph:"i"`, counters
//! `ph:"C"`. The NDJSON stream carries the same events one JSON object
//! per line for `jq`-style ad-hoc analysis. Both are hand-rolled — the
//! workspace takes no serialization dependency.

use std::fs;
use std::io;
use std::path::Path;

use pad_telemetry::{Event, EventKind, Value};

/// Escapes a string for a JSON string literal (quotes not included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one value as a JSON token. Non-finite floats have no JSON
/// representation, so they are emitted as quoted strings (`"NaN"`,
/// `"inf"`, `"-inf"`) rather than producing an unparseable file.
fn json_value(value: &Value) -> String {
    match value {
        Value::U64(v) => v.to_string(),
        Value::I64(v) => v.to_string(),
        Value::F64(v) if v.is_finite() => {
            // `{:?}` keeps a trailing `.0` so the token stays a number.
            format!("{v:?}")
        }
        Value::F64(v) => format!("\"{v}\""),
        Value::Str(s) => format!("\"{}\"", json_escape(s)),
    }
}

fn json_args(args: &[(&'static str, Value)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(key), json_value(value)));
    }
    out.push('}');
    out
}

fn chrome_record(event: &Event) -> String {
    let common = format!(
        "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
        json_escape(&event.name),
        json_escape(event.category),
        event.tid,
        event.ts_us,
    );
    match event.kind {
        EventKind::Span { dur_us } => format!(
            "{{{common},\"ph\":\"X\",\"dur\":{dur_us},\"args\":{}}}",
            json_args(&event.args)
        ),
        EventKind::Instant => format!(
            "{{{common},\"ph\":\"i\",\"s\":\"t\",\"args\":{}}}",
            json_args(&event.args)
        ),
        EventKind::Counter => {
            // Counter events plot their args as series; only numeric
            // values make sense there, so text args are dropped.
            let numeric: Vec<(&'static str, Value)> = event
                .args
                .iter()
                .filter(|(_, v)| v.is_numeric())
                .cloned()
                .collect();
            format!("{{{common},\"ph\":\"C\",\"args\":{}}}", json_args(&numeric))
        }
    }
}

/// Renders an event stream as a Chrome trace-event JSON document
/// (Perfetto-loadable).
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&chrome_record(event));
    }
    out.push_str("\n]}\n");
    out
}

/// Renders an event stream as NDJSON: one self-contained JSON object per
/// line, carrying every field including string-valued args.
pub fn ndjson(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        let kind = match event.kind {
            EventKind::Span { .. } => "span",
            EventKind::Instant => "instant",
            EventKind::Counter => "counter",
        };
        out.push_str(&format!(
            "{{\"ts_us\":{},\"tid\":{},\"cat\":\"{}\",\"name\":\"{}\",\"kind\":\"{kind}\"",
            event.ts_us,
            event.tid,
            json_escape(event.category),
            json_escape(&event.name),
        ));
        if let EventKind::Span { dur_us } = event.kind {
            out.push_str(&format!(",\"dur_us\":{dur_us}"));
        }
        out.push_str(&format!(",\"args\":{}}}\n", json_args(&event.args)));
    }
    out
}

/// Writes the Chrome trace document to `path`, creating parent
/// directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_chrome_trace(events: &[Event], path: impl AsRef<Path>) -> io::Result<()> {
    write_creating_parents(path.as_ref(), chrome_trace_json(events))
}

/// Writes the NDJSON stream to `path`, creating parent directories as
/// needed.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_ndjson(events: &[Event], path: impl AsRef<Path>) -> io::Result<()> {
    write_creating_parents(path.as_ref(), ndjson(events))
}

fn write_creating_parents(path: &Path, contents: String) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_telemetry::EventKind;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                ts_us: 100,
                tid: 2,
                category: "cell",
                name: "fig08: \"JACOBI\"\n512".into(),
                kind: EventKind::Span { dur_us: 250 },
                args: vec![
                    ("index", Value::U64(3)),
                    ("rate", Value::F64(1.5)),
                    ("bad", Value::F64(f64::NAN)),
                ],
            },
            Event {
                ts_us: 400,
                tid: 2,
                category: "cell",
                name: "retry".into(),
                kind: EventKind::Instant,
                args: vec![("cause", Value::Str("panicked: [transient]".into()))],
            },
            Event {
                ts_us: 500,
                tid: 1,
                category: "cache",
                name: "jacobi/dm16k".into(),
                kind: EventKind::Counter,
                args: vec![
                    ("misses", Value::U64(42)),
                    ("occupancy", Value::Str("1/2/3".into())),
                ],
            },
        ]
    }

    /// A tiny structural JSON validator: checks balanced nesting and
    /// quote/escape integrity — enough to catch malformed emission
    /// without a parser dependency.
    fn assert_balanced_json(text: &str) {
        let mut depth: i64 = 0;
        let mut in_string = false;
        let mut escaped = false;
        for c in text.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced nesting in {text:?}");
        }
        assert_eq!(depth, 0, "unbalanced document");
        assert!(!in_string, "unterminated string");
    }

    #[test]
    fn chrome_trace_is_balanced_and_typed() {
        let text = chrome_trace_json(&sample_events());
        assert_balanced_json(&text);
        assert!(text.starts_with("{\"displayTimeUnit\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"dur\":250"));
        // Newline and quotes in the cell name are escaped.
        assert!(text.contains("fig08: \\\"JACOBI\\\"\\n512"));
        // NaN never appears as a bare (unparseable) token.
        assert!(!text.contains(":NaN"));
        assert!(text.contains("\"bad\":\"NaN\""));
    }

    #[test]
    fn counters_export_only_numeric_args() {
        let text = chrome_trace_json(&sample_events());
        let counter_line = text
            .lines()
            .find(|l| l.contains("\"ph\":\"C\""))
            .expect("counter present");
        assert!(counter_line.contains("\"misses\":42"));
        assert!(
            !counter_line.contains("occupancy"),
            "text args dropped from counters"
        );
    }

    #[test]
    fn ndjson_is_one_object_per_line() {
        let events = sample_events();
        let text = ndjson(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_balanced_json(line);
        }
        assert!(lines[0].contains("\"kind\":\"span\""));
        assert!(lines[0].contains("\"dur_us\":250"));
        assert!(lines[1].contains("\"kind\":\"instant\""));
        // NDJSON keeps text args (the occupancy histogram).
        assert!(lines[2].contains("\"occupancy\":\"1/2/3\""));
    }

    #[test]
    fn writers_create_parents() {
        let dir = std::env::temp_dir().join(format!("pad-report-trace-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let trace = dir.join("nested/trace.json");
        let stream = dir.join("nested/trace.ndjson");
        write_chrome_trace(&sample_events(), &trace).expect("trace written");
        write_ndjson(&sample_events(), &stream).expect("ndjson written");
        assert!(fs::read_to_string(&trace)
            .expect("readable")
            .contains("traceEvents"));
        assert_eq!(
            fs::read_to_string(&stream)
                .expect("readable")
                .lines()
                .count(),
            3
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("tab\there"), "tab\\there");
    }
}
