//! Aligned text tables.

use std::fmt;

/// A simple right-aligned text table with a header row.
///
/// # Example
///
/// ```
/// use pad_report::Table;
///
/// let mut t = Table::new(["program", "miss %"]);
/// t.row(["JACOBI512", "24.8"]);
/// t.row(["DOT256K", "99.9"]);
/// let text = t.to_string();
/// assert!(text.contains("JACOBI512"));
/// assert!(text.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The header and rows as raw cells (used by the CSV writer).
    pub fn cells(&self) -> (&[String], &[Vec<String>]) {
        (&self.header, &self.rows)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "{cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(["name", "x"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows are the same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.cells().1[0].len(), 3);
    }

    #[test]
    fn is_empty_reflects_rows() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }
}
