//! Plain-text tables, series plots, and CSV output for the experiment
//! harness.
//!
//! The paper reports its evaluation as one table (compile-time
//! statistics) and ten figures (bar charts and problem-size sweeps). The
//! harness renders each as an aligned text table plus a CSV file; for the
//! sweep figures a coarse ASCII chart makes the crossover shapes visible
//! directly in the terminal.
//!
//! Under fault-isolated execution (see `pad-bench`), failed cells degrade
//! gracefully: tables and CSVs carry explicit [`ERR_MARKER`] /
//! [`TIMEOUT_MARKER`] cells and a trailing [`FailureSummary`] lists every
//! failure instead of the run aborting.
//!
//! When telemetry is enabled (`RIVERA_TELEMETRY=events`), the recorded
//! event stream is exported here too: [`write_chrome_trace`] emits a
//! Perfetto-loadable `trace.json` and [`write_ndjson`] the matching
//! line-delimited stream. Neither touches stdout, so result tables stay
//! byte-identical in every telemetry mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii_chart;
mod chrome_trace;
mod csv;
mod failure;
mod pareto;
mod prometheus;
mod table;

pub use ascii_chart::AsciiChart;
pub use chrome_trace::{chrome_trace_json, ndjson, write_chrome_trace, write_ndjson};
pub use csv::{csv_string, write_csv};
pub use failure::{CellFailure, FailureSummary, ERR_MARKER, TIMEOUT_MARKER};
pub use pareto::pareto_indices;
pub use prometheus::{render_prometheus, MAX_BUCKET_POW2};
pub use table::Table;
