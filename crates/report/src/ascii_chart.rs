//! Coarse ASCII line charts for the problem-size sweep figures.

use std::fmt;

/// A multi-series ASCII chart: x positions are categorical (problem
/// sizes), y is scaled into a fixed number of text rows, and each series
/// is drawn with its own glyph.
///
/// # Example
///
/// ```
/// use pad_report::AsciiChart;
///
/// let mut c = AsciiChart::new(12);
/// c.series('o', "original", &[10.0, 50.0, 12.0]);
/// c.series('+', "padded", &[10.0, 11.0, 12.0]);
/// let text = c.to_string();
/// assert!(text.contains("o = original"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    height: usize,
    series: Vec<(char, String, Vec<f64>)>,
}

impl AsciiChart {
    /// Creates a chart `height` text rows tall.
    ///
    /// # Panics
    ///
    /// Panics if `height < 2`.
    pub fn new(height: usize) -> Self {
        assert!(height >= 2, "a chart needs at least two rows");
        AsciiChart {
            height,
            series: Vec::new(),
        }
    }

    /// Adds a series drawn with `glyph`. All series should have equal
    /// length; shorter ones simply end early.
    pub fn series(&mut self, glyph: char, label: impl Into<String>, ys: &[f64]) -> &mut Self {
        self.series.push((glyph, label.into(), ys.to_vec()));
        self
    }
}

impl fmt::Display for AsciiChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .series
            .iter()
            .map(|(_, _, ys)| ys.len())
            .max()
            .unwrap_or(0);
        if width == 0 {
            return writeln!(f, "(empty chart)");
        }
        // Non-finite points (failed cells surface as NaN) are left out of
        // both the bounds and the drawing instead of collapsing the scale
        // or landing on an arbitrary row.
        let values = self
            .series
            .iter()
            .flat_map(|(_, _, ys)| ys.iter().copied())
            .filter(|y| y.is_finite());
        let max = values.clone().fold(f64::NEG_INFINITY, f64::max);
        if max == f64::NEG_INFINITY {
            return writeln!(f, "(no finite data)");
        }
        let min = values.fold(f64::INFINITY, f64::min).min(0.0);
        let span = (max - min).max(1e-9);

        let mut grid = vec![vec![' '; width]; self.height];
        for (glyph, _, ys) in &self.series {
            for (x, &y) in ys.iter().enumerate() {
                if !y.is_finite() {
                    continue;
                }
                let fy = ((y - min) / span) * (self.height - 1) as f64;
                let row = (self.height - 1).saturating_sub(fy.round() as usize);
                grid[row][x] = *glyph;
            }
        }
        writeln!(f, "{max:8.2} +")?;
        for row in &grid {
            let line: String = row.iter().collect();
            writeln!(f, "         |{line}")?;
        }
        writeln!(f, "{min:8.2} +{}", "-".repeat(width))?;
        for (glyph, label, _) in &self.series {
            writeln!(f, "         {glyph} = {label}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_extremes_on_their_rows() {
        let mut c = AsciiChart::new(5);
        c.series('x', "s", &[0.0, 100.0]);
        let text = c.to_string();
        let lines: Vec<&str> = text.lines().collect();
        // First grid line (max) carries the high point, last the low one.
        assert!(lines[1].contains('x'));
        assert!(lines[5].contains('x'));
    }

    #[test]
    fn empty_chart_is_harmless() {
        let c = AsciiChart::new(4);
        assert!(c.to_string().contains("empty"));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let mut c = AsciiChart::new(5);
        c.series('x', "s", &[0.0, f64::NAN, 100.0, f64::INFINITY]);
        let text = c.to_string();
        // Bounds come from the finite points only.
        assert!(text.contains("  100.00 +"), "got: {text}");
        // Exactly two points are drawn (NaN/inf leave gaps); count only
        // grid rows so the legend line does not inflate the tally.
        let drawn = text
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.matches('x').count())
            .sum::<usize>();
        assert_eq!(drawn, 2, "got: {text}");
    }

    #[test]
    fn all_non_finite_is_harmless() {
        let mut c = AsciiChart::new(4);
        c.series('x', "s", &[f64::NAN, f64::NEG_INFINITY]);
        assert!(c.to_string().contains("no finite data"));
    }

    #[test]
    fn later_series_overdraw_earlier() {
        let mut c = AsciiChart::new(3);
        c.series('a', "first", &[1.0]);
        c.series('b', "second", &[1.0]);
        let text = c.to_string();
        assert!(text.contains('b'));
    }
}
