//! Minimal CSV emission (hand-rolled to avoid a dependency).

use std::fs;
use std::io;
use std::path::Path;

use crate::table::Table;

/// Writes a table as RFC-4180-style CSV, creating parent directories as
/// needed.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let (header, rows) = table.cells();
    let mut out = String::new();
    push_row(&mut out, header);
    for row in rows {
        push_row(&mut out, row);
    }
    fs::write(path, out)
}

fn push_row(out: &mut String, cells: &[String]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if cell.contains([',', '"', '\n']) {
            out.push('"');
            out.push_str(&cell.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_escapes() {
        let mut t = Table::new(["name", "note"]);
        t.row(["a", "plain"]);
        t.row(["b", "has,comma"]);
        t.row(["c", "has\"quote"]);
        let dir = std::env::temp_dir().join("pad_report_csv_test");
        let path = dir.join("out.csv");
        write_csv(&t, &path).expect("write succeeds");
        let text = fs::read_to_string(&path).expect("readable");
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("\"has,comma\""));
        assert!(text.contains("\"has\"\"quote\""));
        fs::remove_dir_all(&dir).ok();
    }
}
