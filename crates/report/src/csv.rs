//! Minimal CSV emission (hand-rolled to avoid a dependency).

use std::fs;
use std::io;
use std::path::Path;

use crate::table::Table;

/// Renders a table as RFC-4180-style CSV text.
///
/// This is the single source of truth for CSV bytes: [`write_csv`]
/// delegates here, and the telemetry determinism checks compare the
/// returned string across `RIVERA_TELEMETRY` modes.
pub fn csv_string(table: &Table) -> String {
    let (header, rows) = table.cells();
    let mut out = String::new();
    push_row(&mut out, header);
    for row in rows {
        push_row(&mut out, row);
    }
    out
}

/// Writes a table as RFC-4180-style CSV, creating parent directories as
/// needed.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, csv_string(table))
}

fn push_row(out: &mut String, cells: &[String]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if cell.contains([',', '"', '\n']) {
            out.push('"');
            out.push_str(&cell.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{ERR_MARKER, TIMEOUT_MARKER};

    #[test]
    fn writes_and_escapes() {
        let mut t = Table::new(["name", "note"]);
        t.row(["a", "plain"]);
        t.row(["b", "has,comma"]);
        t.row(["c", "has\"quote"]);
        let dir = std::env::temp_dir().join("pad_report_csv_test");
        let path = dir.join("out.csv");
        write_csv(&t, &path).expect("write succeeds");
        let text = fs::read_to_string(&path).expect("readable");
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("\"has,comma\""));
        assert!(text.contains("\"has\"\"quote\""));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_csv_matches_csv_string() {
        let mut t = Table::new(["k", "v"]);
        t.row(["x", "1,5"]);
        let dir = std::env::temp_dir().join("pad_report_csv_string_test");
        let path = dir.join("out.csv");
        write_csv(&t, &path).expect("write succeeds");
        assert_eq!(fs::read_to_string(&path).expect("readable"), csv_string(&t));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failure_markers_pass_through_unquoted() {
        // ERR/TIMEOUT markers contain no CSV metacharacters, so they must
        // appear as bare cells — downstream scripts match them literally.
        let mut t = Table::new(["kernel", "miss%"]);
        t.row(["jacobi", ERR_MARKER]);
        t.row(["shal", TIMEOUT_MARKER]);
        let text = csv_string(&t);
        assert!(text.contains("jacobi,ERR\n"));
        assert!(text.contains("shal,TIMEOUT\n"));
        assert!(!text.contains('"'), "markers never pick up quotes");
    }

    #[test]
    fn non_finite_values_render_literally() {
        // The harness formats f64 cells with `format!`, so non-finite
        // values arrive as the strings below; none needs quoting.
        let mut t = Table::new(["kernel", "ratio"]);
        t.row(["a".to_string(), format!("{}", f64::NAN)]);
        t.row(["b".to_string(), format!("{}", f64::INFINITY)]);
        t.row(["c".to_string(), format!("{}", f64::NEG_INFINITY)]);
        let text = csv_string(&t);
        assert!(text.contains("a,NaN\n"));
        assert!(text.contains("b,inf\n"));
        assert!(text.contains("c,-inf\n"));
    }

    #[test]
    fn embedded_newlines_are_quoted() {
        let mut t = Table::new(["k", "v"]);
        t.row(["x", "two\nlines"]);
        let text = csv_string(&t);
        assert!(text.contains("\"two\nlines\""));
    }
}
