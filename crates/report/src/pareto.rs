//! Pareto-frontier extraction for cost/benefit scatter data.
//!
//! The `fig_search` experiment reports each strategy as a cloud of
//! (analysis cost, miss count) points; what the figure actually charts is
//! the non-dominated frontier of that cloud — the points for which no
//! other point is at least as cheap *and* at least as good. This helper
//! extracts that frontier deterministically so tables, CSVs, and golden
//! tests all agree on the exact same point set.

/// Indices of the non-dominated points of `points`, where each point is
/// `(cost, value)` and *lower is better* on both axes.
///
/// A point is kept iff no other point has `cost ≤` and `value ≤` with at
/// least one strict inequality. Duplicate points are kept once (first
/// occurrence). The result is sorted by ascending cost, ties broken by
/// ascending value, then by original index — a total order, so the
/// output is independent of the input's ordering apart from which
/// duplicate representative survives.
pub fn pareto_indices(points: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
            .then(a.cmp(&b))
    });

    let mut frontier = Vec::new();
    let mut best_value = f64::INFINITY;
    let mut last_kept: Option<(f64, f64)> = None;
    for &i in &order {
        let (c, v) = points[i];
        if last_kept == Some((c, v)) {
            continue; // duplicate of the point just kept
        }
        if v < best_value {
            frontier.push(i);
            best_value = v;
            last_kept = Some((c, v));
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_points_are_dropped() {
        // (cost, misses): the middle point is dominated by the first.
        let pts = [(1.0, 10.0), (2.0, 12.0), (3.0, 5.0)];
        assert_eq!(pareto_indices(&pts), vec![0, 2]);
    }

    #[test]
    fn frontier_is_order_independent() {
        let pts = [(3.0, 5.0), (1.0, 10.0), (2.0, 12.0), (2.0, 7.0)];
        let mut rev: Vec<(f64, f64)> = pts.to_vec();
        rev.reverse();
        let a: Vec<(f64, f64)> = pareto_indices(&pts).iter().map(|&i| pts[i]).collect();
        let b: Vec<(f64, f64)> = pareto_indices(&rev).iter().map(|&i| rev[i]).collect();
        assert_eq!(a, b);
        assert_eq!(a, vec![(1.0, 10.0), (2.0, 7.0), (3.0, 5.0)]);
    }

    #[test]
    fn duplicates_kept_once_and_empty_ok() {
        assert!(pareto_indices(&[]).is_empty());
        let pts = [(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)];
        assert_eq!(pareto_indices(&pts), vec![0]);
    }

    #[test]
    fn equal_cost_keeps_only_best_value() {
        let pts = [(1.0, 3.0), (1.0, 2.0), (1.0, 4.0)];
        assert_eq!(pareto_indices(&pts), vec![1]);
    }
}
