//! Prometheus text-format (v0.0.4) exposition of a metrics snapshot.
//!
//! [`render_prometheus`] turns a [`MetricsSnapshot`] into the plain-text
//! format every Prometheus-compatible scraper reads: `# HELP` / `# TYPE`
//! headers per family, one sample line per metric, histogram families
//! expanded into cumulative `_bucket{le="..."}` series plus `_sum` and
//! `_count`.
//!
//! The rendering is **byte-stable**: snapshots order metrics by
//! (family, labels) and this renderer adds nothing nondeterministic (no
//! timestamps, no uptime), so rendering the same snapshot — or two
//! snapshots of an unchanged registry — produces identical bytes. The
//! `metrics-overhead` verify gate asserts exactly that.
//!
//! Histogram buckets: the native log2 buckets would emit 65 series per
//! histogram, most empty; the exposition instead emits bounds of the
//! form `2^k - 1` for odd `k` up to [`MAX_BUCKET_POW2`] (`le="1"`,
//! `le="7"`, ... `le="2147483647"` — microsecond-scaled, topping out
//! near 36 minutes) plus `+Inf`. The `2^k - 1` shape is what keeps the
//! cumulative counts *exact*: log2 bucket `k-1` spans
//! `[2^(k-1), 2^k - 1]`, so buckets `0..k` sum to precisely the samples
//! `<= 2^k - 1` — no within-bucket interpolation.

use pad_telemetry::{Histogram, MetricsSnapshot, SnapshotMetric, SnapshotValue};

/// Largest finite histogram bound emitted, as the exponent `k` of the
/// `le = 2^k - 1` ladder.
pub const MAX_BUCKET_POW2: u32 = 31;

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra)
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        // Label values are escaped per the exposition format.
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

fn write_header(out: &mut String, last_family: &mut String, m: &SnapshotMetric, kind: &str) {
    if *last_family == m.name {
        return; // one HELP/TYPE per family, before its first sample
    }
    last_family.clone_from(&m.name);
    if !m.help.is_empty() {
        out.push_str("# HELP ");
        out.push_str(&m.name);
        out.push(' ');
        out.push_str(&m.help);
        out.push('\n');
    }
    out.push_str("# TYPE ");
    out.push_str(&m.name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Samples at or below `2^k - 1`: exactly the contents of log2 buckets
/// `0..k` (bucket `k-1` tops out at `2^k - 1`).
fn cumulative_below_pow2(h: &Histogram, k: u32) -> u64 {
    h.buckets().iter().take(k as usize).sum()
}

/// Renders `snapshot` in the Prometheus text exposition format v0.0.4.
/// Deterministic and byte-stable for a fixed snapshot (see the module
/// docs); counters render under their registered name (the repo's
/// families already carry the `_total` suffix convention).
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut family = String::new();

    for m in &snapshot.counters {
        let SnapshotValue::Counter(v) = m.value else {
            continue;
        };
        write_header(&mut out, &mut family, m, "counter");
        out.push_str(&m.name);
        write_labels(&mut out, &m.labels, None);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }

    for m in &snapshot.gauges {
        let SnapshotValue::Gauge(v) = m.value else {
            continue;
        };
        write_header(&mut out, &mut family, m, "gauge");
        out.push_str(&m.name);
        write_labels(&mut out, &m.labels, None);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }

    for m in &snapshot.histograms {
        let SnapshotValue::Histogram(h) = &m.value else {
            continue;
        };
        write_header(&mut out, &mut family, m, "histogram");
        let bucket_name = format!("{}_bucket", m.name);
        for k in (1..=MAX_BUCKET_POW2).step_by(2) {
            let le = ((1u64 << k) - 1).to_string();
            out.push_str(&bucket_name);
            write_labels(&mut out, &m.labels, Some(("le", &le)));
            out.push(' ');
            out.push_str(&cumulative_below_pow2(&h.histogram, k).to_string());
            out.push('\n');
        }
        out.push_str(&bucket_name);
        write_labels(&mut out, &m.labels, Some(("le", "+Inf")));
        out.push(' ');
        out.push_str(&h.histogram.count().to_string());
        out.push('\n');

        out.push_str(&m.name);
        out.push_str("_sum");
        write_labels(&mut out, &m.labels, None);
        out.push(' ');
        out.push_str(&h.sum.to_string());
        out.push('\n');

        out.push_str(&m.name);
        out.push_str("_count");
        write_labels(&mut out, &m.labels, None);
        out.push(' ');
        out.push_str(&h.histogram.count().to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_telemetry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("demo_requests_total", "Requests served.").add(7);
        r.counter_with("demo_errors_total", "Typed errors.", &[("kind", "timeout")])
            .add(2);
        r.counter_with(
            "demo_errors_total",
            "Typed errors.",
            &[("kind", "internal")],
        )
        .inc();
        r.gauge("demo_queue_depth", "Queued jobs.").set(-3);
        let h = r.histogram("demo_latency_us", "Latency.");
        for v in [1u64, 3, 900, 70_000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn renders_help_type_and_samples_in_order() {
        let text = render_prometheus(&sample_registry().snapshot());
        let expect_prefix = "\
# HELP demo_errors_total Typed errors.
# TYPE demo_errors_total counter
demo_errors_total{kind=\"internal\"} 1
demo_errors_total{kind=\"timeout\"} 2
# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total 7
# HELP demo_queue_depth Queued jobs.
# TYPE demo_queue_depth gauge
demo_queue_depth -3
# HELP demo_latency_us Latency.
# TYPE demo_latency_us histogram
demo_latency_us_bucket{le=\"1\"} 1
demo_latency_us_bucket{le=\"7\"} 2
";
        assert!(text.starts_with(expect_prefix), "got:\n{text}");
        assert!(
            text.contains("demo_latency_us_bucket{le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("demo_latency_us_sum 70904"), "{text}");
        assert!(text.ends_with("demo_latency_us_count 4\n"), "{text}");
    }

    #[test]
    fn bucket_counts_are_cumulative_and_exact() {
        let r = MetricsRegistry::new();
        let h = r.histogram("h_us", "");
        for v in 0..=1024u64 {
            h.record(v);
        }
        let text = render_prometheus(&r.snapshot());
        // Exact cumulative counts at every emitted 2^k - 1 bound.
        assert!(text.contains("h_us_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("h_us_bucket{le=\"7\"} 8"), "{text}");
        assert!(text.contains("h_us_bucket{le=\"511\"} 512"), "{text}");
        assert!(text.contains("h_us_bucket{le=\"2047\"} 1025"), "{text}");
        assert!(text.contains("h_us_bucket{le=\"+Inf\"} 1025"), "{text}");
    }

    #[test]
    fn two_renders_are_byte_identical() {
        let r = sample_registry();
        let a = render_prometheus(&r.snapshot());
        let b = render_prometheus(&r.snapshot());
        assert_eq!(a, b);
        assert!(!a.contains("uptime"), "nothing time-dependent is exposed");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter_with("c_total", "", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains(r#"c_total{path="a\"b\\c\nd"} 1"#), "{text}");
    }
}
