//! Failure markers and the trailing failure summary.
//!
//! When the experiment harness runs under fault isolation, cells that
//! panic or exceed their deadline no longer abort the binary: the table
//! renders an explicit marker in their place ([`ERR_MARKER`],
//! [`TIMEOUT_MARKER`]) and a [`FailureSummary`] is printed after the
//! tables so nothing fails silently. Each entry carries the cell's
//! telemetry span — attempts made and wall time spent — so an `ERR` or
//! `TIMEOUT` row is diagnosable from the summary alone.

use std::fmt;
use std::time::Duration;

/// Table/CSV marker for a cell that panicked.
pub const ERR_MARKER: &str = "ERR";

/// Table/CSV marker for a cell that exceeded its deadline.
pub const TIMEOUT_MARKER: &str = "TIMEOUT";

/// One failed cell: which cell, what kind of failure, the detail line
/// (panic message or deadline numbers), and the cell's execution span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The cell's progress label (e.g. `fig16: EXPL n=256`).
    pub label: String,
    /// The marker rendered in the table (`ERR` or `TIMEOUT`).
    pub marker: String,
    /// Human-readable failure detail.
    pub detail: String,
    /// Attempts made before the cell was given up on (0 when unknown).
    pub attempts: u32,
    /// Wall time spent on the cell across attempts (zero when unknown).
    pub elapsed: Duration,
}

/// The trailing report of every failed cell in a run.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use pad_report::{CellFailure, FailureSummary};
///
/// let mut summary = FailureSummary::new();
/// assert!(summary.is_clean());
/// summary.push(CellFailure {
///     label: "fig08: JACOBI512".into(),
///     marker: "ERR".into(),
///     detail: "panicked: injected fault".into(),
///     attempts: 3,
///     elapsed: Duration::from_millis(42),
/// });
/// let text = summary.to_string();
/// assert!(text.contains("1 cell(s) failed"));
/// assert!(text.contains("JACOBI512"));
/// assert!(text.contains("3 attempt(s)"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FailureSummary {
    failures: Vec<CellFailure>,
}

impl FailureSummary {
    /// An empty summary.
    pub fn new() -> Self {
        FailureSummary::default()
    }

    /// Records one failed cell.
    pub fn push(&mut self, failure: CellFailure) {
        self.failures.push(failure);
    }

    /// Number of failed cells.
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// True when no cell failed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Alias for [`FailureSummary::is_clean`], pairing with
    /// [`FailureSummary::len`].
    pub fn is_empty(&self) -> bool {
        self.is_clean()
    }

    /// The recorded failures, in the order they were pushed.
    pub fn failures(&self) -> &[CellFailure] {
        &self.failures
    }
}

impl fmt::Display for FailureSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.failures.is_empty() {
            return writeln!(f, "failure summary: all cells completed");
        }
        writeln!(
            f,
            "failure summary: {} cell(s) failed (marked {}/{} above)",
            self.failures.len(),
            ERR_MARKER,
            TIMEOUT_MARKER
        )?;
        for failure in &self.failures {
            write!(
                f,
                "  {:7} {}: {}",
                failure.marker, failure.label, failure.detail
            )?;
            if failure.attempts > 0 {
                write!(
                    f,
                    " [{} attempt(s), {:.1} ms]",
                    failure.attempts,
                    failure.elapsed.as_secs_f64() * 1e3
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_summary_says_so() {
        let summary = FailureSummary::new();
        assert!(summary.is_clean());
        assert_eq!(summary.len(), 0);
        assert!(summary.to_string().contains("all cells completed"));
    }

    #[test]
    fn failures_are_listed_in_order() {
        let mut summary = FailureSummary::new();
        summary.push(CellFailure {
            label: "a".into(),
            marker: TIMEOUT_MARKER.into(),
            detail: "ran 9s against a 1s deadline".into(),
            attempts: 1,
            elapsed: Duration::from_secs(9),
        });
        summary.push(CellFailure {
            label: "b".into(),
            marker: ERR_MARKER.into(),
            detail: "panicked: boom".into(),
            attempts: 2,
            elapsed: Duration::from_millis(5),
        });
        let text = summary.to_string();
        assert!(text.contains("2 cell(s) failed"));
        let a = text.find("a: ran").expect("first failure listed");
        let b = text.find("b: panicked").expect("second failure listed");
        assert!(a < b, "order preserved");
        assert_eq!(summary.failures().len(), 2);
    }

    #[test]
    fn span_info_is_rendered_when_known() {
        let mut summary = FailureSummary::new();
        summary.push(CellFailure {
            label: "slow".into(),
            marker: TIMEOUT_MARKER.into(),
            detail: "deadline exceeded".into(),
            attempts: 3,
            elapsed: Duration::from_millis(1500),
        });
        let text = summary.to_string();
        assert!(text.contains("[3 attempt(s), 1500.0 ms]"), "got: {text}");
    }

    #[test]
    fn unknown_span_is_omitted() {
        let mut summary = FailureSummary::new();
        summary.push(CellFailure {
            label: "legacy".into(),
            marker: ERR_MARKER.into(),
            detail: "panicked: boom".into(),
            attempts: 0,
            elapsed: Duration::ZERO,
        });
        let text = summary.to_string();
        assert!(!text.contains("attempt(s)"), "got: {text}");
    }
}
