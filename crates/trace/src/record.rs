//! Bounded trace capture, mostly for tests and debugging.

use pad_cache_sim::Access;
use pad_core::DataLayout;
use pad_ir::Program;

/// Materializes the program's address stream, stopping after `limit`
/// accesses if a limit is given.
///
/// Simulation should normally stream accesses through
/// [`crate::for_each_access`] instead of collecting them; this helper
/// exists for golden tests that inspect exact address sequences.
pub fn collect_trace(program: &Program, layout: &DataLayout, limit: Option<usize>) -> Vec<Access> {
    let mut out = Vec::new();
    let cap = limit.unwrap_or(usize::MAX);
    // `for_each_access` has no early-exit channel; guard with a cheap
    // length check so bounded captures of huge programs stay cheap.
    crate::for_each_access(program, layout, |a| {
        if out.len() < cap {
            out.push(a);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_ir::{ArrayBuilder, Loop, Stmt, Subscript};

    fn program() -> Program {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [100]).elem_size(8));
        b.push(Stmt::loop_(
            Loop::new("i", 1, 100),
            vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
        ));
        b.build().expect("valid")
    }

    #[test]
    fn unlimited_capture() {
        let p = program();
        let t = collect_trace(&p, &DataLayout::original(&p), None);
        assert_eq!(t.len(), 100);
        assert_eq!(t[0].addr, 0);
        assert_eq!(t[99].addr, 99 * 8);
    }

    #[test]
    fn limit_truncates() {
        let p = program();
        let t = collect_trace(&p, &DataLayout::original(&p), Some(7));
        assert_eq!(t.len(), 7);
    }
}
