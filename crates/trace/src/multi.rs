//! Simulating many cache configurations in one trace walk.
//!
//! The figure sweeps evaluate the *same* program/layout against several
//! cache organizations (Figures 9–11). Regenerating the trace per
//! configuration wastes the dominant cost; this helper walks the compiled
//! trace once and tees every access into all the caches. It is a thin
//! wrapper over the general [`crate::simulate_batch`] engine.

use pad_cache_sim::{CacheConfig, CacheStats};
use pad_core::DataLayout;
use pad_ir::Program;

use crate::batch::{simulate_batch, BatchRequest};

/// Simulates `program` under `layout` through every configuration in one
/// pass, returning per-configuration statistics in order.
///
/// # Example
///
/// ```
/// use pad_cache_sim::CacheConfig;
/// use pad_core::DataLayout;
/// use pad_trace::simulate_many;
///
/// let program = pad_kernels::jacobi::spec(32);
/// let layout = DataLayout::original(&program);
/// let stats = simulate_many(
///     &program,
///     &layout,
///     &[
///         CacheConfig::direct_mapped(1024, 32),
///         CacheConfig::set_associative(1024, 32, 4),
///     ],
/// );
/// assert_eq!(stats.len(), 2);
/// assert!(stats[1].miss_rate() <= stats[0].miss_rate() + 0.05);
/// ```
pub fn simulate_many(
    program: &Program,
    layout: &DataLayout,
    configs: &[CacheConfig],
) -> Vec<CacheStats> {
    let request = BatchRequest::new().with_plain_configs(configs.iter().copied());
    simulate_batch(program, layout, &request).plain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate_program;

    #[test]
    fn matches_individual_simulations() {
        let program = pad_kernels::shal::spec(24);
        let layout = DataLayout::original(&program);
        let configs = [
            CacheConfig::direct_mapped(1024, 32),
            CacheConfig::direct_mapped(4096, 32),
            CacheConfig::set_associative(2048, 32, 2),
        ];
        let many = simulate_many(&program, &layout, &configs);
        for (cfg, stats) in configs.iter().zip(&many) {
            assert_eq!(*stats, simulate_program(&program, &layout, cfg));
        }
    }

    #[test]
    fn empty_config_list_is_fine() {
        let program = pad_kernels::dot::spec(64);
        let layout = DataLayout::original(&program);
        assert!(simulate_many(&program, &layout, &[]).is_empty());
    }
}
