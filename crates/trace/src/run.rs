//! Trace-driven simulation entry points.

use pad_cache_sim::{
    Cache, CacheConfig, CacheStats, ClassifiedStats, ClassifyingCache, Hierarchy, LevelStats,
    VictimCache, VictimStats,
};
use pad_core::{CacheParams, DataLayout, PaddingConfig};
use pad_ir::Program;

use crate::generate::for_each_access;

/// Simulates the program's address stream through one cache and returns
/// the statistics.
pub fn simulate_program(
    program: &Program,
    layout: &DataLayout,
    config: &CacheConfig,
) -> CacheStats {
    let mut cache = Cache::new(*config);
    for_each_access(program, layout, |a| {
        cache.access(a);
    });
    *cache.stats()
}

/// Simulates with three-C miss classification (conflict / capacity /
/// compulsory).
pub fn simulate_classified(
    program: &Program,
    layout: &DataLayout,
    config: &CacheConfig,
) -> ClassifiedStats {
    let mut cache = ClassifyingCache::new(*config);
    for_each_access(program, layout, |a| {
        cache.access(a);
    });
    *cache.stats()
}

/// Simulates through a cache augmented with a `victim_lines`-entry
/// victim buffer (Jouppi's hardware alternative to padding; see the
/// hardware ablation bench).
pub fn simulate_victim(
    program: &Program,
    layout: &DataLayout,
    config: &CacheConfig,
    victim_lines: usize,
) -> VictimStats {
    let mut cache = VictimCache::new(*config, victim_lines);
    for_each_access(program, layout, |a| {
        cache.access(a);
    });
    *cache.stats()
}

/// Simulates through a multi-level hierarchy, returning per-level
/// statistics.
pub fn simulate_hierarchy(
    program: &Program,
    layout: &DataLayout,
    configs: &[CacheConfig],
) -> Vec<LevelStats> {
    let mut h = Hierarchy::new(configs.to_vec());
    for_each_access(program, layout, |a| h.access(a));
    h.stats()
}

/// Derives the padding analysis parameters matching a simulated cache
/// (same `C_s` and `L_s`, paper-default `M` and bounds).
///
/// # Panics
///
/// Never panics for a valid [`CacheConfig`], whose geometry invariants are
/// a superset of [`PaddingConfig`]'s.
pub fn padding_config_for(cache: &CacheConfig) -> PaddingConfig {
    PaddingConfig::multi_level(vec![CacheParams::new(cache.size(), cache.line_size())
        .expect("CacheConfig geometry is always valid for the analysis")])
    .expect("one level supplied")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_core::Pad;
    use pad_ir::{ArrayBuilder, Loop, Stmt, Subscript};

    /// Figure 1: severe inter-variable conflicts in a dot product.
    fn dot(n: i64) -> Program {
        let mut b = Program::builder("dot");
        let a = b.add_array(ArrayBuilder::new("A", [n]));
        let bb = b.add_array(ArrayBuilder::new("B", [n]));
        b.push(Stmt::loop_(
            Loop::new("i", 1, n),
            vec![Stmt::refs(vec![
                a.at([Subscript::var("i")]),
                bb.at([Subscript::var("i")]),
            ])],
        ));
        b.build().expect("valid")
    }

    #[test]
    fn padding_rescues_the_dot_product() {
        let cache = CacheConfig::paper_base();
        let p = dot(2048); // exactly one cache of doubles per array
        let original = simulate_program(&p, &DataLayout::original(&p), &cache);
        assert!(original.miss_rate() > 0.99, "unpadded: every access misses");

        let outcome = Pad::new(padding_config_for(&cache)).run(&p);
        let padded = simulate_program(&p, &outcome.layout, &cache);
        // With bases separated, only cold misses remain: one per 32-byte
        // line, i.e. a miss every 4 doubles.
        assert!(
            padded.miss_rate() < 0.26,
            "padded rate {}",
            padded.miss_rate()
        );
    }

    #[test]
    fn classification_sees_the_conflicts() {
        let cache = CacheConfig::paper_base();
        let p = dot(2048);
        let classified = simulate_classified(&p, &DataLayout::original(&p), &cache);
        assert!(classified.conflict_share() > 0.7);

        let outcome = Pad::new(padding_config_for(&cache)).run(&p);
        let after = simulate_classified(&p, &outcome.layout, &cache);
        assert_eq!(after.conflict, 0, "PAD removed every conflict miss");
    }

    #[test]
    fn higher_associativity_also_rescues() {
        // The paper's Figure 9 comparison in miniature: 2-way
        // associativity fixes what padding fixes.
        let p = dot(2048);
        let two_way = CacheConfig::set_associative(16 * 1024, 32, 2);
        let stats = simulate_program(&p, &DataLayout::original(&p), &two_way);
        assert!(stats.miss_rate() < 0.26);
    }

    #[test]
    fn hierarchy_simulation_runs() {
        let p = dot(2048);
        let levels = simulate_hierarchy(
            &p,
            &DataLayout::original(&p),
            &[
                CacheConfig::direct_mapped(16 * 1024, 32),
                CacheConfig::set_associative(256 * 1024, 64, 4),
            ],
        );
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].stats.accesses, 2 * 2048);
        assert!(levels[1].stats.accesses >= levels[1].stats.misses);
    }

    #[test]
    fn padding_config_mirrors_cache() {
        let pc = padding_config_for(&CacheConfig::paper_base());
        assert_eq!(pc.primary().size, 16 * 1024);
        assert_eq!(pc.primary().line, 32);
    }
}
