//! Batched simulation: every simulator a (program, layout) pair feeds,
//! in one trace walk.
//!
//! The figure sweeps evaluate the *same* program/layout against several
//! cache organizations, miss classifiers, victim buffers, and multi-level
//! hierarchies. Trace generation is a large share of each cell's cost, so
//! regenerating the stream per simulator wastes the dominant term. A
//! [`BatchRequest`] names every sink up front; [`simulate_batch`] compiles
//! the trace once, walks it once, and tees chunked slices (via
//! [`CompiledTrace::for_each_chunk`]) into all sinks, so per-access
//! dispatch is a tight slice loop per simulator rather than a closure
//! call per access per simulator.

use pad_cache_sim::{
    Access, Cache, CacheConfig, CacheStats, ClassifiedStats, ClassifyingCache, Hierarchy,
    LevelStats, ReuseAnalyzer, ReuseHistogram, Sampler, SetHeatReport, SetHeatTracker, VictimCache,
    VictimStats,
};
use pad_core::DataLayout;
use pad_ir::Program;
use pad_telemetry::{Event, Value};

use crate::compiled::CompiledTrace;

/// Chunk size used by the batched engine: big enough to amortize the
/// per-chunk sink loop, small enough to stay resident in L1/L2 while
/// several simulated caches touch it.
pub const BATCH_CHUNK: usize = 4096;

/// Everything one compiled trace should be run through.
///
/// Build with the fluent `with_*` methods; empty requests are legal and
/// produce empty results.
#[derive(Debug, Clone, Default)]
pub struct BatchRequest {
    /// Plain single-level caches.
    pub plain: Vec<CacheConfig>,
    /// Caches with three-C miss classification.
    pub classified: Vec<CacheConfig>,
    /// Caches augmented with an `n`-line victim buffer.
    pub victim: Vec<(CacheConfig, usize)>,
    /// Multi-level hierarchies (each a list of levels, L1 first).
    pub hierarchy: Vec<Vec<CacheConfig>>,
    /// Reuse-distance (stack-distance) analyses, one per line size in
    /// bytes. Each yields a [`ReuseHistogram`] — the exact
    /// fully-associative LRU miss count for *every* capacity at once.
    pub reuse: Vec<u64>,
    /// Per-set heat classifications. Each yields a [`SetHeatReport`]
    /// naming which sets carry the conflict pressure — the evidence the
    /// XOR-indexing and victim-cache scenarios act on.
    pub heat: Vec<CacheConfig>,
}

impl BatchRequest {
    /// An empty request.
    pub fn new() -> Self {
        BatchRequest::default()
    }

    /// Adds a plain cache simulation.
    #[must_use]
    pub fn with_plain(mut self, config: CacheConfig) -> Self {
        self.plain.push(config);
        self
    }

    /// Adds several plain cache simulations.
    #[must_use]
    pub fn with_plain_configs<I: IntoIterator<Item = CacheConfig>>(mut self, configs: I) -> Self {
        self.plain.extend(configs);
        self
    }

    /// Adds a classified (three-C) simulation.
    #[must_use]
    pub fn with_classified(mut self, config: CacheConfig) -> Self {
        self.classified.push(config);
        self
    }

    /// Adds a victim-buffered simulation.
    #[must_use]
    pub fn with_victim(mut self, config: CacheConfig, victim_lines: usize) -> Self {
        self.victim.push((config, victim_lines));
        self
    }

    /// Adds a multi-level hierarchy simulation.
    #[must_use]
    pub fn with_hierarchy<I: IntoIterator<Item = CacheConfig>>(mut self, levels: I) -> Self {
        self.hierarchy.push(levels.into_iter().collect());
        self
    }

    /// Adds a reuse-distance analysis over lines of `line_size` bytes.
    #[must_use]
    pub fn with_reuse(mut self, line_size: u64) -> Self {
        self.reuse.push(line_size);
        self
    }

    /// Adds a per-set heat classification of `config`.
    #[must_use]
    pub fn with_heat(mut self, config: CacheConfig) -> Self {
        self.heat.push(config);
        self
    }

    /// True when no sink was requested.
    pub fn is_empty(&self) -> bool {
        self.plain.is_empty()
            && self.classified.is_empty()
            && self.victim.is_empty()
            && self.hierarchy.is_empty()
            && self.reuse.is_empty()
            && self.heat.is_empty()
    }
}

/// Results of a [`simulate_batch`] run, index-aligned with the request.
#[derive(Debug, Clone, Default)]
pub struct BatchResults {
    /// Per-[`BatchRequest::plain`] statistics, in request order.
    pub plain: Vec<CacheStats>,
    /// Per-[`BatchRequest::classified`] statistics, in request order.
    pub classified: Vec<ClassifiedStats>,
    /// Per-[`BatchRequest::victim`] statistics, in request order.
    pub victim: Vec<VictimStats>,
    /// Per-[`BatchRequest::hierarchy`] level statistics, in request order.
    pub hierarchy: Vec<Vec<LevelStats>>,
    /// Per-[`BatchRequest::reuse`] histograms, in request order.
    pub reuse: Vec<ReuseHistogram>,
    /// Per-[`BatchRequest::heat`] reports, in request order.
    pub heat: Vec<SetHeatReport>,
}

/// Compiles `program` × `layout` and runs the trace through every sink in
/// the request with a single walk.
///
/// Equivalent, sink for sink, to calling [`crate::simulate_program`],
/// [`crate::simulate_classified`], [`crate::simulate_victim`], and
/// [`crate::simulate_hierarchy`] separately (the `batch` test module and
/// the bench determinism suite assert this bit-for-bit).
///
/// # Example
///
/// ```
/// use pad_cache_sim::CacheConfig;
/// use pad_core::DataLayout;
/// use pad_trace::{simulate_batch, BatchRequest};
///
/// let program = pad_kernels::jacobi::spec(32);
/// let layout = DataLayout::original(&program);
/// let results = simulate_batch(
///     &program,
///     &layout,
///     &BatchRequest::new()
///         .with_plain(CacheConfig::paper_base())
///         .with_classified(CacheConfig::paper_base()),
/// );
/// assert_eq!(results.plain[0], results.classified[0].cache);
/// ```
pub fn simulate_batch(
    program: &Program,
    layout: &DataLayout,
    request: &BatchRequest,
) -> BatchResults {
    thread_local! {
        // One persistent chunk buffer per thread: sweep workers call
        // `simulate_batch` per cell, and reusing the allocation keeps
        // the chunk's backing store hot in cache across walks instead
        // of paying an allocator round-trip per call. Sinks never call
        // back into `simulate_batch`, so the borrow cannot be re-entered.
        static CHUNK_BUF: std::cell::RefCell<Vec<Access>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    let compiled = CompiledTrace::compile(program, layout);
    CHUNK_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        simulate_batch_compiled(&compiled, request, &mut buf)
    })
}

/// [`simulate_batch`] for an already-compiled trace, reusing a
/// caller-owned chunk buffer across calls (the experiment runner keeps
/// one buffer per worker thread).
pub fn simulate_batch_compiled(
    trace: &CompiledTrace,
    request: &BatchRequest,
    buf: &mut Vec<Access>,
) -> BatchResults {
    let mut plain: Vec<Cache> = request.plain.iter().map(|c| Cache::new(*c)).collect();
    let mut classified: Vec<ClassifyingCache> = request
        .classified
        .iter()
        .map(|c| ClassifyingCache::new(*c))
        .collect();
    let mut victim: Vec<VictimCache> = request
        .victim
        .iter()
        .map(|&(c, n)| VictimCache::new(c, n))
        .collect();
    let mut hierarchy: Vec<Hierarchy> = request
        .hierarchy
        .iter()
        .map(|levels| Hierarchy::new(levels.clone()))
        .collect();
    let mut reuse: Vec<ReuseAnalyzer> = request
        .reuse
        .iter()
        .map(|&line_size| ReuseAnalyzer::new(line_size))
        .collect();
    let mut heat: Vec<SetHeatTracker> = request
        .heat
        .iter()
        .map(|c| SetHeatTracker::new(*c))
        .collect();

    // Accesses actually walked, tallied per chunk (one add per ~4K
    // accesses) so the metrics accounting below never needs a second
    // walk of the trace.
    let mut walked = 0u64;
    if !request.is_empty() {
        if pad_telemetry::enabled() {
            // Instrumented walk, taken only when telemetry is on; the
            // default path below stays exactly the seed loop, so the
            // disabled cost is this one branch per batch call.
            walked = run_instrumented(
                trace,
                buf,
                &mut plain,
                &mut classified,
                &mut victim,
                &mut hierarchy,
                &mut reuse,
                &mut heat,
            );
        } else {
            trace.for_each_chunk(BATCH_CHUNK, buf, |chunk| {
                walked += chunk.len() as u64;
                for cache in &mut plain {
                    cache.run_slice(chunk);
                }
                for cache in &mut classified {
                    cache.run_slice(chunk);
                }
                for cache in &mut victim {
                    cache.run_slice(chunk);
                }
                for h in &mut hierarchy {
                    h.run_slice(chunk);
                }
                for r in &mut reuse {
                    r.run_slice(chunk);
                }
                for h in &mut heat {
                    h.run_slice(chunk);
                }
            });
        }
    }

    // Live-metrics accounting happens once per batch, after the walk:
    // the per-access hot loops above stay untouched in every mode.
    if walked > 0 && pad_telemetry::metrics_enabled() {
        use std::sync::OnceLock;
        static ACCESSES: OnceLock<std::sync::Arc<pad_telemetry::Counter>> = OnceLock::new();
        ACCESSES
            .get_or_init(|| {
                pad_telemetry::registry().counter(
                    "pad_sim_accesses_total",
                    "Accesses walked by the batched simulation engine.",
                )
            })
            .add(walked);
    }

    BatchResults {
        plain: plain.iter().map(|c| *c.stats()).collect(),
        classified: classified.iter().map(|c| *c.stats()).collect(),
        victim: victim.iter().map(|c| *c.stats()).collect(),
        hierarchy: hierarchy.iter().map(Hierarchy::stats).collect(),
        reuse: reuse
            .into_iter()
            .map(ReuseAnalyzer::into_histogram)
            .collect(),
        heat: heat.iter().map(SetHeatTracker::report).collect(),
    }
}

/// The telemetry-enabled walk: identical sink updates (same chunking,
/// same `run_slice` calls, so statistics are bit-identical to the plain
/// loop), plus a `sim` throughput span per walk and optional periodic
/// cache-counter samples (`RIVERA_SIM_SAMPLE` accesses apart, checked at
/// chunk boundaries). Victim-buffered sinks are not sampled — they do not
/// expose their main cache — but still run and report normally. Reuse
/// sinks have no `Cache` to sample; instead each emits one end-of-walk
/// counter (distinct lines, max distance, tick compactions). Heat sinks
/// likewise emit one end-of-walk counter with their class census.
#[allow(clippy::too_many_arguments)]
fn run_instrumented(
    trace: &CompiledTrace,
    buf: &mut Vec<Access>,
    plain: &mut [Cache],
    classified: &mut [ClassifyingCache],
    victim: &mut [VictimCache],
    hierarchy: &mut [Hierarchy],
    reuse: &mut [ReuseAnalyzer],
    heat: &mut [SetHeatTracker],
) -> u64 {
    let start_us = pad_telemetry::now_us();
    let interval = pad_telemetry::sample_interval();
    // Sampler setup is hoisted fully out of the walk and skipped — name
    // `format!`s included — when sampling is disabled: only *active*
    // samplers are materialized (paired with the index of the sink they
    // watch), so the per-chunk loops below iterate zero times instead of
    // re-checking a per-sink `Option` every chunk.
    let mut plain_samplers: Vec<(usize, Sampler)> = Vec::new();
    let mut classified_samplers: Vec<(usize, Sampler)> = Vec::new();
    let mut hierarchy_samplers: Vec<(usize, usize, Sampler)> = Vec::new();
    if interval > 0 {
        plain_samplers = (0..plain.len())
            .filter_map(|i| {
                Sampler::new(format!("{}/plain{i}", trace.name()), interval).map(|s| (i, s))
            })
            .collect();
        classified_samplers = (0..classified.len())
            .filter_map(|i| {
                Sampler::new(format!("{}/classified{i}", trace.name()), interval).map(|s| (i, s))
            })
            .collect();
        hierarchy_samplers = hierarchy
            .iter()
            .enumerate()
            .flat_map(|(i, h)| (0..h.levels().len()).map(move |lvl| (i, lvl)))
            .filter_map(|(i, lvl)| {
                Sampler::new(format!("{}/hier{i}.L{}", trace.name(), lvl + 1), interval)
                    .map(|s| (i, lvl, s))
            })
            .collect();
    }

    let mut accesses = 0u64;
    let mut chunks = 0u64;
    trace.for_each_chunk(BATCH_CHUNK, buf, |chunk| {
        accesses += chunk.len() as u64;
        chunks += 1;
        for cache in &mut *plain {
            cache.run_slice(chunk);
        }
        for cache in &mut *classified {
            cache.run_slice(chunk);
        }
        for cache in &mut *victim {
            cache.run_slice(chunk);
        }
        for h in &mut *hierarchy {
            h.run_slice(chunk);
        }
        for r in &mut *reuse {
            r.run_slice(chunk);
        }
        for h in &mut *heat {
            h.run_slice(chunk);
        }
        for (i, s) in &mut plain_samplers {
            s.tick(&plain[*i]);
        }
        for (i, s) in &mut classified_samplers {
            s.tick(classified[*i].main());
        }
        for (i, lvl, s) in &mut hierarchy_samplers {
            s.tick(&hierarchy[*i].levels()[*lvl]);
        }
    });

    // End-of-walk flush so short walks still yield one data point each.
    for (i, s) in &plain_samplers {
        s.sample(&plain[*i]);
    }
    for (i, s) in &classified_samplers {
        s.sample(classified[*i].main());
    }
    for (i, lvl, s) in &hierarchy_samplers {
        s.sample(&hierarchy[*i].levels()[*lvl]);
    }

    for (i, r) in reuse.iter().enumerate() {
        pad_telemetry::emit(|| {
            let h = r.histogram();
            Event::counter(
                "reuse",
                format!("{}/reuse{i}", trace.name()),
                vec![
                    ("accesses", Value::U64(h.accesses())),
                    ("distinct_lines", Value::U64(h.cold())),
                    ("max_distance", Value::U64(h.max_distance().unwrap_or(0))),
                    ("compactions", Value::U64(r.compactions())),
                ],
            )
        });
    }

    for (i, h) in heat.iter().enumerate() {
        pad_telemetry::emit(|| {
            let report = h.report();
            let c = report.class_counts();
            Event::counter(
                "heat",
                format!("{}/heat{i}", trace.name()),
                vec![
                    ("very_hot_sets", Value::U64(c[0])),
                    ("hot_sets", Value::U64(c[1])),
                    ("cold_sets", Value::U64(c[2])),
                    ("very_cold_sets", Value::U64(c[3])),
                    ("evictions", Value::U64(report.total_evictions())),
                ],
            )
        });
    }

    let sinks = (plain.len()
        + classified.len()
        + victim.len()
        + hierarchy.len()
        + reuse.len()
        + heat.len()) as u64;
    pad_telemetry::emit(|| {
        let busy_us = pad_telemetry::now_us().saturating_sub(start_us).max(1);
        Event::span(
            start_us,
            "sim",
            trace.name().to_string(),
            vec![
                ("accesses", Value::U64(accesses)),
                ("chunks", Value::U64(chunks)),
                ("sinks", Value::U64(sinks)),
                (
                    "accesses_per_sec",
                    Value::F64(accesses as f64 / (busy_us as f64 / 1e6)),
                ),
            ],
        )
    });
    accesses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{simulate_classified, simulate_hierarchy, simulate_program, simulate_victim};

    #[test]
    fn batch_matches_individual_entry_points() {
        let program = pad_kernels::shal::spec(24);
        let layout = DataLayout::original(&program);
        let dm = CacheConfig::direct_mapped(1024, 32);
        let assoc = CacheConfig::set_associative(2048, 32, 2);
        let l2 = CacheConfig::set_associative(8 * 1024, 64, 4);

        let results = simulate_batch(
            &program,
            &layout,
            &BatchRequest::new()
                .with_plain(dm)
                .with_plain(assoc)
                .with_classified(dm)
                .with_victim(dm, 4)
                .with_hierarchy([dm, l2]),
        );

        assert_eq!(results.plain[0], simulate_program(&program, &layout, &dm));
        assert_eq!(
            results.plain[1],
            simulate_program(&program, &layout, &assoc)
        );
        assert_eq!(
            results.classified[0],
            simulate_classified(&program, &layout, &dm)
        );
        assert_eq!(
            results.victim[0],
            simulate_victim(&program, &layout, &dm, 4)
        );
        assert_eq!(
            results.hierarchy[0],
            simulate_hierarchy(&program, &layout, &[dm, l2])
        );
    }

    #[test]
    fn empty_request_yields_empty_results() {
        let program = pad_kernels::dot::spec(16);
        let layout = DataLayout::original(&program);
        let results = simulate_batch(&program, &layout, &BatchRequest::new());
        assert!(results.plain.is_empty());
        assert!(results.classified.is_empty());
        assert!(results.victim.is_empty());
        assert!(results.hierarchy.is_empty());
        assert!(results.reuse.is_empty());
        assert!(results.heat.is_empty());
    }

    #[test]
    fn batch_heat_matches_standalone_tracker_and_plain_stats() {
        use pad_cache_sim::SetHeatTracker;

        let program = pad_kernels::jacobi::spec(24);
        let layout = DataLayout::original(&program);
        let dm = CacheConfig::direct_mapped(1024, 32);
        let results = simulate_batch(
            &program,
            &layout,
            &BatchRequest::new().with_plain(dm).with_heat(dm),
        );

        let compiled = CompiledTrace::compile(&program, &layout);
        let mut reference = SetHeatTracker::new(dm);
        compiled.for_each(|a| reference.access(a));
        assert_eq!(results.heat[0], reference.report());

        // Per-set tallies reconcile with the plain simulation of the
        // same geometry.
        let accesses: u64 = results.heat[0].rows().iter().map(|r| r.accesses).sum();
        let misses: u64 = results.heat[0].rows().iter().map(|r| r.misses).sum();
        assert_eq!(accesses, results.plain[0].accesses);
        assert_eq!(misses, results.plain[0].misses);
    }

    #[test]
    fn instrumented_heat_sink_emits_class_census() {
        let program = pad_kernels::jacobi::spec(24);
        let layout = DataLayout::original(&program);
        let dm = CacheConfig::direct_mapped(1024, 32);
        let request = BatchRequest::new().with_heat(dm);

        let baseline = simulate_batch(&program, &layout, &request);
        let recorder = pad_telemetry::install_recorder(pad_telemetry::Mode::Events);
        let instrumented = simulate_batch(&program, &layout, &request);
        pad_telemetry::uninstall();

        assert_eq!(baseline.heat, instrumented.heat);
        let events = recorder.snapshot();
        let heat_counters: Vec<_> = events.iter().filter(|e| e.category == "heat").collect();
        assert_eq!(heat_counters.len(), 1);
        let census: u64 = ["very_hot_sets", "hot_sets", "cold_sets", "very_cold_sets"]
            .iter()
            .map(|k| {
                heat_counters[0]
                    .arg(k)
                    .and_then(pad_telemetry::Value::as_u64)
                    .expect("census key present")
            })
            .sum();
        assert_eq!(census, baseline.heat[0].num_sets());
        let sim_span = events
            .iter()
            .find(|e| e.category == "sim" && e.name == program.name())
            .expect("walk span");
        assert_eq!(
            sim_span.arg("sinks").and_then(pad_telemetry::Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn batch_reuse_matches_standalone_analyzer() {
        let program = pad_kernels::jacobi::spec(24);
        let layout = DataLayout::original(&program);
        let results = simulate_batch(
            &program,
            &layout,
            &BatchRequest::new().with_reuse(32).with_reuse(64),
        );

        let compiled = CompiledTrace::compile(&program, &layout);
        for (i, &line_size) in [32u64, 64].iter().enumerate() {
            let mut reference = ReuseAnalyzer::new(line_size);
            compiled.for_each(|a| reference.access(a));
            assert_eq!(
                results.reuse[i],
                *reference.histogram(),
                "line_size={line_size}"
            );
        }

        // The histogram agrees with a plain fully-associative simulation
        // at a spot-check capacity (64 lines of 32 B).
        let fa = CacheConfig::fully_associative(64 * 32, 32);
        let stats = simulate_program(&program, &layout, &fa);
        assert_eq!(results.reuse[0].misses_at(64), stats.misses);
        assert_eq!(results.reuse[0].accesses(), stats.accesses);
    }

    #[test]
    fn instrumented_walk_matches_plain_and_emits_events() {
        let program = pad_kernels::jacobi::spec(24);
        let layout = DataLayout::original(&program);
        let dm = CacheConfig::direct_mapped(1024, 32);
        let l2 = CacheConfig::set_associative(8 * 1024, 64, 4);
        let request = BatchRequest::new()
            .with_plain(dm)
            .with_classified(dm)
            .with_victim(dm, 4)
            .with_hierarchy([dm, l2])
            .with_reuse(32);

        let baseline = simulate_batch(&program, &layout, &request);
        let recorder = pad_telemetry::install_recorder(pad_telemetry::Mode::Events);
        let instrumented = simulate_batch(&program, &layout, &request);
        pad_telemetry::uninstall();

        assert_eq!(baseline.plain, instrumented.plain);
        assert_eq!(baseline.classified, instrumented.classified);
        assert_eq!(baseline.victim, instrumented.victim);
        assert_eq!(baseline.hierarchy, instrumented.hierarchy);
        assert_eq!(baseline.reuse, instrumented.reuse);

        let events = recorder.snapshot();
        let sim_spans: Vec<_> = events
            .iter()
            .filter(|e| e.category == "sim" && e.name == program.name())
            .collect();
        assert_eq!(sim_spans.len(), 1, "one walk span per batch");
        assert_eq!(
            sim_spans[0]
                .arg("sinks")
                .and_then(pad_telemetry::Value::as_u64),
            Some(5)
        );
        let accesses = sim_spans[0]
            .arg("accesses")
            .and_then(pad_telemetry::Value::as_u64)
            .expect("accesses recorded");
        assert_eq!(accesses, baseline.plain[0].accesses);
        // End-of-walk flush: one counter per sampled level (plain +
        // classified main + two hierarchy levels; victim is unsampled).
        let cache_counters = events.iter().filter(|e| e.category == "cache").count();
        assert_eq!(cache_counters, 4);
        // ...plus one end-of-walk reuse counter carrying the histogram
        // shape.
        let reuse_counters: Vec<_> = events.iter().filter(|e| e.category == "reuse").collect();
        assert_eq!(reuse_counters.len(), 1);
        assert_eq!(
            reuse_counters[0]
                .arg("accesses")
                .and_then(pad_telemetry::Value::as_u64),
            Some(baseline.reuse[0].accesses())
        );
        assert_eq!(
            reuse_counters[0]
                .arg("distinct_lines")
                .and_then(pad_telemetry::Value::as_u64),
            Some(baseline.reuse[0].cold())
        );
    }

    #[test]
    fn chunking_is_invisible() {
        // Walk the same compiled trace with pathological chunk sizes; the
        // concatenation must always equal the plain stream.
        let program = pad_kernels::jacobi::spec(20);
        let layout = DataLayout::original(&program);
        let compiled = CompiledTrace::compile(&program, &layout);
        let mut plain = Vec::new();
        compiled.for_each(|a| plain.push(a));
        for chunk in [1usize, 2, 3, 7, 1024, usize::MAX >> 32] {
            let mut buf = Vec::new();
            let mut chunked = Vec::new();
            compiled.for_each_chunk(chunk, &mut buf, |c| chunked.extend_from_slice(c));
            assert_eq!(plain, chunked, "chunk={chunk}");
        }
    }
}
