//! Compiled trace generation.
//!
//! [`crate::for_each_access`] interprets the IR directly: every subscript
//! evaluation walks a name-keyed environment. For the experiment harness —
//! billions of accesses across the figure sweeps — that overhead
//! dominates. This module *compiles* a program × layout pair once:
//! loop variables become integer slots, subscripts become pre-linearized
//! `base + Σ coeff·slot` forms (folding in element sizes, lower bounds,
//! and the layout's base addresses), and the walk touches no strings or
//! maps. The compiled walker is verified access-for-access against the
//! interpreter by `equivalence` tests and property tests.

use pad_cache_sim::Access;
use pad_core::DataLayout;
use pad_ir::{AccessKind, AffineExpr, IndexVar, Program, Stmt};

/// A pre-resolved affine expression over loop slots.
#[derive(Debug, Clone)]
struct SlotExpr {
    constant: i64,
    terms: Vec<(usize, i64)>,
}

impl SlotExpr {
    fn eval(&self, slots: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(slot, coeff) in &self.terms {
            acc += coeff * slots[slot];
        }
        acc
    }
}

#[derive(Debug, Clone)]
enum Node {
    Loop {
        slot: usize,
        lower: SlotExpr,
        upper: SlotExpr,
        step: i64,
        body: Vec<Node>,
    },
    /// An innermost loop whose body is straight-line references — the
    /// shape every kernel's hot loop takes. Instead of re-evaluating each
    /// subscript's full `base + Σ coeff·slot` form per iteration, the
    /// walk evaluates each reference's address once at the first
    /// iteration and then advances it by the constant per-iteration
    /// `delta = coeff(slot) · step`, so the steady state is one add per
    /// reference per iteration.
    InnerLoop {
        slot: usize,
        lower: SlotExpr,
        upper: SlotExpr,
        step: i64,
        refs: Vec<InnerRef>,
    },
    Ref {
        addr: SlotExpr,
        is_write: bool,
    },
}

/// One reference inside an [`Node::InnerLoop`] body.
#[derive(Debug, Clone)]
struct InnerRef {
    addr: SlotExpr,
    /// Address advance per loop iteration: the address expression's
    /// coefficient on the loop's own slot times the loop step.
    delta: i64,
    is_write: bool,
}

/// A program × layout pair compiled for fast trace generation.
///
/// # Example
///
/// ```
/// use pad_core::DataLayout;
/// use pad_trace::CompiledTrace;
///
/// let program = pad_kernels::jacobi::spec(16);
/// let layout = DataLayout::original(&program);
/// let compiled = CompiledTrace::compile(&program, &layout);
/// assert_eq!(compiled.count(), pad_trace::count_accesses(&program, &layout));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    name: String,
    roots: Vec<Node>,
    num_slots: usize,
}

impl CompiledTrace {
    /// Compiles the program against a layout. The layout is captured by
    /// value of its address parameters; later changes to it do not affect
    /// the compiled trace.
    pub fn compile(program: &Program, layout: &DataLayout) -> Self {
        let mut scope: Vec<IndexVar> = Vec::new();
        let mut num_slots = 0usize;
        let mut roots = Vec::new();
        for stmt in program.body() {
            match stmt {
                Stmt::Refs(refs) => {
                    // Top-level straight-line accesses (rare but legal).
                    for r in refs {
                        roots.push(compile_ref(r, layout, &scope));
                    }
                }
                nested @ Stmt::Loop { .. } => {
                    roots.push(compile_stmt(nested, layout, &mut scope, &mut num_slots));
                }
            }
        }
        CompiledTrace {
            name: program.name().to_string(),
            roots,
            num_slots,
        }
    }

    /// The source program's name (labels telemetry spans for this trace).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Invokes `f` for every access, in program order — the compiled
    /// equivalent of [`crate::for_each_access`].
    pub fn for_each(&self, mut f: impl FnMut(Access)) {
        let mut slots = vec![0i64; self.num_slots];
        for node in &self.roots {
            walk(node, &mut slots, &mut f);
        }
    }

    /// Counts the accesses the compiled program performs.
    pub fn count(&self) -> u64 {
        let mut n = 0u64;
        self.for_each(|_| n += 1);
        n
    }

    /// Invokes `f` with consecutive chunks of the access stream, filling
    /// (and reusing) `buf` up to `chunk` accesses at a time. Concatenated,
    /// the chunks are exactly the [`CompiledTrace::for_each`] stream.
    ///
    /// This is the batched engine's generation primitive: emitting into a
    /// contiguous buffer once and handing slices to each simulation sink
    /// amortizes per-access dispatch across every cache configuration
    /// that consumes the trace. The buffer is caller-owned so sweeps can
    /// reuse one allocation across many kernels.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn for_each_chunk(
        &self,
        chunk: usize,
        buf: &mut Vec<Access>,
        mut f: impl FnMut(&[Access]),
    ) {
        assert!(chunk > 0, "chunk size must be positive");
        buf.clear();
        if buf.capacity() < chunk {
            buf.reserve(chunk - buf.capacity());
        }
        {
            let f = &mut f;
            let buf = &mut *buf;
            self.for_each(move |a| {
                buf.push(a);
                if buf.len() == chunk {
                    f(buf);
                    buf.clear();
                }
            });
        }
        if !buf.is_empty() {
            f(buf);
            buf.clear();
        }
    }

    /// Runs the compiled trace through a cache and returns its
    /// statistics.
    pub fn simulate(&self, config: &pad_cache_sim::CacheConfig) -> pad_cache_sim::CacheStats {
        let mut cache = pad_cache_sim::Cache::new(*config);
        self.for_each(|a| {
            cache.access(a);
        });
        *cache.stats()
    }
}

fn resolve(expr: &AffineExpr, scope: &[IndexVar], scale: i64, constant: i64) -> SlotExpr {
    let mut out = SlotExpr {
        constant: constant + expr.offset() * scale,
        terms: Vec::new(),
    };
    for (var, coeff) in expr.terms() {
        // Innermost binding wins, mirroring the interpreter's scoping.
        let slot = scope
            .iter()
            .rposition(|v| v == var)
            .expect("validated programs bind every variable");
        out.terms.push((slot, coeff * scale));
    }
    out
}

fn compile_stmt(
    stmt: &Stmt,
    layout: &DataLayout,
    scope: &mut Vec<IndexVar>,
    num_slots: &mut usize,
) -> Node {
    match stmt {
        Stmt::Refs(_) => unreachable!("refs are flattened by the Loop arm"),
        Stmt::Loop { header, body } => {
            let lower = resolve(header.lower(), scope, 1, 0);
            let upper = resolve(header.upper(), scope, 1, 0);
            let slot = scope.len();
            *num_slots = (*num_slots).max(slot + 1);
            scope.push(header.var().clone());
            let mut children = Vec::new();
            for s in body {
                match s {
                    Stmt::Refs(refs) => {
                        for r in refs {
                            children.push(compile_ref(r, layout, scope));
                        }
                    }
                    nested @ Stmt::Loop { .. } => {
                        children.push(compile_stmt(nested, layout, scope, num_slots));
                    }
                }
            }
            scope.pop();
            let step = header.step();
            // Innermost all-reference bodies get the incremental form:
            // per-iteration address deltas replace full re-evaluation.
            if !children.is_empty() && children.iter().all(|c| matches!(c, Node::Ref { .. })) {
                let refs = children
                    .into_iter()
                    .map(|c| match c {
                        Node::Ref { addr, is_write } => {
                            let delta = addr
                                .terms
                                .iter()
                                .find(|&&(s, _)| s == slot)
                                .map_or(0, |&(_, coeff)| coeff * step);
                            InnerRef {
                                addr,
                                delta,
                                is_write,
                            }
                        }
                        Node::Loop { .. } | Node::InnerLoop { .. } => unreachable!(),
                    })
                    .collect();
                return Node::InnerLoop {
                    slot,
                    lower,
                    upper,
                    step,
                    refs,
                };
            }
            Node::Loop {
                slot,
                lower,
                upper,
                step,
                body: children,
            }
        }
    }
}

fn compile_ref(r: &pad_ir::ArrayRef, layout: &DataLayout, scope: &[IndexVar]) -> Node {
    let dims = layout.dims(r.array());
    let elem = i64::from(layout.elem_size(r.array()));
    let mut addr = SlotExpr {
        constant: layout.base_addr(r.array()) as i64,
        terms: Vec::new(),
    };
    let mut stride = elem;
    for (sub, dim) in r.subscripts().iter().zip(dims) {
        let resolved = resolve(sub, scope, stride, 0);
        addr.constant += resolved.constant - dim.lower * stride;
        for term in resolved.terms {
            match addr.terms.iter_mut().find(|(s, _)| *s == term.0) {
                Some((_, c)) => *c += term.1,
                None => addr.terms.push(term),
            }
        }
        stride *= dim.size;
    }
    addr.terms.retain(|&(_, c)| c != 0);
    Node::Ref {
        addr,
        is_write: r.kind() == AccessKind::Write,
    }
}

fn walk(node: &Node, slots: &mut Vec<i64>, f: &mut impl FnMut(Access)) {
    match node {
        Node::Ref { addr, is_write } => {
            f(Access {
                addr: addr.eval(slots) as u64,
                is_write: *is_write,
            });
        }
        Node::Loop {
            slot,
            lower,
            upper,
            step,
            body,
        } => {
            let lo = lower.eval(slots);
            let hi = upper.eval(slots);
            let mut value = lo;
            loop {
                let in_range = if *step > 0 { value <= hi } else { value >= hi };
                if !in_range {
                    break;
                }
                slots[*slot] = value;
                for child in body {
                    walk(child, slots, f);
                }
                value += step;
            }
        }
        Node::InnerLoop {
            slot,
            lower,
            upper,
            step,
            refs,
        } => {
            let lo = lower.eval(slots);
            let hi = upper.eval(slots);
            debug_assert_ne!(*step, 0, "validated loops have nonzero steps");
            // Trip count in i128: the bounds are i64 expressions, so the
            // difference must not wrap.
            let iters = if *step > 0 {
                if lo > hi {
                    0
                } else {
                    (hi as i128 - lo as i128) / *step as i128 + 1
                }
            } else if lo < hi {
                0
            } else {
                (lo as i128 - hi as i128) / (-*step) as i128 + 1
            };
            if iters == 0 {
                return;
            }
            slots[*slot] = lo;
            match refs.as_slice() {
                // Single-reference bodies (copy/transpose-style inner
                // loops) collapse to a pure strided emit.
                [r] => {
                    let mut addr = r.addr.eval(slots);
                    let is_write = r.is_write;
                    for _ in 0..iters {
                        f(Access {
                            addr: addr as u64,
                            is_write,
                        });
                        addr = addr.wrapping_add(r.delta);
                    }
                }
                _ => {
                    let mut cursors: Vec<(i64, i64, bool)> = refs
                        .iter()
                        .map(|r| (r.addr.eval(slots), r.delta, r.is_write))
                        .collect();
                    for _ in 0..iters {
                        for c in &mut cursors {
                            f(Access {
                                addr: c.0 as u64,
                                is_write: c.2,
                            });
                            c.0 = c.0.wrapping_add(c.1);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::for_each_access;
    use pad_ir::{ArrayBuilder, Loop, Subscript};

    fn interpret(program: &Program, layout: &DataLayout) -> Vec<(u64, bool)> {
        let mut out = Vec::new();
        for_each_access(program, layout, |a| out.push((a.addr, a.is_write)));
        out
    }

    fn compiled(program: &Program, layout: &DataLayout) -> Vec<(u64, bool)> {
        let mut out = Vec::new();
        CompiledTrace::compile(program, layout).for_each(|a| out.push((a.addr, a.is_write)));
        out
    }

    #[test]
    fn matches_interpreter_on_every_suite_kernel() {
        for k in pad_kernels::suite() {
            let n = k.default_n.clamp(8, 16);
            let p = (k.spec)(n);
            for layout in [
                DataLayout::original(&p),
                pad_core::Pad::new(pad_core::PaddingConfig::new(1024, 32).expect("valid"))
                    .run(&p)
                    .layout,
            ] {
                assert_eq!(
                    interpret(&p, &layout),
                    compiled(&p, &layout),
                    "{} diverges",
                    k.name
                );
            }
        }
    }

    #[test]
    fn handles_shadowed_names_and_negative_steps() {
        let mut b = Program::builder("tricky");
        let a = b.add_array(ArrayBuilder::new("A", [8]).elem_size(1));
        b.push(Stmt::loop_(
            Loop::with_step("i", 8, 1, -2),
            vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
        ));
        b.push(Stmt::loop_(
            Loop::new("i", 1, 2),
            vec![Stmt::loop_(
                Loop::new("j", Subscript::var("i"), 4),
                vec![Stmt::refs(vec![a.at([Subscript::var("j")])])],
            )],
        ));
        let p = b.build().expect("valid");
        let layout = DataLayout::original(&p);
        assert_eq!(interpret(&p, &layout), compiled(&p, &layout));
    }

    #[test]
    fn simulate_agrees_with_interpreted_simulation() {
        let p = pad_kernels::jacobi::spec(32);
        let layout = DataLayout::original(&p);
        let cache = pad_cache_sim::CacheConfig::direct_mapped(1024, 32);
        let compiled_stats = CompiledTrace::compile(&p, &layout).simulate(&cache);
        let interpreted = crate::simulate_program(&p, &layout, &cache);
        assert_eq!(compiled_stats, interpreted);
    }

    #[test]
    fn scaled_subscripts_compile() {
        let mut b = Program::builder("scaled");
        let a = b.add_array(ArrayBuilder::new("A", [32]).elem_size(1));
        b.push(Stmt::loop_(
            Loop::new("i", 1, 10),
            vec![Stmt::refs(vec![a.at([Subscript::from_terms(
                [(pad_ir::IndexVar::new("i"), 3)],
                -2,
            )])])],
        ));
        let p = b.build().expect("valid");
        let layout = DataLayout::original(&p);
        assert_eq!(interpret(&p, &layout), compiled(&p, &layout));
    }
}
