//! Address-trace generation and trace-driven simulation.
//!
//! This crate connects the other halves of the reproduction: it executes a
//! [`pad_ir::Program`]'s loop nests under a [`pad_core::DataLayout`],
//! emitting the byte-accurate column-major address stream the program
//! would issue, and feeds that stream to [`pad_cache_sim`]. The paper did
//! the same with real binaries under Sun SHADE; simulating the array
//! reference stream of the optimized loop nests preserves the quantity
//! every figure reports — the *relative* effect of padding.
//!
//! # Example
//!
//! ```
//! use pad_ir::{ArrayBuilder, Loop, Program, Stmt, Subscript};
//! use pad_core::DataLayout;
//! use pad_cache_sim::CacheConfig;
//! use pad_trace::simulate_program;
//!
//! // Figure 1 of the paper: A and B collide in a direct-mapped cache.
//! let n = 2048;
//! let mut b = Program::builder("dot");
//! let a = b.add_array(ArrayBuilder::new("A", [n]));
//! let bb = b.add_array(ArrayBuilder::new("B", [n]));
//! b.push(Stmt::loop_(
//!     Loop::new("i", 1, n),
//!     vec![Stmt::refs(vec![
//!         a.at([Subscript::var("i")]),
//!         bb.at([Subscript::var("i")]),
//!     ])],
//! ));
//! let program = b.build()?;
//!
//! let stats = simulate_program(
//!     &program,
//!     &DataLayout::original(&program),
//!     &CacheConfig::paper_base(),
//! );
//! // Every access misses: the two streams evict each other's lines.
//! assert!(stats.miss_rate() > 0.99);
//! # Ok::<(), pad_ir::IrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod compiled;
mod generate;
mod multi;
mod record;
mod run;

pub use batch::{simulate_batch, simulate_batch_compiled, BatchRequest, BatchResults, BATCH_CHUNK};
pub use compiled::CompiledTrace;
pub use generate::{count_accesses, for_each_access};
pub use multi::simulate_many;
pub use record::collect_trace;
pub use run::{
    padding_config_for, simulate_classified, simulate_hierarchy, simulate_program, simulate_victim,
};
