//! Walking loop nests to produce address streams.

use pad_cache_sim::Access;
use pad_core::DataLayout;
use pad_ir::{AccessKind, AffineExpr, IndexVar, Program, Stmt};

/// Executes the program's loop nests under `layout`, invoking `f` for
/// every array access in program order.
///
/// Loop bounds are inclusive (Fortran `do` semantics); loops whose bounds
/// describe an empty range simply execute zero iterations, which is what
/// makes triangular nests like `do i = k+1, n` work at the boundary.
///
/// # Panics
///
/// Panics if a bound or subscript references a variable that no enclosing
/// loop binds (programs built through [`Program::builder`] are validated
/// and cannot trigger this).
pub fn for_each_access(program: &Program, layout: &DataLayout, mut f: impl FnMut(Access)) {
    let mut walker = Walker {
        layout,
        env: Vec::new(),
        indices: Vec::new(),
        f: &mut f,
    };
    for stmt in program.body() {
        walker.stmt(stmt);
    }
}

/// Counts the accesses the program would perform, without simulating.
pub fn count_accesses(program: &Program, layout: &DataLayout) -> u64 {
    let mut n = 0u64;
    for_each_access(program, layout, |_| n += 1);
    n
}

struct Walker<'a, F: FnMut(Access)> {
    layout: &'a DataLayout,
    env: Vec<(IndexVar, i64)>,
    indices: Vec<i64>,
    f: &'a mut F,
}

impl<F: FnMut(Access)> Walker<'_, F> {
    fn eval(&self, expr: &AffineExpr) -> i64 {
        expr.eval_with(|var| {
            self.env
                .iter()
                .rev()
                .find(|(v, _)| v == var)
                .map(|&(_, value)| value)
        })
        .expect("validated programs bind every variable")
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Refs(refs) => {
                for r in refs {
                    self.indices.clear();
                    for sub in r.subscripts() {
                        let v = self.eval(sub);
                        self.indices.push(v);
                    }
                    let addr = self.layout.address_of(r.array(), &self.indices);
                    (self.f)(Access {
                        addr,
                        is_write: r.kind() == AccessKind::Write,
                    });
                }
            }
            Stmt::Loop { header, body } => {
                let lower = self.eval(header.lower());
                let upper = self.eval(header.upper());
                let step = header.step();
                let mut value = lower;
                loop {
                    let in_range = if step > 0 {
                        value <= upper
                    } else {
                        value >= upper
                    };
                    if !in_range {
                        break;
                    }
                    self.env.push((header.var().clone(), value));
                    for s in body {
                        self.stmt(s);
                    }
                    self.env.pop();
                    value += step;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad_ir::{ArrayBuilder, ArrayId, Loop, Subscript};

    fn collect(program: &Program) -> Vec<(u64, bool)> {
        let layout = DataLayout::original(program);
        let mut out = Vec::new();
        for_each_access(program, &layout, |a| out.push((a.addr, a.is_write)));
        out
    }

    #[test]
    fn unit_stride_walk() {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [4]).elem_size(8));
        b.push(Stmt::loop_(
            Loop::new("i", 1, 4),
            vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
        ));
        let p = b.build().expect("valid");
        assert_eq!(
            collect(&p),
            vec![(0, false), (8, false), (16, false), (24, false)]
        );
    }

    #[test]
    fn column_major_nest_order() {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [2, 2]).elem_size(1));
        b.push(Stmt::loop_nest(
            [Loop::new("i", 1, 2), Loop::new("j", 1, 2)],
            vec![Stmt::refs(vec![a
                .at([Subscript::var("j"), Subscript::var("i")])
                .write()])],
        ));
        let p = b.build().expect("valid");
        // i outer, j inner: (1,1) (2,1) (1,2) (2,2) -> addresses 0 1 2 3.
        assert_eq!(
            collect(&p),
            vec![(0, true), (1, true), (2, true), (3, true)]
        );
    }

    #[test]
    fn triangular_bounds_shrink() {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [4]).elem_size(1));
        b.push(Stmt::loop_(
            Loop::new("k", 1, 3),
            vec![Stmt::loop_(
                Loop::new("i", Subscript::var_offset("k", 1), 4),
                vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
            )],
        ));
        let p = b.build().expect("valid");
        // k=1: i=2..4 (3), k=2: i=3..4 (2), k=3: i=4 (1).
        assert_eq!(collect(&p).len(), 6);
    }

    #[test]
    fn empty_range_executes_nothing() {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [4]).elem_size(1));
        b.push(Stmt::loop_(
            Loop::new("i", 5, 4),
            vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
        ));
        let p = b.build().expect("valid");
        assert!(collect(&p).is_empty());
    }

    #[test]
    fn negative_step_walks_backward() {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [3]).elem_size(1));
        b.push(Stmt::loop_(
            Loop::with_step("i", 3, 1, -1),
            vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
        ));
        let p = b.build().expect("valid");
        assert_eq!(collect(&p), vec![(2, false), (1, false), (0, false)]);
    }

    #[test]
    fn padding_shifts_addresses() {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [2, 2]).elem_size(1));
        let c = b.add_array(ArrayBuilder::new("C", [2]).elem_size(1));
        b.push(Stmt::loop_(
            Loop::new("i", 1, 2),
            vec![Stmt::refs(vec![
                a.at([Subscript::constant(1), Subscript::var("i")]),
                c.at([Subscript::var("i")]),
            ])],
        ));
        let p = b.build().expect("valid");
        let mut layout = DataLayout::original(&p);
        let ids: Vec<ArrayId> = p.arrays_with_ids().map(|(id, _)| id).collect();
        layout.pad_dim(ids[0], 0, 1);
        layout.assign_sequential_bases();
        let mut out = Vec::new();
        for_each_access(&p, &layout, |acc| out.push(acc.addr));
        // A columns now 3 wide; C starts after 3*2 = 6 bytes.
        assert_eq!(out, vec![0, 6, 3, 7]);
    }

    #[test]
    fn count_matches_for_each() {
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [10, 10]).elem_size(1));
        b.push(Stmt::loop_nest(
            [Loop::new("i", 1, 10), Loop::new("j", 1, 10)],
            vec![Stmt::refs(vec![
                a.at([Subscript::var("j"), Subscript::var("i")])
            ])],
        ));
        let p = b.build().expect("valid");
        let layout = DataLayout::original(&p);
        assert_eq!(count_accesses(&p, &layout), 100);
    }

    #[test]
    fn shadowed_names_resolve_innermost() {
        // Two sibling loops reuse "i"; inner scopes see their own binding.
        let mut b = Program::builder("p");
        let a = b.add_array(ArrayBuilder::new("A", [4]).elem_size(1));
        b.push(Stmt::loop_(
            Loop::new("i", 1, 2),
            vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
        ));
        b.push(Stmt::loop_(
            Loop::new("i", 3, 4),
            vec![Stmt::refs(vec![a.at([Subscript::var("i")])])],
        ));
        let p = b.build().expect("valid");
        assert_eq!(collect(&p).len(), 4);
    }
}
