//! Dynamic checks of the IR loop transformations: strip-mining must
//! preserve the exact address stream (it only renames the induction
//! structure), and interchange must preserve the access *set* while
//! permuting its order.

use std::collections::HashMap;

use pad_core::DataLayout;
use pad_ir::{interchange, strip_mine, ArrayBuilder, Loop, Program, Stmt, Subscript};
use pad_trace::collect_trace;

fn copy2d(n: i64) -> Program {
    let mut b = Program::builder("copy");
    let a = b.add_array(ArrayBuilder::new("A", [n, n]));
    let c = b.add_array(ArrayBuilder::new("C", [n, n]));
    b.push(Stmt::loop_nest(
        [Loop::new("i", 1, n), Loop::new("j", 1, n)],
        vec![Stmt::refs(vec![
            a.at([Subscript::var("j"), Subscript::var("i")]),
            c.at([Subscript::var("j"), Subscript::var("i")]).write(),
        ])],
    ));
    b.build().expect("valid")
}

#[test]
fn strip_mining_preserves_the_exact_trace() {
    let p = copy2d(16);
    let layout = DataLayout::original(&p);
    let original = collect_trace(&p, &layout, None);
    for (var, tile) in [("j", 4), ("j", 8), ("i", 2), ("i", 16)] {
        let stripped = strip_mine(&p, var, tile).expect("tileable");
        let layout_s = DataLayout::original(&stripped);
        let transformed = collect_trace(&stripped, &layout_s, None);
        assert_eq!(
            original, transformed,
            "strip_mine({var}, {tile}) changed the trace"
        );
    }
}

#[test]
fn interchange_permutes_but_preserves_the_access_multiset() {
    let p = copy2d(12);
    let layout = DataLayout::original(&p);
    let original = collect_trace(&p, &layout, None);
    let swapped = interchange(&p, "i", "j").expect("perfect nest");
    let layout_s = DataLayout::original(&swapped);
    let transformed = collect_trace(&swapped, &layout_s, None);

    assert_ne!(original, transformed, "interchange should reorder accesses");
    let histogram = |trace: &[pad_cache_sim::Access]| {
        let mut h: HashMap<(u64, bool), u64> = HashMap::new();
        for a in trace {
            *h.entry((a.addr, a.is_write)).or_insert(0) += 1;
        }
        h
    };
    assert_eq!(histogram(&original), histogram(&transformed));
}

#[test]
fn full_tiling_recipe_preserves_the_access_multiset() {
    let p = copy2d(16);
    let stripped = strip_mine(&p, "j", 4).expect("tileable");
    let tiled = interchange(&stripped, "i", "j_t").expect("perfect");

    let count =
        |program: &Program| collect_trace(program, &DataLayout::original(program), None).len();
    assert_eq!(count(&p), count(&tiled));

    // The tiled nest changes locality: on a tiny cache the column-major
    // copy walked row-wise (i outer) misses constantly, while visiting a
    // 4-column tile at a time hits within the tile.
    use pad_cache_sim::CacheConfig;
    use pad_trace::simulate_program;
    let cache = CacheConfig::direct_mapped(512, 32);
    let before = simulate_program(&p, &DataLayout::original(&p), &cache);
    let after = simulate_program(&tiled, &DataLayout::original(&tiled), &cache);
    assert!(
        after.miss_rate() <= before.miss_rate(),
        "tiling should not hurt this copy: {} -> {}",
        before.miss_rate(),
        after.miss_rate()
    );
}
