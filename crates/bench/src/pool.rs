//! Work-stealing experiment runner with per-cell fault isolation.
//!
//! The figure sweeps decompose into independent *cells* — one (kernel,
//! config-set, layout) unit each, internally batched by
//! [`pad_trace::simulate_batch`]. This module executes cells on a
//! *persistent* worker pool (plain `std::thread`; no external runtime):
//! `available_parallelism - 1` workers are spawned once on first use and
//! park on a condvar between submissions, the submitting thread itself
//! participates in the work, and cells are claimed off a shared atomic
//! cursor (work stealing). Dispatching a run is therefore one mutex
//! publish and a wakeup — no thread spawn, no per-cell closure boxing —
//! and on a single-core host the pool has zero workers, so dispatch
//! degenerates to a plain inline loop. Results are reassembled in
//! submission order so every table and CSV is byte-identical to a serial
//! run regardless of thread count or scheduling. (Nested or concurrent
//! submissions fall back to one-shot scoped threads so the pool can
//! never deadlock on itself.)
//!
//! Results land in lock-free per-slot storage (`Vec<OnceLock<..>>`), so a
//! panicking cell can never poison a shared mutex and take its sibling
//! workers down with it. The fault-tolerant entry points
//! ([`run_cells_outcome_on`]) additionally wrap each cell in
//! `catch_unwind` and classify the result as a [`CellOutcome`]: per-cell
//! panics are isolated, cells exceeding the configured deadline are
//! reported as timed out, and failures classified *transient* are retried
//! a bounded number of times with a deterministic backoff schedule.
//!
//! The pool width defaults to the host's available parallelism and can be
//! overridden with the `RIVERA_THREADS` environment variable (`1` forces
//! the serial path). `RIVERA_CELL_TIMEOUT` (seconds, default off) arms the
//! per-cell deadline and `RIVERA_CELL_RETRIES` (default 0) bounds how
//! often a transient failure is retried — see [`RunPolicy::from_env`].

use std::backtrace::Backtrace;
use std::cell::{Cell, RefCell};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, Once, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "RIVERA_THREADS";

/// Environment variable arming the per-cell deadline, in (possibly
/// fractional) seconds. Unset or unparseable means no deadline.
pub const TIMEOUT_ENV: &str = "RIVERA_CELL_TIMEOUT";

/// Environment variable bounding how many times a transient cell failure
/// is retried (0, the default, disables retry).
pub const RETRIES_ENV: &str = "RIVERA_CELL_RETRIES";

/// Environment variable setting the base backoff between retry attempts,
/// in milliseconds (attempt `k` sleeps `k * base`; default 0 — no sleep,
/// so test schedules stay deterministic).
pub const BACKOFF_ENV: &str = "RIVERA_RETRY_BACKOFF_MS";

/// Substring marking a panic message as a *transient* failure, eligible
/// for retry under [`RunPolicy::max_attempts`]. The fault-injection
/// harness uses this to force retry classifications deterministically.
pub const TRANSIENT_MARKER: &str = "[transient]";

/// The number of worker threads the pool will use: the `RIVERA_THREADS`
/// override when set to a positive integer, otherwise the host's
/// available parallelism (1 if unknown).
pub fn thread_count() -> usize {
    let raw = std::env::var(THREADS_ENV).ok();
    let (count, warning) = thread_count_from(raw.as_deref());
    if let Some(warning) = warning {
        eprintln!("warning: {warning}");
    }
    count
}

/// Pure core of [`thread_count`], split out so the warning/fallback path
/// is testable without racing on the process environment: returns the
/// chosen width and, for a present-but-invalid override, the warning
/// text.
pub fn thread_count_from(raw: Option<&str>) -> (usize, Option<String>) {
    let host = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    match raw {
        None => (host, None),
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => (n, None),
            _ => (
                host,
                Some(format!(
                    "ignoring {THREADS_ENV}={raw:?} (want a positive integer)"
                )),
            ),
        },
    }
}

/// Identifies one execution attempt of one cell: `index` is the cell's
/// position in submission order, `attempt` counts from 1 and increases
/// across retries of the same cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCtx {
    /// The cell's index in submission order.
    pub index: usize,
    /// The 1-based attempt number (greater than 1 only on retry).
    pub attempt: u32,
}

/// The result of executing one cell under fault isolation.
#[derive(Debug)]
pub enum CellOutcome<T> {
    /// The cell completed within its deadline.
    Ok(T),
    /// The cell panicked; the panic was caught and isolated.
    Panicked {
        /// The panic payload (plus source location when available).
        message: String,
        /// A backtrace captured at the panic site.
        backtrace: String,
        /// How long the failing attempt ran before panicking.
        elapsed: Duration,
    },
    /// The cell completed but exceeded the configured deadline, so its
    /// result was discarded. (The deadline is enforced at cell
    /// granularity: the watchdog cannot preempt a non-terminating cell,
    /// it classifies overlong ones as they finish.)
    TimedOut {
        /// The deadline the cell exceeded.
        deadline: Duration,
        /// How long the cell actually ran (measured plus any virtual
        /// time charged via [`charge_virtual`]).
        elapsed: Duration,
    },
    /// The cell was attempted more than once; `outcome` is the final
    /// attempt's result.
    Retried {
        /// Total attempts executed (including the final one).
        attempts: u32,
        /// The final attempt's outcome (never itself `Retried`).
        outcome: Box<CellOutcome<T>>,
    },
}

impl<T> CellOutcome<T> {
    /// The successful value, if any (looking through `Retried`).
    pub fn value(&self) -> Option<&T> {
        match self {
            CellOutcome::Ok(v) => Some(v),
            CellOutcome::Retried { outcome, .. } => outcome.value(),
            _ => None,
        }
    }

    /// Consumes the outcome, yielding the successful value if any.
    pub fn into_value(self) -> Option<T> {
        match self {
            CellOutcome::Ok(v) => Some(v),
            CellOutcome::Retried { outcome, .. } => outcome.into_value(),
            _ => None,
        }
    }

    /// True when the cell (eventually) produced a value.
    pub fn is_ok(&self) -> bool {
        self.value().is_some()
    }

    /// The marker string a table renders for a failed cell (`ERR` for a
    /// panic, `TIMEOUT` for a deadline miss), or `None` on success.
    pub fn marker(&self) -> Option<&'static str> {
        match self {
            CellOutcome::Ok(_) => None,
            CellOutcome::Panicked { .. } => Some("ERR"),
            CellOutcome::TimedOut { .. } => Some("TIMEOUT"),
            CellOutcome::Retried { outcome, .. } => outcome.marker(),
        }
    }

    /// A one-line human-readable description of the failure, or `None`
    /// on success.
    pub fn failure(&self) -> Option<String> {
        match self {
            CellOutcome::Ok(_) => None,
            CellOutcome::Panicked { message, .. } => Some(format!("panicked: {message}")),
            CellOutcome::TimedOut { deadline, elapsed } => Some(format!(
                "timed out: ran {:.3}s against a {:.3}s deadline",
                elapsed.as_secs_f64(),
                deadline.as_secs_f64()
            )),
            CellOutcome::Retried { attempts, outcome } => outcome
                .failure()
                .map(|f| format!("{f} (after {attempts} attempts)")),
        }
    }

    /// Total attempts this outcome records (1 unless retried).
    pub fn attempts(&self) -> u32 {
        match self {
            CellOutcome::Retried { attempts, .. } => *attempts,
            _ => 1,
        }
    }

    /// How long the (final) failing attempt ran, when known. Successful
    /// cells report `None` — their timing is the caller's to measure.
    pub fn elapsed(&self) -> Option<Duration> {
        match self {
            CellOutcome::Ok(_) => None,
            CellOutcome::Panicked { elapsed, .. } => Some(*elapsed),
            CellOutcome::TimedOut { elapsed, .. } => Some(*elapsed),
            CellOutcome::Retried { outcome, .. } => outcome.elapsed(),
        }
    }
}

/// Fault-tolerance policy for a run: per-cell deadline, retry budget, and
/// backoff schedule.
#[derive(Debug, Clone)]
pub struct RunPolicy {
    /// Per-cell deadline; `None` (the default) disables the watchdog.
    pub deadline: Option<Duration>,
    /// Maximum attempts per cell (at least 1). Attempts beyond the first
    /// happen only for failures classified transient — timeouts, and
    /// panics whose message contains [`TRANSIENT_MARKER`].
    pub max_attempts: u32,
    /// Base backoff between attempts: attempt `k` (1-based) sleeps
    /// `k * backoff` before retrying. Zero (the default) sleeps not at
    /// all, keeping test schedules deterministic.
    pub backoff: Duration,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            deadline: None,
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

impl RunPolicy {
    /// Builds the policy the experiment binaries run under, from
    /// `RIVERA_CELL_TIMEOUT` (seconds), `RIVERA_CELL_RETRIES`, and
    /// `RIVERA_RETRY_BACKOFF_MS`. Unset or unparseable variables fall
    /// back to the defaults (no deadline, no retry, no backoff).
    pub fn from_env() -> Self {
        let mut policy = RunPolicy::default();
        if let Ok(raw) = std::env::var(TIMEOUT_ENV) {
            match raw.trim().parse::<f64>() {
                Ok(secs) if secs > 0.0 && secs.is_finite() => {
                    policy.deadline = Some(Duration::from_secs_f64(secs));
                }
                _ => eprintln!("warning: ignoring {TIMEOUT_ENV}={raw:?} (want seconds > 0)"),
            }
        }
        if let Ok(raw) = std::env::var(RETRIES_ENV) {
            match raw.trim().parse::<u32>() {
                Ok(n) => policy.max_attempts = n.saturating_add(1),
                _ => eprintln!("warning: ignoring {RETRIES_ENV}={raw:?} (want an integer)"),
            }
        }
        if let Ok(raw) = std::env::var(BACKOFF_ENV) {
            match raw.trim().parse::<u64>() {
                Ok(ms) => policy.backoff = Duration::from_millis(ms),
                _ => eprintln!("warning: ignoring {BACKOFF_ENV}={raw:?} (want milliseconds)"),
            }
        }
        policy
    }
}

thread_local! {
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static LAST_PANIC: RefCell<Option<(String, String)>> = const { RefCell::new(None) };
    static VIRTUAL_NANOS: Cell<u64> = const { Cell::new(0) };
}

/// Charges virtual elapsed time to the currently running cell attempt.
///
/// The deadline watchdog adds virtual time to the measured wall time when
/// classifying a cell, which lets the fault-injection harness exercise
/// the timeout path deterministically — a test charges minutes of virtual
/// delay against a seconds-scale deadline, so real scheduling noise can
/// never flip the classification.
pub fn charge_virtual(delay: Duration) {
    VIRTUAL_NANOS.with(|v| {
        v.set(
            v.get()
                .saturating_add(delay.as_nanos().min(u128::from(u64::MAX)) as u64),
        );
    });
}

fn drain_virtual() -> Duration {
    VIRTUAL_NANOS.with(|v| {
        let nanos = v.get();
        v.set(0);
        Duration::from_nanos(nanos)
    })
}

/// Installs (once, process-wide) a panic hook that captures the message
/// and backtrace of panics raised inside isolated cells, suppressing the
/// default stderr report for them; panics anywhere else still reach the
/// previously installed hook untouched.
fn install_capture_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if CAPTURING.with(Cell::get) {
                let message = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                let message = match info.location() {
                    Some(loc) => format!("{message} (at {loc})"),
                    None => message,
                };
                let backtrace = Backtrace::force_capture().to_string();
                LAST_PANIC.with(|l| *l.borrow_mut() = Some((message, backtrace)));
            } else {
                previous(info);
            }
        }));
    });
}

/// The executor every entry point funnels through: claims cell indices
/// off an atomic cursor and stores each result in its own `OnceLock`
/// slot, so no shared lock exists to poison and result order is index
/// order by construction. Execution happens on the persistent pool (see
/// [`persistent`]); `run` must not panic (callers wrap the user closure
/// in `catch_unwind` first when isolation is wanted — if it panics
/// anyway the panic is propagated after the pool drains). The `Sync`
/// bound comes from sharing the slot vector across workers; every cell
/// payload in this crate is plain data, so it costs nothing.
fn run_slots<R: Send + Sync>(
    threads: usize,
    count: usize,
    run: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(count.max(1));
    if threads == 1 || count <= 1 {
        return (0..count).map(run).collect();
    }
    let slots: Vec<OnceLock<R>> = (0..count).map(|_| OnceLock::new()).collect();
    let job = |index: usize| {
        let value = run(index);
        // Each index is claimed exactly once, so the slot is always
        // empty here.
        let _ = slots[index].set(value);
    };
    persistent::run(threads, count, &job);
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every cell produced a result"))
        .collect()
}

/// The number of threads a width-`requested` run over `count` cells
/// actually engages: the requested width clamped by the cell count and
/// the host's core count (the submitting thread plus the pool's
/// `available_parallelism - 1` persistent workers). The benchmark
/// harness records this in `BENCH_simulator.json` so the host metadata
/// reflects real, not requested, parallelism.
pub fn effective_width(requested: usize, count: usize) -> usize {
    let host = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    requested.max(1).min(count.max(1)).min(host)
}

/// The persistent worker pool behind [`run_slots`].
///
/// Lifecycle: the first multi-threaded submission spawns
/// `available_parallelism - 1` detached workers that park on a condvar.
/// A submission publishes one type-erased job — a borrowed
/// `&dyn Fn(usize)` plus a shared atomic cursor — under the state mutex,
/// wakes the workers, and then participates in claiming cells itself.
/// Workers that join a job register in `active`; the submitter returns
/// only after clearing the job slot and watching `active` drain to zero,
/// which is what makes handing workers a *borrowed* closure sound (see
/// the safety comment in [`persistent::run`]).
///
/// Two situations bypass the pool and run on one-shot scoped threads
/// instead: a submission from inside a pool worker (a nested
/// `run_cells_on` call) and a submission while another is in flight —
/// both would otherwise contend for the same workers, and the scoped
/// fallback keeps them correct and deadlock-free.
#[allow(unsafe_code)]
mod persistent {
    use std::num::NonZeroUsize;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// A lifetime-erased borrow of a submission's job closure. Only ever
    /// stored while the originating [`run`] frame is alive.
    type Task = &'static (dyn Fn(usize) + Sync);

    #[derive(Clone)]
    struct Job {
        task: Task,
        cursor: Arc<AtomicUsize>,
        count: usize,
    }

    struct State {
        /// Bumped on every publish so parked workers can tell a new job
        /// from a spurious wakeup.
        epoch: u64,
        /// The live job, present only between publish and drain.
        job: Option<Job>,
        /// Worker slots remaining for the live job (the requested width
        /// minus the submitting thread).
        slots_left: usize,
        /// Workers currently holding a clone of the live job.
        active: usize,
        /// First panic that escaped a job closure (a contract violation;
        /// re-raised on the submitting thread after the drain).
        panic: Option<Box<dyn std::any::Any + Send>>,
    }

    struct Shared {
        state: Mutex<State>,
        /// Workers park here between jobs.
        work: Condvar,
        /// The submitter parks here while `active` drains.
        done: Condvar,
    }

    struct Pool {
        shared: Arc<Shared>,
        workers: usize,
        /// Serializes submissions; `try_lock` failure routes concurrent
        /// submitters to the scoped fallback instead of blocking.
        submit: Mutex<()>,
    }

    thread_local! {
        static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    impl Pool {
        /// Spawns `workers` detached, parked worker threads. The global
        /// pool sizes this as `available_parallelism - 1`; tests build
        /// private pools with a forced width so the publish/claim/drain
        /// protocol is exercised even on single-core hosts.
        fn new(workers: usize) -> Pool {
            let shared = Arc::new(Shared {
                state: Mutex::new(State {
                    epoch: 0,
                    job: None,
                    slots_left: 0,
                    active: 0,
                    panic: None,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            });
            for _ in 0..workers {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("pad-pool-worker".into())
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker");
            }
            Pool {
                shared,
                workers,
                submit: Mutex::new(()),
            }
        }

        /// Runs `task` for every index in `0..count` at the requested
        /// width on this pool. Blocks until all indices have completed;
        /// re-raises the first panic that escaped `task` after every
        /// worker has left the job.
        fn run_on(&self, width: usize, count: usize, task: &(dyn Fn(usize) + Sync)) {
            if self.workers == 0 || width <= 1 {
                // Single-core host (or serial request): no workers
                // exist, so dispatch is a plain loop — the
                // zero-overhead path.
                for index in 0..count {
                    task(index);
                }
                return;
            }
            let Ok(_submit_guard) = self.submit.try_lock() else {
                // Another thread is mid-submission; don't queue behind it.
                return run_scoped(width, count, task);
            };

            // SAFETY: `task`'s lifetime is erased to park it in the
            // shared job slot. The reference is published under the
            // state mutex, only workers that register in `active` clone
            // it, and this frame does not return (or unwind) until the
            // job slot is cleared and `active` has drained to zero — so
            // no worker can observe the reference after `task`'s
            // referent dies.
            let task_static: Task =
                unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), Task>(task) };
            let cursor = Arc::new(AtomicUsize::new(0));
            {
                let mut st = self.shared.state.lock().expect("pool state never poisoned");
                st.epoch += 1;
                st.job = Some(Job {
                    task: task_static,
                    cursor: Arc::clone(&cursor),
                    count,
                });
                st.slots_left = (width - 1).min(self.workers);
                self.shared.work.notify_all();
            }

            // The submitter is a full participant; wrapped like the
            // workers so an escaped panic still reaches the drain
            // barrier below.
            let own = catch_unwind(AssertUnwindSafe(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                task(index);
            }));

            let payload = {
                let mut st = self.shared.state.lock().expect("pool state never poisoned");
                st.job = None;
                st.slots_left = 0;
                while st.active > 0 {
                    st = self
                        .shared
                        .done
                        .wait(st)
                        .expect("pool state never poisoned");
                }
                st.panic.take()
            };
            if let Err(own_payload) = own {
                resume_unwind(own_payload);
            }
            if let Some(payload) = payload {
                resume_unwind(payload);
            }
        }
    }

    fn pool() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let host = std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1);
            Pool::new(host.saturating_sub(1))
        })
    }

    fn worker_loop(shared: &Shared) {
        IS_POOL_WORKER.with(|w| w.set(true));
        let mut seen_epoch = 0u64;
        loop {
            let job = {
                let mut st = shared.state.lock().expect("pool state never poisoned");
                loop {
                    if st.epoch != seen_epoch {
                        seen_epoch = st.epoch;
                        if st.slots_left > 0 {
                            if let Some(job) = st.job.clone() {
                                st.slots_left -= 1;
                                st.active += 1;
                                break job;
                            }
                        }
                    }
                    st = shared.work.wait(st).expect("pool state never poisoned");
                }
            };
            // Claim cells until the cursor runs dry. The closure is
            // wrapped defensively: its contract says it must not panic,
            // but an escaped panic here must still decrement `active`,
            // or the submitter would wait forever.
            let outcome = catch_unwind(AssertUnwindSafe(|| loop {
                let index = job.cursor.fetch_add(1, Ordering::Relaxed);
                if index >= job.count {
                    break;
                }
                (job.task)(index);
            }));
            drop(job);
            let mut st = shared.state.lock().expect("pool state never poisoned");
            if let Err(payload) = outcome {
                st.panic.get_or_insert(payload);
            }
            st.active -= 1;
            if st.active == 0 {
                shared.done.notify_all();
            }
        }
    }

    /// One-shot fallback for nested or concurrent submissions: plain
    /// scoped threads with the same cursor discipline (the pre-pool
    /// execution strategy, kept because a scoped scope may be opened
    /// freely from any thread at any nesting depth).
    fn run_scoped(width: usize, count: usize, task: &(dyn Fn(usize) + Sync)) {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..width {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= count {
                        break;
                    }
                    task(index);
                });
            }
        });
    }

    /// Runs `task` for every index in `0..count` at the requested width
    /// on the global pool. Blocks until all indices have completed.
    /// Re-raises the first panic that escaped `task`, after every worker
    /// has left the job.
    pub(super) fn run(width: usize, count: usize, task: &(dyn Fn(usize) + Sync)) {
        if IS_POOL_WORKER.with(std::cell::Cell::get) {
            // Nested submission from inside a pool worker: the pool is
            // by definition busy with the outer job.
            return run_scoped(width, count, task);
        }
        pool().run_on(width, count, task);
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::collections::HashSet;
        use std::sync::atomic::AtomicBool;

        // These tests build private pools with forced worker counts so
        // the publish/claim/drain protocol runs for real even when the
        // host reports a single core (where the global pool has zero
        // workers and `run` degenerates to the inline loop).

        #[test]
        fn forced_pool_completes_every_index_exactly_once() {
            let pool = Pool::new(3);
            let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
            for round in 0..20 {
                pool.run_on(4, 500, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::Relaxed),
                        round + 1,
                        "index {i} after round {round}"
                    );
                }
            }
        }

        #[test]
        fn forced_pool_engages_worker_threads() {
            let pool = Pool::new(2);
            let ids = Mutex::new(HashSet::new());
            // Enough spinning per cell that parked workers have time to
            // wake and claim some; the assertion tolerates scheduling by
            // only requiring the submitter to have been joined at all
            // across many rounds on any multi-thread-capable OS — and
            // degrades to the correctness half on a machine that never
            // schedules the workers in time.
            for _ in 0..50 {
                pool.run_on(3, 64, &|_| {
                    let mut acc = 0u64;
                    for k in 0..20_000u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    ids.lock()
                        .expect("id set")
                        .insert(std::thread::current().id());
                });
            }
            assert!(!ids.lock().expect("id set").is_empty());
        }

        #[test]
        fn forced_pool_propagates_escaped_panics_after_drain() {
            let pool = Pool::new(2);
            let done = AtomicUsize::new(0);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                pool.run_on(3, 200, &|i| {
                    if i == 97 {
                        panic!("escaped panic from cell {i}");
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }));
            assert!(caught.is_err(), "escaped panic must propagate");
            // The pool must be reusable afterwards (no stuck workers, no
            // lingering job state).
            let flag = AtomicBool::new(false);
            pool.run_on(3, 8, &|i| {
                if i == 7 {
                    flag.store(true, Ordering::Relaxed);
                }
            });
            assert!(flag.load(Ordering::Relaxed));
        }

        #[test]
        fn zero_worker_pool_runs_inline() {
            let pool = Pool::new(0);
            let hits = AtomicUsize::new(0);
            pool.run_on(8, 100, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 100);
        }
    }
}

/// Runs `count` cells through `f` on the default pool width
/// ([`thread_count`]) and returns the results in cell order.
pub fn run_cells<T: Send + Sync>(count: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    run_cells_on(thread_count(), count, f)
}

/// Runs `count` cells through `f` on exactly `threads` workers and
/// returns the results in cell order — `run_cells_on(1, ..)` is the
/// serial reference the determinism tests compare against.
///
/// Cells are claimed through an atomic cursor (work stealing: a free
/// worker takes the next unclaimed index), so uneven cell costs do not
/// idle the pool. Result order is index order, never completion order.
///
/// # Panics
///
/// Propagates the panic of the lowest-indexed panicking cell — but only
/// after every other cell has run to completion: a panicking cell is
/// caught and isolated, never killing sibling workers or poisoning
/// shared state. Use [`run_cells_outcome_on`] to observe failures as
/// values instead.
pub fn run_cells_on<T: Send + Sync>(
    threads: usize,
    count: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    // The panic payload (`Box<dyn Any + Send>`) is not `Sync`, which the
    // slot storage requires; a Mutex wrapper adds exactly that. It is
    // never locked concurrently — only unwrapped after the pool joins.
    let results = run_slots(threads, count, |index| {
        catch_unwind(AssertUnwindSafe(|| f(index))).map_err(Mutex::new)
    });
    let mut values = Vec::with_capacity(count);
    let mut first_panic = None;
    for result in results {
        match result {
            Ok(value) => values.push(value),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload.into_inner().unwrap_or_else(|p| p.into_inner()));
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    values
}

/// Records one finalized cell in the live metrics layer: final-attempt
/// latency, plus retry/timeout/panic counters. Handles are registered
/// once and cached; the call is one relaxed load when metrics are off.
fn record_cell_metrics<T>(outcome: &CellOutcome<T>, final_elapsed: Duration) {
    if !pad_telemetry::metrics_enabled() {
        return;
    }
    struct Handles {
        latency: std::sync::Arc<pad_telemetry::LatencyHistogram>,
        retries: std::sync::Arc<pad_telemetry::Counter>,
        timeouts: std::sync::Arc<pad_telemetry::Counter>,
        panics: std::sync::Arc<pad_telemetry::Counter>,
    }
    static HANDLES: OnceLock<Handles> = OnceLock::new();
    let h = HANDLES.get_or_init(|| {
        let r = pad_telemetry::registry();
        Handles {
            latency: r.histogram(
                "pad_pool_cell_latency_us",
                "Final-attempt wall time of each isolation cell, in microseconds.",
            ),
            retries: r.counter(
                "pad_pool_cell_retries_total",
                "Extra attempts spent on transient cell failures.",
            ),
            timeouts: r.counter(
                "pad_pool_cell_timeouts_total",
                "Cells whose final attempt blew its deadline.",
            ),
            panics: r.counter(
                "pad_pool_cell_panics_total",
                "Cells whose final attempt panicked (caught and isolated).",
            ),
        }
    });
    h.latency.record(final_elapsed.as_micros() as u64);
    let attempts = outcome.attempts();
    if attempts > 1 {
        h.retries.add(u64::from(attempts - 1));
    }
    match outcome.marker() {
        Some("TIMEOUT") => h.timeouts.inc(),
        Some("ERR") => h.panics.inc(),
        _ => {}
    }
}

/// Runs one cell under `policy`: bounded attempts, each wrapped in
/// `catch_unwind`, with deadline classification and deterministic
/// backoff between retries of transient failures.
fn run_one_cell<T>(
    index: usize,
    policy: &RunPolicy,
    f: &(impl Fn(CellCtx) -> T + Sync),
) -> CellOutcome<T> {
    install_capture_hook();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        drain_virtual();
        CAPTURING.with(|c| c.set(true));
        let start = Instant::now();
        let caught = catch_unwind(AssertUnwindSafe(|| f(CellCtx { index, attempt })));
        CAPTURING.with(|c| c.set(false));
        let elapsed = start.elapsed() + drain_virtual();
        let outcome = match caught {
            Ok(value) => match policy.deadline {
                Some(deadline) if elapsed > deadline => CellOutcome::TimedOut { deadline, elapsed },
                _ => CellOutcome::Ok(value),
            },
            Err(payload) => {
                let (message, backtrace) = LAST_PANIC
                    .with(|l| l.borrow_mut().take())
                    .unwrap_or_else(|| {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic payload>".to_string());
                        (message, String::new())
                    });
                CellOutcome::Panicked {
                    message,
                    backtrace,
                    elapsed,
                }
            }
        };
        let transient = match &outcome {
            CellOutcome::Ok(_) => false,
            CellOutcome::TimedOut { .. } => true,
            CellOutcome::Panicked { message, .. } => message.contains(TRANSIENT_MARKER),
            CellOutcome::Retried { .. } => unreachable!("attempts are never nested"),
        };
        if !outcome.is_ok() && transient && attempt < policy.max_attempts {
            if !policy.backoff.is_zero() {
                std::thread::sleep(policy.backoff * attempt);
            }
            continue;
        }
        let outcome = if attempt > 1 {
            CellOutcome::Retried {
                attempts: attempt,
                outcome: Box::new(outcome),
            }
        } else {
            outcome
        };
        record_cell_metrics(&outcome, elapsed);
        return outcome;
    }
}

/// Fault-isolated run: every cell's panic is caught, deadlines and
/// retries applied per `policy`, and the per-cell [`CellOutcome`]s
/// returned in cell order. No cell failure disturbs any sibling cell.
pub fn run_cells_outcome_on<T: Send + Sync>(
    threads: usize,
    count: usize,
    policy: &RunPolicy,
    f: impl Fn(CellCtx) -> T + Sync,
) -> Vec<CellOutcome<T>> {
    run_cells_outcome_with(threads, count, policy, f, |_, _| {})
}

/// [`run_cells_outcome_on`] with a completion callback: `on_complete`
/// runs on the worker thread immediately after each cell's outcome is
/// finalized (completion order, concurrently across workers). The
/// checkpoint journal hooks in here so a killed sweep has every finished
/// cell on disk.
pub fn run_cells_outcome_with<T: Send + Sync>(
    threads: usize,
    count: usize,
    policy: &RunPolicy,
    f: impl Fn(CellCtx) -> T + Sync,
    on_complete: impl Fn(usize, &CellOutcome<T>) + Sync,
) -> Vec<CellOutcome<T>> {
    run_slots(threads, count, |index| {
        let outcome = run_one_cell(index, policy, &f);
        on_complete(index, &outcome);
        outcome
    })
}

/// [`run_cells`] with a progress label per cell: each cell's label and
/// wall time are printed to stderr as it finishes (completion order; the
/// *results* remain in cell order).
pub fn run_labeled<T: Send + Sync>(labels: &[String], f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    run_labeled_on(thread_count(), labels, f)
}

/// [`run_cells_on`] with per-cell progress labels and timing.
pub fn run_labeled_on<T: Send + Sync>(
    threads: usize,
    labels: &[String],
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    run_cells_on(threads, labels.len(), |index| {
        let start = Instant::now();
        let value = f(index);
        eprintln!(
            "  {} ({:.0} ms)",
            labels[index],
            start.elapsed().as_secs_f64() * 1e3
        );
        value
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_cell_order() {
        // Make later cells cheaper so completion order inverts cell order.
        let work = |i: usize| {
            let mut acc = 0u64;
            for k in 0..(200 - i as u64) * 500 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc % 7)
        };
        let serial = run_cells_on(1, 200, work);
        for threads in [2, 3, 8] {
            assert_eq!(
                run_cells_on(threads, 200, work),
                serial,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        assert_eq!(run_cells_on(64, 3, |i| i * i), vec![0, 1, 4]);
        assert_eq!(run_cells_on(4, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn zero_cells_yield_empty_outcomes() {
        let outcomes = run_cells_outcome_on(4, 0, &RunPolicy::default(), |cell| cell.index);
        assert!(outcomes.is_empty());
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn thread_count_falls_back_on_garbage() {
        let host = thread_count_from(None).0;
        for bad in ["0", "-3", "garbage", "", "  "] {
            let (count, warning) = thread_count_from(Some(bad));
            assert_eq!(count, host, "{bad:?} must fall back to the host width");
            let warning = warning.expect("invalid override warns");
            assert!(warning.contains(THREADS_ENV), "{warning}");
        }
        assert_eq!(thread_count_from(Some(" 7 ")), (7, None));
    }

    #[test]
    fn panicking_cell_does_not_poison_siblings() {
        // The legacy API still propagates the panic, but only after every
        // sibling has completed — no secondary "poisoned lock" panics.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_cells_on(4, 16, |i| {
                if i == 5 {
                    panic!("boom in cell {i}");
                }
                i * 2
            })
        }));
        let payload = caught.expect_err("cell panic propagates");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("boom in cell 5"), "{message}");
    }

    #[test]
    fn first_panic_by_index_wins() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_cells_on(4, 16, |i| {
                if i == 11 || i == 3 {
                    panic!("boom in cell {i}");
                }
                i
            })
        }));
        let payload = caught.expect_err("cell panic propagates");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("boom in cell 3"), "{message}");
    }

    #[test]
    fn outcome_runner_isolates_panics() {
        for threads in [1, 2, 8] {
            let outcomes = run_cells_outcome_on(threads, 10, &RunPolicy::default(), |cell| {
                if cell.index == 4 {
                    panic!("injected");
                }
                cell.index * 3
            });
            assert_eq!(outcomes.len(), 10);
            for (i, outcome) in outcomes.iter().enumerate() {
                if i == 4 {
                    assert_eq!(outcome.marker(), Some("ERR"));
                    assert!(outcome.failure().expect("failed").contains("injected"));
                } else {
                    assert_eq!(outcome.value(), Some(&(i * 3)), "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn virtual_delay_trips_the_deadline() {
        let policy = RunPolicy {
            deadline: Some(Duration::from_secs(60)),
            ..RunPolicy::default()
        };
        let outcomes = run_cells_outcome_on(1, 2, &policy, |cell| {
            if cell.index == 1 {
                charge_virtual(Duration::from_secs(3600));
            }
            cell.index
        });
        assert_eq!(outcomes[0].value(), Some(&0));
        assert_eq!(outcomes[1].marker(), Some("TIMEOUT"));
        match &outcomes[1] {
            CellOutcome::TimedOut { deadline, elapsed } => {
                assert_eq!(*deadline, Duration::from_secs(60));
                assert!(*elapsed >= Duration::from_secs(3600));
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn transient_panics_are_retried_and_accounted() {
        let policy = RunPolicy {
            max_attempts: 3,
            ..RunPolicy::default()
        };
        let outcomes = run_cells_outcome_on(1, 1, &policy, |cell| {
            if cell.attempt <= 2 {
                panic!("{TRANSIENT_MARKER} flaking on attempt {}", cell.attempt);
            }
            41 + cell.attempt
        });
        match &outcomes[0] {
            CellOutcome::Retried {
                attempts: 3,
                outcome,
            } => {
                assert_eq!(outcome.value(), Some(&44));
            }
            other => panic!("expected Retried{{3, Ok}}, got {other:?}"),
        }
        assert_eq!(outcomes[0].attempts(), 3);
    }

    #[test]
    fn non_transient_panics_are_not_retried() {
        let policy = RunPolicy {
            max_attempts: 5,
            ..RunPolicy::default()
        };
        let outcomes = run_cells_outcome_on(1, 1, &policy, |cell| {
            panic!("hard failure on attempt {}", cell.attempt);
            #[allow(unreachable_code)]
            0
        });
        assert_eq!(outcomes[0].attempts(), 1);
        assert_eq!(outcomes[0].marker(), Some("ERR"));
    }

    #[test]
    fn retry_budget_is_bounded() {
        let policy = RunPolicy {
            max_attempts: 2,
            ..RunPolicy::default()
        };
        let outcomes = run_cells_outcome_on(1, 1, &policy, |cell| {
            panic!(
                "{TRANSIENT_MARKER} always failing (attempt {})",
                cell.attempt
            );
            #[allow(unreachable_code)]
            0
        });
        match &outcomes[0] {
            CellOutcome::Retried {
                attempts: 2,
                outcome,
            } => {
                assert_eq!(outcome.marker(), Some("ERR"));
            }
            other => panic!("expected Retried{{2, Panicked}}, got {other:?}"),
        }
    }
}
