//! Work-stealing experiment runner with per-cell fault isolation.
//!
//! The figure sweeps decompose into independent *cells* — one (kernel,
//! config-set, layout) unit each, internally batched by
//! [`pad_trace::simulate_batch`]. This module executes cells on a pool of
//! scoped threads (`std::thread::scope`; no external runtime) with a
//! shared atomic cursor for work stealing, then reassembles results in
//! submission order so every table and CSV is byte-identical to a serial
//! run regardless of thread count or scheduling.
//!
//! Results land in lock-free per-slot storage (`Vec<OnceLock<..>>`), so a
//! panicking cell can never poison a shared mutex and take its sibling
//! workers down with it. The fault-tolerant entry points
//! ([`run_cells_outcome_on`]) additionally wrap each cell in
//! `catch_unwind` and classify the result as a [`CellOutcome`]: per-cell
//! panics are isolated, cells exceeding the configured deadline are
//! reported as timed out, and failures classified *transient* are retried
//! a bounded number of times with a deterministic backoff schedule.
//!
//! The pool width defaults to the host's available parallelism and can be
//! overridden with the `RIVERA_THREADS` environment variable (`1` forces
//! the serial path). `RIVERA_CELL_TIMEOUT` (seconds, default off) arms the
//! per-cell deadline and `RIVERA_CELL_RETRIES` (default 0) bounds how
//! often a transient failure is retried — see [`RunPolicy::from_env`].

use std::backtrace::Backtrace;
use std::cell::{Cell, RefCell};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "RIVERA_THREADS";

/// Environment variable arming the per-cell deadline, in (possibly
/// fractional) seconds. Unset or unparseable means no deadline.
pub const TIMEOUT_ENV: &str = "RIVERA_CELL_TIMEOUT";

/// Environment variable bounding how many times a transient cell failure
/// is retried (0, the default, disables retry).
pub const RETRIES_ENV: &str = "RIVERA_CELL_RETRIES";

/// Environment variable setting the base backoff between retry attempts,
/// in milliseconds (attempt `k` sleeps `k * base`; default 0 — no sleep,
/// so test schedules stay deterministic).
pub const BACKOFF_ENV: &str = "RIVERA_RETRY_BACKOFF_MS";

/// Substring marking a panic message as a *transient* failure, eligible
/// for retry under [`RunPolicy::max_attempts`]. The fault-injection
/// harness uses this to force retry classifications deterministically.
pub const TRANSIENT_MARKER: &str = "[transient]";

/// The number of worker threads the pool will use: the `RIVERA_THREADS`
/// override when set to a positive integer, otherwise the host's
/// available parallelism (1 if unknown).
pub fn thread_count() -> usize {
    let raw = std::env::var(THREADS_ENV).ok();
    let (count, warning) = thread_count_from(raw.as_deref());
    if let Some(warning) = warning {
        eprintln!("warning: {warning}");
    }
    count
}

/// Pure core of [`thread_count`], split out so the warning/fallback path
/// is testable without racing on the process environment: returns the
/// chosen width and, for a present-but-invalid override, the warning
/// text.
pub fn thread_count_from(raw: Option<&str>) -> (usize, Option<String>) {
    let host = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    match raw {
        None => (host, None),
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => (n, None),
            _ => (
                host,
                Some(format!("ignoring {THREADS_ENV}={raw:?} (want a positive integer)")),
            ),
        },
    }
}

/// Identifies one execution attempt of one cell: `index` is the cell's
/// position in submission order, `attempt` counts from 1 and increases
/// across retries of the same cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCtx {
    /// The cell's index in submission order.
    pub index: usize,
    /// The 1-based attempt number (greater than 1 only on retry).
    pub attempt: u32,
}

/// The result of executing one cell under fault isolation.
#[derive(Debug)]
pub enum CellOutcome<T> {
    /// The cell completed within its deadline.
    Ok(T),
    /// The cell panicked; the panic was caught and isolated.
    Panicked {
        /// The panic payload (plus source location when available).
        message: String,
        /// A backtrace captured at the panic site.
        backtrace: String,
        /// How long the failing attempt ran before panicking.
        elapsed: Duration,
    },
    /// The cell completed but exceeded the configured deadline, so its
    /// result was discarded. (The deadline is enforced at cell
    /// granularity: the watchdog cannot preempt a non-terminating cell,
    /// it classifies overlong ones as they finish.)
    TimedOut {
        /// The deadline the cell exceeded.
        deadline: Duration,
        /// How long the cell actually ran (measured plus any virtual
        /// time charged via [`charge_virtual`]).
        elapsed: Duration,
    },
    /// The cell was attempted more than once; `outcome` is the final
    /// attempt's result.
    Retried {
        /// Total attempts executed (including the final one).
        attempts: u32,
        /// The final attempt's outcome (never itself `Retried`).
        outcome: Box<CellOutcome<T>>,
    },
}

impl<T> CellOutcome<T> {
    /// The successful value, if any (looking through `Retried`).
    pub fn value(&self) -> Option<&T> {
        match self {
            CellOutcome::Ok(v) => Some(v),
            CellOutcome::Retried { outcome, .. } => outcome.value(),
            _ => None,
        }
    }

    /// Consumes the outcome, yielding the successful value if any.
    pub fn into_value(self) -> Option<T> {
        match self {
            CellOutcome::Ok(v) => Some(v),
            CellOutcome::Retried { outcome, .. } => outcome.into_value(),
            _ => None,
        }
    }

    /// True when the cell (eventually) produced a value.
    pub fn is_ok(&self) -> bool {
        self.value().is_some()
    }

    /// The marker string a table renders for a failed cell (`ERR` for a
    /// panic, `TIMEOUT` for a deadline miss), or `None` on success.
    pub fn marker(&self) -> Option<&'static str> {
        match self {
            CellOutcome::Ok(_) => None,
            CellOutcome::Panicked { .. } => Some("ERR"),
            CellOutcome::TimedOut { .. } => Some("TIMEOUT"),
            CellOutcome::Retried { outcome, .. } => outcome.marker(),
        }
    }

    /// A one-line human-readable description of the failure, or `None`
    /// on success.
    pub fn failure(&self) -> Option<String> {
        match self {
            CellOutcome::Ok(_) => None,
            CellOutcome::Panicked { message, .. } => Some(format!("panicked: {message}")),
            CellOutcome::TimedOut { deadline, elapsed } => Some(format!(
                "timed out: ran {:.3}s against a {:.3}s deadline",
                elapsed.as_secs_f64(),
                deadline.as_secs_f64()
            )),
            CellOutcome::Retried { attempts, outcome } => {
                outcome.failure().map(|f| format!("{f} (after {attempts} attempts)"))
            }
        }
    }

    /// Total attempts this outcome records (1 unless retried).
    pub fn attempts(&self) -> u32 {
        match self {
            CellOutcome::Retried { attempts, .. } => *attempts,
            _ => 1,
        }
    }

    /// How long the (final) failing attempt ran, when known. Successful
    /// cells report `None` — their timing is the caller's to measure.
    pub fn elapsed(&self) -> Option<Duration> {
        match self {
            CellOutcome::Ok(_) => None,
            CellOutcome::Panicked { elapsed, .. } => Some(*elapsed),
            CellOutcome::TimedOut { elapsed, .. } => Some(*elapsed),
            CellOutcome::Retried { outcome, .. } => outcome.elapsed(),
        }
    }
}

/// Fault-tolerance policy for a run: per-cell deadline, retry budget, and
/// backoff schedule.
#[derive(Debug, Clone)]
pub struct RunPolicy {
    /// Per-cell deadline; `None` (the default) disables the watchdog.
    pub deadline: Option<Duration>,
    /// Maximum attempts per cell (at least 1). Attempts beyond the first
    /// happen only for failures classified transient — timeouts, and
    /// panics whose message contains [`TRANSIENT_MARKER`].
    pub max_attempts: u32,
    /// Base backoff between attempts: attempt `k` (1-based) sleeps
    /// `k * backoff` before retrying. Zero (the default) sleeps not at
    /// all, keeping test schedules deterministic.
    pub backoff: Duration,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy { deadline: None, max_attempts: 1, backoff: Duration::ZERO }
    }
}

impl RunPolicy {
    /// Builds the policy the experiment binaries run under, from
    /// `RIVERA_CELL_TIMEOUT` (seconds), `RIVERA_CELL_RETRIES`, and
    /// `RIVERA_RETRY_BACKOFF_MS`. Unset or unparseable variables fall
    /// back to the defaults (no deadline, no retry, no backoff).
    pub fn from_env() -> Self {
        let mut policy = RunPolicy::default();
        if let Ok(raw) = std::env::var(TIMEOUT_ENV) {
            match raw.trim().parse::<f64>() {
                Ok(secs) if secs > 0.0 && secs.is_finite() => {
                    policy.deadline = Some(Duration::from_secs_f64(secs));
                }
                _ => eprintln!("warning: ignoring {TIMEOUT_ENV}={raw:?} (want seconds > 0)"),
            }
        }
        if let Ok(raw) = std::env::var(RETRIES_ENV) {
            match raw.trim().parse::<u32>() {
                Ok(n) => policy.max_attempts = n.saturating_add(1),
                _ => eprintln!("warning: ignoring {RETRIES_ENV}={raw:?} (want an integer)"),
            }
        }
        if let Ok(raw) = std::env::var(BACKOFF_ENV) {
            match raw.trim().parse::<u64>() {
                Ok(ms) => policy.backoff = Duration::from_millis(ms),
                _ => eprintln!("warning: ignoring {BACKOFF_ENV}={raw:?} (want milliseconds)"),
            }
        }
        policy
    }
}

thread_local! {
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static LAST_PANIC: RefCell<Option<(String, String)>> = const { RefCell::new(None) };
    static VIRTUAL_NANOS: Cell<u64> = const { Cell::new(0) };
}

/// Charges virtual elapsed time to the currently running cell attempt.
///
/// The deadline watchdog adds virtual time to the measured wall time when
/// classifying a cell, which lets the fault-injection harness exercise
/// the timeout path deterministically — a test charges minutes of virtual
/// delay against a seconds-scale deadline, so real scheduling noise can
/// never flip the classification.
pub fn charge_virtual(delay: Duration) {
    VIRTUAL_NANOS.with(|v| {
        v.set(v.get().saturating_add(delay.as_nanos().min(u128::from(u64::MAX)) as u64));
    });
}

fn drain_virtual() -> Duration {
    VIRTUAL_NANOS.with(|v| {
        let nanos = v.get();
        v.set(0);
        Duration::from_nanos(nanos)
    })
}

/// Installs (once, process-wide) a panic hook that captures the message
/// and backtrace of panics raised inside isolated cells, suppressing the
/// default stderr report for them; panics anywhere else still reach the
/// previously installed hook untouched.
fn install_capture_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if CAPTURING.with(Cell::get) {
                let message = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                let message = match info.location() {
                    Some(loc) => format!("{message} (at {loc})"),
                    None => message,
                };
                let backtrace = Backtrace::force_capture().to_string();
                LAST_PANIC.with(|l| *l.borrow_mut() = Some((message, backtrace)));
            } else {
                previous(info);
            }
        }));
    });
}

/// The lock-free executor every entry point funnels through: claims cell
/// indices off an atomic cursor and stores each result in its own
/// `OnceLock` slot, so no shared lock exists to poison and result order
/// is index order by construction. `run` must not panic (callers wrap
/// the user closure in `catch_unwind` first when isolation is wanted).
/// The `Sync` bound comes from sharing the slot vector across workers;
/// every cell payload in this crate is plain data, so it costs nothing.
fn run_slots<R: Send + Sync>(
    threads: usize,
    count: usize,
    run: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(count.max(1));
    if threads == 1 || count <= 1 {
        return (0..count).map(run).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<OnceLock<R>> = (0..count).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let value = run(index);
                // Each index is claimed exactly once, so the slot is
                // always empty here.
                let _ = slots[index].set(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every cell produced a result"))
        .collect()
}

/// Runs `count` cells through `f` on the default pool width
/// ([`thread_count`]) and returns the results in cell order.
pub fn run_cells<T: Send + Sync>(count: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    run_cells_on(thread_count(), count, f)
}

/// Runs `count` cells through `f` on exactly `threads` workers and
/// returns the results in cell order — `run_cells_on(1, ..)` is the
/// serial reference the determinism tests compare against.
///
/// Cells are claimed through an atomic cursor (work stealing: a free
/// worker takes the next unclaimed index), so uneven cell costs do not
/// idle the pool. Result order is index order, never completion order.
///
/// # Panics
///
/// Propagates the panic of the lowest-indexed panicking cell — but only
/// after every other cell has run to completion: a panicking cell is
/// caught and isolated, never killing sibling workers or poisoning
/// shared state. Use [`run_cells_outcome_on`] to observe failures as
/// values instead.
pub fn run_cells_on<T: Send + Sync>(
    threads: usize,
    count: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    // The panic payload (`Box<dyn Any + Send>`) is not `Sync`, which the
    // slot storage requires; a Mutex wrapper adds exactly that. It is
    // never locked concurrently — only unwrapped after the pool joins.
    let results = run_slots(threads, count, |index| {
        catch_unwind(AssertUnwindSafe(|| f(index))).map_err(Mutex::new)
    });
    let mut values = Vec::with_capacity(count);
    let mut first_panic = None;
    for result in results {
        match result {
            Ok(value) => values.push(value),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload.into_inner().unwrap_or_else(|p| p.into_inner()));
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    values
}

/// Runs one cell under `policy`: bounded attempts, each wrapped in
/// `catch_unwind`, with deadline classification and deterministic
/// backoff between retries of transient failures.
fn run_one_cell<T>(
    index: usize,
    policy: &RunPolicy,
    f: &(impl Fn(CellCtx) -> T + Sync),
) -> CellOutcome<T> {
    install_capture_hook();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        drain_virtual();
        CAPTURING.with(|c| c.set(true));
        let start = Instant::now();
        let caught = catch_unwind(AssertUnwindSafe(|| f(CellCtx { index, attempt })));
        CAPTURING.with(|c| c.set(false));
        let elapsed = start.elapsed() + drain_virtual();
        let outcome = match caught {
            Ok(value) => match policy.deadline {
                Some(deadline) if elapsed > deadline => {
                    CellOutcome::TimedOut { deadline, elapsed }
                }
                _ => CellOutcome::Ok(value),
            },
            Err(payload) => {
                let (message, backtrace) = LAST_PANIC
                    .with(|l| l.borrow_mut().take())
                    .unwrap_or_else(|| {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic payload>".to_string());
                        (message, String::new())
                    });
                CellOutcome::Panicked { message, backtrace, elapsed }
            }
        };
        let transient = match &outcome {
            CellOutcome::Ok(_) => false,
            CellOutcome::TimedOut { .. } => true,
            CellOutcome::Panicked { message, .. } => message.contains(TRANSIENT_MARKER),
            CellOutcome::Retried { .. } => unreachable!("attempts are never nested"),
        };
        if !outcome.is_ok() && transient && attempt < policy.max_attempts {
            if !policy.backoff.is_zero() {
                std::thread::sleep(policy.backoff * attempt);
            }
            continue;
        }
        return if attempt > 1 {
            CellOutcome::Retried { attempts: attempt, outcome: Box::new(outcome) }
        } else {
            outcome
        };
    }
}

/// Fault-isolated run: every cell's panic is caught, deadlines and
/// retries applied per `policy`, and the per-cell [`CellOutcome`]s
/// returned in cell order. No cell failure disturbs any sibling cell.
pub fn run_cells_outcome_on<T: Send + Sync>(
    threads: usize,
    count: usize,
    policy: &RunPolicy,
    f: impl Fn(CellCtx) -> T + Sync,
) -> Vec<CellOutcome<T>> {
    run_cells_outcome_with(threads, count, policy, f, |_, _| {})
}

/// [`run_cells_outcome_on`] with a completion callback: `on_complete`
/// runs on the worker thread immediately after each cell's outcome is
/// finalized (completion order, concurrently across workers). The
/// checkpoint journal hooks in here so a killed sweep has every finished
/// cell on disk.
pub fn run_cells_outcome_with<T: Send + Sync>(
    threads: usize,
    count: usize,
    policy: &RunPolicy,
    f: impl Fn(CellCtx) -> T + Sync,
    on_complete: impl Fn(usize, &CellOutcome<T>) + Sync,
) -> Vec<CellOutcome<T>> {
    run_slots(threads, count, |index| {
        let outcome = run_one_cell(index, policy, &f);
        on_complete(index, &outcome);
        outcome
    })
}

/// [`run_cells`] with a progress label per cell: each cell's label and
/// wall time are printed to stderr as it finishes (completion order; the
/// *results* remain in cell order).
pub fn run_labeled<T: Send + Sync>(labels: &[String], f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    run_labeled_on(thread_count(), labels, f)
}

/// [`run_cells_on`] with per-cell progress labels and timing.
pub fn run_labeled_on<T: Send + Sync>(
    threads: usize,
    labels: &[String],
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    run_cells_on(threads, labels.len(), |index| {
        let start = Instant::now();
        let value = f(index);
        eprintln!("  {} ({:.0} ms)", labels[index], start.elapsed().as_secs_f64() * 1e3);
        value
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_cell_order() {
        // Make later cells cheaper so completion order inverts cell order.
        let work = |i: usize| {
            let mut acc = 0u64;
            for k in 0..(200 - i as u64) * 500 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc % 7)
        };
        let serial = run_cells_on(1, 200, work);
        for threads in [2, 3, 8] {
            assert_eq!(run_cells_on(threads, 200, work), serial, "{threads} threads");
        }
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        assert_eq!(run_cells_on(64, 3, |i| i * i), vec![0, 1, 4]);
        assert_eq!(run_cells_on(4, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn zero_cells_yield_empty_outcomes() {
        let outcomes =
            run_cells_outcome_on(4, 0, &RunPolicy::default(), |cell| cell.index);
        assert!(outcomes.is_empty());
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn thread_count_falls_back_on_garbage() {
        let host = thread_count_from(None).0;
        for bad in ["0", "-3", "garbage", "", "  "] {
            let (count, warning) = thread_count_from(Some(bad));
            assert_eq!(count, host, "{bad:?} must fall back to the host width");
            let warning = warning.expect("invalid override warns");
            assert!(warning.contains(THREADS_ENV), "{warning}");
        }
        assert_eq!(thread_count_from(Some(" 7 ")), (7, None));
    }

    #[test]
    fn panicking_cell_does_not_poison_siblings() {
        // The legacy API still propagates the panic, but only after every
        // sibling has completed — no secondary "poisoned lock" panics.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_cells_on(4, 16, |i| {
                if i == 5 {
                    panic!("boom in cell {i}");
                }
                i * 2
            })
        }));
        let payload = caught.expect_err("cell panic propagates");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("boom in cell 5"), "{message}");
    }

    #[test]
    fn first_panic_by_index_wins() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_cells_on(4, 16, |i| {
                if i == 11 || i == 3 {
                    panic!("boom in cell {i}");
                }
                i
            })
        }));
        let payload = caught.expect_err("cell panic propagates");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("boom in cell 3"), "{message}");
    }

    #[test]
    fn outcome_runner_isolates_panics() {
        for threads in [1, 2, 8] {
            let outcomes =
                run_cells_outcome_on(threads, 10, &RunPolicy::default(), |cell| {
                    if cell.index == 4 {
                        panic!("injected");
                    }
                    cell.index * 3
                });
            assert_eq!(outcomes.len(), 10);
            for (i, outcome) in outcomes.iter().enumerate() {
                if i == 4 {
                    assert_eq!(outcome.marker(), Some("ERR"));
                    assert!(outcome.failure().expect("failed").contains("injected"));
                } else {
                    assert_eq!(outcome.value(), Some(&(i * 3)), "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn virtual_delay_trips_the_deadline() {
        let policy = RunPolicy {
            deadline: Some(Duration::from_secs(60)),
            ..RunPolicy::default()
        };
        let outcomes = run_cells_outcome_on(1, 2, &policy, |cell| {
            if cell.index == 1 {
                charge_virtual(Duration::from_secs(3600));
            }
            cell.index
        });
        assert_eq!(outcomes[0].value(), Some(&0));
        assert_eq!(outcomes[1].marker(), Some("TIMEOUT"));
        match &outcomes[1] {
            CellOutcome::TimedOut { deadline, elapsed } => {
                assert_eq!(*deadline, Duration::from_secs(60));
                assert!(*elapsed >= Duration::from_secs(3600));
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn transient_panics_are_retried_and_accounted() {
        let policy = RunPolicy { max_attempts: 3, ..RunPolicy::default() };
        let outcomes = run_cells_outcome_on(1, 1, &policy, |cell| {
            if cell.attempt <= 2 {
                panic!("{TRANSIENT_MARKER} flaking on attempt {}", cell.attempt);
            }
            41 + cell.attempt
        });
        match &outcomes[0] {
            CellOutcome::Retried { attempts: 3, outcome } => {
                assert_eq!(outcome.value(), Some(&44));
            }
            other => panic!("expected Retried{{3, Ok}}, got {other:?}"),
        }
        assert_eq!(outcomes[0].attempts(), 3);
    }

    #[test]
    fn non_transient_panics_are_not_retried() {
        let policy = RunPolicy { max_attempts: 5, ..RunPolicy::default() };
        let outcomes = run_cells_outcome_on(1, 1, &policy, |cell| {
            panic!("hard failure on attempt {}", cell.attempt);
            #[allow(unreachable_code)]
            0
        });
        assert_eq!(outcomes[0].attempts(), 1);
        assert_eq!(outcomes[0].marker(), Some("ERR"));
    }

    #[test]
    fn retry_budget_is_bounded() {
        let policy = RunPolicy { max_attempts: 2, ..RunPolicy::default() };
        let outcomes = run_cells_outcome_on(1, 1, &policy, |cell| {
            panic!("{TRANSIENT_MARKER} always failing (attempt {})", cell.attempt);
            #[allow(unreachable_code)]
            0
        });
        match &outcomes[0] {
            CellOutcome::Retried { attempts: 2, outcome } => {
                assert_eq!(outcome.marker(), Some("ERR"));
            }
            other => panic!("expected Retried{{2, Panicked}}, got {other:?}"),
        }
    }
}
