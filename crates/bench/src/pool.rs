//! Work-stealing experiment runner.
//!
//! The figure sweeps decompose into independent *cells* — one (kernel,
//! config-set, layout) unit each, internally batched by
//! [`pad_trace::simulate_batch`]. This module executes cells on a pool of
//! scoped threads (`std::thread::scope`; no external runtime) with a
//! shared atomic cursor for work stealing, then reassembles results in
//! submission order so every table and CSV is byte-identical to a serial
//! run regardless of thread count or scheduling.
//!
//! The pool width defaults to the host's available parallelism and can be
//! overridden with the `RIVERA_THREADS` environment variable (`1` forces
//! the serial path).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "RIVERA_THREADS";

/// The number of worker threads the pool will use: the `RIVERA_THREADS`
/// override when set to a positive integer, otherwise the host's
/// available parallelism (1 if unknown).
pub fn thread_count() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!(
                "warning: ignoring {THREADS_ENV}={raw:?} (want a positive integer)"
            ),
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Runs `count` cells through `f` on the default pool width
/// ([`thread_count`]) and returns the results in cell order.
pub fn run_cells<T: Send>(count: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    run_cells_on(thread_count(), count, f)
}

/// Runs `count` cells through `f` on exactly `threads` workers and
/// returns the results in cell order — `run_cells_on(1, ..)` is the
/// serial reference the determinism tests compare against.
///
/// Cells are claimed through an atomic cursor (work stealing: a free
/// worker takes the next unclaimed index), so uneven cell costs do not
/// idle the pool. Result order is index order, never completion order.
///
/// # Panics
///
/// Propagates the first cell panic after all workers stop.
pub fn run_cells_on<T: Send>(
    threads: usize,
    count: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let threads = threads.max(1).min(count.max(1));
    if threads == 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots = Mutex::new(Vec::with_capacity(count));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let value = f(index);
                slots.lock().expect("no poisoned cell results").push((index, value));
            });
        }
    });
    let mut taken = slots.into_inner().expect("workers joined");
    assert_eq!(taken.len(), count, "every cell produced a result");
    taken.sort_unstable_by_key(|&(index, _)| index);
    taken.into_iter().map(|(_, value)| value).collect()
}

/// [`run_cells`] with a progress label per cell: each cell's label and
/// wall time are printed to stderr as it finishes (completion order; the
/// *results* remain in cell order).
pub fn run_labeled<T: Send>(labels: &[String], f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    run_labeled_on(thread_count(), labels, f)
}

/// [`run_cells_on`] with per-cell progress labels and timing.
pub fn run_labeled_on<T: Send>(
    threads: usize,
    labels: &[String],
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    run_cells_on(threads, labels.len(), |index| {
        let start = Instant::now();
        let value = f(index);
        eprintln!("  {} ({:.0} ms)", labels[index], start.elapsed().as_secs_f64() * 1e3);
        value
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_cell_order() {
        // Make later cells cheaper so completion order inverts cell order.
        let work = |i: usize| {
            let mut acc = 0u64;
            for k in 0..(200 - i as u64) * 500 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc % 7)
        };
        let serial = run_cells_on(1, 200, work);
        for threads in [2, 3, 8] {
            assert_eq!(run_cells_on(threads, 200, work), serial, "{threads} threads");
        }
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        assert_eq!(run_cells_on(64, 3, |i| i * i), vec![0, 1, 4]);
        assert_eq!(run_cells_on(4, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
