//! Experiment harness regenerating the paper's evaluation.
//!
//! One binary per table/figure (run with `--release`; the traces are
//! large):
//!
//! | Binary   | Reproduces | Content |
//! |----------|------------|---------|
//! | `table2` | Table 2    | compile-time statistics for PAD |
//! | `fig08`  | Figure 8   | miss rates, original vs PAD, 16 K direct-mapped |
//! | `fig09`  | Figure 9   | PAD on direct-mapped vs original on 2/4/16-way |
//! | `fig10`  | Figure 10  | padding benefit as associativity increases |
//! | `fig11`  | Figure 11  | padding benefit across cache sizes |
//! | `fig12`  | Figure 12  | intra-variable padding contribution across cache sizes |
//! | `fig13`  | Figure 13  | PADLITE's minimum separation M sweep |
//! | `fig14`  | Figure 14  | precision of analysis: PAD − PADLITE across cache sizes |
//! | `fig15`  | Figure 15  | native execution time, original vs PAD |
//! | `fig16`  | Figure 16  | miss rate vs problem size for EXPL/SHAL/DGEFA/CHOL |
//! | `fig17`  | Figure 17  | LINPAD1 vs LINPAD2 vs problem size |
//! | `fig_mrc` | (new artifact) | miss-ratio curves, original vs PAD, every power-of-two capacity from one reuse-distance walk |
//! | `ablation_jstar` | §2.3.2 | LINPAD2 `j*` threshold sweep (the "129" claim) |
//! | `ablation_hardware` | §5 | padding vs victim cache vs XOR placement |
//! | `ablation_tiling` | §5 | padding vs Coleman-McKinley tiling on MULT |
//! | `ablation_multilevel` | §2.1.2 | padding for one cache level vs two |
//! | `all`    | everything | runs the full set in order |
//!
//! Timing benches (no figure of their own) live alongside them:
//! `bench_simulator` (engine throughput + `BENCH_simulator.json`),
//! `bench_native` (native kernels, original vs PAD), `bench_heuristics`
//! (PAD/PADLITE analysis cost), `bench_ablations` (replacement and
//! write-policy design checks).
//!
//! Each figure binary prints aligned text and writes a CSV under
//! `results/`. Simulation cells execute on the deterministic
//! work-stealing pool in [`pool`] — `RIVERA_THREADS=N` overrides the
//! worker count without changing any output byte. Set `PAD_QUICK=1` to
//! shrink the problem-size sweeps for a fast smoke run.
//!
//! # Reliability
//!
//! Sweeps run under fault isolation (see `EXPERIMENTS.md`, "Reliability"):
//! a panicking cell renders as `ERR` instead of aborting its siblings,
//! `RIVERA_CELL_TIMEOUT=secs` marks over-deadline cells `TIMEOUT`,
//! `RIVERA_CELL_RETRIES=n` retries transient failures with deterministic
//! backoff, and every completed cell is checkpointed to
//! `results/<experiment>.journal` so a killed sweep rerun with
//! `RIVERA_RESUME=1` replays finished cells bit-exactly. The
//! [`faults`] module provides the seeded fault-injection plans the
//! integration suite uses to prove those contracts.

// `deny` rather than `forbid`: `pool::persistent` carries a scoped
// `allow` for the single lifetime-erasing transmute that lets parked
// workers borrow a submission's closure (see its safety comment);
// everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod faults;
pub mod harness;
pub mod journal;
pub mod pool;
