//! Native-kernel execution time, original vs PAD layout — the
//! zero-dependency successor of the retired Criterion `native_kernels`
//! bench (Figure 15's quantity, measured per kernel with [`time_it`]).

use std::time::Duration;

use pad_bench::harness::time_it;
use pad_core::{DataLayout, Pad};
use pad_kernels::{suite, Workspace};
use pad_report::Table;
use pad_trace::padding_config_for;

fn condition(name: &str, ws: &mut Workspace, n: i64) {
    if name == "DGEFA256" || name == "CHOL256" {
        let a = ws.array("A");
        for i in 1..=n {
            let v = ws.get(a, &[i, i]);
            ws.set(a, &[i, i], v + 100.0);
        }
    }
}

fn main() {
    let cache = pad_cache_sim::CacheConfig::paper_base();
    let mut t = Table::new(["kernel", "layout", "best ms", "mean ms", "iters"]);
    for k in suite() {
        let Some(native) = k.native else { continue };
        let program = (k.spec)(k.default_n);
        for (variant, layout) in [
            ("orig", DataLayout::original(&program)),
            (
                "pad",
                Pad::new(padding_config_for(&cache)).run(&program).layout,
            ),
        ] {
            eprintln!("  bench_native: {} {variant}", k.name);
            let mut ws = Workspace::new(&program, layout);
            for (i, (id, _)) in program.arrays_with_ids().enumerate() {
                ws.fill_pattern(id, i as u64 + 1);
            }
            let timing = time_it(Duration::from_millis(300), Duration::from_secs(1), || {
                condition(k.name, &mut ws, k.default_n);
                native(&mut ws, k.default_n);
                std::hint::black_box(ws.words()[0]);
            });
            t.row([
                k.name.to_string(),
                variant.to_string(),
                format!("{:.3}", timing.best_ms()),
                format!("{:.3}", timing.mean_secs * 1e3),
                timing.iters.to_string(),
            ]);
        }
    }
    println!("{t}");
}
