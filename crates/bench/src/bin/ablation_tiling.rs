//! Regenerates the padding-vs-tiling ablation. See `pad-bench`'s crate docs.

fn main() {
    pad_bench::experiments::ablation_tiling();
}
