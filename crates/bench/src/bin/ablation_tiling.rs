//! Regenerates the paper's ablation_tiling. See `pad-bench`'s crate docs.

use std::process::ExitCode;

fn main() -> ExitCode {
    pad_bench::experiments::ablation_tiling().exit_code()
}
