//! Compile-time cost of the padding heuristics — the zero-dependency
//! successor of the retired Criterion `heuristic_cost` bench.
//!
//! Section 4.1 of the paper reports that "costs of applying PAD and
//! PADLITE were a very small percentage of overall compilation time".
//! This measures the absolute analysis cost per benchmark program, which
//! should sit in the micro- to low-millisecond range — trivial next to
//! compiling thousands of lines of Fortran.

use std::time::Duration;

use pad_bench::harness::time_it;
use pad_core::{Pad, PadLite, PaddingConfig};
use pad_kernels::suite;
use pad_report::Table;

fn main() {
    let config = PaddingConfig::paper_base();
    let mut t = Table::new(["kernel", "pad us", "padlite us", "iters"]);
    for k in suite() {
        eprintln!("  bench_heuristics: {}", k.name);
        let program = (k.spec)(k.default_n);
        let pad = Pad::new(config.clone());
        let pad_timing = time_it(
            Duration::from_millis(100),
            Duration::from_millis(500),
            || {
                std::hint::black_box(pad.run(&program).layout.total_bytes());
            },
        );
        let lite = PadLite::new(config.clone());
        let lite_timing = time_it(
            Duration::from_millis(100),
            Duration::from_millis(500),
            || {
                std::hint::black_box(lite.run(&program).layout.total_bytes());
            },
        );
        t.row([
            k.name.to_string(),
            format!("{:.1}", pad_timing.best_secs * 1e6),
            format!("{:.1}", lite_timing.best_secs * 1e6),
            (pad_timing.iters + lite_timing.iters).to_string(),
        ]);
    }
    println!("{t}");
}
