//! Regenerates the paper's fig12. See `pad-bench`'s crate docs.

fn main() {
    pad_bench::experiments::fig12();
}
