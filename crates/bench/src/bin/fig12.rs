//! Regenerates the paper's fig12. See `pad-bench`'s crate docs.

use std::process::ExitCode;

fn main() -> ExitCode {
    pad_bench::experiments::fig12().exit_code()
}
