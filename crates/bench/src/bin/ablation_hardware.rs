//! Regenerates the hardware-alternatives ablation. See `pad-bench`'s crate docs.

fn main() {
    pad_bench::experiments::ablation_hardware();
}
