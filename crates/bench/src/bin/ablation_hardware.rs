//! Regenerates the paper's ablation_hardware. See `pad-bench`'s crate docs.

use std::process::ExitCode;

fn main() -> ExitCode {
    pad_bench::experiments::ablation_hardware().exit_code()
}
