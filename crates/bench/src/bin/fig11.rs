//! Regenerates the paper's fig11. See `pad-bench`'s crate docs.

use std::process::ExitCode;

fn main() -> ExitCode {
    pad_bench::experiments::fig11().exit_code()
}
