//! Regenerates the paper's fig11. See `pad-bench`'s crate docs.

fn main() {
    pad_bench::experiments::fig11();
}
