//! Throughput of the cache-simulation substrate, and the perf guardrail
//! for the batched/parallel experiment engine.
//!
//! The kernel trace is materialized **once** before timing; the engines
//! measure pure simulation throughput over that shared `Vec<Access>`.
//! Trace *generation* cost is tracked separately by the `walker/` row —
//! keeping the two concerns apart means a walker regression can't hide
//! inside an engine number and vice versa. Three engines do the *same*
//! work — simulating the trace through a sweep of cache configurations —
//! and must report identical miss counts (asserted before timing, along
//! with the `pad_trace::simulate_batch_compiled` production path):
//!
//! 1. `seed_serial`: the seed's architecture — per configuration, feed
//!    the nested-`Vec` [`BaselineCache`] one access at a time (per-access
//!    dispatch, division-based indexing).
//! 2. `batched`: tee chunked slices of the shared trace into every
//!    flat-storage cache, so each `BATCH_CHUNK` block stays cache-hot
//!    across all sinks while the lane kernels consume it.
//! 3. `parallel`: one pool cell per configuration ([`pad_bench::pool`]),
//!    each streaming the whole shared trace through its own cache. On a
//!    single-core host this approximates `batched` without the teeing
//!    benefit; on multicore hosts it scales with `RIVERA_THREADS`.
//!
//! Results are printed as a table and written to `BENCH_simulator.json`,
//! then gated: `batched` must clear a recorded floor (the long-term
//! target is 1 G accesses/sec), and `parallel` must beat `batched`
//! whenever the host actually has ≥ 2 cores — on single-core hosts that
//! gate is *skipped with an explicit marker*, never silently passed.
//! Pass `--quick` (or set `PAD_QUICK=1`) for a reduced smoke workload
//! with a correspondingly conservative floor and no JSON write.
//!
//! Also measures the per-component rates the retired Criterion bench
//! tracked: interpreted vs compiled trace walkers, and per-organization
//! cache throughput (baseline vs flat storage) for every lane-kernel
//! specialization (DM and 2/4/8/16-way).

use std::collections::HashSet;
use std::time::Duration;

use pad_bench::harness::{time_it, Timing};
use pad_bench::pool;
use pad_cache_sim::{
    Access, BaselineCache, Cache, CacheConfig, ClassifyingCache, IndexFunction, ShadowLru,
};
use pad_core::DataLayout;
use pad_report::Table;
use pad_trace::{simulate_batch_compiled, BatchRequest, CompiledTrace, BATCH_CHUNK};

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_secs(1);

/// Long-term batched-engine goal, logged next to every gate evaluation.
const TARGET_APS: f64 = 1.0e9;
/// Full-workload floor for the batched engine (accesses/sec). Calibrated
/// from best-of-5 interleaved rounds on the recording host (observed
/// 150-250 M/s across runs) with headroom for that host's ±50% noise;
/// see `EXPERIMENTS.md` ("Throughput gates") before changing.
const FULL_FLOOR_APS: f64 = 100.0e6;
/// Smoke-mode floor: the quick workload (n=128) is too small to time
/// precisely, so this only catches order-of-magnitude regressions.
const QUICK_FLOOR_APS: f64 = 25.0e6;

fn sweep_configs() -> Vec<CacheConfig> {
    vec![
        CacheConfig::direct_mapped(16 * 1024, 32),
        CacheConfig::set_associative(16 * 1024, 32, 2),
        CacheConfig::set_associative(16 * 1024, 32, 4),
        CacheConfig::set_associative(16 * 1024, 32, 16),
        CacheConfig::direct_mapped(2 * 1024, 32),
        CacheConfig::direct_mapped(4 * 1024, 32),
        CacheConfig::direct_mapped(8 * 1024, 32),
        CacheConfig::direct_mapped(16 * 1024, 32).with_index_function(IndexFunction::Xor),
    ]
}

fn strided_trace(len: usize) -> Vec<Access> {
    (0..len)
        .map(|i| Access {
            addr: ((i as u64) * 40) % (1 << 20),
            is_write: i % 5 == 0,
        })
        .collect()
}

/// Per-organization single-cache throughput: the seed's nested-Vec model
/// vs the flat-storage lane kernels, on a strided synthetic trace. Every
/// const-generic associativity specialization gets its own row so a
/// regression in one kernel can't hide behind the others.
fn component_rates(t: &mut Table) {
    let trace = strided_trace(200_000);
    let n = trace.len() as f64;
    for (label, config) in [
        ("direct_mapped", CacheConfig::paper_base()),
        ("2way", CacheConfig::set_associative(16 * 1024, 32, 2)),
        ("4way", CacheConfig::set_associative(16 * 1024, 32, 4)),
        ("8way", CacheConfig::set_associative(16 * 1024, 32, 8)),
        ("16way", CacheConfig::set_associative(16 * 1024, 32, 16)),
        ("fully", CacheConfig::fully_associative(16 * 1024, 32)),
    ] {
        let flat = time_it(WARMUP, MEASURE, || {
            let mut cache = Cache::new(config);
            cache.run_slice(&trace);
            std::hint::black_box(cache.stats().misses);
        });
        let baseline = time_it(WARMUP, MEASURE, || {
            let mut cache = BaselineCache::new(config);
            cache.run(trace.iter().copied());
            std::hint::black_box(cache.stats().misses);
        });
        t.row([
            format!("cache/{label}"),
            mps(n, baseline),
            mps(n, flat),
            format!("{:.2}x", baseline.best_secs / flat.best_secs),
        ]);
    }
    let classify = time_it(WARMUP, MEASURE, || {
        let mut cache = ClassifyingCache::new(CacheConfig::paper_base());
        cache.run_slice(&trace);
        std::hint::black_box(cache.stats().conflict);
    });
    t.row([
        "cache/classifying_dm".to_string(),
        String::new(),
        mps(n, classify),
        String::new(),
    ]);
}

/// The classification-engine guardrail: the legacy per-capacity
/// `ShadowLru` shadow simulation vs the single-pass reuse-distance
/// classifier now inside [`ClassifyingCache`]. Three-C counts are
/// asserted identical before timing; the speedup is recorded into
/// `BENCH_simulator.json`.
fn classify_rates(t: &mut Table) -> (Timing, Timing) {
    let trace = strided_trace(200_000);
    let n = trace.len() as f64;
    let config = CacheConfig::paper_base();
    let capacity = (config.size() / config.line_size()) as usize;
    // The pre-PR classifier, verbatim: main cache + shadow LRU + explicit
    // first-touch set.
    let legacy_run = || {
        let mut main = Cache::new(config);
        let mut shadow = ShadowLru::new(capacity);
        let mut seen: HashSet<u64> = HashSet::new();
        let (mut compulsory, mut cap, mut conflict) = (0u64, 0u64, 0u64);
        for &a in &trace {
            let line = config.line_addr(a.addr);
            let shadow_hit = shadow.access(line);
            let first_touch = seen.insert(line);
            if !main.access(a).hit {
                if first_touch {
                    compulsory += 1;
                } else if !shadow_hit {
                    cap += 1;
                } else {
                    conflict += 1;
                }
            }
        }
        (compulsory, cap, conflict)
    };
    let reuse_run = || {
        let mut cache = ClassifyingCache::new(config);
        cache.run_slice(&trace);
        let s = cache.stats();
        (s.compulsory, s.capacity, s.conflict)
    };
    assert_eq!(
        legacy_run(),
        reuse_run(),
        "single-pass classifier diverged from the shadow-simulation classifier"
    );
    let legacy = time_it(WARMUP, MEASURE, || {
        std::hint::black_box(legacy_run());
    });
    let reuse = time_it(WARMUP, MEASURE, || {
        std::hint::black_box(reuse_run());
    });
    t.row([
        "classify/shadow_vs_reuse".to_string(),
        mps(n, legacy),
        mps(n, reuse),
        format!("{:.2}x", legacy.best_secs / reuse.best_secs),
    ]);
    (legacy, reuse)
}

/// Interpreted vs compiled trace walkers on a real kernel. This is where
/// trace *generation* cost shows up; the engine rows above deliberately
/// exclude it (they consume a pre-materialized trace).
fn walker_rates(t: &mut Table) {
    let program = pad_kernels::jacobi::spec(128);
    let layout = DataLayout::original(&program);
    let accesses = pad_trace::count_accesses(&program, &layout) as f64;
    let interpreted = time_it(WARMUP, MEASURE, || {
        let mut sum = 0u64;
        pad_trace::for_each_access(&program, &layout, |a| sum = sum.wrapping_add(a.addr));
        std::hint::black_box(sum);
    });
    let compiled = CompiledTrace::compile(&program, &layout);
    let compiled_walk = time_it(WARMUP, MEASURE, || {
        let mut sum = 0u64;
        compiled.for_each(|a| sum = sum.wrapping_add(a.addr));
        std::hint::black_box(sum);
    });
    t.row([
        "walker/jacobi128".to_string(),
        mps(accesses, interpreted),
        mps(accesses, compiled_walk),
        format!("{:.2}x", interpreted.best_secs / compiled_walk.best_secs),
    ]);
}

fn mps(units: f64, timing: Timing) -> String {
    format!("{:.1} M/s", units / timing.best_secs / 1e6)
}

/// The checkout's short commit hash, for correlating history lines with
/// code states; `unknown` outside a git checkout (tarballs, CI caches).
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Appends one NDJSON line per run to `results/bench_history.ndjson` —
/// never overwrites, so the file accumulates the host's timing spread
/// over time (the honest companion to the single-point
/// `BENCH_simulator.json` snapshot). Quick runs are tagged so history
/// consumers can filter out the incomparable smoke workload.
fn append_history(line: &str) {
    use std::io::Write as _;
    let dir = std::path::Path::new("results");
    let path = dir.join("bench_history.ndjson");
    let appended = std::fs::create_dir_all(dir).and_then(|()| {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        writeln!(f, "{line}")
    });
    match appended {
        Ok(()) => println!("(appended to {})", path.display()),
        Err(e) => eprintln!("warning: could not append to {}: {e}", path.display()),
    }
}

fn main() {
    let quick =
        pad_bench::harness::quick_mode() || std::env::args().skip(1).any(|a| a == "--quick");
    let n: i64 = if quick { 128 } else { 512 };
    let program = pad_kernels::jacobi::spec(n);
    let layout = DataLayout::original(&program);
    let configs = sweep_configs();
    let compiled = CompiledTrace::compile(&program, &layout);
    let per_walk = compiled.count();
    let total = per_walk * configs.len() as u64;
    // Materialize the trace once, up front. Every engine then measures
    // pure simulation throughput over the same read-only slice;
    // generation cost is benched separately (`walker/` row).
    let mut trace: Vec<Access> = Vec::with_capacity(per_walk as usize);
    compiled.for_each(|a| trace.push(a));
    assert_eq!(trace.len() as u64, per_walk);
    let trace = &trace[..];

    // Thread accounting (satellite: record what was actually *used*, not
    // just what was configured). `seed_serial` and `batched` are
    // single-threaded by construction; `parallel` is clamped by cell
    // count and host width inside the pool, so record that clamp.
    let threads = pool::thread_count();
    let avail = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let par_threads = pool::effective_width(threads, configs.len());

    let seed_serial = || {
        let mut misses = 0u64;
        for config in &configs {
            let mut cache = BaselineCache::new(*config);
            cache.run(trace.iter().copied());
            misses = misses.wrapping_add(cache.stats().misses);
        }
        misses
    };
    let batched = || {
        let mut caches: Vec<Cache> = configs.iter().map(|&c| Cache::new(c)).collect();
        for chunk in trace.chunks(BATCH_CHUNK) {
            for cache in &mut caches {
                cache.run_slice(chunk);
            }
        }
        caches
            .iter()
            .map(|c| c.stats().misses)
            .fold(0u64, u64::wrapping_add)
    };
    let parallel = || {
        // Width captured once up front: the recorded `threads` field is
        // guaranteed to be the width actually benched, even if the
        // environment changes mid-run.
        let cells = pool::run_cells_on(threads, configs.len(), |i| {
            let mut cache = Cache::new(configs[i]);
            cache.run_slice(trace);
            cache.stats().misses
        });
        cells.iter().fold(0u64, |acc, &m| acc.wrapping_add(m))
    };

    // Correctness before speed: all three engines must agree exactly,
    // and so must the production batch path (compiled walk teed through
    // `pad_trace::simulate_batch_compiled`).
    let reference = seed_serial();
    assert_eq!(
        batched(),
        reference,
        "batched engine diverged from the seed model"
    );
    assert_eq!(
        parallel(),
        reference,
        "parallel engine diverged from the seed model"
    );
    let request = BatchRequest::new().with_plain_configs(configs.iter().copied());
    let mut buf = Vec::with_capacity(BATCH_CHUNK);
    let batch_path = simulate_batch_compiled(&compiled, &request, &mut buf)
        .plain
        .iter()
        .map(|s| s.misses)
        .fold(0u64, u64::wrapping_add);
    assert_eq!(
        batch_path, reference,
        "simulate_batch_compiled diverged from the seed model"
    );
    println!(
        "workload: JACOBI n={n}, {} configs x {per_walk} accesses = {total} simulated \
         accesses per engine pass (total misses {reference}; engines agree)",
        configs.len()
    );

    // Interleaved rounds, best-of per engine: one timed call per engine
    // per round, alternating engines within each round. A load spike on a
    // shared host then lands on all three engines instead of biasing
    // whichever one happened to be under the clock, which keeps the
    // speedup ratio stable across runs. Round 0 is an untimed warmup.
    let rounds = if quick { 2 } else { 5 };
    let time_once = |f: &dyn Fn() -> u64| {
        let start = std::time::Instant::now();
        std::hint::black_box(f());
        start.elapsed().as_secs_f64()
    };
    let timing = |best: f64, sum: f64| Timing {
        best_secs: best,
        mean_secs: sum / rounds as f64,
        iters: rounds as u64,
    };
    let (mut best, mut sums) = ([f64::INFINITY; 3], [0.0f64; 3]);
    for round in 0..=rounds {
        eprintln!(
            "  timing round {round}/{rounds} (seed_serial 1t, batched 1t, parallel {par_threads}t)..."
        );
        let samples = [
            time_once(&seed_serial),
            time_once(&batched),
            time_once(&parallel),
        ];
        if round > 0 {
            for (i, s) in samples.into_iter().enumerate() {
                best[i] = best[i].min(s);
                sums[i] += s;
            }
        }
    }
    let t_seed = timing(best[0], sums[0]);
    let t_batched = timing(best[1], sums[1]);
    let t_parallel = timing(best[2], sums[2]);

    let rate = |t: Timing| total as f64 / t.best_secs;
    let mut t = Table::new(["engine", "baseline", "this engine", "speedup"]);
    t.row([
        "engine/seed_serial".to_string(),
        String::new(),
        mps(total as f64, t_seed),
        "1.00x".into(),
    ]);
    t.row([
        "engine/batched".to_string(),
        mps(total as f64, t_seed),
        mps(total as f64, t_batched),
        format!("{:.2}x", t_seed.best_secs / t_batched.best_secs),
    ]);
    t.row([
        format!("engine/parallel({par_threads}t)"),
        mps(total as f64, t_seed),
        mps(total as f64, t_parallel),
        format!("{:.2}x", t_seed.best_secs / t_parallel.best_secs),
    ]);
    component_rates(&mut t);
    let (t_shadow, t_reuse) = classify_rates(&mut t);
    walker_rates(&mut t);
    println!("{t}");

    // ---- Throughput gates ---------------------------------------------
    let floor = if quick {
        QUICK_FLOOR_APS
    } else {
        FULL_FLOOR_APS
    };
    let batched_rate = rate(t_batched);
    let parallel_rate = rate(t_parallel);
    let mut failed = false;
    println!(
        "gate: batched {:.1} M/s vs floor {:.0} M/s (target {:.0} M/s): {}",
        batched_rate / 1e6,
        floor / 1e6,
        TARGET_APS / 1e6,
        if batched_rate >= floor {
            "pass"
        } else {
            "FAIL"
        }
    );
    if batched_rate < floor {
        failed = true;
    }
    // The parallel>batched gate only means something when the host can
    // actually run two cells at once. On a 1-core host, skip it with an
    // explicit marker — a silent pass here would hide a real multicore
    // regression behind single-core runs.
    let parallel_gate = if avail >= 2 {
        if parallel_rate > batched_rate {
            "pass".to_string()
        } else {
            failed = true;
            "FAIL".to_string()
        }
    } else {
        format!("skipped (available_parallelism {avail} < 2)")
    };
    println!(
        "gate: parallel {:.1} M/s > batched {:.1} M/s: {}",
        parallel_rate / 1e6,
        batched_rate / 1e6,
        parallel_gate
    );

    let json = format!(
        "{{\n  \"bench\": \"simulator_throughput\",\n  \"generated_by\": \"cargo run --release -p pad-bench --bin bench_simulator\",\n  \"host\": {{\"arch\": \"{arch}\", \"os\": \"{os}\", \"available_parallelism\": {avail}}},\n  \"workload\": {{\"kernel\": \"JACOBI\", \"n\": {n}, \"configs\": {nconf}, \"accesses_per_walk\": {per_walk}, \"total_accesses\": {total}, \"trace\": \"materialized once; engines time simulation only\"}},\n  \"engines\": [\n    {{\"name\": \"seed_serial\", \"threads\": 1, \"best_secs\": {s0:.6}, \"accesses_per_sec\": {r0:.0}}},\n    {{\"name\": \"batched\", \"threads\": 1, \"best_secs\": {s1:.6}, \"accesses_per_sec\": {r1:.0}}},\n    {{\"name\": \"parallel\", \"threads\": {par_threads}, \"requested_threads\": {threads}, \"best_secs\": {s2:.6}, \"accesses_per_sec\": {r2:.0}}}\n  ],\n  \"speedups_vs_seed_serial\": {{\"batched\": {x1:.2}, \"parallel\": {x2:.2}}},\n  \"gates\": {{\"batched_floor_aps\": {floor:.0}, \"batched_target_aps\": {target:.0}, \"batched_floor\": \"{g1}\", \"parallel_gt_batched\": \"{g2}\"}},\n  \"classify\": {{\"trace\": \"strided_200k\", \"shadow_lru_best_secs\": {c0:.6}, \"reuse_best_secs\": {c1:.6}, \"speedup\": {cx:.2}}}\n}}\n",
        arch = std::env::consts::ARCH,
        os = std::env::consts::OS,
        nconf = configs.len(),
        s0 = t_seed.best_secs,
        r0 = rate(t_seed),
        s1 = t_batched.best_secs,
        r1 = batched_rate,
        s2 = t_parallel.best_secs,
        r2 = parallel_rate,
        x1 = t_seed.best_secs / t_batched.best_secs,
        x2 = t_seed.best_secs / t_parallel.best_secs,
        target = TARGET_APS,
        g1 = if batched_rate >= floor { "pass" } else { "fail" },
        g2 = parallel_gate,
        c0 = t_shadow.best_secs,
        c1 = t_reuse.best_secs,
        cx = t_shadow.best_secs / t_reuse.best_secs,
    );
    // Every completed run — quick, full, even gate-failed — leaves one
    // history line; regressions are exactly what a history is for.
    append_history(&format!(
        "{{\"bench\": \"simulator_throughput\", \"git\": \"{sha}\", \"quick\": {quick}, \
         \"arch\": \"{arch}\", \"available_parallelism\": {avail}, \"n\": {n}, \
         \"seed_serial_aps\": {r0:.0}, \"batched_aps\": {r1:.0}, \"parallel_aps\": {r2:.0}, \
         \"classify_speedup\": {cx:.2}, \"gates\": \"{gates}\"}}",
        sha = git_sha(),
        arch = std::env::consts::ARCH,
        r0 = rate(t_seed),
        r1 = batched_rate,
        r2 = parallel_rate,
        cx = t_shadow.best_secs / t_reuse.best_secs,
        gates = if failed { "fail" } else { "pass" },
    ));

    let path = "BENCH_simulator.json";
    if quick {
        // Smoke runs use a reduced workload; don't overwrite the
        // full-workload trajectory file with incomparable numbers.
        println!("(quick mode; not writing {path})");
    } else if failed {
        // Don't record a regressed run as the new trajectory point.
        println!("(gate failure; not writing {path})");
    } else {
        match std::fs::write(path, &json) {
            Ok(()) => println!("(wrote {path})"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    if failed {
        eprintln!("error: throughput gate failed (see above)");
        std::process::exit(1);
    }
}
