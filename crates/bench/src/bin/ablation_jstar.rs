//! Regenerates the paper's ablation_jstar. See `pad-bench`'s crate docs.

use std::process::ExitCode;

fn main() -> ExitCode {
    pad_bench::experiments::ablation_jstar().exit_code()
}
