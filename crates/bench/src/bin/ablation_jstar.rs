//! Regenerates the paper's ablation_jstar. See `pad-bench`'s crate docs.

fn main() {
    pad_bench::experiments::ablation_jstar();
}
