//! Regenerates the paper's fig08. See `pad-bench`'s crate docs.

fn main() {
    pad_bench::experiments::fig08();
}
