//! Regenerates the paper's fig08. See `pad-bench`'s crate docs.

use std::process::ExitCode;

fn main() -> ExitCode {
    pad_bench::experiments::fig08().exit_code()
}
