//! Design-choice ablations called out in DESIGN.md — the zero-dependency
//! successor of the retired Criterion `ablations` bench.
//!
//! 1. **Replacement policy**: padding's benefit is a property of the
//!    placement function; an LRU→FIFO/random swap should not change who
//!    wins (miss counts per policy are printed alongside the timings).
//! 2. **Write policy**: the paper assumes write-allocate/write-back; the
//!    no-allocate alternative changes absolute rates but not the padding
//!    effect.

use std::time::Duration;

use pad_bench::harness::time_it;
use pad_cache_sim::{Cache, CacheConfig, ReplacementPolicy, WritePolicy};
use pad_core::{DataLayout, Pad};
use pad_report::Table;
use pad_trace::{collect_trace, padding_config_for};

fn main() {
    let program = pad_kernels::jacobi::spec(256);
    let cache = CacheConfig::paper_base();
    let orig = collect_trace(&program, &DataLayout::original(&program), None);
    let padded_layout = Pad::new(padding_config_for(&cache)).run(&program).layout;
    let padded = collect_trace(&program, &padded_layout, None);

    let misses = |cfg: CacheConfig, trace: &[pad_cache_sim::Access]| {
        let mut cache = Cache::new(cfg);
        cache.run_slice(trace);
        cache.stats().misses
    };

    let mut t = Table::new(["ablation", "orig misses", "pad misses", "sim best ms"]);
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ] {
        eprintln!("  bench_ablations: replacement={policy:?}");
        let cfg = CacheConfig::set_associative(16 * 1024, 32, 4).with_replacement(policy);
        let timing = time_it(Duration::from_millis(300), Duration::from_secs(1), || {
            std::hint::black_box(misses(cfg, &orig));
        });
        t.row([
            format!("replacement={policy:?}"),
            misses(cfg, &orig).to_string(),
            misses(cfg, &padded).to_string(),
            format!("{:.3}", timing.best_ms()),
        ]);
    }
    for wp in [
        WritePolicy::WriteBackAllocate,
        WritePolicy::WriteThroughNoAllocate,
    ] {
        eprintln!("  bench_ablations: write_policy={wp:?}");
        let cfg = CacheConfig::paper_base().with_write_policy(wp);
        let timing = time_it(Duration::from_millis(300), Duration::from_secs(1), || {
            std::hint::black_box(misses(cfg, &orig));
        });
        t.row([
            format!("write_policy={wp:?}"),
            misses(cfg, &orig).to_string(),
            misses(cfg, &padded).to_string(),
            format!("{:.3}", timing.best_ms()),
        ]);
    }
    println!("{t}");
}
