//! Regenerates the paper's fig10. See `pad-bench`'s crate docs.

fn main() {
    pad_bench::experiments::fig10();
}
