//! Regenerates the paper's fig10. See `pad-bench`'s crate docs.

use std::process::ExitCode;

fn main() -> ExitCode {
    pad_bench::experiments::fig10().exit_code()
}
