//! Miss-ratio curves, original vs PAD, from the single-pass reuse
//! engine. See `pad-bench`'s crate docs.

use std::process::ExitCode;

fn main() -> ExitCode {
    pad_bench::experiments::fig_mrc().exit_code()
}
